#!/usr/bin/env bash
# Repo check: tier-1 tests plus a fast benchmark-collection pass.
#
# The benchmark modules are named bench_*.py, which pytest's default
# python_files glob silently skips — so they can rot without anyone
# noticing.  This script runs them with --benchmark-disable (experiment
# logic + assertions execute; no timing calibration) so CI catches
# import errors and stale APIs in benchmarks/ as well.
#
# Usage: scripts/check.sh [extra pytest args for the tier-1 run]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q "$@"

# Named gate for the serving suites (also part of tier-1; kept explicit
# and cheap so a serving regression is unmissable in CI output): the
# in-process micro-batcher + arena, and the multi-process cluster stack
# (spawned shard workers, shared-memory transport, crash recovery).
# The benchmarks pass below picks up the serving throughput benches
# (bench_serving_concurrent.py, bench_serving_cluster.py) via the glob.
echo "== serving concurrency + cluster stress tests =="
python -m pytest tests/runtime/test_serving.py tests/runtime/test_arena.py \
                 tests/runtime/test_shm_ring.py tests/runtime/test_cluster.py -q

echo "== benchmarks (benchmark-disabled fast pass) =="
python -m pytest benchmarks/ -q --benchmark-disable -o python_files='bench_*.py test_*.py'

echo "== check.sh OK =="
