#!/usr/bin/env bash
# Repo check: tier-1 tests plus a fast benchmark-collection pass.
#
# The benchmark modules are named bench_*.py, which pytest's default
# python_files glob silently skips — so they can rot without anyone
# noticing.  This script runs them with --benchmark-disable (experiment
# logic + assertions execute; no timing calibration) so CI catches
# import errors and stale APIs in benchmarks/ as well.
#
# Every pytest run carries a per-test --timeout (the hand-rolled
# watchdog in the root conftest.py): the serving/chaos suites' failure
# mode is a hang, and a hang must name its test and die, not eat the CI
# budget.
#
# Usage: scripts/check.sh [extra pytest args for the tier-1 run]
set -euo pipefail
cd "$(dirname "$0")/.."
export PYTHONPATH="src${PYTHONPATH:+:$PYTHONPATH}"

echo "== tier-1 tests =="
python -m pytest -x -q --timeout 300 "$@"

# Named gate for the serving suites (also part of tier-1; kept explicit
# and cheap so a serving regression is unmissable in CI output): the
# in-process micro-batcher + arena, the shared metrics reservoir, the
# transport protocol (frame codec edge cases + credit backpressure),
# the multi-process cluster stack (spawned shard workers, shm AND
# loopback-TCP transports, crash recovery), and the resilience layer
# (retries, breakers, deadlines, slot hygiene), and the telemetry
# stack (metrics registry, cross-transport tracing, admin endpoint).
# The benchmarks pass below picks up the serving throughput benches
# (bench_serving_concurrent.py, bench_serving_cluster.py,
# bench_serving_chaos.py, bench_serving_tcp.py,
# bench_serving_observability.py, bench_serving_elastic.py,
# bench_serving_multitenant.py) via the glob — the observability bench
# gates tracing overhead, the elastic bench gates zero-error membership
# churn, and the multitenant bench gates bitwise per-model correctness
# of the consolidated two-model cluster even in the disabled fast pass.
echo "== serving concurrency + cluster stress tests =="
python -m pytest tests/runtime/test_serving.py tests/runtime/test_arena.py \
                 tests/runtime/test_metrics.py tests/runtime/test_transport.py \
                 tests/runtime/test_shm_ring.py tests/runtime/test_cluster.py \
                 tests/runtime/test_resilience.py tests/runtime/test_telemetry.py \
                 -q --timeout 300

# The chaos matrix is the resilience acceptance gate: seeded fault
# injection (crash/stall/slow/corrupt/slot-exhaust) against the full
# stack — every request must resolve as the correct result or a typed
# error, with the run's counters matching the plan's replay exactly,
# over the shm transport and over loopback TCP alike.
echo "== chaos suite (seeded fault injection, shm + tcp) =="
python -m pytest tests/runtime/test_chaos.py -q --timeout 300

# Elastic membership is its own named gate: runtime add/remove with
# drain-before-remove must be invisible to clients — remove-under-load
# with zero client-visible errors, add-under-load demonstrably serving
# traffic, SIGKILL-mid-drain resolving futures typed — on the shm
# transport and over loopback TCP alike, plus the shard-file watcher
# and the admin POST routes that drive the same code paths.
echo "== elastic membership suite (runtime add/remove, shm + tcp) =="
python -m pytest tests/runtime/test_membership.py -q --timeout 300

# Multi-tenancy is its own named gate: a two-model registry served
# concurrently with bitwise per-model correctness, typed unknown-model
# rejection, hot load-then-serve under live load, drained unload with
# zero client-visible errors, and mixed-model SIGKILL recovery through
# the retry budget — on the shm transport and over loopback TCP alike,
# plus the admin model routes and per-model /metrics labels.
echo "== multi-tenant suite (model registry, hot load/unload, shm + tcp) =="
python -m pytest tests/runtime/test_multitenant.py -q --timeout 300

echo "== benchmarks (benchmark-disabled fast pass) =="
python -m pytest benchmarks/ -q --benchmark-disable --timeout 600 \
                 -o python_files='bench_*.py test_*.py'

echo "== check.sh OK =="
