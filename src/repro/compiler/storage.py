"""Compressed weight storage formats (paper §5.3, Figures 10 and 16).

**FKW (Filter-Kernel-Weight)** stores a pattern-pruned layer after FKR
with five arrays (Figure 10):

=============  =========  ==================================================
array          level      contents
=============  =========  ==================================================
offset         filter     start of each filter's kernels (cumulative count)
reorder        filter     original filter index per execution position
index          kernel     input channel of each surviving kernel
stride         kernel     per filter, cumulative kernel count after each
                          pattern run (so pattern boundaries need no tags)
weight         weight     non-zero values, ``entries`` per kernel
=============  =========  ==================================================

Because indices are *kernel-level* (one entry per kernel of 4 weights,
uint16) instead of *weight-level* (one int32 column per non-zero as in
CSR), FKW's extra-structure overhead is a small fraction of CSR's —
exactly the Figure 16 comparison, measured here in bytes.

``CSRLayer`` / ``COOLayer`` implement the classic formats over the
flattened (F, C·KH·KW) weight matrix for that comparison and for the
paper's "CSR implementation runs at dense speed" experiment.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.reorder import FKRResult, filter_kernel_reorder
from repro.core.patterns import PatternSet


@dataclass
class FKWLayer:
    """One conv layer in FKW format (plus enough metadata to execute).

    Per Figure 10, pattern ids are *implicit*: each filter's kernels are
    sorted by pattern id (FKR's kernel reorder) and the fixed-size
    ``stride`` row gives cumulative kernel counts per pattern, so run
    ``p`` of filter ``f`` occupies kernels ``[stride[f, p-1], stride[f, p])``
    — no per-kernel pattern tag is stored.
    """

    shape: tuple[int, int, int, int]  # original (F, C, KH, KW)
    entries: int
    offset: np.ndarray  # (F+1,) int32 — kernels before each filter
    reorder: np.ndarray  # (F,) uint16 — original filter index
    index: np.ndarray  # (K,) uint16 — input channel per kernel
    stride: np.ndarray  # (F, k_patterns+1) uint16 — cumulative counts
    weights: np.ndarray  # (K, entries) float32
    pattern_set: PatternSet = field(repr=False)
    _pattern_ids: np.ndarray | None = field(default=None, repr=False, compare=False)

    @property
    def pattern_ids(self) -> np.ndarray:
        """(K,) per-kernel pattern ids, reconstructed from ``stride``."""
        if self._pattern_ids is None:
            per_filter_counts = np.diff(self.stride.astype(np.int64), axis=1)  # (F, k)
            ids = np.tile(np.arange(1, per_filter_counts.shape[1] + 1), (per_filter_counts.shape[0], 1))
            self._pattern_ids = np.repeat(ids.reshape(-1), per_filter_counts.reshape(-1)).astype(np.uint8)
        return self._pattern_ids

    # ------------------------------------------------------------------
    @classmethod
    def from_pruned(
        cls,
        weights: np.ndarray,
        assignment: np.ndarray,
        pattern_set: PatternSet,
        fkr: FKRResult | None = None,
    ) -> "FKWLayer":
        """Pack pruned weights + pattern assignment into FKW.

        Args:
            weights: (F, C, KH, KW) pruned weights (zeros outside
                patterns; values *inside* a kernel's pattern may be any
                float including zero).
            assignment: (F, C) pattern ids, 0 = empty kernel.
            fkr: reorder metadata; computed here when omitted.
        """
        if fkr is None:
            fkr = filter_kernel_reorder(assignment)
        f, c, kh, kw = weights.shape
        entries = pattern_set.entries

        counts = np.array([len(k) for k in fkr.kernel_orders], dtype=np.int64)
        offset = np.concatenate([[0], np.cumsum(counts)]).astype(np.int32)
        k_total = int(counts.sum())
        if k_total:
            kernels = np.concatenate([k for k in fkr.kernel_orders if len(k)])
            channels = kernels[:, 0].astype(np.int64)
            pids = kernels[:, 1].astype(np.int64)
            owners = np.repeat(fkr.filter_order, counts)
            flat = weights[owners, channels].reshape(k_total, kh * kw)
            pos_table = np.zeros((len(pattern_set) + 1, entries), dtype=np.int64)
            for pid in range(1, len(pattern_set) + 1):
                pos_table[pid] = pattern_set[pid].positions
            packed = np.take_along_axis(flat, pos_table[pids], axis=1).astype(np.float32)
        else:
            channels = np.empty(0, dtype=np.int64)
            pids = np.empty(0, dtype=np.int64)
            packed = np.empty((0, entries), dtype=np.float32)

        # Figure 10's stride array: per filter, cumulative kernel count
        # after each pattern id (kernels are already pattern-sorted).
        k_patterns = len(pattern_set)
        counts_fp = np.zeros((f, k_patterns + 1), dtype=np.int64)
        if k_total:
            filter_of_kernel = np.repeat(np.arange(f), counts)
            np.add.at(counts_fp, (filter_of_kernel, pids), 1)
        stride = np.cumsum(counts_fp, axis=1).astype(np.uint16)
        return cls(
            shape=(f, c, kh, kw),
            entries=entries,
            offset=offset,
            reorder=fkr.filter_order.astype(np.uint16),
            index=channels.astype(np.uint16),
            stride=stride,
            weights=packed,
            pattern_set=pattern_set,
            _pattern_ids=pids.astype(np.uint8) if k_total else np.empty(0, np.uint8),
        )

    # ------------------------------------------------------------------
    @property
    def num_kernels(self) -> int:
        return int(self.offset[-1])

    @property
    def nnz(self) -> int:
        return self.weights.size

    def signature(self) -> str:
        """Stable content digest of the packed layer.

        Covers structure *and* values (all five Figure 10 arrays plus the
        pattern coordinate table), so two layers share a signature iff
        their generated kernels would be identical.  Used as the
        :class:`repro.compiler.codegen.KernelCache` key; cached on first
        use — FKW layers are immutable once packed.
        """
        if getattr(self, "_signature", None) is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(repr((self.shape, self.entries)).encode())
            for arr in (self.offset, self.reorder, self.index, self.stride, self.weights):
                h.update(f"{arr.dtype.str}{arr.shape}".encode())
                h.update(np.ascontiguousarray(arr).tobytes())
            coords = [tuple(self.pattern_set[pid].coords) for pid in range(1, len(self.pattern_set) + 1)]
            h.update(repr(coords).encode())
            self._signature = h.hexdigest()
        return self._signature

    def filter_slice(self, position: int) -> slice:
        """Kernel range of the filter executed at ``position``."""
        return slice(int(self.offset[position]), int(self.offset[position + 1]))

    def pattern_runs(self, position: int) -> list[tuple[int, int, int]]:
        """(pattern_id, kernel_start, kernel_end) non-empty runs of a filter."""
        base = int(self.offset[position])
        row = self.stride[position].astype(np.int64)
        runs = []
        for pid in range(1, len(row)):
            start, end = base + int(row[pid - 1]), base + int(row[pid])
            if end > start:
                runs.append((pid, start, end))
        return runs

    def overhead_bytes(self) -> int:
        """Extra-structure bytes: everything except the weight values.

        Pattern ids are derived from ``stride`` at load time, so only the
        five Figure 10 arrays count.
        """
        return (
            self.offset.nbytes
            + self.reorder.nbytes
            + self.index.nbytes
            + self.stride.nbytes
        )

    def total_bytes(self) -> int:
        return self.overhead_bytes() + self.weights.nbytes

    def to_dense(self) -> np.ndarray:
        """Reconstruct the (F, C, KH, KW) dense weights (for verification)."""
        f, c, kh, kw = self.shape
        dense = np.zeros((f, c, kh, kw), dtype=np.float32)
        for pos in range(f):
            orig = int(self.reorder[pos])
            for k in range(*self.filter_slice(pos).indices(self.num_kernels)):
                pid = int(self.pattern_ids[k])
                channel = int(self.index[k])
                positions = list(self.pattern_set[pid].positions)
                kernel = np.zeros(kh * kw, dtype=np.float32)
                kernel[positions] = self.weights[k]
                dense[orig, channel] = kernel.reshape(kh, kw)
        return dense


@dataclass
class CSRLayer:
    """Compressed sparse row over the (F, C·KH·KW) weight matrix."""

    shape: tuple[int, int, int, int]
    indptr: np.ndarray  # (F+1,) int32
    indices: np.ndarray  # (nnz,) int32 — flattened (c, kh, kw) column
    data: np.ndarray  # (nnz,) float32

    @classmethod
    def from_dense(cls, weights: np.ndarray) -> "CSRLayer":
        f = weights.shape[0]
        mat = weights.reshape(f, -1)
        indptr = [0]
        indices: list[np.ndarray] = []
        data: list[np.ndarray] = []
        for row in mat:
            nz = np.nonzero(row)[0]
            indices.append(nz)
            data.append(row[nz])
            indptr.append(indptr[-1] + len(nz))
        return cls(
            shape=tuple(weights.shape),
            indptr=np.asarray(indptr, dtype=np.int32),
            indices=np.concatenate(indices).astype(np.int32) if indices else np.empty(0, np.int32),
            data=np.concatenate(data).astype(np.float32) if data else np.empty(0, np.float32),
        )

    @property
    def nnz(self) -> int:
        return len(self.data)

    def overhead_bytes(self) -> int:
        return self.indptr.nbytes + self.indices.nbytes

    def total_bytes(self) -> int:
        return self.overhead_bytes() + self.data.nbytes

    def to_dense(self) -> np.ndarray:
        f = self.shape[0]
        mat = np.zeros((f, int(np.prod(self.shape[1:]))), dtype=np.float32)
        for i in range(f):
            cols = self.indices[self.indptr[i] : self.indptr[i + 1]]
            mat[i, cols] = self.data[self.indptr[i] : self.indptr[i + 1]]
        return mat.reshape(self.shape)


@dataclass
class COOLayer:
    """Coordinate format (row, col, value) — the loosest comparator."""

    shape: tuple[int, int, int, int]
    rows: np.ndarray  # (nnz,) int32
    cols: np.ndarray  # (nnz,) int32
    data: np.ndarray  # (nnz,) float32

    @classmethod
    def from_dense(cls, weights: np.ndarray) -> "COOLayer":
        f = weights.shape[0]
        mat = weights.reshape(f, -1)
        rows, cols = np.nonzero(mat)
        return cls(
            shape=tuple(weights.shape),
            rows=rows.astype(np.int32),
            cols=cols.astype(np.int32),
            data=mat[rows, cols].astype(np.float32),
        )

    @property
    def nnz(self) -> int:
        return len(self.data)

    def overhead_bytes(self) -> int:
        return self.rows.nbytes + self.cols.nbytes

    def total_bytes(self) -> int:
        return self.overhead_bytes() + self.data.nbytes
