"""Parameter auto-tuning (paper §5.5).

Two cooperating parts, as in the paper:

* :class:`GATuner` — a Genetic-Algorithm explorer over the configuration
  space (tile sizes, unroll factors, loop permutation, GPU data
  placement).  Unlike simulated annealing (TVM), a whole population is
  evaluated per generation, so the search parallelises trivially;
  fitness is the cost model's estimate.
* :class:`PerformanceEstimator` — an MLP (+ least-squares readout)
  trained on the explorer's history; on a *new* device it predicts good
  configurations and expected latency without re-measuring.

The explored :class:`Schedule` maps 1:1 onto the LR's ``tuning`` field
and the cost model's :class:`~repro.hardware.cost_model.SchedParams`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

from repro.hardware.cost_model import ConvCostModel, ConvWorkload, SchedParams
from repro.utils.rng import make_rng

PERMUTATIONS = ("cohwci", "cocihw", "hwcoci", "cihwco")
_TILES_OC = (8, 16, 32, 64, 128)
_TILES_HW = (4, 8, 14, 16, 28, 32)
_UNROLLS = (1, 2, 4, 8)
_PLACEMENTS = ("buffer", "image2d")  # GPU data placement (§5.5)


@dataclass(frozen=True)
class Schedule:
    """One point in the tuning space."""

    tile_oc: int = 32
    tile_oh: int = 8
    tile_ow: int = 8
    unroll_oc: int = 1
    unroll_ow: int = 1
    unroll_ic: int = 1
    permutation: str = "cohwci"
    blocked: bool = False
    placement: str = "buffer"

    def to_sched_params(self) -> SchedParams:
        return SchedParams(
            tile_oc=self.tile_oc,
            tile_oh=self.tile_oh,
            tile_ow=self.tile_ow,
            unroll_oc=self.unroll_oc,
            unroll_ow=self.unroll_ow,
            permutation=self.permutation,
            blocked=self.blocked,
        )

    def to_lr_tuning(self) -> dict:
        """The LR 'tuning' field (Figure 8)."""
        return {
            "unroll": [self.unroll_oc, 1, self.unroll_ow, self.unroll_ic],
            "tile": [self.tile_oc, self.tile_oh, self.tile_ow],
            "permute": self.permutation,
        }

    @staticmethod
    def default() -> "Schedule":
        """The untuned schedule used by the No-opt/+LRE variants."""
        return Schedule()


@dataclass
class ScheduleSpace:
    """Legal values per knob for a given layer/device."""

    tiles_oc: tuple[int, ...]
    tiles_hw: tuple[int, ...]
    unrolls: tuple[int, ...]
    permutations: tuple[str, ...] = PERMUTATIONS
    placements: tuple[str, ...] = ("buffer",)

    @classmethod
    def for_layer(cls, out_channels: int, out_hw: int, unit: str = "cpu") -> "ScheduleSpace":
        return cls(
            tiles_oc=tuple(t for t in _TILES_OC if t <= max(8, out_channels)),
            tiles_hw=tuple(t for t in _TILES_HW if t <= max(4, out_hw)),
            unrolls=_UNROLLS,
            placements=_PLACEMENTS if unit == "gpu" else ("buffer",),
        )

    def size(self) -> int:
        return (
            len(self.tiles_oc)
            * len(self.tiles_hw) ** 2
            * len(self.unrolls) ** 3
            * len(self.permutations)
            * 2
            * len(self.placements)
        )

    def random(self, rng: np.random.Generator) -> Schedule:
        return Schedule(
            tile_oc=int(rng.choice(self.tiles_oc)),
            tile_oh=int(rng.choice(self.tiles_hw)),
            tile_ow=int(rng.choice(self.tiles_hw)),
            unroll_oc=int(rng.choice(self.unrolls)),
            unroll_ow=int(rng.choice(self.unrolls)),
            unroll_ic=int(rng.choice(self.unrolls)),
            permutation=str(rng.choice(self.permutations)),
            blocked=bool(rng.random() < 0.5),
            placement=str(rng.choice(self.placements)),
        )

    def mutate(self, s: Schedule, rng: np.random.Generator) -> Schedule:
        knob = rng.integers(0, 8)
        if knob == 0:
            return replace(s, tile_oc=int(rng.choice(self.tiles_oc)))
        if knob == 1:
            return replace(s, tile_oh=int(rng.choice(self.tiles_hw)))
        if knob == 2:
            return replace(s, tile_ow=int(rng.choice(self.tiles_hw)))
        if knob == 3:
            return replace(s, unroll_oc=int(rng.choice(self.unrolls)))
        if knob == 4:
            return replace(s, unroll_ow=int(rng.choice(self.unrolls)))
        if knob == 5:
            return replace(s, permutation=str(rng.choice(self.permutations)))
        if knob == 6:
            return replace(s, blocked=not s.blocked)
        return replace(s, placement=str(rng.choice(self.placements)))

    def crossover(self, a: Schedule, b: Schedule, rng: np.random.Generator) -> Schedule:
        pick = lambda x, y: x if rng.random() < 0.5 else y  # noqa: E731
        return Schedule(
            tile_oc=pick(a.tile_oc, b.tile_oc),
            tile_oh=pick(a.tile_oh, b.tile_oh),
            tile_ow=pick(a.tile_ow, b.tile_ow),
            unroll_oc=pick(a.unroll_oc, b.unroll_oc),
            unroll_ow=pick(a.unroll_ow, b.unroll_ow),
            unroll_ic=pick(a.unroll_ic, b.unroll_ic),
            permutation=pick(a.permutation, b.permutation),
            blocked=pick(a.blocked, b.blocked),
            placement=pick(a.placement, b.placement),
        )


@dataclass
class TuneResult:
    best: Schedule
    best_ms: float
    history: list[tuple[Schedule, float]] = field(default_factory=list)
    generations: int = 0


class GATuner:
    """Genetic-algorithm schedule explorer.

    Args:
        cost_model: evaluator (framework-calibrated).
        population: chromosomes per generation (arbitrary — the paper's
            parallelism argument vs. annealing).
        generations: evolution steps.
        elite: survivors copied unchanged.
        seed: RNG seed (deterministic search).
    """

    def __init__(
        self,
        cost_model: ConvCostModel,
        population: int = 24,
        generations: int = 12,
        elite: int = 4,
        mutation_rate: float = 0.3,
        seed: int = 0,
    ) -> None:
        if elite >= population:
            raise ValueError("elite must be smaller than population")
        self.cost_model = cost_model
        self.population = population
        self.generations = generations
        self.elite = elite
        self.mutation_rate = mutation_rate
        self.rng = make_rng(seed)

    def tune(self, work: ConvWorkload, space: ScheduleSpace | None = None) -> TuneResult:
        space = space or ScheduleSpace.for_layer(
            work.spec.out_channels, work.spec.out_hw, self.cost_model.unit
        )
        pop = [space.random(self.rng) for _ in range(self.population)]
        history: list[tuple[Schedule, float]] = []

        def fitness(s: Schedule) -> float:
            return self.cost_model.estimate(work, s.to_sched_params()).total_ms

        for _gen in range(self.generations):
            scored = sorted(((fitness(s), s) for s in pop), key=lambda t: t[0])
            history.extend((s, ms) for ms, s in scored)
            elite = [s for _, s in scored[: self.elite]]
            children: list[Schedule] = list(elite)
            while len(children) < self.population:
                # Tournament selection from the top half.
                parents = [scored[int(self.rng.integers(0, max(1, len(scored) // 2)))][1] for _ in range(2)]
                child = space.crossover(parents[0], parents[1], self.rng)
                if self.rng.random() < self.mutation_rate:
                    child = space.mutate(child, self.rng)
                children.append(child)
            pop = children
        final = sorted(((fitness(s), s) for s in pop), key=lambda t: t[0])
        best_ms, best = final[0]
        history.extend((s, ms) for ms, s in final)
        return TuneResult(best=best, best_ms=best_ms, history=history, generations=self.generations)


# ----------------------------------------------------------------------
# Performance estimator (MLP + least-squares readout)
# ----------------------------------------------------------------------
def _featurize(s: Schedule, work: ConvWorkload) -> np.ndarray:
    spec = work.spec
    return np.array(
        [
            np.log2(s.tile_oc),
            np.log2(s.tile_oh),
            np.log2(s.tile_ow),
            np.log2(s.unroll_oc),
            np.log2(s.unroll_ow),
            np.log2(s.unroll_ic),
            float(PERMUTATIONS.index(s.permutation)),
            1.0 if s.blocked else 0.0,
            1.0 if s.placement == "image2d" else 0.0,
            np.log2(max(2, spec.out_channels)),
            np.log2(max(2, spec.in_channels)),
            np.log2(max(2, spec.out_hw)),
            np.log2(max(2, work.nnz_weights)),
        ],
        dtype=np.float64,
    )


class PerformanceEstimator:
    """One-hidden-layer MLP regressor on (schedule, layer) features.

    Trained with Adam on squared error of log-latency; the final linear
    readout is then refit in closed form (least squares) on the hidden
    activations — the paper's "Multilayer Perceptron and least square
    regression loss".
    """

    def __init__(self, hidden: int = 32, seed: int = 0) -> None:
        self.hidden = hidden
        self.rng = make_rng(seed)
        self._w1: np.ndarray | None = None
        self._b1: np.ndarray | None = None
        self._w2: np.ndarray | None = None
        self._mu: np.ndarray | None = None
        self._sigma: np.ndarray | None = None

    def fit(
        self,
        samples: list[tuple[Schedule, float]],
        work: ConvWorkload,
        epochs: int = 300,
        lr: float = 1e-2,
    ) -> float:
        """Train on explorer history; returns final RMSE in log-ms."""
        if len(samples) < 8:
            raise ValueError(f"need at least 8 samples to fit, got {len(samples)}")
        x = np.stack([_featurize(s, work) for s, _ in samples])
        y = np.log(np.array([ms for _, ms in samples], dtype=np.float64))
        self._mu = x.mean(axis=0)
        self._sigma = x.std(axis=0) + 1e-8
        xn = (x - self._mu) / self._sigma
        n, d = xn.shape
        w1 = self.rng.standard_normal((d, self.hidden)) * np.sqrt(2.0 / d)
        b1 = np.zeros(self.hidden)
        w2 = self.rng.standard_normal(self.hidden + 1) * 0.01
        m = {k: 0.0 for k in ("w1", "b1", "w2")}
        v = {k: 0.0 for k in ("w1", "b1", "w2")}
        beta1, beta2, eps = 0.9, 0.999, 1e-8
        for t in range(1, epochs + 1):
            h = np.tanh(xn @ w1 + b1)
            hb = np.concatenate([h, np.ones((n, 1))], axis=1)
            pred = hb @ w2
            err = pred - y
            g_w2 = hb.T @ err / n
            g_h = np.outer(err, w2[:-1]) * (1 - h * h) / n
            g_w1 = xn.T @ g_h
            g_b1 = g_h.sum(axis=0)
            for key, grad in (("w1", g_w1), ("b1", g_b1), ("w2", g_w2)):
                m[key] = beta1 * m[key] + (1 - beta1) * grad
                v[key] = beta2 * v[key] + (1 - beta2) * grad * grad
                m_hat = m[key] / (1 - beta1**t)
                v_hat = v[key] / (1 - beta2**t)
                step = lr * m_hat / (np.sqrt(v_hat) + eps)
                if key == "w1":
                    w1 -= step
                elif key == "b1":
                    b1 -= step
                else:
                    w2 -= step
        # Least-squares readout refit on the learned hidden features.
        h = np.tanh(xn @ w1 + b1)
        hb = np.concatenate([h, np.ones((n, 1))], axis=1)
        w2, *_ = np.linalg.lstsq(hb, y, rcond=None)
        self._w1, self._b1, self._w2 = w1, b1, w2
        rmse = float(np.sqrt(np.mean((hb @ w2 - y) ** 2)))
        return rmse

    def predict(self, schedule: Schedule, work: ConvWorkload) -> float:
        """Predicted latency in ms."""
        if self._w1 is None:
            raise RuntimeError("estimator not fitted")
        x = (_featurize(schedule, work) - self._mu) / self._sigma
        h = np.tanh(x @ self._w1 + self._b1)
        hb = np.concatenate([h, [1.0]])
        return float(np.exp(hb @ self._w2))

    def best_of(self, candidates: list[Schedule], work: ConvWorkload) -> Schedule:
        """Pick the predicted-fastest candidate (new-platform warm start)."""
        return min(candidates, key=lambda s: self.predict(s, work))
