"""Execution code generation (paper Figure 7).

Two products per layer:

* :func:`generate_kernel` — an executable Python convolution closure over
  the FKW arrays, in three optimization variants that mirror the paper's
  code skeletons.  All variants are **batched**: they consume an
  ``(N, C, H, W)`` input natively and return ``(N, F, Ho, Wo)`` (a bare
  ``(C, H, W)`` sample is promoted and squeezed back for convenience).
  The opt-level matrix:

  ============  =====================================================
  level         execution strategy
  ============  =====================================================
  ``no-opt``    per-kernel ``switch (style[oc][ic])`` dispatch in the
                innermost loop (correct, branchy, slow)
  ``reorder``   branchless pattern runs after FKR, grouped filters
  ``lre``       each pattern's kernels computed as one vectorised
                shifted-slice gather over the whole batch, accumulated
                scatter-free: kernels are owner-sorted at compile time
                so runtime accumulation is a contiguous
                ``np.add.reduceat`` segment reduction instead of an
                ``np.add.at`` scatter
  ``gemm``      load-redundancy elimination taken to its numpy limit:
                the FKW arrays are scattered (at compile time) into one
                dense (F, C) matrix per kernel coordinate in the
                *pattern union*, and each shifted input slice is loaded
                exactly once and reused across every filter through a
                single BLAS contraction — coordinates absent from all
                patterns are skipped outright.  This is the production
                batch-serving level; the first three mirror the paper's
                Figure 7 ladder structurally.
  ============  =====================================================

  The epilogue (bias add + fused activation) is baked into the closure
  when ``bias`` / ``activation`` are given, so a compiled conv node is
  one kernel call instead of three array passes.  When ``padding == 0``
  the input is used in place — no ``np.pad`` copy is made at any level.

  Kernels optionally cooperate with a
  :class:`repro.runtime.arena.BufferArena` (``fn(x, arena=...)``): the
  padded-input scratch and output accumulator then come from the arena's
  reusable pools instead of fresh allocations.

* :class:`KernelCache` — memoises compiled closures by FKW signature +
  ``(stride, padding, opt_level, bias, activation)`` so repeated
  identical layers (e.g. VGG's stacked same-shape blocks) compile once.

* :func:`generate_source` — C-like source text of the same structure
  (what PatDNN would hand to the NDK/OpenCL compiler), used by docs,
  the LR example, and golden tests.
"""

from __future__ import annotations

import hashlib
import threading
from collections.abc import Callable

import numpy as np

from repro.compiler.storage import FKWLayer

KernelFn = Callable[..., np.ndarray]

_OPT_LEVELS = ("no-opt", "reorder", "lre", "gemm")
_ACTIVATIONS = (None, "relu", "relu6")


def _normalize_input(x: np.ndarray, c: int) -> tuple[np.ndarray, bool]:
    """Promote (C, H, W) to (1, C, H, W); validate the channel count."""
    squeeze = x.ndim == 3
    if squeeze:
        x = x[None]
    if x.ndim != 4 or x.shape[1] != c:
        raise ValueError(f"expected (N, C={c}, H, W) or (C={c}, H, W) input, got shape {x.shape}")
    return x, squeeze


def _padded(x: np.ndarray, padding: int, arena) -> np.ndarray:
    """Zero-pad H/W — skipping the copy entirely when padding == 0."""
    if padding == 0:
        return x
    if arena is not None:
        return arena.padded(x, padding)
    return np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))


def _alloc_out(shape: tuple[int, ...], arena) -> np.ndarray:
    if arena is not None:
        return arena.acquire(shape, zero=True)
    return np.zeros(shape, dtype=np.float32)


def _epilogue(out: np.ndarray, bias: np.ndarray | None, activation: str | None) -> np.ndarray:
    """Fused bias + activation, in place on the accumulator."""
    if bias is not None:
        out += bias.reshape(1, -1, 1, 1)
    if activation == "relu":
        np.maximum(out, 0.0, out=out)
    elif activation == "relu6":
        np.clip(out, 0.0, 6.0, out=out)
    return out


def _finish(out: np.ndarray, squeeze: bool, arena) -> np.ndarray:
    if not squeeze:
        return out
    # Squeezed results escape as views; detach them from arena memory.
    return out[0].copy() if arena is not None else out[0]


def generate_kernel(
    fkw: FKWLayer,
    stride: int = 1,
    padding: int = 1,
    opt_level: str = "lre",
    bias: np.ndarray | None = None,
    activation: str | None = None,
) -> KernelFn:
    """Build an executable batched conv closure for one FKW layer.

    Args:
        fkw: packed layer.
        opt_level: ``'no-opt'`` | ``'reorder'`` | ``'lre'`` | ``'gemm'``.
        bias: optional (F,) bias fused into the kernel epilogue.
        activation: optional fused activation (``'relu'`` | ``'relu6'``).

    Returns:
        ``fn(x, arena=None)`` mapping ``(N, C, H, W) -> (N, F, Ho, Wo)``
        float32 (``(C, H, W) -> (F, Ho, Wo)`` for a bare sample),
        accumulating to the *original* output-channel order via the
        reorder array.  ``arena`` is an optional
        :class:`repro.runtime.arena.BufferArena` supplying reusable
        padded-input and output scratch.
    """
    if opt_level not in _OPT_LEVELS:
        raise ValueError(f"opt_level must be one of {_OPT_LEVELS}, got {opt_level!r}")
    if activation not in _ACTIVATIONS:
        raise ValueError(f"activation must be one of {_ACTIVATIONS}, got {activation!r}")
    if opt_level == "no-opt":
        return _kernel_no_opt(fkw, stride, padding, bias, activation)
    if opt_level == "reorder":
        return _kernel_reorder(fkw, stride, padding, bias, activation)
    if opt_level == "lre":
        return _kernel_lre(fkw, stride, padding, bias, activation)
    return _kernel_gemm(fkw, stride, padding, bias, activation)


def _out_hw(h: int, k: int, stride: int, padding: int) -> int:
    return (h + 2 * padding - k) // stride + 1


def _kernel_no_opt(
    fkw: FKWLayer, stride: int, padding: int, bias: np.ndarray | None, activation: str | None
) -> KernelFn:
    """Figure 7 '+No-opt': per-kernel switch on pattern style.

    Kernels iterate in original channel order (identity reorder not
    required — FKW already stores an order; dispatch is per kernel).
    """
    f, c, kh, kw = fkw.shape
    pattern_coords = {
        pid: fkw.pattern_set[pid].coords for pid in range(1, len(fkw.pattern_set) + 1)
    }

    def fn(x: np.ndarray, arena=None) -> np.ndarray:
        x, squeeze = _normalize_input(x, c)
        n, _, h, w = x.shape
        ho, wo = _out_hw(h, kh, stride, padding), _out_hw(w, kw, stride, padding)
        xp = _padded(x, padding, arena)
        out = _alloc_out((n, f, ho, wo), arena)
        for pos in range(f):
            oc = int(fkw.reorder[pos])
            for k in range(*fkw.filter_slice(pos).indices(fkw.num_kernels)):
                pid = int(fkw.pattern_ids[k])
                ic = int(fkw.index[k])
                weights = fkw.weights[k]
                # the switch(style) — one branch per kernel instance
                coords = pattern_coords[pid]
                for widx, (r, cc) in enumerate(coords):
                    out[:, oc] += weights[widx] * xp[:, ic, r : r + stride * ho : stride, cc : cc + stride * wo : stride]
        _epilogue(out, bias, activation)
        return _finish(out, squeeze, arena)

    return fn


def _kernel_reorder(
    fkw: FKWLayer, stride: int, padding: int, bias: np.ndarray | None, activation: str | None
) -> KernelFn:
    """Figure 7 '+Reorder': branchless pattern runs inside each filter."""
    f, c, kh, kw = fkw.shape
    pattern_coords = {
        pid: fkw.pattern_set[pid].coords for pid in range(1, len(fkw.pattern_set) + 1)
    }
    runs = [fkw.pattern_runs(pos) for pos in range(f)]

    def fn(x: np.ndarray, arena=None) -> np.ndarray:
        x, squeeze = _normalize_input(x, c)
        n, _, h, w = x.shape
        ho, wo = _out_hw(h, kh, stride, padding), _out_hw(w, kw, stride, padding)
        xp = _padded(x, padding, arena)
        out = _alloc_out((n, f, ho, wo), arena)
        for pos in range(f):
            oc = int(fkw.reorder[pos])
            acc = out[:, oc]
            for pid, start, end in runs[pos]:
                coords = pattern_coords[pid]  # hoisted: one dispatch per run
                for k in range(start, end):
                    ic = int(fkw.index[k])
                    weights = fkw.weights[k]
                    for widx, (r, cc) in enumerate(coords):
                        acc += weights[widx] * xp[:, ic, r : r + stride * ho : stride, cc : cc + stride * wo : stride]
        _epilogue(out, bias, activation)
        return _finish(out, squeeze, arena)

    return fn


def _kernel_owner_map(fkw: FKWLayer) -> np.ndarray:
    """(K,) original output channel owning each kernel (via reorder)."""
    owners = np.empty(fkw.num_kernels, dtype=np.int64)
    for pos in range(fkw.shape[0]):
        owners[fkw.filter_slice(pos)] = int(fkw.reorder[pos])
    return owners


def _iter_pattern_selections(fkw: FKWLayer):
    """Yield ``(pid, sel, owners, channels)`` per non-empty pattern id.

    Shared compile-time preamble of the ``lre`` and ``gemm`` variants:
    ``sel`` indexes the kernels of pattern ``pid``; ``owners`` /
    ``channels`` are their original output channels and input channels.
    """
    if not fkw.num_kernels:
        return
    owner_map = _kernel_owner_map(fkw)
    for pid in range(1, len(fkw.pattern_set) + 1):
        sel = np.nonzero(fkw.pattern_ids == pid)[0]
        if len(sel) == 0:
            continue
        yield pid, sel, owner_map[sel], fkw.index[sel].astype(np.int64)


def _kernel_lre(
    fkw: FKWLayer, stride: int, padding: int, bias: np.ndarray | None, activation: str | None
) -> KernelFn:
    """'+LRE': per pattern id, all kernels of the whole batch computed as
    shifted slices — inputs gathered once per (pattern, shift), the numpy
    analogue of register reuse across kernels and unrolled filters.

    Accumulation is scatter-free: kernels are sorted by owning output
    channel at compile time, so the runtime reduction is a contiguous
    ``np.add.reduceat`` over owner segments followed by a unique-index
    add — no ``np.add.at`` scatter in the hot path.
    """
    f, c, kh, kw = fkw.shape
    # Precompute owner-sorted gather/segment metadata per pattern id.
    plans: list[dict] = []
    for pid, sel, owners, channels in _iter_pattern_selections(fkw):
        order = np.argsort(owners, kind="stable")
        sel, owners, channels = sel[order], owners[order], channels[order]
        seg_starts = np.flatnonzero(np.r_[True, owners[1:] != owners[:-1]])
        plans.append(
            {
                "channels": channels,
                "weights": np.ascontiguousarray(fkw.weights[sel]),  # (n_k, entries)
                "coords": fkw.pattern_set[pid].coords,
                "seg_starts": seg_starts,
                "seg_owners": owners[seg_starts],
                # every kernel its own segment -> reduction is the identity
                "trivial_segments": len(seg_starts) == len(owners),
            }
        )

    def fn(x: np.ndarray, arena=None) -> np.ndarray:
        x, squeeze = _normalize_input(x, c)
        n, _, h, w = x.shape
        ho, wo = _out_hw(h, kh, stride, padding), _out_hw(w, kw, stride, padding)
        xp = _padded(x, padding, arena)
        out = _alloc_out((n, f, ho, wo), arena)
        for plan in plans:
            channels = plan["channels"]
            weights = plan["weights"]
            # contributions (n, n_kernels, ho, wo), built entry by entry
            # from shifted input slices shared across every kernel of this
            # pattern and every batch sample — the load-once semantics of
            # LRE, amortised over the batch.
            contrib = None
            for widx, (r, cc) in enumerate(plan["coords"]):
                patch = xp[:, channels, r : r + stride * ho : stride, cc : cc + stride * wo : stride]
                term = weights[:, widx][None, :, None, None] * patch
                if contrib is None:
                    contrib = term  # freshly allocated by the multiply — ours
                else:
                    contrib += term
            if plan["trivial_segments"]:
                reduced = contrib
            else:
                reduced = np.add.reduceat(contrib, plan["seg_starts"], axis=1)
            out[:, plan["seg_owners"]] += reduced
        _epilogue(out, bias, activation)
        return _finish(out, squeeze, arena)

    return fn


def _kernel_gemm(
    fkw: FKWLayer, stride: int, padding: int, bias: np.ndarray | None, activation: str | None
) -> KernelFn:
    """'+GEMM': per-coordinate scattered-weight contraction.

    The LRE idea — load each shifted input slice once and reuse it across
    kernels — taken to its limit in the numpy substrate: at compile time
    the FKW arrays are scattered into one dense (F, C) weight matrix per
    kernel coordinate appearing in *any* pattern (the pattern union); at
    run time each union coordinate costs exactly one shifted slice view
    plus one BLAS contraction reused by every filter at once.
    Coordinates outside the union — and all connectivity-pruned kernels —
    contribute nothing and are skipped.  Trades the per-kernel sparse
    structure of ``'lre'`` for contraction throughput; bitwise semantics
    are identical (the scatter is exact).
    """
    f, c, kh, kw = fkw.shape
    coord_mats: dict[tuple[int, int], np.ndarray] = {}
    for pid, sel, owners, channels in _iter_pattern_selections(fkw):
        for widx, (r, cc) in enumerate(fkw.pattern_set[pid].coords):
            mat = coord_mats.setdefault((r, cc), np.zeros((f, c), np.float32))
            # each (filter, channel) kernel occurs exactly once across
            # all patterns, so the index pairs here are unique
            np.add.at(mat, (owners, channels), fkw.weights[sel][:, widx])
    coord_items = sorted(coord_mats.items())

    def fn(x: np.ndarray, arena=None) -> np.ndarray:
        x, squeeze = _normalize_input(x, c)
        n, _, h, w = x.shape
        ho, wo = _out_hw(h, kh, stride, padding), _out_hw(w, kw, stride, padding)
        xp = _padded(x, padding, arena)
        out = _alloc_out((n, f, ho, wo), arena)
        for (r, cc), mat in coord_items:
            xs = xp[:, :, r : r + stride * ho : stride, cc : cc + stride * wo : stride]
            # one contraction per union coordinate: the shifted slice is
            # read once and reused across all F filters
            out += np.tensordot(mat, xs, axes=([1], [1])).transpose(1, 0, 2, 3)
        _epilogue(out, bias, activation)
        return _finish(out, squeeze, arena)

    return fn


# ----------------------------------------------------------------------
# Kernel cache
# ----------------------------------------------------------------------
def _bias_digest(bias: np.ndarray | None) -> str | None:
    if bias is None:
        return None
    h = hashlib.blake2b(digest_size=16)
    h.update(f"{bias.dtype.str}{bias.shape}".encode())
    h.update(np.ascontiguousarray(bias).tobytes())
    return h.hexdigest()


class KernelCache:
    """Compile-once cache for generated kernels.

    Keys combine the layer's :meth:`FKWLayer.signature` (structure *and*
    values) with the schedule knobs and fused epilogue, so two graph
    nodes with identical pruned weights, stride/padding, bias, and
    activation share one closure — repeated VGG-style blocks compile
    once per distinct layer.  ``hits`` / ``misses`` expose the effect.

    Thread-safe: lookups, compiles, and counter updates run under an
    internal lock, so one cache may back executors shared across
    threads (compilation of a given key happens exactly once).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._kernels: dict[tuple, KernelFn] = {}
        self.hits = 0
        self.misses = 0

    def get(
        self,
        fkw: FKWLayer,
        stride: int = 1,
        padding: int = 1,
        opt_level: str = "lre",
        bias: np.ndarray | None = None,
        activation: str | None = None,
    ) -> KernelFn:
        key = (fkw.signature(), stride, padding, opt_level, _bias_digest(bias), activation)
        with self._lock:
            fn = self._kernels.get(key)
            if fn is not None:
                self.hits += 1
                return fn
            self.misses += 1
            fn = generate_kernel(fkw, stride, padding, opt_level, bias=bias, activation=activation)
            self._kernels[key] = fn
            return fn

    def clear(self) -> None:
        with self._lock:
            self._kernels.clear()
            self.hits = self.misses = 0

    def __len__(self) -> int:
        return len(self._kernels)


# ----------------------------------------------------------------------
# C-like source emission
# ----------------------------------------------------------------------
def generate_source(fkw: FKWLayer, opt_level: str = "lre", unroll_oc: int = 4, device: str = "cpu") -> str:
    """Emit C-like source text with the structure of Figure 7's skeletons.

    This is documentation-grade output (the real PatDNN emits vectorised
    C++/OpenCL); tests assert its structural properties — e.g. the
    reorder variant contains no ``switch``.
    """
    if opt_level not in _OPT_LEVELS:
        raise ValueError(f"opt_level must be one of {_OPT_LEVELS}, got {opt_level!r}")
    f, c, kh, kw = fkw.shape
    k = len(fkw.pattern_set)
    header = [
        f"// PatDNN generated {device.upper()} kernel: conv {f}x{c}x{kh}x{kw}",
        f"// format=FKW kernels={fkw.num_kernels} patterns={k} opt={opt_level}",
    ]
    body: list[str] = []
    if opt_level == "no-opt":
        body += [
            "for (oc = 0; oc < tile_oc; oc += 1)",
            "  for (oh = 0; oh < tile_oh; oh += unroll_h)",
            "    for (ow = 0; ow < tile_ow; ow += unroll_w)",
            "      for (ic = 0; ic < in_channel; ic += 1) {",
            "        switch (style[oc][ic]) {",
            "          case 0: break; // skip empty kernel",
        ]
        for pid in range(1, k + 1):
            coords = ", ".join(f"({r},{cc})" for r, cc in fkw.pattern_set[pid].coords)
            body.append(f"          case {pid}: /* pattern {pid}: {coords} */ break;")
        body += ["        }", "      }"]
    elif opt_level == "gemm":
        union = sorted({coord for pid in range(1, k + 1) for coord in fkw.pattern_set[pid].coords})
        body.append(f"// pattern-union coordinates: {len(union)}/{kh * kw}")
        for r, cc in union:
            body.append(f"acc += sgemm(W_coord[{r}][{cc}], vload_shifted(input, {r}, {cc})); // slice loaded once, reused across all filters")
    else:
        body += [
            "for (oc = 0; oc < tile_oc; oc += unroll_oc)" if opt_level == "lre" else "for (oc = 0; oc < tile_oc; oc += 1)",
            "  for (oh = 0; oh < tile_oh; oh += unroll_h)",
            "    for (ow = 0; ow < tile_ow; ow += unroll_w) {",
        ]
        for pid in range(1, k + 1):
            coords = fkw.pattern_set[pid].coords
            rows = sorted({r for r, _ in coords})
            body.append(f"      for (ic = stride[{pid - 1}]; ic < stride[{pid}]; ic += unroll_ic) {{")
            if opt_level == "lre":
                for r in rows:
                    body.append(f"        vin_r{r} = vload(input, index[ic], oh + {r}, ow); // reused across entries")
                for widx, (r, cc) in enumerate(coords):
                    body.append(f"        acc = vfma(acc, w[ic][{widx}], vshift(vin_r{r}, {cc}));")
            else:
                body.append(f"        // compute pattern {pid} here")
            body.append("      }")
        body.append("    }")
    footer = ["// accumulate via reorder[] to original output channels"]
    return "\n".join(header + body + footer)
