"""Execution code generation (paper Figure 7).

Two products per layer:

* :func:`generate_kernel` — an executable Python convolution closure over
  the FKW arrays, in three optimization variants that mirror the paper's
  code skeletons:

  - ``no-opt``   — per-kernel ``switch (style[oc][ic])`` dispatch in the
    innermost loop (correct, branchy, slow);
  - ``reorder``  — branchless pattern runs after FKR, grouped filters;
  - ``lre``      — additionally processes each pattern run as one
    vectorised shifted-slice computation over all its kernels (the
    numpy analogue of register-resident reuse + filter unrolling).

  All variants are functionally exact: tests compare them against the
  dense im2col reference.

* :func:`generate_source` — C-like source text of the same structure
  (what PatDNN would hand to the NDK/OpenCL compiler), used by docs,
  the LR example, and golden tests.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.compiler.storage import FKWLayer

KernelFn = Callable[[np.ndarray], np.ndarray]

_OPT_LEVELS = ("no-opt", "reorder", "lre")


def _check_input(x: np.ndarray, c: int) -> None:
    if x.ndim != 3 or x.shape[0] != c:
        raise ValueError(f"expected (C={c}, H, W) input, got shape {x.shape}")


def generate_kernel(
    fkw: FKWLayer,
    stride: int = 1,
    padding: int = 1,
    opt_level: str = "lre",
) -> KernelFn:
    """Build an executable conv closure for one FKW layer.

    Args:
        fkw: packed layer.
        opt_level: ``'no-opt'`` | ``'reorder'`` | ``'lre'``.

    Returns:
        fn(x: (C, H, W) float32) -> (F, Ho, Wo) float32, accumulating to
        the *original* output-channel order via the reorder array.
    """
    if opt_level not in _OPT_LEVELS:
        raise ValueError(f"opt_level must be one of {_OPT_LEVELS}, got {opt_level!r}")
    if opt_level == "no-opt":
        return _kernel_no_opt(fkw, stride, padding)
    if opt_level == "reorder":
        return _kernel_reorder(fkw, stride, padding)
    return _kernel_lre(fkw, stride, padding)


def _out_hw(h: int, k: int, stride: int, padding: int) -> int:
    return (h + 2 * padding - k) // stride + 1


def _kernel_no_opt(fkw: FKWLayer, stride: int, padding: int) -> KernelFn:
    """Figure 7 '+No-opt': per-kernel switch on pattern style.

    Kernels iterate in original channel order (identity reorder not
    required — FKW already stores an order; dispatch is per kernel).
    """
    f, c, kh, kw = fkw.shape
    pattern_coords = {
        pid: fkw.pattern_set[pid].coords for pid in range(1, len(fkw.pattern_set) + 1)
    }

    def fn(x: np.ndarray) -> np.ndarray:
        _check_input(x, c)
        h, w = x.shape[1], x.shape[2]
        ho, wo = _out_hw(h, kh, stride, padding), _out_hw(w, kw, stride, padding)
        xp = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
        out = np.zeros((f, ho, wo), dtype=np.float32)
        for pos in range(f):
            oc = int(fkw.reorder[pos])
            for k in range(*fkw.filter_slice(pos).indices(fkw.num_kernels)):
                pid = int(fkw.pattern_ids[k])
                ic = int(fkw.index[k])
                weights = fkw.weights[k]
                # the switch(style) — one branch per kernel instance
                coords = pattern_coords[pid]
                for widx, (r, cc) in enumerate(coords):
                    out[oc] += weights[widx] * xp[ic, r : r + stride * ho : stride, cc : cc + stride * wo : stride]
        return out

    return fn


def _kernel_reorder(fkw: FKWLayer, stride: int, padding: int) -> KernelFn:
    """Figure 7 '+Reorder': branchless pattern runs inside each filter."""
    f, c, kh, kw = fkw.shape
    pattern_coords = {
        pid: fkw.pattern_set[pid].coords for pid in range(1, len(fkw.pattern_set) + 1)
    }
    runs = [fkw.pattern_runs(pos) for pos in range(f)]

    def fn(x: np.ndarray) -> np.ndarray:
        _check_input(x, c)
        h, w = x.shape[1], x.shape[2]
        ho, wo = _out_hw(h, kh, stride, padding), _out_hw(w, kw, stride, padding)
        xp = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
        out = np.zeros((f, ho, wo), dtype=np.float32)
        for pos in range(f):
            oc = int(fkw.reorder[pos])
            acc = out[oc]
            for pid, start, end in runs[pos]:
                coords = pattern_coords[pid]  # hoisted: one dispatch per run
                for k in range(start, end):
                    ic = int(fkw.index[k])
                    weights = fkw.weights[k]
                    for widx, (r, cc) in enumerate(coords):
                        acc += weights[widx] * xp[ic, r : r + stride * ho : stride, cc : cc + stride * wo : stride]
        return out

    return fn


def _kernel_lre(fkw: FKWLayer, stride: int, padding: int) -> KernelFn:
    """'+LRE': per pattern id, all kernels computed as batched shifted
    slices — inputs gathered once per (pattern, shift), the numpy
    analogue of register reuse across kernels and unrolled filters."""
    f, c, kh, kw = fkw.shape
    k_total = fkw.num_kernels
    # Precompute flat gather metadata per pattern id.
    by_pattern: dict[int, dict[str, np.ndarray]] = {}
    if k_total:
        kernel_owner = np.empty(k_total, dtype=np.int64)  # original out channel
        for pos in range(f):
            kernel_owner[fkw.filter_slice(pos)] = int(fkw.reorder[pos])
        for pid in range(1, len(fkw.pattern_set) + 1):
            sel = np.nonzero(fkw.pattern_ids == pid)[0]
            if len(sel) == 0:
                continue
            by_pattern[pid] = {
                "kernels": sel,
                "channels": fkw.index[sel].astype(np.int64),
                "owners": kernel_owner[sel],
                "weights": fkw.weights[sel],  # (n, entries)
                "coords": np.array(fkw.pattern_set[pid].coords, dtype=np.int64),
            }

    def fn(x: np.ndarray) -> np.ndarray:
        _check_input(x, c)
        h, w = x.shape[1], x.shape[2]
        ho, wo = _out_hw(h, kh, stride, padding), _out_hw(w, kw, stride, padding)
        xp = np.pad(x, ((0, 0), (padding, padding), (padding, padding)))
        out = np.zeros((f, ho, wo), dtype=np.float32)
        for pid, meta in by_pattern.items():
            channels = meta["channels"]
            owners = meta["owners"]
            weights = meta["weights"]
            # contributions (n_kernels, ho, wo), built entry by entry from
            # shifted input slices shared across every kernel of this
            # pattern — the load-once semantics of LRE.
            contrib = None
            for widx, (r, cc) in enumerate(meta["coords"]):
                patch = xp[channels, r : r + stride * ho : stride, cc : cc + stride * wo : stride]
                term = weights[:, widx][:, None, None] * patch
                contrib = term if contrib is None else contrib + term
            np.add.at(out, owners, contrib)
        return out

    return fn


# ----------------------------------------------------------------------
# C-like source emission
# ----------------------------------------------------------------------
def generate_source(fkw: FKWLayer, opt_level: str = "lre", unroll_oc: int = 4, device: str = "cpu") -> str:
    """Emit C-like source text with the structure of Figure 7's skeletons.

    This is documentation-grade output (the real PatDNN emits vectorised
    C++/OpenCL); tests assert its structural properties — e.g. the
    reorder variant contains no ``switch``.
    """
    if opt_level not in _OPT_LEVELS:
        raise ValueError(f"opt_level must be one of {_OPT_LEVELS}, got {opt_level!r}")
    f, c, kh, kw = fkw.shape
    k = len(fkw.pattern_set)
    header = [
        f"// PatDNN generated {device.upper()} kernel: conv {f}x{c}x{kh}x{kw}",
        f"// format=FKW kernels={fkw.num_kernels} patterns={k} opt={opt_level}",
    ]
    body: list[str] = []
    if opt_level == "no-opt":
        body += [
            "for (oc = 0; oc < tile_oc; oc += 1)",
            "  for (oh = 0; oh < tile_oh; oh += unroll_h)",
            "    for (ow = 0; ow < tile_ow; ow += unroll_w)",
            "      for (ic = 0; ic < in_channel; ic += 1) {",
            "        switch (style[oc][ic]) {",
            "          case 0: break; // skip empty kernel",
        ]
        for pid in range(1, k + 1):
            coords = ", ".join(f"({r},{cc})" for r, cc in fkw.pattern_set[pid].coords)
            body.append(f"          case {pid}: /* pattern {pid}: {coords} */ break;")
        body += ["        }", "      }"]
    else:
        body += [
            "for (oc = 0; oc < tile_oc; oc += unroll_oc)" if opt_level == "lre" else "for (oc = 0; oc < tile_oc; oc += 1)",
            "  for (oh = 0; oh < tile_oh; oh += unroll_h)",
            "    for (ow = 0; ow < tile_ow; ow += unroll_w) {",
        ]
        for pid in range(1, k + 1):
            coords = fkw.pattern_set[pid].coords
            rows = sorted({r for r, _ in coords})
            body.append(f"      for (ic = stride[{pid - 1}]; ic < stride[{pid}]; ic += unroll_ic) {{")
            if opt_level == "lre":
                for r in rows:
                    body.append(f"        vin_r{r} = vload(input, index[ic], oh + {r}, ow); // reused across entries")
                for widx, (r, cc) in enumerate(coords):
                    body.append(f"        acc = vfma(acc, w[ic][{widx}], vshift(vin_r{r}, {cc}));")
            else:
                body.append(f"        // compute pattern {pid} here")
            body.append("      }")
        body.append("    }")
    footer = ["// accumulate via reorder[] to original output channels"]
    return "\n".join(header + body + footer)
