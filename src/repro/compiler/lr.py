"""Layerwise Representation — LR (paper §5.1, Figure 8).

The LR is PatDNN's sparsity-aware per-layer IR: it carries the pattern
and connectivity information (pattern types present, FKW layout), the
tuning-decided parameters (tile sizes, unroll factors, loop
permutation), and the basic layer info (strides, dilations).  The
compiler reads it to drive FKR, LRE, and code generation; we also emit
the YAML-ish text form shown in Figure 8 for documentation and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np


@dataclass
class LayerwiseRepresentation:
    """One CONV layer's LR entry.

    Attributes mirror Figure 8's fields:
        name: layer name (e.g. ``conv_op1``).
        device: execution target, ``'cpu'`` or ``'gpu'``.
        storage: ``'tight'`` when FKW-packed, else ``'dense'``/``'csr'``.
        pattern_types: sorted pattern ids present in this layer.
        layout: weight layout tag (``'FKW'``).
        tuning: dict with ``unroll`` [oc, h, w, ic], ``tile``
            [oc, oh, ow], ``permute`` (loop order string).
        info: dict with ``strides``, ``dilations``, kernel size, shapes.
    """

    name: str
    device: str = "cpu"
    storage: str = "tight"
    pattern_types: list[int] = field(default_factory=list)
    layout: str = "FKW"
    tuning: dict[str, Any] = field(default_factory=dict)
    info: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_layer(
        cls,
        name: str,
        assignment: np.ndarray,
        device: str = "cpu",
        tuning: dict[str, Any] | None = None,
        stride: int = 1,
        kernel_size: int = 3,
        storage: str = "tight",
        layout: str = "FKW",
    ) -> "LayerwiseRepresentation":
        """Build the LR entry from compiler artifacts."""
        present = sorted(int(i) for i in np.unique(assignment) if i > 0)
        return cls(
            name=name,
            device=device,
            storage=storage,
            pattern_types=present,
            layout=layout,
            tuning=dict(tuning or {}),
            info={
                "strides": [stride, stride],
                "dilations": [1, 1],
                "kernel_size": kernel_size,
                "filters": int(assignment.shape[0]),
                "channels": int(assignment.shape[1]),
            },
        )

    # ------------------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "storage": self.storage,
            "pattern": {"type": self.pattern_types, "layout": self.layout},
            "tuning": dict(self.tuning),
            "info": dict(self.info),
        }

    def to_yaml(self) -> str:
        """Figure 8-style textual LR (hand-rolled, no YAML dependency)."""
        lines = [
            f"device: [{self.device.upper()}]",
            "layers:",
            f"  - name: \"{self.name}\"",
            f"    storage: \"{self.storage}\"",
            f"    pattern: {{\"type\": {self.pattern_types}, \"layout\": {self.layout}}}",
        ]
        if self.tuning:
            parts = ", ".join(f"\"{k}\": {v}" for k, v in self.tuning.items())
            lines.append(f"    tuning:  {{{parts}}}")
        parts = ", ".join(f"\"{k}\": {v}" for k, v in self.info.items())
        lines.append(f"    info:    {{{parts}}}")
        return "\n".join(lines)


def model_lr(layers: list[LayerwiseRepresentation], device: str = "cpu", name: str = "model") -> str:
    """Whole-model LR document (concatenated layer entries)."""
    lines = [f"name: {name}", f"device: [{device.upper()}]", "layers:"]
    for lr in layers:
        entry = lr.to_yaml().splitlines()[2:]  # drop per-layer device header
        lines.extend(entry)
    return "\n".join(lines)
