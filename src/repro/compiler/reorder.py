"""Filter kernel reorder — FKR (paper §5.2, Figure 9).

Two steps:

1. **Filter reorder** groups filters by *length* (number of non-empty
   kernels); inside each group, filters are greedily chained by
   *similarity* — the number of positions whose pattern ids match once
   each filter's kernels are sorted by pattern id.  Similar filters land
   in the same thread group → balanced threads, no divergence.
2. **Kernel reorder** sorts each filter's surviving kernels by pattern
   id so execution visits each pattern exactly once as a contiguous run
   → the branchless ``+Reorder`` code of Figure 7.

The result is pure metadata (permutations); the FKW storage applies it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class FKRResult:
    """Outcome of filter kernel reorder for one layer.

    Attributes:
        filter_order: (F,) permutation; ``filter_order[i]`` is the
            original filter index executed at position ``i`` (this is the
            FKW *reorder array*).
        groups: [(start, end)) ranges of equal-length filters in the new
            order — thread-group boundaries.
        kernel_orders: per *reordered* filter, the surviving kernels as
            an (n_i, 2) int array of (input_channel, pattern_id), sorted
            by pattern id then channel.
        lengths_before / lengths_after: filter lengths in original vs.
            reordered positions (Figure 14a's distributions).
    """

    filter_order: np.ndarray
    groups: list[tuple[int, int]]
    kernel_orders: list[np.ndarray]
    lengths_before: np.ndarray
    lengths_after: np.ndarray

    @property
    def num_groups(self) -> int:
        return len(self.groups)

    def pattern_runs_per_filter(self) -> float:
        """Mean count of contiguous same-pattern runs per filter.

        After kernel reorder this equals the number of *distinct*
        patterns per filter — the branch count of the generated code.
        """
        runs = []
        for order in self.kernel_orders:
            if len(order) == 0:
                runs.append(0)
                continue
            ids = order[:, 1]
            runs.append(1 + int(np.count_nonzero(ids[1:] != ids[:-1])))
        return float(np.mean(runs)) if runs else 0.0


def _signature(kernels: np.ndarray) -> tuple:
    """Hashable per-filter signature: pattern ids sorted, then channels."""
    return tuple(kernels[:, 1].tolist())


def _similarity(a: np.ndarray, b: np.ndarray) -> int:
    """Number of identical (position → pattern id) slots (paper's metric
    for same-length filters whose kernels are ordered by pattern id)."""
    n = min(len(a), len(b))
    if n == 0:
        return 0
    return int(np.count_nonzero(a[:n, 1] == b[:n, 1]))


def filter_kernel_reorder(assignment: np.ndarray, greedy_limit: int = 256) -> FKRResult:
    """Run FKR on an (F, C) pattern-id assignment (0 = empty kernel).

    Greedy similarity chaining is O(n²) per length group; groups larger
    than ``greedy_limit`` fall back to lexicographic signature sort,
    which clusters identical pattern sequences just as effectively at
    O(n log n) (the paper does not fix the intra-group algorithm).
    """
    if assignment.ndim != 2:
        raise ValueError(f"assignment must be (F, C), got shape {assignment.shape}")
    f, c = assignment.shape

    # Kernel reorder: surviving kernels sorted by (pattern id, channel).
    per_filter: list[np.ndarray] = []
    for i in range(f):
        channels = np.nonzero(assignment[i])[0]
        ids = assignment[i, channels]
        order = np.lexsort((channels, ids))
        per_filter.append(np.stack([channels[order], ids[order]], axis=1).astype(np.int32)
                          if len(channels) else np.empty((0, 2), dtype=np.int32))

    lengths = np.array([len(k) for k in per_filter], dtype=np.int64)

    # Filter reorder step 1: group by length (descending — long filters
    # first keeps thread chunks monotone).
    new_order: list[int] = []
    groups: list[tuple[int, int]] = []
    for length in sorted(set(lengths.tolist()), reverse=True):
        members = [i for i in range(f) if lengths[i] == length]
        signatures = {i: _signature(per_filter[i]) for i in members}
        distinct = len(set(signatures.values()))
        if distinct <= 1 or len(members) > greedy_limit:
            # Identical or huge group: lexicographic sort clusters equal
            # signatures adjacently, which is all the wavefront needs.
            chained = sorted(members, key=lambda i: signatures[i])
        else:
            # Step 2: greedy similarity chain inside the group.
            chained = []
            remaining = sorted(members, key=lambda i: signatures[i])
            current = remaining.pop(0)
            chained.append(current)
            while remaining:
                best = max(remaining, key=lambda j: (_similarity(per_filter[current], per_filter[j]), -j))
                remaining.remove(best)
                chained.append(best)
                current = best
        start = len(new_order)
        new_order.extend(chained)
        groups.append((start, len(new_order)))

    filter_order = np.array(new_order, dtype=np.int64)
    kernel_orders = [per_filter[i] for i in filter_order]
    return FKRResult(
        filter_order=filter_order,
        groups=groups,
        kernel_orders=kernel_orders,
        lengths_before=lengths,
        lengths_after=lengths[filter_order],
    )


def identity_reorder(assignment: np.ndarray) -> FKRResult:
    """The no-FKR baseline: original filter order, kernels by channel.

    Used by the ``No-opt`` codegen variant and as the Figure 14a
    'before' distribution.
    """
    f, c = assignment.shape
    per_filter = []
    for i in range(f):
        channels = np.nonzero(assignment[i])[0]
        ids = assignment[i, channels]
        per_filter.append(np.stack([channels, ids], axis=1).astype(np.int32)
                          if len(channels) else np.empty((0, 2), dtype=np.int32))
    lengths = np.array([len(k) for k in per_filter], dtype=np.int64)
    return FKRResult(
        filter_order=np.arange(f, dtype=np.int64),
        groups=[(0, f)],
        kernel_orders=per_filter,
        lengths_before=lengths,
        lengths_after=lengths,
    )
