"""End-to-end compilation drivers.

``compile_layer`` takes one pruned conv layer (weights + pattern
assignment) and produces a :class:`CompiledLayer`: FKW storage, LR
entry, register-load counts, an executable kernel, a tuned schedule, and
the cost-model workload the engines use for latency.

``compile_model`` maps that over a model spec at a given opt level —
the unit the Figure 12/13 benches sweep.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

import numpy as np

from repro.compiler.codegen import KernelFn, generate_kernel
from repro.compiler.lr import LayerwiseRepresentation
from repro.compiler.lre import LoadCounts, count_register_loads, loads_without_patterns
from repro.compiler.reorder import FKRResult, filter_kernel_reorder, identity_reorder
from repro.compiler.storage import FKWLayer
from repro.compiler.tuner import GATuner, Schedule
from repro.core.patterns import Pattern, PatternSet
from repro.core.projections import (
    connectivity_budget,
    project_connectivity,
    project_kernel_pattern,
)
from repro.hardware.cost_model import ConvCostModel, ConvWorkload
from repro.models.spec import ConvSpec, ModelSpec
from repro.utils.rng import make_rng


def warp_divergence_factor(fkr: FKRResult, wavefront: int = 64) -> float:
    """Expected serialized switch paths per wavefront step (GPU).

    Wavefront lanes process adjacent filters in lockstep, each walking
    its own kernel list position by position; at every step the distinct
    pattern ids across lanes are serialized by the hardware.  Before FKR
    the kernel lists are channel-ordered (patterns effectively random →
    many paths); after FKR the lists are pattern-sorted and similar
    filters sit in the same wavefront, so lanes stay aligned (→ ≈ 1).
    """
    orders = fkr.kernel_orders
    f = len(orders)
    weighted: list[tuple[float, int]] = []
    for start in range(0, f, wavefront):
        block = orders[start : start + wavefront]
        max_len = max((len(o) for o in block), default=0)
        for t in range(max_len):
            ids = {int(o[t, 1]) for o in block if len(o) > t}
            if ids:
                weighted.append((float(len(ids)), 1))
    if not weighted:
        return 1.0
    return float(np.mean([w for w, _ in weighted]))


class OptLevel(enum.IntEnum):
    """Cumulative optimization levels of Figure 13."""

    NO_OPT = 0  # sparse execution, no compiler help
    REORDER = 1  # + filter kernel reorder (and FKW storage)
    LRE = 2  # + load redundancy elimination
    TUNE = 3  # + auto-tuned schedule

    @property
    def codegen_level(self) -> str:
        return {0: "no-opt", 1: "reorder", 2: "lre", 3: "lre"}[int(self)]


@dataclass
class CompiledLayer:
    """All compiler artifacts for one conv layer."""

    spec: ConvSpec
    fkw: FKWLayer
    fkr: FKRResult
    lr: LayerwiseRepresentation
    loads: LoadCounts
    schedule: Schedule
    opt_level: OptLevel
    workload: ConvWorkload
    estimated_ms: float = 0.0
    _kernel: KernelFn | None = field(default=None, repr=False)

    def kernel(self) -> KernelFn:
        """Executable conv function (built lazily, cached)."""
        if self._kernel is None:
            self._kernel = generate_kernel(
                self.fkw, self.spec.stride, self.spec.padding, self.opt_level.codegen_level
            )
        return self._kernel


@dataclass
class CompiledModel:
    """A compiled network: per-layer artifacts plus totals."""

    name: str
    device_unit: str
    layers: list[CompiledLayer]
    opt_level: OptLevel

    @property
    def total_ms(self) -> float:
        return sum(l.estimated_ms for l in self.layers)

    @property
    def weight_bytes(self) -> int:
        return sum(l.fkw.total_bytes() for l in self.layers)

    def lr_document(self) -> str:
        from repro.compiler.lr import model_lr

        return model_lr([l.lr for l in self.layers], self.device_unit, self.name)


def prune_spec_layer(
    spec: ConvSpec,
    pattern_set: PatternSet,
    connectivity_rate: float | None = 3.6,
    rng: np.random.Generator | None = None,
    weights: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Materialise pruned weights + assignment for a full-scale spec layer.

    Full-scale compiler experiments don't train ImageNet models; they
    need structurally-faithful pruned tensors.  Kaiming-random weights
    are pattern-projected and connectivity-pruned exactly like trained
    ones (the compiler and cost model only see structure, not values).
    """
    rng = rng or make_rng(0)
    w = weights if weights is not None else spec.make_weights(rng)
    if spec.kernel_size == 3 and spec.groups == 1:
        w, assignment = project_kernel_pattern(w, pattern_set)
    else:
        # 1×1 / depthwise layers: connectivity only; treat each kernel as
        # "pattern 1" (single dense micro-kernel) for storage purposes.
        assignment = np.ones(w.shape[:2], dtype=np.int32)
    if connectivity_rate is not None and spec.groups == 1:
        keep = connectivity_budget(w.shape, connectivity_rate)
        w, keep_mask = project_connectivity(w, keep)
        assignment = assignment * keep_mask
    return w, assignment


def full_pattern_set(kernel_size: int) -> PatternSet:
    """Degenerate single-pattern set keeping the whole kernel.

    1×1 (pointwise) and depthwise layers are not kernel-pattern pruned
    (§4.3); packing them as one 'full' pattern lets FKW/FKR/codegen
    treat every layer uniformly while the pattern machinery is a no-op.
    """
    return PatternSet([Pattern(kernel_size, tuple(range(kernel_size * kernel_size)))])


def compile_layer(
    spec: ConvSpec,
    weights: np.ndarray,
    assignment: np.ndarray,
    pattern_set: PatternSet,
    cost_model: ConvCostModel,
    opt_level: OptLevel = OptLevel.TUNE,
    tuner: GATuner | None = None,
) -> CompiledLayer:
    """Compile one pruned layer at a given optimization level."""
    if spec.kernel_size != pattern_set.kernel_size or spec.groups != 1:
        pattern_set = full_pattern_set(spec.kernel_size)
    use_fkr = opt_level >= OptLevel.REORDER
    fkr = filter_kernel_reorder(assignment) if use_fkr else identity_reorder(assignment)
    fkw = FKWLayer.from_pruned(weights, assignment, pattern_set, fkr)

    simd = cost_model.device.cpu.simd_lanes_fp32 if cost_model.unit == "cpu" else 4
    loads = count_register_loads(fkw, spec.out_hw, simd_width=simd)
    if opt_level >= OptLevel.LRE:
        register_loads = loads.filter_lre
    else:
        # Without the LRE pass, loads stay per-entry (no register reuse);
        # the pattern switch itself is still vectorisable code.
        register_loads = loads.no_lre

    elem = 2 if cost_model.fp16 else 4
    weight_bytes = fkw.overhead_bytes() + fkw.nnz * elem
    wavefront = cost_model.device.gpu.wavefront
    work = ConvWorkload(
        spec=spec,
        nnz_weights=fkw.nnz,
        nonzero_kernels=fkw.num_kernels,
        filter_lengths=fkr.lengths_after,
        pattern_runs_per_filter=fkr.pattern_runs_per_filter(),
        branchy=opt_level < OptLevel.REORDER,
        register_loads=register_loads,
        weight_bytes=weight_bytes,
        winograd=False,
        fused_activation=True,
        sparse=True,
        warp_divergence=warp_divergence_factor(fkr, wavefront),
        code_versions=len(pattern_set),
    )

    if opt_level >= OptLevel.TUNE:
        tuner = tuner or GATuner(cost_model, population=16, generations=8, seed=17)
        result = tuner.tune(work)
        schedule = result.best
        estimated = result.best_ms
    else:
        schedule = Schedule.default()
        estimated = cost_model.estimate(work, schedule.to_sched_params()).total_ms

    lr = LayerwiseRepresentation.from_layer(
        name=spec.name,
        assignment=assignment,
        device=cost_model.unit,
        tuning=schedule.to_lr_tuning() if opt_level >= OptLevel.TUNE else {},
        stride=spec.stride,
        kernel_size=spec.kernel_size,
        storage="tight" if use_fkr else "loose",
    )
    return CompiledLayer(
        spec=spec,
        fkw=fkw,
        fkr=fkr,
        lr=lr,
        loads=loads,
        schedule=schedule,
        opt_level=opt_level,
        workload=work,
        estimated_ms=estimated,
    )


def compile_model(
    spec: ModelSpec,
    pattern_set: PatternSet,
    cost_model: ConvCostModel,
    connectivity_rate: float | None = 3.6,
    opt_level: OptLevel = OptLevel.TUNE,
    seed: int = 0,
) -> CompiledModel:
    """Prune (structurally) and compile every conv layer of a spec."""
    rng = make_rng(seed)
    layers = []
    for conv in spec.convs:
        w, assignment = prune_spec_layer(conv, pattern_set, connectivity_rate, rng)
        layers.append(
            compile_layer(conv, w, assignment, pattern_set, cost_model, opt_level)
        )
    return CompiledModel(
        name=f"{spec.name}-{spec.dataset}",
        device_unit=cost_model.unit,
        layers=layers,
        opt_level=opt_level,
    )
