"""PatDNN execution code generation stage (paper §5).

The compiler consumes a pattern-pruned conv layer — weights plus an
(F, C) pattern-id assignment (0 = connectivity-pruned kernel) — and
produces everything Figure 7 shows:

* :mod:`repro.compiler.reorder`   — filter kernel reorder (FKR, §5.2)
* :mod:`repro.compiler.storage`   — FKW compact weight format (§5.3),
  plus CSR/COO comparators for Figure 16
* :mod:`repro.compiler.lre`       — register-level load redundancy
  elimination analysis (§5.4)
* :mod:`repro.compiler.codegen`   — executable kernels (no-opt /
  +Reorder / +LRE) and C-like source text
* :mod:`repro.compiler.tuner`     — GA parameter auto-tuning with an MLP
  performance estimator (§5.5)
* :mod:`repro.compiler.lr`        — the layerwise representation (Fig. 8)
* :mod:`repro.compiler.compile`   — the end-to-end ``compile_layer`` /
  ``compile_model`` drivers
"""

from repro.compiler.reorder import FKRResult, filter_kernel_reorder
from repro.compiler.storage import FKWLayer, CSRLayer, COOLayer
from repro.compiler.lre import LoadCounts, count_register_loads
from repro.compiler.lr import LayerwiseRepresentation
from repro.compiler.codegen import KernelCache, generate_kernel, generate_source
from repro.compiler.tuner import Schedule, ScheduleSpace, GATuner, PerformanceEstimator
from repro.compiler.compile import CompiledLayer, CompiledModel, compile_layer, compile_model, OptLevel

__all__ = [
    "FKRResult",
    "filter_kernel_reorder",
    "FKWLayer",
    "CSRLayer",
    "COOLayer",
    "LoadCounts",
    "count_register_loads",
    "LayerwiseRepresentation",
    "KernelCache",
    "generate_kernel",
    "generate_source",
    "Schedule",
    "ScheduleSpace",
    "GATuner",
    "PerformanceEstimator",
    "CompiledLayer",
    "CompiledModel",
    "compile_layer",
    "compile_model",
    "OptLevel",
]
