"""Register-level load redundancy elimination analysis (paper §5.4).

The generated code computes one SIMD vector of output pixels at a time.
For a kernel with pattern positions {(r, c)}, each surviving weight
needs the input row segment ``row = oh·s + r``, ``cols = ow·s + c ...``:

* **No LRE** — every weight issues its own vector load, and the column
  offset makes it unaligned, costing a second (realignment) load: 2 ×
  ``entries`` loads per kernel per output vector.
* **Kernel-level LRE** (Figure 11 left) — weights sharing an input *row*
  reuse the register that already holds it (column shifts are free
  vector ops): loads = number of *distinct rows* in the pattern.
* **Filter-level LRE** (Figure 11 right) — after FKR, kernels at the
  same input channel with the same pattern in the ``unroll_oc`` filters
  processed together read identical input: the loads are shared across
  the unroll group.

``count_register_loads`` returns whole-layer totals used by Figure 14b
and charged as cycles by the cost model.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.storage import FKWLayer
from repro.core.patterns import PatternSet


@dataclass(frozen=True)
class LoadCounts:
    """Register-load totals for one layer under each elimination level."""

    no_lre: int
    kernel_lre: int
    filter_lre: int

    @property
    def kernel_reduction(self) -> float:
        return self.no_lre / self.kernel_lre if self.kernel_lre else 1.0

    @property
    def total_reduction(self) -> float:
        return self.no_lre / self.filter_lre if self.filter_lre else 1.0


def _distinct_rows(pattern_positions: tuple[int, ...], kernel_size: int) -> int:
    return len({p // kernel_size for p in pattern_positions})


def count_register_loads(
    fkw: FKWLayer,
    out_hw: int,
    simd_width: int = 4,
    unroll_oc: int = 4,
) -> LoadCounts:
    """Count vector register loads for a whole layer execution.

    Args:
        fkw: packed layer (provides per-kernel pattern ids and the FKR
            grouping that filter-level LRE relies on).
        out_hw: output feature-map side (loads scale with output tiles).
        simd_width: output pixels per vector.
        unroll_oc: filters processed together (the filter-LRE window).
    """
    k_size = fkw.shape[2]
    pattern_set = fkw.pattern_set
    out_vectors = max(1, (out_hw * out_hw) // simd_width)

    rows_table = np.zeros(len(pattern_set) + 1, dtype=np.int64)
    for pid in range(1, len(pattern_set) + 1):
        rows_table[pid] = _distinct_rows(pattern_set[pid].positions, k_size)

    pids = fkw.pattern_ids.astype(np.int64)
    channels = fkw.index.astype(np.int64)
    no_lre = int(2 * fkw.entries * len(pids))
    kernel_lre = int(rows_table[pids].sum())

    # Filter-level: within each unroll group of filters, identical
    # (channel, pattern) slots pay their row loads once.
    filter_lre = 0
    f = fkw.shape[0]
    num_patterns = len(pattern_set) + 1
    for group_start in range(0, f, unroll_oc):
        group_end = min(group_start + unroll_oc, f)
        lo = int(fkw.offset[group_start])
        hi = int(fkw.offset[group_end])
        if hi == lo:
            continue
        keys = channels[lo:hi] * num_patterns + pids[lo:hi]
        unique_keys = np.unique(keys)
        filter_lre += int(rows_table[unique_keys % num_patterns].sum())
    return LoadCounts(
        no_lre=no_lre * out_vectors,
        kernel_lre=kernel_lre * out_vectors,
        filter_lre=filter_lre * out_vectors,
    )


def loads_without_patterns(nnz_weights: int, out_hw: int) -> int:
    """Load count of a pattern-oblivious sparse kernel (CSR executor).

    Every non-zero weight needs an indirect column load *and* its input
    element load, per output pixel — the data-reuse pattern is invisible
    to the compiler (paper §5.4's "hard to detect" case), and the
    irregular accesses cannot be vectorised at all.
    """
    return 2 * nnz_weights * out_hw * out_hw
