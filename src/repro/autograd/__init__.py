"""Reverse-mode automatic differentiation on numpy arrays.

This package is the training substrate for the whole reproduction: the
paper trains its pattern-pruned networks with PyTorch; we provide an
equivalent, self-contained engine.  The design follows the classic
define-by-run tape:

* :class:`~repro.autograd.tensor.Tensor` wraps a ``numpy.ndarray`` and
  records the :class:`~repro.autograd.engine.Function` that produced it.
* calling :meth:`Tensor.backward` topologically sorts the recorded graph
  and accumulates gradients into every tensor with ``requires_grad``.

Only float32 is used throughout, matching the paper's mobile setting
(16-bit floats on GPU are modelled at the cost-model level instead).
"""

from repro.autograd.engine import Function, no_grad, is_grad_enabled
from repro.autograd.tensor import Tensor, tensor, zeros, ones, randn, arange
from repro.autograd.grad_check import numerical_grad, check_gradients

__all__ = [
    "Function",
    "Tensor",
    "tensor",
    "zeros",
    "ones",
    "randn",
    "arange",
    "no_grad",
    "is_grad_enabled",
    "numerical_grad",
    "check_gradients",
]
