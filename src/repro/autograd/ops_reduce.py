"""Reduction operations (sum / mean / max) with axis + keepdims support."""

from __future__ import annotations

import numpy as np

from repro.autograd.engine import Function


def _restore_axes(grad: np.ndarray, in_shape, axis, keepdims: bool) -> np.ndarray:
    """Reshape a reduced gradient so it broadcasts back over ``in_shape``."""
    if axis is None:
        return np.broadcast_to(grad, in_shape)
    if not keepdims:
        axes = axis if isinstance(axis, tuple) else (axis,)
        axes = tuple(a % len(in_shape) for a in axes)
        shape = [1 if i in axes else s for i, s in enumerate(in_shape)]
        grad = grad.reshape(shape)
    return np.broadcast_to(grad, in_shape)


class Sum(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.save_for_backward(a.shape, axis, keepdims)
        return a.sum(axis=axis, keepdims=keepdims, dtype=a.dtype)

    def backward(self, grad_out):
        in_shape, axis, keepdims = self.saved
        return (_restore_axes(grad_out, in_shape, axis, keepdims).copy(),)


class Mean(Function):
    def forward(self, a, axis=None, keepdims=False):
        self.save_for_backward(a.shape, axis, keepdims)
        return a.mean(axis=axis, keepdims=keepdims, dtype=a.dtype)

    def backward(self, grad_out):
        in_shape, axis, keepdims = self.saved
        if axis is None:
            count = int(np.prod(in_shape))
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([in_shape[a % len(in_shape)] for a in axes]))
        grad = _restore_axes(grad_out, in_shape, axis, keepdims)
        return (grad / count,)


class Max(Function):
    """Max reduction; gradient splits evenly among tied maxima."""

    def forward(self, a, axis=None, keepdims=False):
        out = a.max(axis=axis, keepdims=True)
        mask = (a == out).astype(a.dtype)
        mask /= mask.sum(axis=axis, keepdims=True)
        self.save_for_backward(a.shape, axis, keepdims, mask)
        if not keepdims:
            out = a.max(axis=axis, keepdims=False)
        return out

    def backward(self, grad_out):
        in_shape, axis, keepdims, mask = self.saved
        grad = _restore_axes(grad_out, in_shape, axis, keepdims)
        return (grad * mask,)
