"""Autograd core: the Function node and the backward traversal.

A ``Function`` is one recorded operation in the tape.  It keeps references
to its parent tensors and whatever intermediate arrays the backward pass
needs.  ``backward_graph`` walks the tape in reverse topological order and
routes each output gradient to the matching parent.
"""

from __future__ import annotations

import contextlib
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.autograd.tensor import Tensor

_grad_enabled = True


@contextlib.contextmanager
def no_grad():
    """Context manager that disables graph recording (inference mode)."""
    global _grad_enabled
    previous = _grad_enabled
    _grad_enabled = False
    try:
        yield
    finally:
        _grad_enabled = previous


def is_grad_enabled() -> bool:
    """Whether operations currently record the autograd tape."""
    return _grad_enabled


class Function:
    """One differentiable operation in the recorded graph.

    Subclasses implement :meth:`forward` (numpy in / numpy out) and
    :meth:`backward` (gradient of the output in, tuple of gradients for
    each parent tensor out, ``None`` for non-differentiable parents).
    """

    def __init__(self, *parents: "Tensor") -> None:
        self.parents = parents
        self.saved: tuple[Any, ...] = ()

    def save_for_backward(self, *items: Any) -> None:
        """Stash arrays (or any values) needed by :meth:`backward`."""
        self.saved = items

    def forward(self, *args: Any, **kwargs: Any) -> np.ndarray:
        raise NotImplementedError

    def backward(self, grad_out: np.ndarray) -> tuple[np.ndarray | None, ...]:
        raise NotImplementedError

    @classmethod
    def apply(cls, *args: Any, **kwargs: Any) -> "Tensor":
        """Run forward, and record the node if any input requires grad."""
        from repro.autograd.tensor import Tensor

        tensor_args = tuple(a for a in args if isinstance(a, Tensor))
        fn = cls(*tensor_args)
        raw = [a.data if isinstance(a, Tensor) else a for a in args]
        out_data = np.asarray(fn.forward(*raw, **kwargs))
        requires = _grad_enabled and any(t.requires_grad for t in tensor_args)
        out = Tensor(out_data, requires_grad=requires, dtype=out_data.dtype)
        if requires:
            out._ctx = fn
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__}>"


def backward_graph(root: "Tensor", grad: np.ndarray) -> None:
    """Backpropagate ``grad`` from ``root`` through the recorded tape.

    Gradients are accumulated (``+=``) into every reachable tensor whose
    ``requires_grad`` flag is set, which makes repeated ``backward`` calls
    and shared sub-expressions behave like PyTorch's default semantics.
    """
    topo: list[Tensor] = []
    visited: set[int] = set()

    def visit(t: "Tensor") -> None:
        if id(t) in visited or t._ctx is None:
            return
        visited.add(id(t))
        for parent in t._ctx.parents:
            visit(parent)
        topo.append(t)

    visit(root)

    grads: dict[int, np.ndarray] = {id(root): grad}
    for t in reversed(topo):
        g_out = grads.pop(id(t), None)
        if g_out is None:
            continue
        parent_grads = t._ctx.backward(g_out)
        if not isinstance(parent_grads, tuple):
            parent_grads = (parent_grads,)
        if len(parent_grads) != len(t._ctx.parents):
            raise RuntimeError(
                f"{type(t._ctx).__name__}.backward returned "
                f"{len(parent_grads)} grads for {len(t._ctx.parents)} parents"
            )
        for parent, g in zip(t._ctx.parents, parent_grads):
            if g is None or not parent.requires_grad:
                continue
            # note: not ascontiguousarray — that would promote 0-d to 1-d
            g = np.asarray(g, dtype=parent.data.dtype)
            if g.shape != parent.data.shape:
                raise RuntimeError(
                    f"gradient shape {g.shape} != tensor shape "
                    f"{parent.data.shape} from {type(t._ctx).__name__}"
                )
            if parent._ctx is None:
                # Leaf: accumulate into .grad
                if parent.grad is None:
                    parent.grad = g.copy()
                else:
                    parent.grad += g
            else:
                key = id(parent)
                if key in grads:
                    grads[key] = grads[key] + g
                else:
                    grads[key] = g
                if parent.retains_grad:
                    if parent.grad is None:
                        parent.grad = g.copy()
                    else:
                        parent.grad += g
