"""Elementwise differentiable operations (binary with broadcasting, unary)."""

from __future__ import annotations

import numpy as np

from repro.autograd.engine import Function


def unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum away extra leading axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were size-1 in the original.
    axes = tuple(i for i, (g, s) in enumerate(zip(grad.shape, shape)) if s == 1 and g != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Add(Function):
    def forward(self, a, b):
        self.save_for_backward(a.shape, b.shape)
        return a + b

    def backward(self, grad_out):
        a_shape, b_shape = self.saved
        return unbroadcast(grad_out, a_shape), unbroadcast(grad_out, b_shape)


class Sub(Function):
    def forward(self, a, b):
        self.save_for_backward(a.shape, b.shape)
        return a - b

    def backward(self, grad_out):
        a_shape, b_shape = self.saved
        return unbroadcast(grad_out, a_shape), unbroadcast(-grad_out, b_shape)


class Mul(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a * b

    def backward(self, grad_out):
        a, b = self.saved
        return unbroadcast(grad_out * b, a.shape), unbroadcast(grad_out * a, b.shape)


class Div(Function):
    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a / b

    def backward(self, grad_out):
        a, b = self.saved
        grad_a = grad_out / b
        grad_b = -grad_out * a / (b * b)
        return unbroadcast(grad_a, a.shape), unbroadcast(grad_b, b.shape)


class Neg(Function):
    def forward(self, a):
        return -a

    def backward(self, grad_out):
        return (-grad_out,)


class Pow(Function):
    def forward(self, a, exponent: float):
        self.save_for_backward(a, exponent)
        return a**exponent

    def backward(self, grad_out):
        a, exponent = self.saved
        return (grad_out * exponent * a ** (exponent - 1.0),)


class Exp(Function):
    def forward(self, a):
        out = np.exp(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out):
        (out,) = self.saved
        return (grad_out * out,)


class Log(Function):
    def forward(self, a):
        self.save_for_backward(a)
        return np.log(a)

    def backward(self, grad_out):
        (a,) = self.saved
        return (grad_out / a,)


class Sqrt(Function):
    def forward(self, a):
        out = np.sqrt(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out):
        (out,) = self.saved
        return (grad_out / (2.0 * out),)


class Tanh(Function):
    def forward(self, a):
        out = np.tanh(a)
        self.save_for_backward(out)
        return out

    def backward(self, grad_out):
        (out,) = self.saved
        return (grad_out * (1.0 - out * out),)


class Sigmoid(Function):
    def forward(self, a):
        out = 1.0 / (1.0 + np.exp(-a))
        self.save_for_backward(out)
        return out

    def backward(self, grad_out):
        (out,) = self.saved
        return (grad_out * out * (1.0 - out),)


class ReLU(Function):
    def forward(self, a):
        mask = a > 0
        self.save_for_backward(mask)
        return a * mask

    def backward(self, grad_out):
        (mask,) = self.saved
        return (grad_out * mask,)


class Clip(Function):
    """Clamp to [low, high]; gradient passes only inside the interval.

    Used for ReLU6 in MobileNet-V2.
    """

    def forward(self, a, low: float, high: float):
        mask = (a > low) & (a < high)
        self.save_for_backward(mask)
        return np.clip(a, low, high)

    def backward(self, grad_out):
        (mask,) = self.saved
        return (grad_out * mask,)


class Abs(Function):
    def forward(self, a):
        self.save_for_backward(np.sign(a))
        return np.abs(a)

    def backward(self, grad_out):
        (sign,) = self.saved
        return (grad_out * sign,)
