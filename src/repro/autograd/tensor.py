"""The Tensor type: a numpy array plus an autograd tape entry.

All arithmetic delegates to :class:`~repro.autograd.engine.Function`
subclasses defined in the ``ops_*`` modules; this module only hosts the
user-facing type, constructors, and operator sugar.
"""

from __future__ import annotations

from typing import Any

import numpy as np

from repro.autograd import engine
from repro.autograd.engine import Function, backward_graph

_DEFAULT_DTYPE = np.float32


def _as_array(data: Any, dtype=_DEFAULT_DTYPE) -> np.ndarray:
    if isinstance(data, np.ndarray):
        if data.dtype == dtype:
            return data
        return data.astype(dtype)
    return np.asarray(data, dtype=dtype)


class Tensor:
    """A differentiable n-dimensional array.

    Attributes:
        data: the underlying ``numpy.ndarray`` (float32 unless constructed
            otherwise).
        grad: accumulated gradient, same shape as ``data`` (or ``None``).
        requires_grad: whether operations on this tensor are recorded.
        retains_grad: if set on a non-leaf, its gradient is kept during
            backward (mirrors ``Tensor.retain_grad`` in PyTorch).
    """

    __slots__ = ("data", "grad", "requires_grad", "retains_grad", "_ctx")
    __array_priority__ = 100  # numpy defers binary ops to Tensor

    def __init__(self, data: Any, requires_grad: bool = False, dtype=_DEFAULT_DTYPE):
        self.data = _as_array(data, dtype)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self.retains_grad = False
        self._ctx: Function | None = None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        grad_tag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{grad_tag})"

    def numpy(self) -> np.ndarray:
        """Return the raw array (shared memory, not a copy)."""
        return self.data

    def item(self) -> float:
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else float(self.data)

    # ------------------------------------------------------------------
    # Autograd controls
    # ------------------------------------------------------------------
    def detach(self) -> "Tensor":
        """A new tensor sharing data but cut from the graph."""
        return Tensor(self.data, requires_grad=False, dtype=self.data.dtype)

    def retain_grad(self) -> "Tensor":
        self.retains_grad = True
        return self

    def zero_grad(self) -> None:
        self.grad = None

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        Args:
            grad: seed gradient; defaults to ones (required implicitly for
                scalar outputs, allowed explicitly for any shape).
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            grad = np.ones_like(self.data)
        else:
            grad = _as_array(grad, self.data.dtype)
        if self._ctx is None:
            # Leaf used directly as the loss (degenerate but legal).
            self.grad = grad.copy() if self.grad is None else self.grad + grad
            return
        backward_graph(self, grad)

    # ------------------------------------------------------------------
    # Operator sugar — implementations live in repro.autograd.ops_*
    # ------------------------------------------------------------------
    def _binop(self, op_name: str, other: Any, reverse: bool = False) -> "Tensor":
        from repro.autograd import ops_elementwise as ops

        other_t = other if isinstance(other, Tensor) else Tensor(_as_array(other, self.data.dtype))
        a, b = (other_t, self) if reverse else (self, other_t)
        return getattr(ops, op_name).apply(a, b)

    def __add__(self, other):
        return self._binop("Add", other)

    def __radd__(self, other):
        return self._binop("Add", other, reverse=True)

    def __sub__(self, other):
        return self._binop("Sub", other)

    def __rsub__(self, other):
        return self._binop("Sub", other, reverse=True)

    def __mul__(self, other):
        return self._binop("Mul", other)

    def __rmul__(self, other):
        return self._binop("Mul", other, reverse=True)

    def __truediv__(self, other):
        return self._binop("Div", other)

    def __rtruediv__(self, other):
        return self._binop("Div", other, reverse=True)

    def __neg__(self):
        from repro.autograd import ops_elementwise as ops

        return ops.Neg.apply(self)

    def __pow__(self, exponent: float):
        from repro.autograd import ops_elementwise as ops

        return ops.Pow.apply(self, exponent=float(exponent))

    def __matmul__(self, other):
        from repro.autograd import ops_matmul as ops

        other_t = other if isinstance(other, Tensor) else Tensor(other)
        return ops.MatMul.apply(self, other_t)

    def __getitem__(self, index):
        from repro.autograd import ops_shape as ops

        return ops.Slice.apply(self, index=index)

    # Elementwise unary
    def exp(self):
        from repro.autograd import ops_elementwise as ops

        return ops.Exp.apply(self)

    def log(self):
        from repro.autograd import ops_elementwise as ops

        return ops.Log.apply(self)

    def sqrt(self):
        from repro.autograd import ops_elementwise as ops

        return ops.Sqrt.apply(self)

    def tanh(self):
        from repro.autograd import ops_elementwise as ops

        return ops.Tanh.apply(self)

    def sigmoid(self):
        from repro.autograd import ops_elementwise as ops

        return ops.Sigmoid.apply(self)

    def relu(self):
        from repro.autograd import ops_elementwise as ops

        return ops.ReLU.apply(self)

    def clip(self, low: float, high: float):
        from repro.autograd import ops_elementwise as ops

        return ops.Clip.apply(self, low=float(low), high=float(high))

    def abs(self):
        from repro.autograd import ops_elementwise as ops

        return ops.Abs.apply(self)

    # Reductions
    def sum(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops_reduce as ops

        return ops.Sum.apply(self, axis=axis, keepdims=keepdims)

    def mean(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops_reduce as ops

        return ops.Mean.apply(self, axis=axis, keepdims=keepdims)

    def var(self, axis=None, keepdims: bool = False):
        """Biased variance (matches BatchNorm's training statistics)."""
        mu = self.mean(axis=axis, keepdims=True)
        centered = self - mu
        out = (centered * centered).mean(axis=axis, keepdims=keepdims)
        return out

    def max(self, axis=None, keepdims: bool = False):
        from repro.autograd import ops_reduce as ops

        return ops.Max.apply(self, axis=axis, keepdims=keepdims)

    def argmax(self, axis=None) -> np.ndarray:
        return np.argmax(self.data, axis=axis)

    # Shape ops
    def reshape(self, *shape):
        from repro.autograd import ops_shape as ops

        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return ops.Reshape.apply(self, shape=shape)

    def flatten(self, start_dim: int = 0):
        lead = self.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, axis0: int | None = None, axis1: int | None = None):
        from repro.autograd import ops_shape as ops

        if axis0 is None and axis1 is None:
            axes = tuple(reversed(range(self.ndim)))
        else:
            axes = list(range(self.ndim))
            axes[axis0], axes[axis1] = axes[axis1], axes[axis0]
            axes = tuple(axes)
        return ops.Permute.apply(self, axes=axes)

    def permute(self, *axes):
        from repro.autograd import ops_shape as ops

        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        return ops.Permute.apply(self, axes=tuple(axes))

    def pad2d(self, padding: int):
        from repro.autograd import ops_shape as ops

        return ops.Pad2d.apply(self, padding=int(padding))

    def broadcast_to(self, shape):
        from repro.autograd import ops_shape as ops

        return ops.BroadcastTo.apply(self, shape=tuple(shape))


# ----------------------------------------------------------------------
# Constructors
# ----------------------------------------------------------------------
def tensor(data: Any, requires_grad: bool = False) -> Tensor:
    """Build a Tensor from array-like data (float32)."""
    return Tensor(data, requires_grad=requires_grad)


def zeros(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.zeros(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def ones(*shape: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.ones(shape, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


def randn(*shape: int, rng: np.random.Generator | None = None, requires_grad: bool = False) -> Tensor:
    from repro.utils.rng import make_rng

    rng = rng or make_rng()
    return Tensor(rng.standard_normal(shape).astype(_DEFAULT_DTYPE), requires_grad=requires_grad)


def arange(n: int, requires_grad: bool = False) -> Tensor:
    return Tensor(np.arange(n, dtype=_DEFAULT_DTYPE), requires_grad=requires_grad)


# re-export for convenience
no_grad = engine.no_grad
