"""Numerical gradient checking — the safety net under the whole engine.

Every autograd op is validated in the test-suite against central finite
differences computed here.  ``check_gradients`` runs a closure twice per
perturbed element, so keep the tensors tiny.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np


def numerical_grad(
    fn: Callable[[], "np.ndarray"],
    array: np.ndarray,
    eps: float = 1e-3,
) -> np.ndarray:
    """Central finite-difference gradient of scalar ``fn()`` w.r.t. ``array``.

    ``fn`` must read ``array`` by reference (we mutate it in place).
    """
    grad = np.zeros_like(array, dtype=np.float64)
    flat = array.reshape(-1)
    gflat = grad.reshape(-1)
    for i in range(flat.size):
        orig = flat[i]
        flat[i] = orig + eps
        f_plus = float(fn())
        flat[i] = orig - eps
        f_minus = float(fn())
        flat[i] = orig
        gflat[i] = (f_plus - f_minus) / (2.0 * eps)
    return grad


def check_gradients(
    loss_fn: Callable[[], "object"],
    tensors: list,
    eps: float = 1e-4,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> None:
    """Assert autograd gradients match finite differences for each tensor.

    Args:
        loss_fn: zero-arg closure returning a scalar ``Tensor`` built from
            ``tensors``.
        tensors: leaf tensors (``requires_grad=True``) to verify.  Build
            them with ``dtype=np.float64`` — float32 rounding swamps the
            central-difference estimate at these tolerances.

    Raises:
        AssertionError: if any gradient deviates beyond tolerance.
    """
    for t in tensors:
        t.zero_grad()
    loss = loss_fn()
    loss.backward()
    analytic = [t.grad.copy() for t in tensors]
    for t, a_grad in zip(tensors, analytic):
        n_grad = numerical_grad(lambda: loss_fn().data, t.data, eps=eps)
        np.testing.assert_allclose(
            a_grad,
            n_grad,
            atol=atol,
            rtol=rtol,
            err_msg=f"gradient mismatch for tensor of shape {t.shape}",
        )
