"""Convolution and pooling autograd operations (NCHW layout).

Conv2d supports grouped convolution (``groups > 1``) because
MobileNet-V2's depthwise layers need it; the im2col lowering is applied
per group.
"""

from __future__ import annotations

import numpy as np

from repro.autograd.engine import Function
from repro.autograd.im2col import col2im, im2col, im2col_view


class Conv2d(Function):
    """2-D convolution: x (N,C,H,W) * w (F,C/g,KH,KW) -> (N,F,Ho,Wo)."""

    def forward(self, x, w, bias=None, stride: int = 1, padding: int = 0, groups: int = 1):
        n, c, h, ww = x.shape
        f, c_per_group, kh, kw = w.shape
        if c != c_per_group * groups:
            raise ValueError(f"channel mismatch: input C={c}, weight expects {c_per_group * groups}")
        if f % groups:
            raise ValueError(f"filters ({f}) not divisible by groups ({groups})")

        cols = []
        outs = []
        f_per_group = f // groups
        for g in range(groups):
            xg = x[:, g * c_per_group : (g + 1) * c_per_group]
            wg = w[g * f_per_group : (g + 1) * f_per_group]
            col, ho, wo = im2col(xg, kh, kw, stride, padding)
            w_mat = wg.reshape(f_per_group, -1)
            out = np.einsum("fk,nkl->nfl", w_mat, col, optimize=True)
            cols.append(col)
            outs.append(out)
        out = np.concatenate(outs, axis=1).reshape(n, f, ho, wo)
        if bias is not None:
            out += bias.reshape(1, f, 1, 1)
        self.save_for_backward(x.shape, w, cols, bias is not None, stride, padding, groups)
        return np.ascontiguousarray(out)

    def backward(self, grad_out):
        x_shape, w, cols, has_bias, stride, padding, groups = self.saved
        n, c, h, ww = x_shape
        f, c_per_group, kh, kw = w.shape
        f_per_group = f // groups
        ho, wo = grad_out.shape[2], grad_out.shape[3]
        grad_flat = grad_out.reshape(n, f, ho * wo)

        grad_x_groups = []
        grad_w = np.empty_like(w)
        for g in range(groups):
            go = grad_flat[:, g * f_per_group : (g + 1) * f_per_group]
            col = cols[g]
            wg = w[g * f_per_group : (g + 1) * f_per_group].reshape(f_per_group, -1)
            grad_w_mat = np.einsum("nfl,nkl->fk", go, col, optimize=True)
            grad_w[g * f_per_group : (g + 1) * f_per_group] = grad_w_mat.reshape(
                f_per_group, c_per_group, kh, kw
            )
            grad_col = np.einsum("fk,nfl->nkl", wg, go, optimize=True)
            grad_x_groups.append(
                col2im(grad_col, (n, c_per_group, h, ww), kh, kw, stride, padding)
            )
        grad_x = np.concatenate(grad_x_groups, axis=1)
        grads = [grad_x, grad_w]
        if has_bias:
            grads.append(grad_out.sum(axis=(0, 2, 3)))
        return tuple(grads)


class MaxPool2d(Function):
    """Max pooling with square window; stride defaults to kernel size."""

    def forward(self, x, kernel: int, stride: int | None = None, padding: int = 0):
        stride = stride or kernel
        if padding:
            x = np.pad(
                x,
                ((0, 0), (0, 0), (padding, padding), (padding, padding)),
                constant_values=-np.inf,
            )
        view = im2col_view(x, kernel, kernel, stride)  # (N,C,KH,KW,Ho,Wo)
        n, c, kh, kw, ho, wo = view.shape
        windows = np.ascontiguousarray(view).reshape(n, c, kh * kw, ho, wo)
        argmax = windows.argmax(axis=2)
        out = np.take_along_axis(windows, argmax[:, :, None], axis=2)[:, :, 0]
        self.save_for_backward(x.shape, kernel, stride, padding, argmax)
        return out

    def backward(self, grad_out):
        padded_shape, kernel, stride, padding, argmax = self.saved
        n, c, hp, wp = padded_shape
        ho, wo = grad_out.shape[2], grad_out.shape[3]
        grad_padded = np.zeros(padded_shape, dtype=grad_out.dtype)
        # Scatter each window's gradient to the argmax position.
        ki, kj = np.divmod(argmax, kernel)
        oh = np.arange(ho)[None, None, :, None]
        ow = np.arange(wo)[None, None, None, :]
        rows = oh * stride + ki
        cols = ow * stride + kj
        nn = np.arange(n)[:, None, None, None]
        cc = np.arange(c)[None, :, None, None]
        np.add.at(grad_padded, (nn, cc, rows, cols), grad_out)
        if padding:
            grad_padded = grad_padded[:, :, padding:-padding, padding:-padding]
        return (grad_padded,)


class AvgPool2d(Function):
    """Average pooling with square window; stride defaults to kernel size."""

    def forward(self, x, kernel: int, stride: int | None = None):
        stride = stride or kernel
        view = im2col_view(x, kernel, kernel, stride)
        out = view.mean(axis=(2, 3), dtype=x.dtype)
        self.save_for_backward(x.shape, kernel, stride)
        return np.ascontiguousarray(out)

    def backward(self, grad_out):
        x_shape, kernel, stride = self.saved
        n, c, h, w = x_shape
        ho, wo = grad_out.shape[2], grad_out.shape[3]
        grad = np.zeros(x_shape, dtype=grad_out.dtype)
        share = grad_out / (kernel * kernel)
        for i in range(kernel):
            for j in range(kernel):
                grad[:, :, i : i + stride * ho : stride, j : j + stride * wo : stride] += share
        return (grad,)
