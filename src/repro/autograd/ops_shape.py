"""Shape-manipulation operations: reshape, permute, slice, pad, broadcast."""

from __future__ import annotations

import numpy as np

from repro.autograd.engine import Function
from repro.autograd.ops_elementwise import unbroadcast


class Reshape(Function):
    def forward(self, a, shape):
        self.save_for_backward(a.shape)
        return a.reshape(shape)

    def backward(self, grad_out):
        (in_shape,) = self.saved
        return (grad_out.reshape(in_shape),)


class Permute(Function):
    def forward(self, a, axes):
        self.save_for_backward(axes)
        return np.ascontiguousarray(np.transpose(a, axes))

    def backward(self, grad_out):
        (axes,) = self.saved
        inverse = np.argsort(axes)
        return (np.transpose(grad_out, inverse),)


class Slice(Function):
    """Basic and advanced indexing; gradients scatter-add back."""

    def forward(self, a, index):
        self.save_for_backward(a.shape, index)
        return a[index]

    def backward(self, grad_out):
        in_shape, index = self.saved
        grad = np.zeros(in_shape, dtype=grad_out.dtype)
        np.add.at(grad, index, grad_out)
        return (grad,)


class Pad2d(Function):
    """Zero-pad the last two (spatial) axes of an NCHW tensor."""

    def forward(self, a, padding: int):
        self.save_for_backward(padding)
        if padding == 0:
            return a.copy()
        pad = [(0, 0)] * (a.ndim - 2) + [(padding, padding), (padding, padding)]
        return np.pad(a, pad)

    def backward(self, grad_out):
        (p,) = self.saved
        if p == 0:
            return (grad_out,)
        return (grad_out[..., p:-p, p:-p],)


class BroadcastTo(Function):
    def forward(self, a, shape):
        self.save_for_backward(a.shape)
        return np.broadcast_to(a, shape).copy()

    def backward(self, grad_out):
        (in_shape,) = self.saved
        return (unbroadcast(grad_out, in_shape),)


class Concat(Function):
    """Concatenate tensors along an axis (used by ResNet downsampling)."""

    def forward(self, *arrays, axis: int = 0):
        self.save_for_backward(axis, [a.shape[axis] for a in arrays])
        return np.concatenate(arrays, axis=axis)

    def backward(self, grad_out):
        axis, sizes = self.saved
        splits = np.cumsum(sizes)[:-1]
        return tuple(np.ascontiguousarray(g) for g in np.split(grad_out, splits, axis=axis))
