"""Matrix-product operations (2-D and batched)."""

from __future__ import annotations

import numpy as np

from repro.autograd.engine import Function
from repro.autograd.ops_elementwise import unbroadcast


class MatMul(Function):
    """``a @ b`` with numpy matmul semantics (supports batch dims)."""

    def forward(self, a, b):
        self.save_for_backward(a, b)
        return a @ b

    def backward(self, grad_out):
        a, b = self.saved
        if a.ndim == 1:
            a2 = a[None, :]
            grad_a = (grad_out[..., None, :] @ np.swapaxes(b, -1, -2)).reshape(a.shape)
        else:
            grad_a = grad_out @ np.swapaxes(b, -1, -2) if b.ndim > 1 else np.outer(grad_out, b).reshape(a.shape)
        if b.ndim == 1:
            grad_b = (np.swapaxes(a, -1, -2) @ grad_out[..., :, None]).reshape(b.shape) if a.ndim > 1 else a * grad_out
        else:
            grad_b = np.swapaxes(a, -1, -2) @ grad_out if a.ndim > 1 else np.outer(a, grad_out)
        # matmul broadcasts batch dimensions; fold them back.
        grad_a = unbroadcast(grad_a, a.shape) if grad_a.shape != a.shape else grad_a
        grad_b = unbroadcast(grad_b, b.shape) if grad_b.shape != b.shape else grad_b
        return grad_a, grad_b


class Linear(Function):
    """Fused ``x @ w.T + bias`` — the fully-connected layer primitive.

    Fusing keeps the tape short for the classifier-heavy models (VGG-16
    has 3 FC layers with ~120M weights at full scale).
    """

    def forward(self, x, w, bias=None):
        self.save_for_backward(x, w, bias is not None)
        out = x @ w.T
        if bias is not None:
            out = out + bias
        return out

    def backward(self, grad_out):
        x, w, has_bias = self.saved
        grad_x = grad_out @ w
        grad_w = grad_out.reshape(-1, grad_out.shape[-1]).T @ x.reshape(-1, x.shape[-1])
        grads = [grad_x, grad_w]
        if has_bias:
            grads.append(grad_out.reshape(-1, grad_out.shape[-1]).sum(axis=0))
        return tuple(grads)
