"""im2col / col2im utilities for convolution lowering.

These are shared by the autograd conv op, the reference executor, and the
compiler's dense baseline kernels.  ``im2col_view`` uses stride tricks to
avoid a copy until the final reshape.
"""

from __future__ import annotations

import numpy as np


def conv_out_size(size: int, kernel: int, stride: int, padding: int) -> int:
    """Spatial output size of a convolution along one axis."""
    out = (size + 2 * padding - kernel) // stride + 1
    if out <= 0:
        raise ValueError(
            f"convolution produces non-positive output size: "
            f"input={size}, kernel={kernel}, stride={stride}, padding={padding}"
        )
    return out


def im2col_view(x: np.ndarray, kh: int, kw: int, stride: int) -> np.ndarray:
    """Strided sliding-window view of shape (N, C, KH, KW, Ho, Wo).

    ``x`` must already be padded.  The view aliases ``x``; callers must not
    write through it.
    """
    n, c, h, w = x.shape
    ho = (h - kh) // stride + 1
    wo = (w - kw) // stride + 1
    sn, sc, sh, sw = x.strides
    shape = (n, c, kh, kw, ho, wo)
    strides = (sn, sc, sh, sw, sh * stride, sw * stride)
    return np.lib.stride_tricks.as_strided(x, shape=shape, strides=strides)


def im2col(x: np.ndarray, kh: int, kw: int, stride: int, padding: int) -> tuple[np.ndarray, int, int]:
    """Lower NCHW input to columns of shape (N, C*KH*KW, Ho*Wo).

    Returns the column matrix and the output spatial dims.
    """
    if padding:
        x = np.pad(x, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    n, c, h, w = x.shape
    ho = (h - kh) // stride + 1
    wo = (w - kw) // stride + 1
    view = im2col_view(x, kh, kw, stride)
    col = np.ascontiguousarray(view).reshape(n, c * kh * kw, ho * wo)
    return col, ho, wo


def col2im(
    col: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    padding: int,
) -> np.ndarray:
    """Scatter-add columns back to an NCHW gradient (inverse of im2col)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * padding, w + 2 * padding
    ho = (hp - kh) // stride + 1
    wo = (wp - kw) // stride + 1
    col = col.reshape(n, c, kh, kw, ho, wo)
    out = np.zeros((n, c, hp, wp), dtype=col.dtype)
    for i in range(kh):
        i_end = i + stride * ho
        for j in range(kw):
            j_end = j + stride * wo
            out[:, :, i:i_end:stride, j:j_end:stride] += col[:, :, i, j]
    if padding:
        out = out[:, :, padding:-padding, padding:-padding]
    return np.ascontiguousarray(out)
