"""Minimal logging facade used across the library.

We deliberately wrap :mod:`logging` behind one function so that examples,
benchmarks, and tests all configure output the same way, and so the
library never calls ``logging.basicConfig`` on import (a bad habit for
libraries).
"""

from __future__ import annotations

import logging

_FORMAT = "%(asctime)s %(name)s %(levelname)s: %(message)s"
_configured = False


def get_logger(name: str, level: int = logging.INFO) -> logging.Logger:
    """Return a logger under the ``repro`` namespace.

    The first call installs a stream handler on the ``repro`` root logger;
    subsequent calls reuse it.  Child loggers propagate upward, so tests
    can silence everything via ``logging.getLogger('repro')``.
    """
    global _configured
    root = logging.getLogger("repro")
    if not _configured:
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter(_FORMAT, datefmt="%H:%M:%S"))
        root.addHandler(handler)
        root.setLevel(level)
        _configured = True
    if name.startswith("repro"):
        return logging.getLogger(name)
    return logging.getLogger(f"repro.{name}")
