"""Small formatting and arithmetic helpers shared by the harnesses."""

from __future__ import annotations

from collections.abc import Iterable, Sequence


def prod(values: Iterable[int]) -> int:
    """Integer product of an iterable (empty product is 1)."""
    out = 1
    for v in values:
        out *= int(v)
    return out


def human_bytes(n: float) -> str:
    """Format a byte count, e.g. ``human_bytes(553500000) == '527.8 MiB'``."""
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if abs(n) < 1024.0 or unit == "GiB":
            return f"{n:.1f} {unit}" if unit != "B" else f"{int(n)} B"
        n /= 1024.0
    raise AssertionError("unreachable")


def human_time(seconds: float) -> str:
    """Format a duration: microseconds up to minutes."""
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    return f"{seconds / 60.0:.1f} min"


def sizeof_fmt_table(rows: Sequence[Sequence[object]], headers: Sequence[str]) -> str:
    """Render rows/headers as a fixed-width text table (no deps).

    Used by benchmark harnesses to print paper-style tables.
    """
    cells = [[str(h) for h in headers]] + [[str(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    for j, row in enumerate(cells):
        line = "  ".join(c.ljust(w) for c, w in zip(row, widths))
        lines.append(line.rstrip())
        if j == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
