"""Deterministic random-number management.

Every stochastic component in the library (weight init, data synthesis,
the genetic-algorithm tuner, dropout) draws from an explicitly seeded
:class:`numpy.random.Generator`.  Centralising construction here keeps
experiments byte-reproducible across runs and platforms.
"""

from __future__ import annotations

import numpy as np

GLOBAL_SEED = 0x9A7D  # default seed; spells "PatD(NN)" loosely in hex


def make_rng(seed: int | None = None) -> np.random.Generator:
    """Return a fresh, explicitly seeded numpy Generator.

    Args:
        seed: integer seed; ``None`` falls back to :data:`GLOBAL_SEED`.
    """
    if seed is None:
        seed = GLOBAL_SEED
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from ``rng``.

    Used when a component needs to hand out reproducible sub-streams
    (e.g. one per data-loader worker or per GA island).
    """
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]
