"""Serialization of models and pruning/compiler artifacts (.npz based).

A deployed PatDNN model is the FKW arrays plus the LR metadata; this
module round-trips everything needed to ship a pruned model:

* model state dicts (:func:`save_state` / :func:`load_state`),
* pruning artifacts — pattern set + per-layer assignments
  (:func:`save_pruning` / :func:`load_pruning`),
* packed FKW layers (:func:`save_fkw` / :func:`load_fkw`).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.compiler.storage import FKWLayer
from repro.core.patterns import Pattern, PatternSet


def save_state(path: str | Path, state: dict[str, np.ndarray]) -> None:
    """Write a model state dict to ``path`` (.npz)."""
    np.savez_compressed(path, **state)


def load_state(path: str | Path) -> dict[str, np.ndarray]:
    """Read a model state dict written by :func:`save_state`."""
    with np.load(path) as data:
        return {k: data[k] for k in data.files}


def _pattern_set_meta(pattern_set: PatternSet) -> str:
    return json.dumps(
        {
            "kernel_size": pattern_set.kernel_size,
            "positions": [list(p.positions) for p in pattern_set],
        }
    )


def _pattern_set_from_meta(meta: str) -> PatternSet:
    spec = json.loads(meta)
    return PatternSet([Pattern(spec["kernel_size"], tuple(p)) for p in spec["positions"]])


def save_pruning(
    path: str | Path,
    pattern_set: PatternSet,
    assignments: dict[str, np.ndarray],
) -> None:
    """Persist the pruning stage's outputs (pattern set + assignments)."""
    arrays = {f"assignment::{name}": a for name, a in assignments.items()}
    arrays["__pattern_set__"] = np.frombuffer(
        _pattern_set_meta(pattern_set).encode(), dtype=np.uint8
    )
    np.savez_compressed(path, **arrays)


def load_pruning(path: str | Path) -> tuple[PatternSet, dict[str, np.ndarray]]:
    """Inverse of :func:`save_pruning`."""
    with np.load(path) as data:
        meta = bytes(data["__pattern_set__"]).decode()
        pattern_set = _pattern_set_from_meta(meta)
        assignments = {
            k.split("::", 1)[1]: data[k] for k in data.files if k.startswith("assignment::")
        }
    return pattern_set, assignments


def save_session_bundle(
    path: str | Path,
    state: dict[str, np.ndarray],
    pattern_set: PatternSet | None = None,
    assignments: dict[str, np.ndarray] | None = None,
) -> Path:
    """Persist everything a worker needs to rebuild an inference session.

    One ``.npz`` holding the model state dict plus (optionally) the
    pruning artifacts — the on-disk half of
    :class:`repro.runtime.session.SessionSpec`.  Pass ``pattern_set``
    and ``assignments`` together or not at all, mirroring
    ``InferenceSession``'s contract.

    Returns the path actually written: ``savez`` appends ``.npz`` to a
    suffixless path, and recording the pre-normalization path would send
    every worker's ``load`` to a file that does not exist.
    """
    if (pattern_set is None) != (not assignments):
        raise ValueError(
            "pattern_set and assignments must be provided together (compiled "
            "bundle) or both omitted (dense bundle)"
        )
    arrays = {f"state::{name}": a for name, a in state.items()}
    if pattern_set is not None and assignments:
        arrays.update({f"assignment::{name}": a for name, a in assignments.items()})
        arrays["__pattern_set__"] = np.frombuffer(
            _pattern_set_meta(pattern_set).encode(), dtype=np.uint8
        )
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    np.savez_compressed(path, **arrays)
    return path


def load_session_bundle(
    path: str | Path,
) -> tuple[dict[str, np.ndarray], PatternSet | None, dict[str, np.ndarray]]:
    """Inverse of :func:`save_session_bundle`.

    Returns ``(state, pattern_set, assignments)``; ``pattern_set`` is
    ``None`` and ``assignments`` empty for a dense bundle.  Insertion
    order of ``assignments`` is preserved (the session maps pruner layer
    names to conv nodes positionally).
    """
    state: dict[str, np.ndarray] = {}
    assignments: dict[str, np.ndarray] = {}
    pattern_set: PatternSet | None = None
    with np.load(path) as data:
        for key in data.files:
            if key.startswith("state::"):
                state[key.split("::", 1)[1]] = data[key]
            elif key.startswith("assignment::"):
                assignments[key.split("::", 1)[1]] = data[key]
            elif key == "__pattern_set__":
                pattern_set = _pattern_set_from_meta(bytes(data[key]).decode())
    return state, pattern_set, assignments


def save_fkw(path: str | Path, fkw: FKWLayer) -> None:
    """Persist one packed FKW layer (the deployable weight format)."""
    np.savez_compressed(
        path,
        shape=np.asarray(fkw.shape, dtype=np.int64),
        entries=np.asarray([fkw.entries], dtype=np.int64),
        offset=fkw.offset,
        reorder=fkw.reorder,
        index=fkw.index,
        stride=fkw.stride,
        weights=fkw.weights,
        pattern_set=np.frombuffer(_pattern_set_meta(fkw.pattern_set).encode(), dtype=np.uint8),
    )


def load_fkw(path: str | Path) -> FKWLayer:
    """Inverse of :func:`save_fkw`.

    Pattern ids are reconstructed from the stride array on first use —
    exactly what a deployed runtime would do (Figure 10 stores no
    per-kernel pattern tags).
    """
    with np.load(path) as data:
        pattern_set = _pattern_set_from_meta(bytes(data["pattern_set"]).decode())
        return FKWLayer(
            shape=tuple(int(v) for v in data["shape"]),
            entries=int(data["entries"][0]),
            offset=data["offset"],
            reorder=data["reorder"],
            index=data["index"],
            stride=data["stride"],
            weights=data["weights"],
            pattern_set=pattern_set,
        )


def save_deployment(path: str | Path, compiled) -> None:
    """Persist a whole compiled model — the deployable artifact.

    Stores every layer's FKW arrays plus the LR metadata (layer names,
    schedules, stride/kernel info) as JSON; pattern sets are stored once
    per distinct set.

    Args:
        compiled: a :class:`repro.compiler.compile.CompiledModel`.
    """
    arrays: dict[str, np.ndarray] = {}
    meta: list[dict] = []
    pattern_sets: list[str] = []
    for i, layer in enumerate(compiled.layers):
        ps_meta = _pattern_set_meta(layer.fkw.pattern_set)
        if ps_meta not in pattern_sets:
            pattern_sets.append(ps_meta)
        prefix = f"layer{i}"
        arrays[f"{prefix}::offset"] = layer.fkw.offset
        arrays[f"{prefix}::reorder"] = layer.fkw.reorder
        arrays[f"{prefix}::index"] = layer.fkw.index
        arrays[f"{prefix}::stride"] = layer.fkw.stride
        arrays[f"{prefix}::weights"] = layer.fkw.weights
        meta.append(
            {
                "name": layer.spec.name,
                "shape": list(layer.fkw.shape),
                "entries": layer.fkw.entries,
                "stride_attr": layer.spec.stride,
                "padding": layer.spec.padding,
                "pattern_set": pattern_sets.index(ps_meta),
                "lr": layer.lr.to_dict(),
            }
        )
    header = json.dumps(
        {
            "name": compiled.name,
            "device_unit": compiled.device_unit,
            "opt_level": int(compiled.opt_level),
            "layers": meta,
            "pattern_sets": pattern_sets,
        }
    )
    arrays["__meta__"] = np.frombuffer(header.encode(), dtype=np.uint8)
    np.savez_compressed(path, **arrays)


def load_deployment(path: str | Path) -> tuple[dict, list[FKWLayer]]:
    """Inverse of :func:`save_deployment`.

    Returns:
        (metadata dict, FKW layers in execution order) — enough for a
        runtime to rebuild kernels via
        :func:`repro.compiler.codegen.generate_kernel`.
    """
    with np.load(path) as data:
        meta = json.loads(bytes(data["__meta__"]).decode())
        sets = [_pattern_set_from_meta(m) for m in meta["pattern_sets"]]
        layers = []
        for i, layer_meta in enumerate(meta["layers"]):
            prefix = f"layer{i}"
            layers.append(
                FKWLayer(
                    shape=tuple(layer_meta["shape"]),
                    entries=layer_meta["entries"],
                    offset=data[f"{prefix}::offset"],
                    reorder=data[f"{prefix}::reorder"],
                    index=data[f"{prefix}::index"],
                    stride=data[f"{prefix}::stride"],
                    weights=data[f"{prefix}::weights"],
                    pattern_set=sets[layer_meta["pattern_set"]],
                )
            )
    return meta, layers
