"""Shared utilities: deterministic RNG, logging, and small helpers."""

from repro.utils.rng import GLOBAL_SEED, make_rng, spawn
from repro.utils.logging import get_logger
from repro.utils.misc import human_bytes, human_time, prod, sizeof_fmt_table

__all__ = [
    "GLOBAL_SEED",
    "make_rng",
    "spawn",
    "get_logger",
    "human_bytes",
    "human_time",
    "prod",
    "sizeof_fmt_table",
]
