"""A small Trainer: epochs, metrics history, hooks.

The ADMM solver and the masked retrainer need to intervene in the
gradient step (add proximal terms; zero masked gradients/weights), so
the loop exposes two hooks:

* ``grad_hook()``   — after backward, before ``optimizer.step()``;
* ``step_hook()``   — after ``optimizer.step()``.

Everything else (epoch accounting, eval cadence, loss history) lives
here once instead of being re-implemented per experiment.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.core.metrics import evaluate_accuracy
from repro.data.loader import DataLoader
from repro.optim import Adam
from repro.optim.base import Optimizer


@dataclass
class TrainReport:
    """Loss/accuracy trajectory of one training run."""

    epoch_losses: list[float] = field(default_factory=list)
    eval_accuracies: list[float] = field(default_factory=list)

    @property
    def final_loss(self) -> float:
        return self.epoch_losses[-1] if self.epoch_losses else float("nan")

    @property
    def best_accuracy(self) -> float:
        return max(self.eval_accuracies) if self.eval_accuracies else float("nan")


class Trainer:
    """Supervised training driver.

    Args:
        model: the network to optimise (switched to train mode per epoch).
        loader: training mini-batches.
        optimizer: defaults to Adam(lr=3e-3).
        loss_fn: defaults to cross-entropy.
        grad_hook / step_hook: optimisation-step intercepts (see module
            docstring).
        eval_data: optional (images, labels) evaluated after each epoch.
    """

    def __init__(
        self,
        model: nn.Module,
        loader: DataLoader,
        optimizer: Optimizer | None = None,
        loss_fn: nn.Module | None = None,
        grad_hook: Callable[[], None] | None = None,
        step_hook: Callable[[], None] | None = None,
        eval_data: tuple[np.ndarray, np.ndarray] | None = None,
    ) -> None:
        self.model = model
        self.loader = loader
        self.optimizer = optimizer or Adam(model.parameters(), lr=3e-3)
        self.loss_fn = loss_fn or nn.CrossEntropyLoss()
        self.grad_hook = grad_hook
        self.step_hook = step_hook
        self.eval_data = eval_data

    def run(self, epochs: int, scheduler=None) -> TrainReport:
        """Train for ``epochs``; returns the loss/accuracy history."""
        if epochs < 0:
            raise ValueError(f"epochs must be non-negative, got {epochs}")
        report = TrainReport()
        for _ in range(epochs):
            self.model.train()
            total, batches = 0.0, 0
            for xb, yb in self.loader:
                self.optimizer.zero_grad()
                loss = self.loss_fn(self.model(Tensor(xb)), yb)
                loss.backward()
                if self.grad_hook is not None:
                    self.grad_hook()
                self.optimizer.step()
                if self.step_hook is not None:
                    self.step_hook()
                total += loss.item()
                batches += 1
            report.epoch_losses.append(total / max(batches, 1))
            if scheduler is not None:
                scheduler.step()
            if self.eval_data is not None:
                images, labels = self.eval_data
                report.eval_accuracies.append(evaluate_accuracy(self.model, images, labels))
        return report
