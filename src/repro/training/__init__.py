"""High-level training loop shared by examples, benches, and tests."""

from repro.training.trainer import Trainer, TrainReport

__all__ = ["Trainer", "TrainReport"]
