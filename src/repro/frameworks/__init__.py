"""Emulated end-to-end DNN inference frameworks (evaluation baselines).

The paper benchmarks against TFLite, TVM, and MNN binaries on phones.
With neither phones nor those binaries available, each framework is
emulated as an :class:`~repro.frameworks.base.InferenceEngine` whose
behaviour is derived from two things:

1. the **optimization feature matrix of Table 1** (Winograd, fusion,
   auto-tuning, fp16, sparse support, ...), which gates which cost-model
   terms apply, and
2. a small per-engine **sustained-efficiency calibration**
   (:class:`~repro.frameworks.features.EngineProfile`) standing in for
   each framework's kernel quality, documented in DESIGN.md §2.

PatDNN itself runs in three modes — ``dense``, ``csr`` (conventional
sparse), and ``pattern`` (the full compiler pipeline) — reproducing the
paper's internal comparisons (§6.2, §6.4).
"""

from repro.frameworks.features import EngineProfile, PROFILES, feature_matrix
from repro.frameworks.base import InferenceEngine, PreparedModel, UnsupportedModelError
from repro.frameworks.engines import TFLiteEngine, TVMEngine, MNNEngine, PatDNNEngine, get_engine
from repro.frameworks.winograd import winograd_conv2d

__all__ = [
    "EngineProfile",
    "PROFILES",
    "feature_matrix",
    "InferenceEngine",
    "PreparedModel",
    "UnsupportedModelError",
    "TFLiteEngine",
    "TVMEngine",
    "MNNEngine",
    "PatDNNEngine",
    "get_engine",
    "winograd_conv2d",
]
