"""Winograd fast convolution F(2×2, 3×3).

All dense baseline runs in the paper use Winograd (§6.1); the dense
engines charge its 2.25× multiply reduction in the cost model, and this
module provides the *functional* algorithm so the claim is backed by a
correctness-tested implementation (and the Fig. 17 "without Winograd"
toggle has a concrete meaning).

Transforms (Lavin & Gray, 2016)::

    Y = A^T [ (G g G^T) ⊙ (B^T d B) ] A

with 4×4 input tiles producing 2×2 output tiles.
"""

from __future__ import annotations

import numpy as np

_B_T = np.array(
    [
        [1, 0, -1, 0],
        [0, 1, 1, 0],
        [0, -1, 1, 0],
        [0, 1, 0, -1],
    ],
    dtype=np.float32,
)
_G = np.array(
    [
        [1, 0, 0],
        [0.5, 0.5, 0.5],
        [0.5, -0.5, 0.5],
        [0, 0, 1],
    ],
    dtype=np.float32,
)
_A_T = np.array(
    [
        [1, 1, 1, 0],
        [0, 1, -1, -1],
    ],
    dtype=np.float32,
)


def winograd_transform_weights(weight: np.ndarray) -> np.ndarray:
    """(F, C, 3, 3) -> (F, C, 4, 4) transformed filters (G g G^T)."""
    if weight.shape[-2:] != (3, 3):
        raise ValueError(f"Winograd F(2,3) needs 3x3 kernels, got {weight.shape}")
    return np.einsum("ij,fcjk,lk->fcil", _G, weight, _G, optimize=True)


def winograd_conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None = None, padding: int = 1) -> np.ndarray:
    """Stride-1 3×3 convolution via F(2×2, 3×3) tiles.

    Args:
        x: (N, C, H, W) input.
        weight: (F, C, 3, 3) filters.

    Returns:
        (N, F, Ho, Wo) output, identical (to fp rounding) to direct conv.
    """
    n, c, h, w = x.shape
    f = weight.shape[0]
    ho, wo = h + 2 * padding - 2, w + 2 * padding - 2
    # Pad so the tile grid covers the output evenly.
    tiles_h = (ho + 1) // 2
    tiles_w = (wo + 1) // 2
    need_h = 2 * tiles_h + 2
    need_w = 2 * tiles_w + 2
    xp = np.pad(
        x,
        (
            (0, 0),
            (0, 0),
            (padding, need_h - h - padding),
            (padding, need_w - w - padding),
        ),
    )
    u = winograd_transform_weights(weight)  # (F, C, 4, 4)

    # Gather all 4x4 input tiles: (N, C, T_h, T_w, 4, 4)
    sn, sc, sh, sw = xp.strides
    tiles = np.lib.stride_tricks.as_strided(
        xp,
        shape=(n, c, tiles_h, tiles_w, 4, 4),
        strides=(sn, sc, 2 * sh, 2 * sw, sh, sw),
    )
    v = np.einsum("ij,nctujk,lk->nctuil", _B_T, tiles, _B_T, optimize=True)
    # Elementwise products summed over channels: (N, F, T_h, T_w, 4, 4)
    m = np.einsum("fcil,nctuil->nftuil", u, v, optimize=True)
    y = np.einsum("ij,nftujk,lk->nftuil", _A_T, m, _A_T, optimize=True)  # (..., 2, 2)
    out = y.transpose(0, 1, 2, 4, 3, 5).reshape(n, f, tiles_h * 2, tiles_w * 2)
    out = out[:, :, :ho, :wo]
    if bias is not None:
        out = out + bias.reshape(1, f, 1, 1)
    return np.ascontiguousarray(out.astype(np.float32))
