"""Engine feature matrix (paper Table 1) and sustained-efficiency profiles.

The feature booleans gate cost-model terms (Winograd factor, fusion's
extra activation pass, tuned vs. default schedules, fp16).  The
utilization numbers are the only free calibration in the whole
performance stack: they stand in for each framework's hand-written
kernel quality, chosen once so the dense baselines land near the paper's
absolute latencies on Snapdragon 855, and never varied per experiment
(see DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class EngineProfile:
    """Per-framework behaviour description.

    Attributes:
        name: canonical engine name.
        cpu_utilization / gpu_utilization: sustained fraction of peak MAC
            throughput of the engine's *dense* kernels.
        sparse_efficiency_cpu / _gpu: issue efficiency of PatDNN's
            generated sparse code (only meaningful for PatDNN).
        has_winograd / has_fusion / has_tuning / supports_fp16 /
        supports_sparse: Table 1 knobs.
        per_op_overhead_*_ms: graph-interpreter dispatch cost per layer.
        gpu_weight_limit_mb: job rejected above this (TFLite's VGG case).
        arch_efficiency: GPU-family multiplier on gpu_utilization —
            vendor-tuned dense kernels travel badly across Adreno/Mali
            (§6.5); PatDNN's register-level code travels well.
    """

    name: str
    cpu_utilization: float
    gpu_utilization: float
    has_winograd: bool = True
    has_fusion: bool = True
    has_tuning: bool = False
    hand_optimized_kernels: bool = False  # well-unrolled manual kernels
    supports_fp16: bool = True
    supports_sparse: bool = False
    sparse_efficiency_cpu: float = 0.0
    sparse_efficiency_gpu: float = 0.0
    per_op_overhead_cpu_ms: float = 0.05
    per_op_overhead_gpu_ms: float = 0.01
    gpu_weight_limit_mb: float | None = None
    arch_efficiency: dict = field(default_factory=lambda: {"adreno": 1.0, "mali": 1.0})

    def utilization(self, unit: str, gpu_arch: str = "adreno") -> float:
        if unit == "cpu":
            return self.cpu_utilization
        return self.gpu_utilization * self.arch_efficiency.get(gpu_arch, 1.0)

    def sparse_efficiency(self, unit: str, gpu_arch: str = "adreno") -> float:
        if unit == "cpu":
            return self.sparse_efficiency_cpu
        return self.sparse_efficiency_gpu * self.arch_efficiency.get(gpu_arch, 1.0)


TFLITE = EngineProfile(
    name="tflite",
    cpu_utilization=0.08,
    gpu_utilization=0.025,
    has_tuning=False,
    per_op_overhead_cpu_ms=0.15,
    per_op_overhead_gpu_ms=0.02,
    gpu_weight_limit_mb=260.0,  # VGG/ImageNet exceeds it in fp16 (paper fn. 3)
    arch_efficiency={"adreno": 1.0, "mali": 0.50},
)

TVM = EngineProfile(
    name="tvm",
    cpu_utilization=0.28,
    gpu_utilization=0.033,
    has_tuning=True,
    per_op_overhead_cpu_ms=0.05,
    per_op_overhead_gpu_ms=0.01,
    arch_efficiency={"adreno": 1.0, "mali": 0.30},
)

MNN = EngineProfile(
    name="mnn",
    cpu_utilization=0.35,
    gpu_utilization=0.045,
    has_tuning=False,  # Table 1: no parameter auto-tuning
    hand_optimized_kernels=True,  # MNN ships hand-vectorised kernels
    per_op_overhead_cpu_ms=0.04,
    per_op_overhead_gpu_ms=0.01,
    arch_efficiency={"adreno": 1.0, "mali": 0.45},
)

PATDNN = EngineProfile(
    name="patdnn",
    cpu_utilization=0.42,  # dense mode: 1.1–1.6× faster than TVM/MNN (§6.2)
    gpu_utilization=0.055,
    has_tuning=True,
    hand_optimized_kernels=True,
    supports_sparse=True,
    sparse_efficiency_cpu=0.70,
    sparse_efficiency_gpu=0.45,
    per_op_overhead_cpu_ms=0.02,
    per_op_overhead_gpu_ms=0.005,
    arch_efficiency={"adreno": 1.0, "mali": 0.80},
)

PROFILES: dict[str, EngineProfile] = {p.name: p for p in (TFLITE, TVM, MNN, PATDNN)}


def feature_matrix() -> dict[str, dict[str, bool]]:
    """Table 1 reconstruction: optimization knob → engine → supported."""
    rows = {
        "parameters_auto_tuning": {"tflite": False, "tvm": True, "mnn": False, "patdnn": True},
        "cpu_gpu_support": {"tflite": True, "tvm": True, "mnn": True, "patdnn": True},
        "half_float_support": {"tflite": True, "tvm": True, "mnn": True, "patdnn": True},
        "computation_graph_opt": {"tflite": True, "tvm": True, "mnn": True, "patdnn": True},
        "tensor_opt": {"tflite": True, "tvm": True, "mnn": True, "patdnn": True},
        "sparse_model_support": {"tflite": False, "tvm": False, "mnn": False, "patdnn": True},
        "pattern_based_pruning": {"tflite": False, "tvm": False, "mnn": False, "patdnn": True},
        "connectivity_pruning": {"tflite": False, "tvm": False, "mnn": False, "patdnn": True},
        "filter_kernel_reordering": {"tflite": False, "tvm": False, "mnn": False, "patdnn": True},
        "opt_sparse_kernel_codegen": {"tflite": False, "tvm": False, "mnn": False, "patdnn": True},
        "sparse_auto_tuning": {"tflite": False, "tvm": False, "mnn": False, "patdnn": True},
    }
    return rows
