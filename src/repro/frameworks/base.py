"""Inference-engine interface shared by all emulated frameworks."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.frameworks.features import EngineProfile
from repro.hardware.cost_model import CostBreakdown, ConvCostModel, ConvWorkload, SchedParams
from repro.hardware.device import DeviceSpec
from repro.models.spec import ModelSpec


class UnsupportedModelError(RuntimeError):
    """Raised when an engine cannot run a model (e.g. TFLite GPU + VGG)."""


@dataclass
class PreparedModel:
    """A model prepared by an engine for a device/unit.

    Attributes:
        engine_name / model_name / unit: identification.
        layer_costs: per-conv-layer cost breakdowns.
        per_op_overhead_ms: dispatch overhead already included per layer.
    """

    engine_name: str
    model_name: str
    unit: str
    layer_costs: list[CostBreakdown] = field(default_factory=list)
    layer_names: list[str] = field(default_factory=list)

    @property
    def latency_ms(self) -> float:
        """End-to-end CONV latency (the paper's measured quantity)."""
        return sum(c.total_ms for c in self.layer_costs)

    @property
    def gflops(self) -> float:
        """Aggregate achieved GFLOPS over all conv layers."""
        total_flops = sum(c.detail.get("true_flops", 0.0) for c in self.layer_costs)
        secs = self.latency_ms / 1e3
        return total_flops / secs / 1e9 if secs > 0 else 0.0


class InferenceEngine:
    """Base class: prepare a ModelSpec for a device and report latency."""

    def __init__(self, profile: EngineProfile, device: DeviceSpec, unit: str = "cpu") -> None:
        if unit not in ("cpu", "gpu"):
            raise ValueError(f"unit must be 'cpu' or 'gpu', got {unit!r}")
        self.profile = profile
        self.device = device
        self.unit = unit

    @property
    def name(self) -> str:
        return self.profile.name

    def _cost_model(self) -> ConvCostModel:
        arch = self.device.gpu.arch
        overhead = (
            self.profile.per_op_overhead_cpu_ms
            if self.unit == "cpu"
            else self.profile.per_op_overhead_gpu_ms
        )
        return ConvCostModel(
            self.device,
            self.unit,
            utilization=self.profile.utilization(self.unit, arch),
            sparse_efficiency=max(1e-6, self.profile.sparse_efficiency(self.unit, arch)),
            fp16=self.profile.supports_fp16 and self.unit == "gpu",
            per_op_overhead_ms=overhead,
        )

    def _dense_schedule(self) -> SchedParams:
        """Library kernels: tuned engines run blocked/unrolled schedules."""
        if self.profile.has_tuning or self.profile.hand_optimized_kernels:
            return SchedParams(tile_oc=32, tile_oh=8, tile_ow=8, unroll_oc=4, unroll_ow=2, blocked=True)
        return SchedParams(unroll_oc=2, unroll_ow=1, blocked=True)

    def prepare(self, spec: ModelSpec) -> PreparedModel:
        """Dense preparation path (baselines); PatDNN overrides."""
        self._check_memory(spec)
        cm = self._cost_model()
        sched = self._dense_schedule()
        prepared = PreparedModel(self.name, f"{spec.name}-{spec.dataset}", self.unit)
        for conv in spec.convs:
            work = ConvWorkload.dense(
                conv,
                winograd=self.profile.has_winograd,
                fused_activation=self.profile.has_fusion,
            )
            cost = cm.estimate(work, sched)
            cost.detail["true_flops"] = float(conv.flops)
            prepared.layer_costs.append(cost)
            prepared.layer_names.append(conv.name)
        return prepared

    def _check_memory(self, spec: ModelSpec) -> None:
        limit = self.profile.gpu_weight_limit_mb
        if self.unit == "gpu" and limit is not None:
            elem = 2 if self.profile.supports_fp16 else 4
            weight_mb = spec.total_weight_count * elem / 1e6
            if weight_mb > limit:
                raise UnsupportedModelError(
                    f"{self.name} cannot run {spec.name}/{spec.dataset} on GPU: "
                    f"weights {weight_mb:.0f} MB exceed the {limit:.0f} MB limit"
                )
