"""Concrete engines: TFLite / TVM / MNN baselines and the PatDNN engine.

Baselines differ only by their :class:`EngineProfile` (Table 1 features
+ calibration).  ``PatDNNEngine`` adds the three execution modes of the
paper's internal comparisons:

* ``dense``   — PatDNN's own optimized dense kernels (Fig. 17a),
* ``csr``     — conventional sparse execution over CSR, which the paper
  shows runs at roughly dense speed (§6.2),
* ``pattern`` — the full pattern-pruning + compiler pipeline.
"""

from __future__ import annotations

import numpy as np

from repro.compiler.compile import OptLevel, compile_model
from repro.compiler.lre import loads_without_patterns
from repro.compiler.storage import CSRLayer
from repro.core.patterns import PatternSet, enumerate_candidate_patterns, mine_pattern_set
from repro.core.projections import connectivity_budget, project_connectivity, project_magnitude
from repro.frameworks.base import InferenceEngine, PreparedModel
from repro.frameworks.features import MNN, PATDNN, PROFILES, TFLITE, TVM
from repro.hardware.cost_model import ConvWorkload
from repro.hardware.device import DeviceSpec
from repro.models.spec import ModelSpec
from repro.utils.rng import make_rng


class TFLiteEngine(InferenceEngine):
    """TensorFlow Lite baseline (dense only)."""

    def __init__(self, device: DeviceSpec, unit: str = "cpu") -> None:
        super().__init__(TFLITE, device, unit)


class TVMEngine(InferenceEngine):
    """TVM baseline (dense, auto-tuned)."""

    def __init__(self, device: DeviceSpec, unit: str = "cpu") -> None:
        super().__init__(TVM, device, unit)


class MNNEngine(InferenceEngine):
    """Alibaba Mobile Neural Network baseline (dense)."""

    def __init__(self, device: DeviceSpec, unit: str = "cpu") -> None:
        super().__init__(MNN, device, unit)


class PatDNNEngine(InferenceEngine):
    """Our engine: dense, CSR-sparse, or pattern-compiled execution."""

    def __init__(
        self,
        device: DeviceSpec,
        unit: str = "cpu",
        mode: str = "pattern",
        connectivity_rate: float | None = 3.6,
        num_patterns: int = 8,
        opt_level: OptLevel = OptLevel.TUNE,
        seed: int = 0,
    ) -> None:
        super().__init__(PATDNN, device, unit)
        if mode not in ("dense", "csr", "pattern"):
            raise ValueError(f"mode must be dense/csr/pattern, got {mode!r}")
        self.mode = mode
        self.connectivity_rate = connectivity_rate
        self.num_patterns = num_patterns
        self.opt_level = opt_level
        self.seed = seed

    # ------------------------------------------------------------------
    def default_pattern_set(self, spec: ModelSpec) -> PatternSet:
        """Mine a pattern set from Kaiming-initialised 3×3 layers.

        Structural experiments have no trained weights; natural-pattern
        frequencies over random weights give a deterministic, valid set
        (accuracy experiments mine from trained models instead).
        """
        rng = make_rng(self.seed)
        convs = spec.conv_3x3()
        if not convs:
            return PatternSet(enumerate_candidate_patterns()[: self.num_patterns])
        tensors = [c.make_weights(rng) for c in convs[: min(4, len(convs))]]
        return mine_pattern_set(tensors, k=self.num_patterns)

    def prepare(self, spec: ModelSpec, pattern_set: PatternSet | None = None) -> PreparedModel:
        if self.mode == "dense":
            return super().prepare(spec)
        if self.mode == "csr":
            return self._prepare_csr(spec)
        return self._prepare_pattern(spec, pattern_set)

    # ------------------------------------------------------------------
    def _prepare_pattern(self, spec: ModelSpec, pattern_set: PatternSet | None) -> PreparedModel:
        pattern_set = pattern_set or self.default_pattern_set(spec)
        cm = self._cost_model()
        compiled = compile_model(
            spec,
            pattern_set,
            cm,
            connectivity_rate=self.connectivity_rate,
            opt_level=self.opt_level,
            seed=self.seed,
        )
        prepared = PreparedModel(self.name, f"{spec.name}-{spec.dataset}", self.unit)
        for layer in compiled.layers:
            sched = layer.schedule.to_sched_params() if self.opt_level >= OptLevel.TUNE else None
            cost = cm.estimate(layer.workload, sched)
            cost.detail["true_flops"] = float(2 * layer.fkw.nnz * layer.spec.out_hw**2)
            prepared.layer_costs.append(cost)
            prepared.layer_names.append(layer.spec.name)
        prepared.compiled = compiled  # type: ignore[attr-defined]
        return prepared

    def _prepare_csr(self, spec: ModelSpec) -> PreparedModel:
        """Magnitude-pruned CSR execution (the paper's negative result)."""
        rng = make_rng(self.seed)
        cm = self._cost_model()
        rate = (self.connectivity_rate or 3.6) * 2.25  # match pattern nnz
        prepared = PreparedModel(self.name + "-csr", f"{spec.name}-{spec.dataset}", self.unit)
        for conv in spec.convs:
            w = conv.make_weights(rng)
            keep = max(1, int(round(w.size / rate)))
            w, _ = project_magnitude(w, keep)
            csr = CSRLayer.from_dense(w)
            lengths = np.diff(csr.indptr).astype(np.float64)
            # Streaming CSR: the row loop predicts well (branchy=False) but
            # every scalar FMA gathers its input element (1 load/FMA at a
            # cache-hostile x2 cost) and SIMD is unusable (vectorized=False)
            # — the §6.2 "CSR runs at roughly dense speed" result.
            gathers = csr.nnz * conv.out_hw * conv.out_hw
            work = ConvWorkload(
                spec=conv,
                nnz_weights=csr.nnz,
                nonzero_kernels=conv.kernel_count,
                filter_lengths=lengths,
                branchy=False,
                register_loads=gathers,
                weight_bytes=csr.total_bytes(),
                winograd=False,
                fused_activation=self.profile.has_fusion,
                sparse=True,
                vectorized=False,
                warp_divergence=4.0,  # irregular row lengths diverge warps
                load_cost_multiplier=2.0,
            )
            cost = cm.estimate(work)
            cost.detail["true_flops"] = float(2 * csr.nnz * conv.out_hw**2)
            prepared.layer_costs.append(cost)
            prepared.layer_names.append(conv.name)
        return prepared


_ENGINES = {
    "tflite": TFLiteEngine,
    "tvm": TVMEngine,
    "mnn": MNNEngine,
    "patdnn": PatDNNEngine,
}


def get_engine(name: str, device: DeviceSpec, unit: str = "cpu", **kwargs) -> InferenceEngine:
    """Engine factory by name ('tflite' | 'tvm' | 'mnn' | 'patdnn')."""
    key = name.lower()
    if key not in _ENGINES:
        raise KeyError(f"unknown engine {name!r}; known: {sorted(_ENGINES)}")
    return _ENGINES[key](device, unit, **kwargs)
