"""Compression and sparsity accounting (Table 4 / Table 5 quantities)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.nn.functional import accuracy


def compression_rate(model: nn.Module, conv_only: bool = True) -> float:
    """Total weights / non-zero weights over (conv) layers.

    The paper's "CONV compression rate" column (Table 4) counts only
    convolution weights.
    """
    total = 0
    nonzero = 0
    for _, module in model.named_modules():
        if isinstance(module, nn.Conv2d) or (not conv_only and isinstance(module, nn.Linear)):
            w = module.weight.data
            total += w.size
            nonzero += int(np.count_nonzero(w))
    if nonzero == 0:
        raise ValueError("model has no non-zero weights")
    return total / nonzero


def count_nonzero_kernels(weights: np.ndarray) -> int:
    """Number of kernels with at least one surviving weight."""
    f, c = weights.shape[:2]
    energy = (weights.reshape(f, c, -1) ** 2).sum(axis=2)
    return int(np.count_nonzero(energy))


def pattern_histogram(assignment: np.ndarray) -> dict[int, int]:
    """Count kernels per pattern id (0 = connectivity-pruned)."""
    ids, counts = np.unique(assignment, return_counts=True)
    return {int(i): int(n) for i, n in zip(ids, counts)}


@dataclass
class LayerSparsity:
    name: str
    total_weights: int
    nonzero_weights: int
    total_kernels: int
    nonzero_kernels: int

    @property
    def weight_rate(self) -> float:
        return self.total_weights / max(self.nonzero_weights, 1)

    @property
    def kernel_rate(self) -> float:
        return self.total_kernels / max(self.nonzero_kernels, 1)


def sparsity_report(model: nn.Module) -> list[LayerSparsity]:
    """Per-conv-layer sparsity inventory."""
    report = []
    for name, module in model.named_modules():
        if not isinstance(module, nn.Conv2d):
            continue
        w = module.weight.data
        f, c = w.shape[:2]
        report.append(
            LayerSparsity(
                name=name,
                total_weights=w.size,
                nonzero_weights=int(np.count_nonzero(w)),
                total_kernels=f * c,
                nonzero_kernels=count_nonzero_kernels(w),
            )
        )
    return report


def evaluate_accuracy(model: nn.Module, images: np.ndarray, labels: np.ndarray, topk: int = 1, batch: int = 256) -> float:
    """Eval-mode top-k accuracy over a dataset array."""
    model.eval()
    hits = 0.0
    seen = 0
    with no_grad():
        for start in range(0, len(labels), batch):
            xb = images[start : start + batch]
            yb = labels[start : start + batch]
            logits = model(Tensor(xb)).data
            hits += accuracy(logits, yb, topk=topk) * len(yb)
            seen += len(yb)
    model.train()
    return hits / max(seen, 1)
