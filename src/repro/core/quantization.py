"""Weight quantization companions to pattern pruning.

The paper runs all GPU experiments in 16-bit floats (§2.2, §6.1) and
builds on ADMM-NN, which performs joint pruning *and* quantization; this
module supplies that companion capability:

* :func:`quantize_fp16` — the paper's GPU numeric format;
* :func:`quantize_int8` — symmetric per-filter int8 with scales, the
  standard mobile deployment format (an 'extension' the paper defers to
  ADMM-NN);
* :class:`QuantizedFKW` — FKW whose weight array is stored quantized,
  with byte accounting used by the storage benches.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.compiler.storage import FKWLayer


def quantize_fp16(weights: np.ndarray) -> tuple[np.ndarray, float]:
    """Cast to IEEE fp16; returns (fp16 array, max abs rounding error)."""
    q = weights.astype(np.float16)
    err = float(np.max(np.abs(q.astype(np.float32) - weights))) if weights.size else 0.0
    return q, err


def quantize_int8(
    weights: np.ndarray, axis: int = 0
) -> tuple[np.ndarray, np.ndarray]:
    """Symmetric per-slice int8 quantization along ``axis``.

    Returns (int8 values, float32 scales) with
    ``dequantize = values * scales`` broadcast along ``axis``.
    """
    if weights.size == 0:
        return weights.astype(np.int8), np.ones(1, dtype=np.float32)
    moved = np.moveaxis(weights, axis, 0)
    flat = moved.reshape(moved.shape[0], -1)
    scales = np.abs(flat).max(axis=1) / 127.0
    scales[scales == 0] = 1.0
    q = np.clip(np.round(flat / scales[:, None]), -127, 127).astype(np.int8)
    q = np.moveaxis(q.reshape(moved.shape), 0, axis)
    return q, scales.astype(np.float32)


def dequantize_int8(values: np.ndarray, scales: np.ndarray, axis: int = 0) -> np.ndarray:
    """Inverse of :func:`quantize_int8`."""
    moved = np.moveaxis(values.astype(np.float32), axis, 0)
    out = moved * scales.reshape((-1,) + (1,) * (moved.ndim - 1))
    return np.moveaxis(out, 0, axis)


@dataclass
class QuantizedFKW:
    """An FKW layer with its weight array quantized.

    Per-kernel int8 scales ride alongside the Figure 10 arrays; the
    index structures are untouched, so the compression stacks with the
    pruning (4 B → 1 B per surviving weight plus one scale per kernel).
    """

    fkw: FKWLayer
    dtype: str  # 'fp16' | 'int8'
    values: np.ndarray
    scales: np.ndarray | None = None

    @classmethod
    def from_fkw(cls, fkw: FKWLayer, dtype: str = "fp16") -> "QuantizedFKW":
        if dtype == "fp16":
            values, _ = quantize_fp16(fkw.weights)
            return cls(fkw=fkw, dtype=dtype, values=values)
        if dtype == "int8":
            values, scales = quantize_int8(fkw.weights, axis=0)  # per kernel
            # fp16 scales: with only `entries` weights per kernel, fp32
            # scales would cancel half the int8 savings.
            return cls(fkw=fkw, dtype=dtype, values=values, scales=scales.astype(np.float16))
        raise ValueError(f"dtype must be 'fp16' or 'int8', got {dtype!r}")

    def dequantized_weights(self) -> np.ndarray:
        if self.dtype == "fp16":
            return self.values.astype(np.float32)
        return dequantize_int8(self.values, self.scales.astype(np.float32), axis=0)

    def to_dense(self) -> np.ndarray:
        """Dense reconstruction through the dequantized weights."""
        restored = FKWLayer(
            shape=self.fkw.shape,
            entries=self.fkw.entries,
            offset=self.fkw.offset,
            reorder=self.fkw.reorder,
            index=self.fkw.index,
            stride=self.fkw.stride,
            weights=self.dequantized_weights(),
            pattern_set=self.fkw.pattern_set,
        )
        return restored.to_dense()

    def weight_bytes(self) -> int:
        scale_bytes = self.scales.nbytes if self.scales is not None else 0
        return self.values.nbytes + scale_bytes

    def total_bytes(self) -> int:
        return self.fkw.overhead_bytes() + self.weight_bytes()

    def max_error(self) -> float:
        """Max abs weight distortion introduced by quantization."""
        if self.fkw.weights.size == 0:
            return 0.0
        return float(np.max(np.abs(self.dequantized_weights() - self.fkw.weights)))
