"""Extended ADMM solution framework (paper §4.2).

The pruning problem

    minimize  f({W}, {b})
    s.t.      W_k ∈ S_k (pattern set)  and  W_k ∈ S'_k (connectivity)

is decomposed with auxiliary variables Z (pattern constraint) and Y
(connectivity constraint) and scaled duals U, V.  Each ADMM iteration:

1. **Subproblem 1** — a few epochs of SGD/Adam on
   ``f + ρ/2 ‖W − Z + U‖² + ρ/2 ‖W − Y + V‖²``.  The quadratic terms
   contribute gradient ``ρ(W − Z + U) + ρ(W − Y + V)`` which we add
   directly to the data-loss gradients (cheaper than taping them).
2. **Subproblem 2** — ``Z ← Π_pattern(W + U)``: per kernel, the best
   pattern in the candidate set by retained L2 (closed form).
3. **Subproblem 3** — ``Y ← Π_connectivity(W + V)``: keep top-α kernels
   by L2 norm (closed form).
4. **Dual update** — ``U += W − Z``, ``V += W − Y``.

The per-layer state lives in :class:`_LayerState`; layers without a 3×3
kernel (or excluded by the caller) only get the connectivity constraint,
mirroring the paper's ResNet treatment (§4.3: pattern pruning on 3×3,
connectivity on all convs).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.core.patterns import PatternSet
from repro.core.projections import (
    connectivity_budget,
    project_connectivity,
    project_kernel_pattern,
)
from repro.data.loader import DataLoader
from repro.optim import Adam
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class ADMMConfig:
    """Hyperparameters of the extended ADMM solver.

    Attributes:
        rho: augmented-Lagrangian penalty (paper uses layer-wise ρk; a
            single value suffices at our scale).
        iterations: number of ADMM outer iterations.
        epochs_per_iteration: SGD epochs spent on subproblem 1 per
            iteration (the paper caps total epochs at 120).
        lr: Adam learning rate for subproblem 1.
        connectivity_rate: uniform kernel-count reduction (e.g. 3.6);
            ``None`` disables connectivity pruning.
        first_layer_connectivity_rate: gentler rate for the first conv
            (paper §4.2: first layer is smaller and more sensitive).
        pattern_kernel_size: kernels with this size receive the pattern
            constraint (3 in the paper).
    """

    rho: float = 1e-2
    iterations: int = 6
    epochs_per_iteration: int = 2
    lr: float = 2e-3
    connectivity_rate: float | None = 3.6
    first_layer_connectivity_rate: float | None = 2.0
    pattern_kernel_size: int = 3


@dataclass
class _LayerState:
    """ADMM auxiliary/dual variables for one conv layer."""

    module: nn.Conv2d
    name: str
    use_pattern: bool
    keep_kernels: int | None  # None = no connectivity constraint
    z: np.ndarray | None = None
    u: np.ndarray | None = None
    y: np.ndarray | None = None
    v: np.ndarray | None = None
    assignment: np.ndarray | None = None  # (F, C) pattern ids
    keep_mask: np.ndarray | None = None  # (F, C) connectivity mask

    def init_variables(self, pattern_set: PatternSet | None) -> None:
        w = self.module.weight.data
        if self.use_pattern:
            if pattern_set is None:
                raise ValueError("pattern constraint requested without a pattern set")
            self.z, self.assignment = project_kernel_pattern(w, pattern_set)
            self.u = np.zeros_like(w)
        if self.keep_kernels is not None:
            self.y, self.keep_mask = project_connectivity(w, self.keep_kernels)
            self.v = np.zeros_like(w)


@dataclass
class ADMMReport:
    """Convergence diagnostics collected per outer iteration."""

    pattern_residuals: list[float] = field(default_factory=list)
    connectivity_residuals: list[float] = field(default_factory=list)
    losses: list[float] = field(default_factory=list)


class ADMMPruner:
    """Run the extended ADMM framework over a model's conv layers.

    Usage::

        pruner = ADMMPruner(model, pattern_set, config)
        report = pruner.run(train_loader, loss_fn)
        masks  = pruner.hard_masks()   # for masked retraining
    """

    def __init__(
        self,
        model: nn.Module,
        pattern_set: PatternSet | None,
        config: ADMMConfig | None = None,
        exclude: tuple[str, ...] = (),
    ) -> None:
        self.model = model
        self.pattern_set = pattern_set
        self.config = config or ADMMConfig()
        self.layers: list[_LayerState] = []
        conv_index = 0
        for name, module in model.named_modules():
            if not isinstance(module, nn.Conv2d) or name in exclude:
                continue
            use_pattern = (
                pattern_set is not None
                and module.kernel_size == self.config.pattern_kernel_size
                and module.groups == 1
            )
            rate = self.config.connectivity_rate
            if conv_index == 0 and rate is not None:
                rate = self.config.first_layer_connectivity_rate or rate
            keep = None
            if rate is not None and module.groups == 1:
                keep = connectivity_budget(module.weight.data.shape, rate)
            state = _LayerState(module, name, use_pattern, keep)
            state.init_variables(pattern_set)
            self.layers.append(state)
            conv_index += 1
        if not self.layers:
            raise ValueError("model has no prunable Conv2d layers")

    # ------------------------------------------------------------------
    # ADMM iterations
    # ------------------------------------------------------------------
    def _penalty_gradients(self) -> None:
        """Add ρ(W−Z+U) + ρ(W−Y+V) to each constrained layer's gradient."""
        rho = self.config.rho
        for st in self.layers:
            w = st.module.weight
            if w.grad is None:
                continue
            if st.z is not None:
                w.grad += rho * (w.data - st.z + st.u)
            if st.y is not None:
                w.grad += rho * (w.data - st.y + st.v)

    def _project_and_update_duals(self) -> tuple[float, float]:
        """Subproblems 2–3 and dual updates; returns (pattern, conn) residuals."""
        pat_res = 0.0
        conn_res = 0.0
        for st in self.layers:
            w = st.module.weight.data
            if st.z is not None:
                st.z, st.assignment = project_kernel_pattern(w + st.u, self.pattern_set)
                st.u = st.u + w - st.z
                pat_res += float(np.sum((w - st.z) ** 2))
            if st.y is not None:
                st.y, st.keep_mask = project_connectivity(w + st.v, st.keep_kernels)
                st.v = st.v + w - st.y
                conn_res += float(np.sum((w - st.y) ** 2))
        return np.sqrt(pat_res), np.sqrt(conn_res)

    def run(
        self,
        loader: DataLoader,
        loss_fn: nn.Module | None = None,
        optimizer=None,
    ) -> ADMMReport:
        """Execute all ADMM iterations; the model is updated in place."""
        loss_fn = loss_fn or nn.CrossEntropyLoss()
        optimizer = optimizer or Adam(self.model.parameters(), lr=self.config.lr)
        report = ADMMReport()
        self.model.train()
        for it in range(self.config.iterations):
            epoch_loss = 0.0
            batches = 0
            for _ in range(self.config.epochs_per_iteration):
                for xb, yb in loader:
                    optimizer.zero_grad()
                    loss = loss_fn(self.model(Tensor(xb)), yb)
                    loss.backward()
                    self._penalty_gradients()
                    optimizer.step()
                    epoch_loss += loss.item()
                    batches += 1
            pat_res, conn_res = self._project_and_update_duals()
            report.losses.append(epoch_loss / max(batches, 1))
            report.pattern_residuals.append(pat_res)
            report.connectivity_residuals.append(conn_res)
            logger.debug(
                "ADMM iter %d: loss=%.4f ‖W−Z‖=%.4f ‖W−Y‖=%.4f",
                it,
                report.losses[-1],
                pat_res,
                conn_res,
            )
        return report

    # ------------------------------------------------------------------
    # Hard projection for masked retraining
    # ------------------------------------------------------------------
    def hard_masks(self) -> dict[str, np.ndarray]:
        """Final combined float masks per layer (pattern ∧ connectivity).

        Also hard-projects the live weights so the model is immediately
        consistent with the masks.
        """
        masks: dict[str, np.ndarray] = {}
        for st in self.layers:
            w = st.module.weight.data
            mask = np.ones_like(w)
            if st.use_pattern:
                _, st.assignment = project_kernel_pattern(w, self.pattern_set)
                mask *= self.pattern_set.masks_for(st.assignment)
            if st.keep_kernels is not None:
                # Connectivity decided on pattern-masked energy so the two
                # constraints compose coherently.
                _, st.keep_mask = project_connectivity(w * mask, st.keep_kernels)
                mask *= st.keep_mask[:, :, None, None]
            st.module.weight.data = (w * mask).astype(w.dtype)
            masks[st.name] = mask
        return masks

    def assignments(self) -> dict[str, np.ndarray]:
        """Per-layer (F, C) pattern-id arrays (0 where kernel pruned)."""
        out: dict[str, np.ndarray] = {}
        for st in self.layers:
            if st.assignment is None:
                continue
            ids = st.assignment.copy()
            if st.keep_mask is not None:
                ids = ids * st.keep_mask.astype(ids.dtype)
            out[st.name] = ids
        return out
