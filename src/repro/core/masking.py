"""Masked mapping and retraining (final stage of Figure 6).

After ADMM regularisation the weights are hard-projected onto the
constraint sets; the resulting zero pattern is frozen as a set of masks
and the surviving weights are fine-tuned on the task loss.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.core.patterns import PatternSet
from repro.core.projections import (
    connectivity_budget,
    project_connectivity,
    project_kernel_pattern,
)
from repro.data.loader import DataLoader
from repro.optim import Adam
from repro.optim.base import Optimizer


def extract_masks(
    model: nn.Module,
    pattern_set: PatternSet | None,
    connectivity_rate: float | None = None,
    pattern_kernel_size: int = 3,
) -> dict[str, np.ndarray]:
    """One-shot hard projection: compute masks directly from the weights.

    This is the non-ADMM path (used by one-shot baselines and tests);
    :meth:`repro.core.admm.ADMMPruner.hard_masks` is the trained path.
    """
    masks: dict[str, np.ndarray] = {}
    for name, module in model.named_modules():
        if not isinstance(module, nn.Conv2d):
            continue
        w = module.weight.data
        mask = np.ones_like(w)
        if (
            pattern_set is not None
            and module.kernel_size == pattern_kernel_size
            and module.groups == 1
        ):
            _, assignment = project_kernel_pattern(w, pattern_set)
            mask *= pattern_set.masks_for(assignment)
        if connectivity_rate is not None and module.groups == 1:
            keep = connectivity_budget(w.shape, connectivity_rate)
            _, keep_mask = project_connectivity(w * mask, keep)
            mask *= keep_mask[:, :, None, None]
        masks[name] = mask
    return masks


def apply_masks(model: nn.Module, masks: dict[str, np.ndarray]) -> None:
    """Zero out masked weights in place."""
    modules = dict(model.named_modules())
    for name, mask in masks.items():
        module = modules[name]
        module.weight.data = (module.weight.data * mask).astype(module.weight.data.dtype)


class MaskedRetrainer:
    """Fine-tune surviving weights while keeping the masks exact.

    Gradients at masked positions are zeroed before every optimizer step,
    and the weights are re-masked after the step — so optimizers with
    momentum/weight-decay cannot resurrect pruned weights.
    """

    def __init__(self, model: nn.Module, masks: dict[str, np.ndarray]) -> None:
        self.model = model
        self.masks = masks
        modules = dict(model.named_modules())
        missing = [name for name in masks if name not in modules]
        if missing:
            raise KeyError(f"mask names not found in model: {missing}")
        self._layers = [(modules[name], mask) for name, mask in masks.items()]

    def _mask_gradients(self) -> None:
        for module, mask in self._layers:
            if module.weight.grad is not None:
                module.weight.grad *= mask

    def _mask_weights(self) -> None:
        for module, mask in self._layers:
            module.weight.data *= mask

    def train(
        self,
        loader: DataLoader,
        epochs: int,
        loss_fn: nn.Module | None = None,
        optimizer: Optimizer | None = None,
        lr: float = 1e-3,
    ) -> list[float]:
        """Run masked fine-tuning; returns per-epoch mean losses."""
        loss_fn = loss_fn or nn.CrossEntropyLoss()
        optimizer = optimizer or Adam(self.model.parameters(), lr=lr)
        history: list[float] = []
        self.model.train()
        self._mask_weights()
        for _ in range(epochs):
            total, batches = 0.0, 0
            for xb, yb in loader:
                optimizer.zero_grad()
                loss = loss_fn(self.model(Tensor(xb)), yb)
                loss.backward()
                self._mask_gradients()
                optimizer.step()
                self._mask_weights()
                total += loss.item()
                batches += 1
            history.append(total / max(batches, 1))
        return history
