"""Euclidean projections onto the pruning constraint sets (paper §4.2).

ADMM's subproblems 2 and 3 are projections onto combinatorial sets; for
every constraint the paper uses, the optimal projection has a closed
form implemented here:

* kernel-pattern set  — per kernel, keep the candidate pattern retaining
  maximal L2 energy, zero the complement;
* connectivity       — per layer, keep the α kernels with largest L2
  norms, zero whole kernels otherwise;
* filter / channel   — structured-pruning baselines;
* magnitude          — non-structured baseline (ADMM-NN).

All functions are pure: they take a weight array and return
``(projected_copy, metadata)``.
"""

from __future__ import annotations

import numpy as np

from repro.core.patterns import PatternSet


def project_kernel_pattern(
    weights: np.ndarray, pattern_set: PatternSet
) -> tuple[np.ndarray, np.ndarray]:
    """Project conv weights onto the kernel-pattern constraint set.

    Args:
        weights: (F, C, kh, kw) array.
        pattern_set: candidate patterns.

    Returns:
        (projected weights, (F, C) int32 array of assigned pattern ids).
    """
    assignment = pattern_set.assign(weights)
    masks = pattern_set.masks_for(assignment)
    return (weights * masks).astype(weights.dtype), assignment


def _kernel_norms(weights: np.ndarray) -> np.ndarray:
    f, c = weights.shape[:2]
    return np.sqrt((weights.reshape(f, c, -1) ** 2).sum(axis=2))


def project_connectivity(
    weights: np.ndarray, keep_kernels: int
) -> tuple[np.ndarray, np.ndarray]:
    """Keep the ``keep_kernels`` kernels with largest L2 norm, zero the rest.

    Returns:
        (projected weights, (F, C) boolean keep-mask).
    """
    f, c = weights.shape[:2]
    total = f * c
    if not 1 <= keep_kernels <= total:
        raise ValueError(f"keep_kernels={keep_kernels} out of range 1..{total}")
    norms = _kernel_norms(weights).reshape(-1)
    keep_idx = np.argpartition(-norms, keep_kernels - 1)[:keep_kernels]
    mask = np.zeros(total, dtype=bool)
    mask[keep_idx] = True
    mask = mask.reshape(f, c)
    projected = weights * mask[:, :, None, None]
    return projected.astype(weights.dtype), mask


def connectivity_budget(weights_shape: tuple[int, ...], rate: float) -> int:
    """Kernels to keep for a connectivity pruning rate (e.g. 3.6×)."""
    f, c = weights_shape[:2]
    if rate < 1.0:
        raise ValueError(f"connectivity pruning rate must be >= 1, got {rate}")
    return max(1, int(round(f * c / rate)))


def project_filters(weights: np.ndarray, keep_filters: int) -> tuple[np.ndarray, np.ndarray]:
    """Structured baseline: keep whole filters with largest L2 norms."""
    f = weights.shape[0]
    if not 1 <= keep_filters <= f:
        raise ValueError(f"keep_filters={keep_filters} out of range 1..{f}")
    norms = np.sqrt((weights.reshape(f, -1) ** 2).sum(axis=1))
    keep_idx = np.argpartition(-norms, keep_filters - 1)[:keep_filters]
    mask = np.zeros(f, dtype=bool)
    mask[keep_idx] = True
    projected = weights * mask[:, None, None, None]
    return projected.astype(weights.dtype), mask


def project_channels(weights: np.ndarray, keep_channels: int) -> tuple[np.ndarray, np.ndarray]:
    """Structured baseline: keep whole input channels with largest L2 norms."""
    c = weights.shape[1]
    if not 1 <= keep_channels <= c:
        raise ValueError(f"keep_channels={keep_channels} out of range 1..{c}")
    norms = np.sqrt((weights.transpose(1, 0, 2, 3).reshape(c, -1) ** 2).sum(axis=1))
    keep_idx = np.argpartition(-norms, keep_channels - 1)[:keep_channels]
    mask = np.zeros(c, dtype=bool)
    mask[keep_idx] = True
    projected = weights * mask[None, :, None, None]
    return projected.astype(weights.dtype), mask


def project_magnitude(weights: np.ndarray, keep_weights: int) -> tuple[np.ndarray, np.ndarray]:
    """Non-structured baseline: keep the top-|keep_weights| magnitudes."""
    total = weights.size
    if not 1 <= keep_weights <= total:
        raise ValueError(f"keep_weights={keep_weights} out of range 1..{total}")
    flat = np.abs(weights.reshape(-1))
    keep_idx = np.argpartition(-flat, keep_weights - 1)[:keep_weights]
    mask = np.zeros(total, dtype=bool)
    mask[keep_idx] = True
    mask = mask.reshape(weights.shape)
    return (weights * mask).astype(weights.dtype), mask
