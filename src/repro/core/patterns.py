"""Kernel patterns and pattern-set design (paper §3.1 and §4.1).

A *pattern* is a fixed sparsity shape for one 2-D convolution kernel:
``entries`` positions survive, the rest are pruned.  For the common 3×3
kernel with 4 entries, the paper's design rules are:

* the central weight is never pruned (visual-system prior, §4.1);
* the *natural pattern* of a kernel is the shape formed by its
  ``entries`` largest-magnitude weights (centre included);
* the candidate set is the top-k most frequent natural patterns across
  all kernels of a pre-trained network — there are C(8,3) = 56 possible
  4-entry shapes for 3×3 kernels.
"""

from __future__ import annotations

import itertools
from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class Pattern:
    """One kernel sparsity shape.

    Attributes:
        kernel_size: side of the square kernel (3 for the paper's focus).
        positions: sorted tuple of flat indices kept (row-major).
    """

    kernel_size: int
    positions: tuple[int, ...]

    def __post_init__(self) -> None:
        n = self.kernel_size * self.kernel_size
        if any(not 0 <= p < n for p in self.positions):
            raise ValueError(f"pattern positions {self.positions} out of range for {self.kernel_size}x{self.kernel_size}")
        if len(set(self.positions)) != len(self.positions):
            raise ValueError(f"duplicate positions in pattern: {self.positions}")
        object.__setattr__(self, "positions", tuple(sorted(self.positions)))

    @property
    def entries(self) -> int:
        return len(self.positions)

    @property
    def mask(self) -> np.ndarray:
        """Boolean (k, k) mask, True where weights survive."""
        m = np.zeros(self.kernel_size * self.kernel_size, dtype=bool)
        m[list(self.positions)] = True
        return m.reshape(self.kernel_size, self.kernel_size)

    @property
    def bitmask(self) -> int:
        """Integer encoding (bit i set iff flat position i kept)."""
        bits = 0
        for p in self.positions:
            bits |= 1 << p
        return bits

    @property
    def coords(self) -> tuple[tuple[int, int], ...]:
        """(row, col) coordinates of surviving weights."""
        k = self.kernel_size
        return tuple((p // k, p % k) for p in self.positions)

    def includes_center(self) -> bool:
        center = (self.kernel_size * self.kernel_size) // 2
        return center in self.positions

    def distortion(self, kernel: np.ndarray) -> float:
        """Squared L2 of the weights this pattern would prune.

        The Euclidean projection onto "kernel matches this pattern" zeroes
        the complement, so the projection distance is exactly this value.
        """
        flat = kernel.reshape(-1)
        keep = np.zeros_like(flat, dtype=bool)
        keep[list(self.positions)] = True
        return float(np.sum(flat[~keep] ** 2))

    def retained_energy(self, kernel: np.ndarray) -> float:
        """Squared L2 of the weights this pattern keeps (the L2 metric of §4.2)."""
        flat = kernel.reshape(-1)
        return float(np.sum(flat[list(self.positions)] ** 2))

    def __repr__(self) -> str:
        rows = ["".join("x" if self.mask[r, c] else "." for c in range(self.kernel_size)) for r in range(self.kernel_size)]
        return f"Pattern({'|'.join(rows)})"


def enumerate_candidate_patterns(kernel_size: int = 3, entries: int = 4) -> list[Pattern]:
    """All patterns that keep the centre plus ``entries - 1`` other positions.

    For (3, 4) this is the paper's 56-element natural-pattern universe.
    """
    n = kernel_size * kernel_size
    center = n // 2
    others = [p for p in range(n) if p != center]
    combos = itertools.combinations(others, entries - 1)
    return [Pattern(kernel_size, (center, *combo)) for combo in combos]


def natural_pattern_of(kernel: np.ndarray, entries: int = 4) -> Pattern:
    """The kernel's natural pattern: top-|entries| magnitudes incl. centre.

    The centre weight is forced in (paper: "the central weight ... shall
    not be pruned"); the remaining ``entries - 1`` slots go to the largest
    magnitudes among the rest.
    """
    k = kernel.shape[-1]
    if kernel.shape != (k, k):
        raise ValueError(f"expected a square 2-D kernel, got shape {kernel.shape}")
    flat = np.abs(kernel.reshape(-1)).astype(np.float64)
    center = flat.size // 2
    flat_no_center = flat.copy()
    flat_no_center[center] = -np.inf
    top = np.argpartition(-flat_no_center, entries - 1)[: entries - 1]
    return Pattern(k, (center, *map(int, top)))


class PatternSet:
    """An ordered candidate set of patterns with 1-based ids.

    Id 0 is reserved for "empty kernel" (connectivity-pruned) in the
    compiler's FKW format, so patterns are numbered 1..k.
    """

    def __init__(self, patterns: Sequence[Pattern]) -> None:
        if not patterns:
            raise ValueError("pattern set must not be empty")
        sizes = {p.kernel_size for p in patterns}
        if len(sizes) != 1:
            raise ValueError(f"mixed kernel sizes in pattern set: {sizes}")
        entry_counts = {p.entries for p in patterns}
        if len(entry_counts) != 1:
            raise ValueError(f"mixed entry counts in pattern set: {entry_counts}")
        if len({p.bitmask for p in patterns}) != len(patterns):
            raise ValueError("duplicate patterns in set")
        self.patterns = list(patterns)
        self.kernel_size = patterns[0].kernel_size
        self.entries = patterns[0].entries
        self._by_bitmask = {p.bitmask: i + 1 for i, p in enumerate(self.patterns)}
        # Stacked boolean masks (k_patterns, kh*kw) for vectorised selection.
        self._mask_matrix = np.stack([p.mask.reshape(-1) for p in self.patterns]).astype(np.float32)

    def __len__(self) -> int:
        return len(self.patterns)

    def __iter__(self):
        return iter(self.patterns)

    def __getitem__(self, pattern_id: int) -> Pattern:
        """Look up by 1-based pattern id."""
        if not 1 <= pattern_id <= len(self.patterns):
            raise KeyError(f"pattern id {pattern_id} out of range 1..{len(self.patterns)}")
        return self.patterns[pattern_id - 1]

    def id_of(self, pattern: Pattern) -> int:
        try:
            return self._by_bitmask[pattern.bitmask]
        except KeyError:
            raise KeyError(f"{pattern!r} not in this pattern set") from None

    def assign(self, weights: np.ndarray) -> np.ndarray:
        """Best pattern id for every kernel of a conv weight tensor.

        Args:
            weights: (F, C, kh, kw) conv weights.

        Returns:
            int array (F, C) of 1-based pattern ids maximising retained L2
            energy (equivalently minimising projection distortion).
        """
        f, c, kh, kw = weights.shape
        if kh != self.kernel_size or kw != self.kernel_size:
            raise ValueError(f"weights kernel {kh}x{kw} != pattern set {self.kernel_size}")
        sq = (weights.reshape(f * c, kh * kw) ** 2).astype(np.float32)
        energy = sq @ self._mask_matrix.T  # (F*C, k_patterns)
        best = np.argmax(energy, axis=1) + 1
        return best.reshape(f, c).astype(np.int32)

    def masks_for(self, assignment: np.ndarray) -> np.ndarray:
        """Expand an (F, C) id assignment into an (F, C, kh, kw) float mask."""
        table = self._mask_matrix.reshape(len(self.patterns), self.kernel_size, self.kernel_size)
        return table[assignment - 1]

    def __repr__(self) -> str:
        return f"PatternSet(k={len(self)}, {self.kernel_size}x{self.kernel_size}, {self.entries}-entry)"


def count_natural_patterns(
    weight_tensors: Iterable[np.ndarray], entries: int = 4
) -> Counter:
    """Histogram of natural patterns over all kernels of all given tensors."""
    counts: Counter = Counter()
    for w in weight_tensors:
        if w.ndim != 4:
            raise ValueError(f"expected 4-D conv weights, got shape {w.shape}")
        f, c, kh, kw = w.shape
        if kh != kw:
            raise ValueError("non-square kernels are not supported")
        flat = np.abs(w.reshape(f * c, kh * kw)).astype(np.float64)
        center = (kh * kw) // 2
        flat[:, center] = np.inf  # force centre into the top-|entries|
        top = np.argpartition(-flat, entries - 1, axis=1)[:, :entries]
        for row in top:
            bits = 0
            for p in row:
                bits |= 1 << int(p)
            counts[bits] += 1
    return counts


def mine_pattern_set(
    weight_tensors: Iterable[np.ndarray], k: int = 8, entries: int = 4
) -> PatternSet:
    """Design the candidate pattern set (paper §4.1 heuristic).

    Scans every kernel, computes its natural pattern, and keeps the top-k
    most frequent shapes.  Ties break deterministically by bitmask.

    Args:
        weight_tensors: conv weights (F, C, kh, kw) of the pre-trained net
            (pass only the 3×3 layers).
        k: candidate-set size; the paper finds 6–8 ideal for 3×3 kernels.
    """
    tensors = list(weight_tensors)
    if not tensors:
        raise ValueError("no weight tensors supplied to mine_pattern_set")
    kernel_size = tensors[0].shape[-1]
    counts = count_natural_patterns(tensors, entries)
    universe = enumerate_candidate_patterns(kernel_size, entries)
    by_bitmask = {p.bitmask: p for p in universe}
    ranked = sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))
    chosen = [by_bitmask[bits] for bits, _ in ranked[:k] if bits in by_bitmask]
    # If the model is too small to exhibit k distinct natural patterns,
    # pad from the canonical universe so the set always has k members.
    if len(chosen) < k:
        have = {p.bitmask for p in chosen}
        for p in universe:
            if len(chosen) == k:
                break
            if p.bitmask not in have:
                chosen.append(p)
    return PatternSet(chosen[:k])
