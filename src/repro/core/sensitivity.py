"""Per-layer pruning-sensitivity analysis and budget allocation.

The paper uses a *uniform* connectivity rate for every layer except the
first (§4.2, "a heuristic method").  This module implements the natural
extension it gestures at: measure each layer's accuracy sensitivity to
connectivity pruning, then allocate a global kernel budget so sensitive
layers keep more kernels — at the same overall compression.

Used by the `bench_ablation_sensitivity` bench to quantify how much the
uniform heuristic leaves on the table at small scale.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.core.masking import apply_masks
from repro.core.metrics import evaluate_accuracy
from repro.core.projections import project_connectivity


@dataclass
class LayerSensitivity:
    """Accuracy under one-layer-at-a-time connectivity pruning."""

    name: str
    total_kernels: int
    accuracy_at_rate: dict[float, float]
    base_accuracy: float = 1.0  # unpruned-model accuracy on the probe set

    def drop_at(self, rate: float) -> float:
        """Accuracy lost vs the unpruned model at ``rate``."""
        return self.base_accuracy - self.accuracy_at_rate[rate]


def measure_sensitivity(
    model: nn.Module,
    images: np.ndarray,
    labels: np.ndarray,
    rates: tuple[float, ...] = (2.0, 4.0, 8.0),
) -> list[LayerSensitivity]:
    """Probe each conv layer alone at several connectivity rates.

    The model is restored after every probe; no retraining is done
    (standard one-shot sensitivity analysis).
    """
    results: list[LayerSensitivity] = []
    conv_layers = [
        (name, m) for name, m in model.named_modules() if isinstance(m, nn.Conv2d) and m.groups == 1
    ]
    base_accuracy = evaluate_accuracy(model, images, labels)
    for name, module in conv_layers:
        original = module.weight.data.copy()
        f, c = original.shape[:2]
        acc_by_rate: dict[float, float] = {}
        for rate in rates:
            keep = max(1, int(round(f * c / rate)))
            pruned, _ = project_connectivity(original, keep)
            module.weight.data = pruned
            acc_by_rate[rate] = evaluate_accuracy(model, images, labels)
            module.weight.data = original.copy()
        results.append(LayerSensitivity(name, f * c, acc_by_rate, base_accuracy))
    return results


def allocate_connectivity(
    sensitivities: list[LayerSensitivity],
    global_rate: float,
    probe_rate: float = 4.0,
    min_keep_fraction: float = 0.05,
) -> dict[str, int]:
    """Allocate per-layer kernel budgets under a global rate.

    Layers are weighted by their measured accuracy drop at ``probe_rate``
    (more sensitive → more kernels kept), normalised so the total kernel
    count matches the uniform-global-rate budget exactly.

    Returns:
        layer name → kernels to keep.
    """
    if global_rate < 1.0:
        raise ValueError(f"global rate must be >= 1, got {global_rate}")
    total_kernels = sum(s.total_kernels for s in sensitivities)
    budget = max(len(sensitivities), int(round(total_kernels / global_rate)))

    drops = np.array([max(1e-4, s.drop_at(probe_rate)) for s in sensitivities])
    sizes = np.array([s.total_kernels for s in sensitivities], dtype=np.float64)
    # Blend a size-proportional share (the uniform heuristic) with a
    # sensitivity boost: with equal drops this reduces exactly to the
    # paper's uniform allocation; sensitive layers gain budget smoothly.
    boost = 1.0 + drops / (drops.mean() + 1e-9)
    weights = sizes * boost
    weights = weights / weights.sum()

    keep = {}
    remaining = budget
    for i, s in enumerate(sensitivities):
        floor = max(1, int(s.total_kernels * min_keep_fraction))
        alloc = int(round(budget * weights[i]))
        alloc = min(s.total_kernels, max(floor, alloc))
        keep[s.name] = alloc
        remaining -= alloc
    # Redistribute any rounding slack to the most sensitive layer with room.
    order = np.argsort(-drops)
    for i in order:
        if remaining == 0:
            break
        s = sensitivities[i]
        room = s.total_kernels - keep[s.name] if remaining > 0 else keep[s.name] - 1
        delta = int(np.clip(remaining, -room, room))
        keep[s.name] += delta
        remaining -= delta
    return keep


def apply_connectivity_budgets(model: nn.Module, budgets: dict[str, int]) -> dict[str, np.ndarray]:
    """Hard-prune each layer to its kernel budget; returns the masks."""
    masks: dict[str, np.ndarray] = {}
    modules = dict(model.named_modules())
    for name, keep in budgets.items():
        module = modules[name]
        w = module.weight.data
        _, kernel_mask = project_connectivity(w, keep)
        masks[name] = np.broadcast_to(
            kernel_mask[:, :, None, None], w.shape
        ).astype(np.float32).copy()
    apply_masks(model, masks)
    return masks
