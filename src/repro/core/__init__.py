"""Pattern-based weight pruning — the paper's primary contribution (§3–§4).

Pipeline (Figure 6 of the paper):

1. :func:`~repro.core.patterns.mine_pattern_set` — scan a pre-trained
   model's kernels, count *natural patterns* (top-4-magnitude entries
   including the centre), keep the top-k as the candidate set.
2. :class:`~repro.core.admm.ADMMPruner` — extended ADMM: SGD/Adam on the
   loss plus proximal terms (subproblem 1), Euclidean projections onto
   the pattern and connectivity constraint sets (subproblems 2–3), dual
   updates.
3. :class:`~repro.core.masking.MaskedRetrainer` — hard-project, freeze
   the sparsity masks, retrain the surviving weights.

:class:`~repro.core.pruner.PatDNNPruner` wraps all three behind one call.
Baselines for Table 4 / Table 2 live in :mod:`repro.core.baselines`.
"""

from repro.core.patterns import (
    Pattern,
    PatternSet,
    enumerate_candidate_patterns,
    natural_pattern_of,
    mine_pattern_set,
)
from repro.core.projections import (
    project_kernel_pattern,
    project_connectivity,
    project_filters,
    project_channels,
    project_magnitude,
)
from repro.core.admm import ADMMConfig, ADMMPruner
from repro.core.masking import extract_masks, apply_masks, MaskedRetrainer
from repro.core.pruner import PatDNNPruner, PruningResult, PruningConfig
from repro.core.metrics import (
    compression_rate,
    sparsity_report,
    count_nonzero_kernels,
    pattern_histogram,
)

__all__ = [
    "Pattern",
    "PatternSet",
    "enumerate_candidate_patterns",
    "natural_pattern_of",
    "mine_pattern_set",
    "project_kernel_pattern",
    "project_connectivity",
    "project_filters",
    "project_channels",
    "project_magnitude",
    "ADMMConfig",
    "ADMMPruner",
    "extract_masks",
    "apply_masks",
    "MaskedRetrainer",
    "PatDNNPruner",
    "PruningResult",
    "PruningConfig",
    "compression_rate",
    "sparsity_report",
    "count_nonzero_kernels",
    "pattern_histogram",
]
