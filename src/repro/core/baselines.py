"""Baseline pruning schemes the paper compares against (Tables 2 and 4).

* :class:`MagnitudePruner` — iterative magnitude pruning with retraining
  between steps (Deep Compression [14] style).
* :class:`GrowPrunePruner` — grow-and-prune (NeST [8] style, simplified):
  magnitude pruning followed by gradient-driven regrowth of a small
  fraction of connections, iterated.
* :class:`ADMMUnstructuredPruner` — ADMM-NN [49]: the same extended ADMM
  machinery with a *magnitude* projection instead of pattern sets.
* :class:`StructuredPruner` — filter or channel pruning ([19]/[54]) with
  one-shot projection + retraining.

All share the interface ``prune(model, loader) -> dict[name, mask]`` so
Table 4's harness can sweep them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro import nn
from repro.autograd import Tensor
from repro.core.masking import MaskedRetrainer
from repro.core.projections import (
    project_channels,
    project_filters,
    project_magnitude,
)
from repro.data.loader import DataLoader
from repro.optim import Adam
from repro.utils.logging import get_logger

logger = get_logger(__name__)


def _conv_layers(model: nn.Module) -> list[tuple[str, nn.Conv2d]]:
    return [(n, m) for n, m in model.named_modules() if isinstance(m, nn.Conv2d) and m.groups == 1]


@dataclass
class MagnitudePruner:
    """Iterative magnitude pruning (non-structured, heuristic).

    The target rate is reached over ``steps`` geometric increments, with
    ``retrain_epochs`` of masked fine-tuning after each (the classic
    prune–retrain loop of Deep Compression / Han et al.).
    """

    rate: float = 8.0
    steps: int = 3
    retrain_epochs: int = 2
    lr: float = 1e-3

    def prune(self, model: nn.Module, loader: DataLoader, loss_fn=None) -> dict[str, np.ndarray]:
        loss_fn = loss_fn or nn.CrossEntropyLoss()
        masks: dict[str, np.ndarray] = {}
        for step in range(1, self.steps + 1):
            step_rate = self.rate ** (step / self.steps)
            masks = {}
            for name, module in _conv_layers(model):
                keep = max(1, int(round(module.weight.data.size / step_rate)))
                _, mask = project_magnitude(module.weight.data, keep)
                masks[name] = mask.astype(np.float32)
            retrainer = MaskedRetrainer(model, masks)
            retrainer.train(loader, epochs=self.retrain_epochs, loss_fn=loss_fn, lr=self.lr)
        return masks


@dataclass
class GrowPrunePruner:
    """Grow-and-prune (NeST-style, simplified to its pruning essence).

    Each round: magnitude-prune slightly below target, retrain, then
    regrow the connections with the largest gradient magnitude among the
    pruned ones, and finish with a final prune to the target rate.
    """

    rate: float = 6.5
    rounds: int = 2
    regrow_fraction: float = 0.1
    retrain_epochs: int = 2
    lr: float = 1e-3

    def prune(self, model: nn.Module, loader: DataLoader, loss_fn=None) -> dict[str, np.ndarray]:
        loss_fn = loss_fn or nn.CrossEntropyLoss()
        masks: dict[str, np.ndarray] = {}
        for _ in range(self.rounds):
            # Prune beyond the target so regrowth lands back on it.
            over_rate = self.rate / (1.0 - self.regrow_fraction)
            masks = {}
            for name, module in _conv_layers(model):
                keep = max(1, int(round(module.weight.data.size / over_rate)))
                _, mask = project_magnitude(module.weight.data, keep)
                masks[name] = mask.astype(np.float32)
            MaskedRetrainer(model, masks).train(loader, epochs=self.retrain_epochs, loss_fn=loss_fn, lr=self.lr)
            masks = self._regrow(model, loader, loss_fn, masks)
        # Final exact-rate projection.
        for name, module in _conv_layers(model):
            keep = max(1, int(round(module.weight.data.size / self.rate)))
            _, mask = project_magnitude(module.weight.data, keep)
            masks[name] = mask.astype(np.float32)
        MaskedRetrainer(model, masks).train(loader, epochs=self.retrain_epochs, loss_fn=loss_fn, lr=self.lr)
        return masks

    def _regrow(self, model, loader, loss_fn, masks) -> dict[str, np.ndarray]:
        """Reactivate pruned weights with the largest gradient magnitude."""
        model.zero_grad()
        xb, yb = next(iter(loader))
        loss = loss_fn(model(Tensor(xb)), yb)
        loss.backward()
        grown: dict[str, np.ndarray] = {}
        for name, module in _conv_layers(model):
            mask = masks[name].copy()
            grad = module.weight.grad
            if grad is None:
                grown[name] = mask
                continue
            pruned = mask == 0
            budget = int(self.regrow_fraction * mask.sum())
            if budget and pruned.any():
                candidates = np.abs(grad) * pruned
                flat = candidates.reshape(-1)
                top = np.argpartition(-flat, min(budget, flat.size - 1))[:budget]
                mask.reshape(-1)[top] = 1.0
            grown[name] = mask
        model.zero_grad()
        return grown


@dataclass
class ADMMUnstructuredPruner:
    """ADMM-NN: ADMM with per-layer magnitude (cardinality) projection."""

    rate: float = 8.0
    rho: float = 1e-2
    iterations: int = 5
    epochs_per_iteration: int = 2
    retrain_epochs: int = 3
    lr: float = 2e-3

    def prune(self, model: nn.Module, loader: DataLoader, loss_fn=None) -> dict[str, np.ndarray]:
        loss_fn = loss_fn or nn.CrossEntropyLoss()
        layers = _conv_layers(model)
        z = {}
        u = {}
        keep = {}
        for name, module in layers:
            w = module.weight.data
            keep[name] = max(1, int(round(w.size / self.rate)))
            z[name], _ = project_magnitude(w, keep[name])
            u[name] = np.zeros_like(w)
        optimizer = Adam(model.parameters(), lr=self.lr)
        model.train()
        for _ in range(self.iterations):
            for _ in range(self.epochs_per_iteration):
                for xb, yb in loader:
                    optimizer.zero_grad()
                    loss = loss_fn(model(Tensor(xb)), yb)
                    loss.backward()
                    for name, module in layers:
                        g = module.weight.grad
                        if g is not None:
                            g += self.rho * (module.weight.data - z[name] + u[name])
                    optimizer.step()
            for name, module in layers:
                w = module.weight.data
                z[name], _ = project_magnitude(w + u[name], keep[name])
                u[name] = u[name] + w - z[name]
        masks = {}
        for name, module in layers:
            _, mask = project_magnitude(module.weight.data, keep[name])
            masks[name] = mask.astype(np.float32)
        MaskedRetrainer(model, masks).train(loader, epochs=self.retrain_epochs, loss_fn=loss_fn, lr=self.lr)
        return masks


@dataclass
class StructuredPruner:
    """Filter or channel pruning (coarse-grained structured baseline)."""

    rate: float = 3.8
    granularity: str = "filter"  # 'filter' | 'channel'
    retrain_epochs: int = 3
    lr: float = 1e-3

    def prune(self, model: nn.Module, loader: DataLoader, loss_fn=None) -> dict[str, np.ndarray]:
        if self.granularity not in ("filter", "channel"):
            raise ValueError(f"granularity must be 'filter' or 'channel', got {self.granularity!r}")
        loss_fn = loss_fn or nn.CrossEntropyLoss()
        masks: dict[str, np.ndarray] = {}
        layers = _conv_layers(model)
        for i, (name, module) in enumerate(layers):
            w = module.weight.data
            # Never structurally prune the 3-channel input layer.
            if self.granularity == "channel" and i == 0:
                masks[name] = np.ones_like(w)
                continue
            if self.granularity == "filter":
                keep = max(1, int(round(w.shape[0] / self.rate)))
                _, m = project_filters(w, keep)
                masks[name] = np.broadcast_to(m[:, None, None, None], w.shape).astype(np.float32).copy()
            else:
                keep = max(1, int(round(w.shape[1] / self.rate)))
                _, m = project_channels(w, keep)
                masks[name] = np.broadcast_to(m[None, :, None, None], w.shape).astype(np.float32).copy()
        MaskedRetrainer(model, masks).train(loader, epochs=self.retrain_epochs, loss_fn=loss_fn, lr=self.lr)
        return masks
