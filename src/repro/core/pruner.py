"""High-level PatDNN pruning pipeline (Figure 6, end to end).

``PatDNNPruner.fit`` runs: pattern-set design → extended ADMM
regularisation → hard projection (masked mapping) → masked retraining,
and returns a :class:`PruningResult` carrying everything the compiler
stage needs (masks, per-layer pattern assignments, the pattern set).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro import nn
from repro.core.admm import ADMMConfig, ADMMPruner, ADMMReport
from repro.core.masking import MaskedRetrainer
from repro.core.metrics import compression_rate
from repro.core.patterns import PatternSet, mine_pattern_set
from repro.data.loader import DataLoader
from repro.utils.logging import get_logger

logger = get_logger(__name__)


@dataclass
class PruningConfig:
    """End-to-end configuration of the pattern-based pruning pipeline.

    Attributes:
        num_patterns: candidate-set size k (paper sweeps 6/8/12; 8 wins).
        pattern_entries: surviving weights per kernel (4 in the paper).
        connectivity_rate: uniform kernel reduction (3.6× in Table 4);
            ``None`` → kernel-pattern pruning only (Table 3 setting).
        retrain_epochs: masked fine-tuning epochs after hard projection.
        admm: solver hyperparameters.
    """

    num_patterns: int = 8
    pattern_entries: int = 4
    connectivity_rate: float | None = 3.6
    retrain_epochs: int = 4
    admm: ADMMConfig = field(default_factory=ADMMConfig)

    def __post_init__(self) -> None:
        if self.num_patterns < 1:
            raise ValueError("num_patterns must be >= 1")
        self.admm.connectivity_rate = self.connectivity_rate


@dataclass
class PruningResult:
    """Everything produced by the pruning stage.

    Attributes:
        model: the pruned (and retrained) model, modified in place.
        pattern_set: the designed candidate set.
        masks: per-layer float masks (layer name → (F,C,kh,kw)).
        assignments: per-layer (F,C) pattern ids, 0 = pruned kernel.
        admm_report: convergence diagnostics.
        retrain_losses: masked fine-tuning loss trajectory.
    """

    model: nn.Module
    pattern_set: PatternSet
    masks: dict[str, np.ndarray]
    assignments: dict[str, np.ndarray]
    admm_report: ADMMReport
    retrain_losses: list[float]

    @property
    def conv_compression_rate(self) -> float:
        return compression_rate(self.model, conv_only=True)


class PatDNNPruner:
    """Train a pattern + connectivity pruned model from a (pre)trained one."""

    def __init__(self, config: PruningConfig | None = None) -> None:
        self.config = config or PruningConfig()

    def design_pattern_set(self, model: nn.Module) -> PatternSet:
        """Mine the top-k natural patterns from the model's 3×3 convs."""
        k_size = self.config.admm.pattern_kernel_size
        tensors = [
            m.weight.data
            for _, m in model.named_modules()
            if isinstance(m, nn.Conv2d) and m.kernel_size == k_size and m.groups == 1
        ]
        if not tensors:
            raise ValueError(f"model has no {k_size}x{k_size} conv layers to mine patterns from")
        return mine_pattern_set(tensors, k=self.config.num_patterns, entries=self.config.pattern_entries)

    def fit(
        self,
        model: nn.Module,
        loader: DataLoader,
        loss_fn: nn.Module | None = None,
        pattern_set: PatternSet | None = None,
    ) -> PruningResult:
        """Run the full pipeline on ``model`` (updated in place)."""
        pattern_set = pattern_set or self.design_pattern_set(model)
        logger.info("pattern set: %s", pattern_set)

        admm = ADMMPruner(model, pattern_set, self.config.admm)
        report = admm.run(loader, loss_fn)
        masks = admm.hard_masks()
        assignments = admm.assignments()

        retrainer = MaskedRetrainer(model, masks)
        losses = retrainer.train(loader, epochs=self.config.retrain_epochs, loss_fn=loss_fn)
        logger.info(
            "pruning done: conv compression %.2fx",
            compression_rate(model, conv_only=True),
        )
        return PruningResult(
            model=model,
            pattern_set=pattern_set,
            masks=masks,
            assignments=assignments,
            admm_report=report,
            retrain_losses=losses,
        )
