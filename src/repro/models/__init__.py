"""Model zoo: VGG-16, ResNet-50, MobileNet-V2.

Two views of each architecture are provided:

* **Specs** (:mod:`repro.models.spec`): exact full-scale layer shapes used
  by the compiler / storage / performance experiments (Tables 5–6,
  Figures 12–18).  No weights are instantiated until needed.
* **Trainable modules**: scaled-down ``repro.nn`` networks with the same
  topology, used by the ADMM pruning accuracy experiments (Tables 3/4/7)
  on the synthetic datasets.
"""

from repro.models.spec import ConvSpec, FCSpec, ModelSpec
from repro.models.vgg import vgg16_spec, build_vgg, VGG_UNIQUE_LAYERS
from repro.models.resnet import resnet50_spec, build_resnet
from repro.models.mobilenet import mobilenet_v2_spec, build_mobilenet_v2
from repro.models.registry import get_spec, get_trainable, list_models
from repro.models.smallcnn import build_small_cnn

__all__ = [
    "ConvSpec",
    "FCSpec",
    "ModelSpec",
    "vgg16_spec",
    "build_vgg",
    "VGG_UNIQUE_LAYERS",
    "resnet50_spec",
    "build_resnet",
    "mobilenet_v2_spec",
    "build_mobilenet_v2",
    "get_spec",
    "get_trainable",
    "list_models",
    "build_small_cnn",
]
