"""ResNet-50: full-scale spec + scaled trainable build.

The spec enumerates every conv in the standard bottleneck layout
([3, 4, 6, 3] blocks, expansion 4); the paper applies kernel-pattern
pruning to the 3×3 convs and connectivity pruning to all convs (§4.3).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.spec import ConvSpec, FCSpec, ModelSpec
from repro.utils.rng import make_rng

_STAGES = [  # (blocks, mid_channels, out_channels, first_stride)
    (3, 64, 256, 1),
    (4, 128, 512, 2),
    (6, 256, 1024, 2),
    (3, 512, 2048, 2),
]


def resnet50_spec(dataset: str = "imagenet") -> ModelSpec:
    """Full ResNet-50 conv inventory (49 convs + fc, Table 5's '50 layers')."""
    in_hw = 224 if dataset == "imagenet" else 32
    convs: list[ConvSpec] = []

    if dataset == "imagenet":
        convs.append(ConvSpec("conv1", 3, 64, 7, stride=2, padding=3, in_hw=in_hw))
        hw = convs[-1].out_hw // 2  # maxpool /2
    else:
        convs.append(ConvSpec("conv1", 3, 64, 3, stride=1, padding=1, in_hw=in_hw))
        hw = convs[-1].out_hw

    in_ch = 64
    for stage_idx, (blocks, mid, out, first_stride) in enumerate(_STAGES, start=2):
        for b in range(blocks):
            stride = first_stride if b == 0 else 1
            prefix = f"layer{stage_idx - 1}.{b}"
            convs.append(ConvSpec(f"{prefix}.conv1", in_ch, mid, 1, stride=1, padding=0, in_hw=hw))
            convs.append(ConvSpec(f"{prefix}.conv2", mid, mid, 3, stride=stride, padding=1, in_hw=hw))
            hw_after = convs[-1].out_hw
            convs.append(ConvSpec(f"{prefix}.conv3", mid, out, 1, stride=1, padding=0, in_hw=hw_after))
            if b == 0:
                convs.append(
                    ConvSpec(f"{prefix}.downsample", in_ch, out, 1, stride=stride, padding=0, in_hw=hw)
                )
            hw = hw_after
            in_ch = out
    fcs = [FCSpec("fc", 2048, 1000 if dataset == "imagenet" else 10)]
    return ModelSpec(name="resnet50", dataset=dataset, convs=convs, fcs=fcs, total_layers=50)


class _Bottleneck(nn.Module):
    """Bottleneck residual block (1×1 → 3×3 → 1×1 with expansion)."""

    def __init__(self, in_ch: int, mid_ch: int, out_ch: int, stride: int, rng: np.random.Generator):
        super().__init__()
        self.conv1 = nn.Conv2d(in_ch, mid_ch, 1, padding=0, bias=False, rng=rng)
        self.bn1 = nn.BatchNorm2d(mid_ch)
        self.conv2 = nn.Conv2d(mid_ch, mid_ch, 3, stride=stride, padding=1, bias=False, rng=rng)
        self.bn2 = nn.BatchNorm2d(mid_ch)
        self.conv3 = nn.Conv2d(mid_ch, out_ch, 1, padding=0, bias=False, rng=rng)
        self.bn3 = nn.BatchNorm2d(out_ch)
        self.relu = nn.ReLU()
        if stride != 1 or in_ch != out_ch:
            self.downsample: nn.Module | None = nn.Sequential(
                nn.Conv2d(in_ch, out_ch, 1, stride=stride, padding=0, bias=False, rng=rng),
                nn.BatchNorm2d(out_ch),
            )
        else:
            self.downsample = None

    def forward(self, x):
        identity = x if self.downsample is None else self.downsample(x)
        out = self.relu(self.bn1(self.conv1(x)))
        out = self.relu(self.bn2(self.conv2(out)))
        out = self.bn3(self.conv3(out))
        return self.relu(out + identity)


class _ResNet(nn.Module):
    def __init__(self, stages, width: int, num_classes: int, rng: np.random.Generator):
        super().__init__()
        self.stem = nn.Sequential(
            nn.Conv2d(3, width, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(width),
            nn.ReLU(),
        )
        blocks: list[nn.Module] = []
        in_ch = width
        for stage_idx, (n_blocks, mid, out, first_stride) in enumerate(stages):
            for b in range(n_blocks):
                stride = first_stride if b == 0 else 1
                blocks.append(_Bottleneck(in_ch, mid, out, stride, rng))
                in_ch = out
        self.blocks = nn.Sequential(*blocks)
        self.head = nn.Sequential(nn.GlobalAvgPool2d(), nn.Flatten(), nn.Linear(in_ch, num_classes, rng=rng))

    def forward(self, x):
        return self.head(self.blocks(self.stem(x)))


def build_resnet(
    num_classes: int = 10,
    width_scale: float = 0.25,
    blocks_per_stage: tuple[int, ...] = (1, 1, 1),
    seed: int = 0,
) -> nn.Module:
    """Scaled bottleneck ResNet with the real topology (for pruning tests)."""
    rng = make_rng(seed)
    width = max(8, int(64 * width_scale))
    stages = []
    ch = width
    for i, n in enumerate(blocks_per_stage):
        mid = max(4, int(width * (2**i) / 2))
        out = max(8, width * (2**i) * 2)
        stride = 1 if i == 0 else 2
        stages.append((n, mid, out, stride))
        ch = out
    return _ResNet(stages, width, num_classes, rng)
