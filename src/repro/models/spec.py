"""Architecture specifications (shapes only, no weights).

The compiler and hardware experiments reason about layer shapes, FLOPs,
and weight-tensor structure; instantiating the full 138M-parameter VGG-16
as a trainable module would be wasteful.  ``ConvSpec`` captures exactly
the quantities the paper's formulas use: filter tensor
(Ck+1, Ck, Pk, Qk), stride, input/output feature-map sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.misc import prod
from repro.utils.rng import make_rng


@dataclass(frozen=True)
class ConvSpec:
    """One convolution layer's static description.

    Attributes mirror the paper's §2.1 notation: input map Mk×Nk×Ck,
    Ck+1 filters of size Pk×Qk×Ck, stride Sk.
    """

    name: str
    in_channels: int
    out_channels: int
    kernel_size: int
    stride: int = 1
    padding: int = 1
    groups: int = 1
    in_hw: int = 224  # input feature-map spatial size (square)

    @property
    def out_hw(self) -> int:
        return (self.in_hw + 2 * self.padding - self.kernel_size) // self.stride + 1

    @property
    def filter_shape(self) -> tuple[int, int, int, int]:
        """(out_channels, in_channels/groups, kh, kw) — Table 6's format."""
        return (self.out_channels, self.in_channels // self.groups, self.kernel_size, self.kernel_size)

    @property
    def weight_count(self) -> int:
        return prod(self.filter_shape)

    @property
    def kernel_count(self) -> int:
        """Number of 2-D kernels = filters × input channels per group."""
        return self.out_channels * (self.in_channels // self.groups)

    @property
    def macs(self) -> int:
        """Multiply-accumulate operations for one inference."""
        return self.weight_count * self.out_hw * self.out_hw

    @property
    def flops(self) -> int:
        return 2 * self.macs

    @property
    def input_bytes(self) -> int:
        return 4 * self.in_channels * self.in_hw * self.in_hw

    @property
    def output_bytes(self) -> int:
        return 4 * self.out_channels * self.out_hw * self.out_hw

    def make_weights(self, rng: np.random.Generator | None = None) -> np.ndarray:
        """Instantiate Kaiming-initialised weights for this layer alone."""
        rng = rng or make_rng()
        fan_in = (self.in_channels // self.groups) * self.kernel_size**2
        std = np.sqrt(2.0 / fan_in)
        return (rng.standard_normal(self.filter_shape) * std).astype(np.float32)


@dataclass(frozen=True)
class FCSpec:
    """Fully-connected layer description (for model-size accounting)."""

    name: str
    in_features: int
    out_features: int

    @property
    def weight_count(self) -> int:
        return self.in_features * self.out_features

    @property
    def macs(self) -> int:
        return self.weight_count


@dataclass
class ModelSpec:
    """A whole network: ordered conv specs + FC specs + metadata."""

    name: str
    dataset: str
    convs: list[ConvSpec] = field(default_factory=list)
    fcs: list[FCSpec] = field(default_factory=list)
    total_layers: int = 0  # paper's 'Layers' column (Table 5)

    @property
    def conv_count(self) -> int:
        return len(self.convs)

    @property
    def conv_weight_count(self) -> int:
        return sum(c.weight_count for c in self.convs)

    @property
    def total_weight_count(self) -> int:
        return self.conv_weight_count + sum(f.weight_count for f in self.fcs)

    @property
    def size_mb(self) -> float:
        """Model size in MB at 4 bytes/weight (Table 5's Size column)."""
        return self.total_weight_count * 4 / 1e6

    @property
    def conv_macs(self) -> int:
        return sum(c.macs for c in self.convs)

    def conv_3x3(self) -> list[ConvSpec]:
        """The layers eligible for kernel pattern pruning (3×3 kernels)."""
        return [c for c in self.convs if c.kernel_size == 3 and c.groups == 1]

    def __repr__(self) -> str:
        return (
            f"ModelSpec({self.name}/{self.dataset}: {self.conv_count} convs, "
            f"{len(self.fcs)} fcs, {self.size_mb:.1f} MB)"
        )
