"""VGG-16: full-scale spec (Table 6 layer shapes) + scaled trainable build."""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.spec import ConvSpec, FCSpec, ModelSpec
from repro.utils.rng import make_rng

# Standard VGG-16 configuration: channel width per conv block, 'M' = maxpool.
_VGG16_CFG = [64, 64, "M", 128, 128, "M", 256, 256, 256, "M", 512, 512, 512, "M", 512, 512, 512, "M"]

# Table 6: the 9 unique CONV layer shapes of VGG-16, with the paper's names.
VGG_UNIQUE_LAYERS: dict[str, tuple[int, int, int, int]] = {
    "L1": (64, 3, 3, 3),
    "L2": (64, 64, 3, 3),
    "L3": (128, 64, 3, 3),
    "L4": (128, 128, 3, 3),
    "L5": (256, 128, 3, 3),
    "L6": (256, 256, 3, 3),
    "L7": (512, 256, 3, 3),
    "L8": (512, 512, 3, 3),
    "L9": (512, 512, 3, 3),
}

# Input feature-map size at which each unique layer runs (ImageNet, 224 in).
VGG_UNIQUE_LAYER_HW: dict[str, int] = {
    "L1": 224,
    "L2": 224,
    "L3": 112,
    "L4": 112,
    "L5": 56,
    "L6": 56,
    "L7": 28,
    "L8": 28,
    "L9": 14,
}


def vgg16_spec(dataset: str = "imagenet") -> ModelSpec:
    """Full-scale VGG-16 spec for ImageNet (224²) or CIFAR-10 (32²)."""
    in_hw = 224 if dataset == "imagenet" else 32
    convs: list[ConvSpec] = []
    in_ch = 3
    hw = in_hw
    idx = 0
    for entry in _VGG16_CFG:
        if entry == "M":
            hw //= 2
            continue
        idx += 1
        convs.append(
            ConvSpec(
                name=f"conv{idx}",
                in_channels=in_ch,
                out_channels=int(entry),
                kernel_size=3,
                stride=1,
                padding=1,
                in_hw=hw,
            )
        )
        in_ch = int(entry)
    if dataset == "imagenet":
        fcs = [
            FCSpec("fc1", 512 * 7 * 7, 4096),
            FCSpec("fc2", 4096, 4096),
            FCSpec("fc3", 4096, 1000),
        ]
    else:
        fcs = [FCSpec("fc1", 512, 512), FCSpec("fc2", 512, 512), FCSpec("fc3", 512, 10)]
    return ModelSpec(name="vgg16", dataset=dataset, convs=convs, fcs=fcs, total_layers=16)


def unique_layer_spec(name: str) -> ConvSpec:
    """Build a :class:`ConvSpec` for one of the paper's L1–L9 layers."""
    if name not in VGG_UNIQUE_LAYERS:
        raise KeyError(f"unknown VGG unique layer {name!r}; expected L1..L9")
    out_c, in_c, kh, _ = VGG_UNIQUE_LAYERS[name]
    return ConvSpec(
        name=name,
        in_channels=in_c,
        out_channels=out_c,
        kernel_size=kh,
        stride=1,
        padding=1,
        in_hw=VGG_UNIQUE_LAYER_HW[name],
    )


def build_vgg(
    num_classes: int = 10,
    in_size: int = 16,
    width_scale: float = 0.125,
    depth: str = "small",
    batch_norm: bool = True,
    seed: int = 0,
) -> nn.Module:
    """Build a trainable, scaled VGG with the same block topology.

    Args:
        width_scale: multiplier on every channel width (minimum 8).
        depth: ``'small'`` keeps one conv per block (5 convs total) for
            fast ADMM experiments; ``'full'`` keeps all 13.
    """
    rng = make_rng(seed)
    if depth == "small":
        cfg: list[int | str] = [64, "M", 128, "M", 256, "M", 512]
    elif depth == "full":
        cfg = list(_VGG16_CFG)
    else:
        raise ValueError(f"depth must be 'small' or 'full', got {depth!r}")

    layers: list[nn.Module] = []
    in_ch = 3
    hw = in_size
    for entry in cfg:
        if entry == "M":
            if hw >= 2:
                layers.append(nn.MaxPool2d(2))
                hw //= 2
            continue
        out_ch = max(8, int(round(int(entry) * width_scale)))
        layers.append(nn.Conv2d(in_ch, out_ch, 3, padding=1, bias=not batch_norm, rng=rng))
        if batch_norm:
            layers.append(nn.BatchNorm2d(out_ch))
        layers.append(nn.ReLU())
        in_ch = out_ch
    layers.append(nn.GlobalAvgPool2d())
    layers.append(nn.Flatten())
    layers.append(nn.Linear(in_ch, num_classes, rng=rng))
    return nn.Sequential(*layers)
