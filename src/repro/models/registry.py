"""Name-based access to specs and trainable builders.

The benchmark harness addresses models by the paper's short names:
``VGG`` / ``RNT`` / ``MBNT`` (Table 5).
"""

from __future__ import annotations

from collections.abc import Callable

from repro.models.mobilenet import build_mobilenet_v2, mobilenet_v2_spec
from repro.models.resnet import build_resnet, resnet50_spec
from repro.models.smallcnn import build_small_cnn
from repro.models.spec import ModelSpec
from repro.models.vgg import build_vgg, vgg16_spec

_SPECS: dict[str, Callable[[str], ModelSpec]] = {
    "vgg16": vgg16_spec,
    "vgg": vgg16_spec,
    "resnet50": resnet50_spec,
    "rnt": resnet50_spec,
    "mobilenet_v2": mobilenet_v2_spec,
    "mbnt": mobilenet_v2_spec,
}

_TRAINABLES: dict[str, Callable[..., object]] = {
    "vgg16": build_vgg,
    "vgg": build_vgg,
    "resnet50": build_resnet,
    "rnt": build_resnet,
    "mobilenet_v2": build_mobilenet_v2,
    "mbnt": build_mobilenet_v2,
    "smallcnn": build_small_cnn,
}


def list_models() -> list[str]:
    return sorted({"vgg16", "resnet50", "mobilenet_v2", "smallcnn"})


def get_spec(name: str, dataset: str = "imagenet") -> ModelSpec:
    """Full-scale spec by model name ('vgg16'/'VGG', 'resnet50'/'RNT', ...)."""
    key = name.lower()
    if key not in _SPECS:
        raise KeyError(f"unknown model {name!r}; known: {list_models()}")
    return _SPECS[key](dataset)


def get_trainable(name: str, **kwargs):
    """Scaled trainable module by model name."""
    key = name.lower()
    if key not in _TRAINABLES:
        raise KeyError(f"unknown trainable model {name!r}; known: {list_models() + ['smallcnn']}")
    return _TRAINABLES[key](**kwargs)
