"""MobileNet-V2: full-scale spec + scaled trainable build.

MobileNet-V2 matters in the paper as the already-compact model: its convs
are mostly 1×1 (pointwise) and 3×3 depthwise, so pattern pruning applies
only to the depthwise 3×3s and connectivity pruning to the pointwise
layers — the evaluation still shows end-to-end gains (Fig. 12).
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.models.spec import ConvSpec, FCSpec, ModelSpec
from repro.utils.rng import make_rng

# (expansion t, out_channels c, repeats n, stride s) — Table 2 of the
# MobileNet-V2 paper.
_MBV2_CFG = [
    (1, 16, 1, 1),
    (6, 24, 2, 2),
    (6, 32, 3, 2),
    (6, 64, 4, 2),
    (6, 96, 3, 1),
    (6, 160, 3, 2),
    (6, 320, 1, 1),
]


def mobilenet_v2_spec(dataset: str = "imagenet") -> ModelSpec:
    """Full MobileNet-V2 conv inventory (52/53 convs as in Table 5)."""
    in_hw = 224 if dataset == "imagenet" else 32
    convs: list[ConvSpec] = []
    stride0 = 2 if dataset == "imagenet" else 1
    convs.append(ConvSpec("conv_stem", 3, 32, 3, stride=stride0, padding=1, in_hw=in_hw))
    hw = convs[-1].out_hw
    in_ch = 32
    block = 0
    for t, c, n, s in _MBV2_CFG:
        for i in range(n):
            stride = s if i == 0 else 1
            hidden = in_ch * t
            prefix = f"block{block}"
            if t != 1:
                convs.append(ConvSpec(f"{prefix}.expand", in_ch, hidden, 1, stride=1, padding=0, in_hw=hw))
            convs.append(
                ConvSpec(
                    f"{prefix}.depthwise",
                    hidden,
                    hidden,
                    3,
                    stride=stride,
                    padding=1,
                    groups=hidden,
                    in_hw=hw,
                )
            )
            hw = convs[-1].out_hw
            convs.append(ConvSpec(f"{prefix}.project", hidden, c, 1, stride=1, padding=0, in_hw=hw))
            in_ch = c
            block += 1
    convs.append(ConvSpec("conv_head", in_ch, 1280, 1, stride=1, padding=0, in_hw=hw))
    fcs = [FCSpec("classifier", 1280, 1000 if dataset == "imagenet" else 10)]
    total = 53 if dataset == "imagenet" else 54
    return ModelSpec(name="mobilenet_v2", dataset=dataset, convs=convs, fcs=fcs, total_layers=total)


class _InvertedResidual(nn.Module):
    """MobileNet-V2 inverted residual block (expand → depthwise → project)."""

    def __init__(self, in_ch: int, out_ch: int, stride: int, expansion: int, rng: np.random.Generator):
        super().__init__()
        hidden = in_ch * expansion
        self.use_residual = stride == 1 and in_ch == out_ch
        layers: list[nn.Module] = []
        if expansion != 1:
            layers += [
                nn.Conv2d(in_ch, hidden, 1, padding=0, bias=False, rng=rng),
                nn.BatchNorm2d(hidden),
                nn.ReLU6(),
            ]
        layers += [
            nn.Conv2d(hidden, hidden, 3, stride=stride, padding=1, groups=hidden, bias=False, rng=rng),
            nn.BatchNorm2d(hidden),
            nn.ReLU6(),
            nn.Conv2d(hidden, out_ch, 1, padding=0, bias=False, rng=rng),
            nn.BatchNorm2d(out_ch),
        ]
        self.body = nn.Sequential(*layers)

    def forward(self, x):
        out = self.body(x)
        if self.use_residual:
            out = out + x
        return out


class _MobileNetV2(nn.Module):
    def __init__(self, cfg, width: int, num_classes: int, rng: np.random.Generator):
        super().__init__()
        self.stem = nn.Sequential(
            nn.Conv2d(3, width, 3, padding=1, bias=False, rng=rng),
            nn.BatchNorm2d(width),
            nn.ReLU6(),
        )
        blocks: list[nn.Module] = []
        in_ch = width
        for t, c, n, s in cfg:
            for i in range(n):
                blocks.append(_InvertedResidual(in_ch, c, s if i == 0 else 1, t, rng))
                in_ch = c
        self.blocks = nn.Sequential(*blocks)
        self.head = nn.Sequential(nn.GlobalAvgPool2d(), nn.Flatten(), nn.Linear(in_ch, num_classes, rng=rng))

    def forward(self, x):
        return self.head(self.blocks(self.stem(x)))


def build_mobilenet_v2(num_classes: int = 10, width_scale: float = 0.5, seed: int = 0) -> nn.Module:
    """Scaled MobileNet-V2 (reduced width/blocks) for pruning experiments."""
    rng = make_rng(seed)
    width = max(8, int(32 * width_scale))
    cfg = [
        (1, max(8, int(16 * width_scale)), 1, 1),
        (6, max(8, int(24 * width_scale)), 1, 2),
        (6, max(8, int(32 * width_scale)), 1, 2),
        (6, max(8, int(64 * width_scale)), 1, 1),
    ]
    return _MobileNetV2(cfg, width, num_classes, rng)
