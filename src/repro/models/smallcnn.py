"""A compact CNN used by fast tests and the quickstart example."""

from __future__ import annotations

from repro import nn
from repro.utils.rng import make_rng


def build_small_cnn(
    num_classes: int = 10,
    in_channels: int = 3,
    channels: tuple[int, ...] = (16, 32),
    in_size: int = 16,
    batch_norm: bool = True,
    seed: int = 0,
) -> nn.Module:
    """Two-to-three 3×3 conv blocks + global pool + linear classifier.

    Small enough to ADMM-prune in seconds, structured enough to carry
    every pattern/connectivity concept (multiple filters and channels).
    """
    rng = make_rng(seed)
    layers: list[nn.Module] = []
    in_ch = in_channels
    size = in_size
    for out_ch in channels:
        layers.append(nn.Conv2d(in_ch, out_ch, 3, padding=1, bias=not batch_norm, rng=rng))
        if batch_norm:
            layers.append(nn.BatchNorm2d(out_ch))
        layers.append(nn.ReLU())
        if size >= 4:
            layers.append(nn.MaxPool2d(2))
            size //= 2
        in_ch = out_ch
    layers += [nn.GlobalAvgPool2d(), nn.Flatten(), nn.Linear(in_ch, num_classes, rng=rng)]
    return nn.Sequential(*layers)
