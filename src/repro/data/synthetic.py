"""Synthetic class-separable image datasets.

Each class ``c`` gets a random low-frequency prototype image; samples are
``prototype + textured noise``.  The signal-to-noise ratio is tuned so a
linear model cannot reach high accuracy but a small CNN can, giving the
pruning experiments headroom to show accuracy *differences* between
schemes (the quantity the paper's Tables 3/4/7 compare).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.utils.rng import make_rng


def _low_freq_prototype(rng: np.random.Generator, channels: int, size: int, bands: int = 4) -> np.ndarray:
    """Smooth random image built from a few 2-D cosine modes."""
    yy, xx = np.meshgrid(np.linspace(0, 1, size), np.linspace(0, 1, size), indexing="ij")
    img = np.zeros((channels, size, size), dtype=np.float64)
    for _ in range(bands):
        fy, fx = rng.integers(1, 4, size=2)
        phase_y, phase_x = rng.uniform(0, 2 * np.pi, size=2)
        amp = rng.uniform(0.5, 1.0, size=(channels, 1, 1))
        wave = np.cos(2 * np.pi * fy * yy + phase_y) * np.cos(2 * np.pi * fx * xx + phase_x)
        img += amp * wave[None]
    img /= np.abs(img).max() + 1e-9
    return img.astype(np.float32)


@dataclass
class SyntheticImageDataset:
    """In-memory labelled image dataset.

    Attributes:
        images: float32 array (N, C, H, W), roughly zero-mean/unit-range.
        labels: int64 array (N,).
        num_classes: number of distinct labels.
    """

    images: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "synthetic"
    prototypes: np.ndarray | None = field(default=None, repr=False)

    def __len__(self) -> int:
        return len(self.labels)

    def __getitem__(self, idx):
        return self.images[idx], self.labels[idx]

    def split(self, train_fraction: float = 0.8) -> tuple["SyntheticImageDataset", "SyntheticImageDataset"]:
        """Deterministic train/test split (data is already shuffled)."""
        n_train = int(len(self) * train_fraction)
        train = SyntheticImageDataset(
            self.images[:n_train], self.labels[:n_train], self.num_classes, f"{self.name}-train", self.prototypes
        )
        test = SyntheticImageDataset(
            self.images[n_train:], self.labels[n_train:], self.num_classes, f"{self.name}-test", self.prototypes
        )
        return train, test


def make_synthetic(
    num_classes: int,
    samples_per_class: int,
    channels: int = 3,
    size: int = 16,
    noise: float = 0.9,
    seed: int = 7,
    name: str = "synthetic",
) -> SyntheticImageDataset:
    """Generate a class-separable dataset.

    Args:
        noise: std of the additive noise relative to prototype amplitude;
            0.9 gives ~1.1 SNR — solvable by a CNN, not trivially by a
            linear probe.
    """
    rng = make_rng(seed)
    protos = np.stack([_low_freq_prototype(rng, channels, size) for _ in range(num_classes)])
    images = np.empty((num_classes * samples_per_class, channels, size, size), dtype=np.float32)
    labels = np.empty(num_classes * samples_per_class, dtype=np.int64)
    idx = 0
    for c in range(num_classes):
        base = protos[c]
        for _ in range(samples_per_class):
            sample = base + noise * rng.standard_normal(base.shape).astype(np.float32)
            # Mild spatial correlation in the noise (texture), so convs matter.
            sample[:, 1:, :] = 0.7 * sample[:, 1:, :] + 0.3 * sample[:, :-1, :]
            images[idx] = sample
            labels[idx] = c
            idx += 1
    order = rng.permutation(len(labels))
    return SyntheticImageDataset(images[order], labels[order], num_classes, name, protos)


def make_cifar10_like(
    samples_per_class: int = 64, size: int = 16, seed: int = 11
) -> SyntheticImageDataset:
    """CIFAR-10 stand-in: 10 classes, 3 channels.

    ``size`` defaults to 16 (half CIFAR's 32) to keep the ADMM training
    experiments laptop-fast; the models are scaled to match.
    """
    return make_synthetic(10, samples_per_class, channels=3, size=size, seed=seed, name="cifar10-syn")


def make_imagenet_like(
    num_classes: int = 20, samples_per_class: int = 24, size: int = 32, seed: int = 13
) -> SyntheticImageDataset:
    """ImageNet stand-in: more classes, larger images than the CIFAR proxy."""
    return make_synthetic(
        num_classes, samples_per_class, channels=3, size=size, seed=seed, name="imagenet-syn"
    )
