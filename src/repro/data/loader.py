"""Mini-batch iterator."""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from repro.data.synthetic import SyntheticImageDataset
from repro.utils.rng import make_rng


class DataLoader:
    """Yield (images, labels) numpy mini-batches.

    Shuffling uses an injected RNG so epochs are reproducible; the last
    partial batch is kept (drop_last=False) to match evaluation needs.
    """

    def __init__(
        self,
        dataset: SyntheticImageDataset,
        batch_size: int = 32,
        shuffle: bool = False,
        drop_last: bool = False,
        rng: np.random.Generator | None = None,
    ) -> None:
        if batch_size <= 0:
            raise ValueError(f"batch_size must be positive, got {batch_size}")
        self.dataset = dataset
        self.batch_size = batch_size
        self.shuffle = shuffle
        self.drop_last = drop_last
        self._rng = rng or make_rng()

    def __len__(self) -> int:
        n = len(self.dataset)
        if self.drop_last:
            return n // self.batch_size
        return (n + self.batch_size - 1) // self.batch_size

    def __iter__(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        n = len(self.dataset)
        order = self._rng.permutation(n) if self.shuffle else np.arange(n)
        end = n - (n % self.batch_size) if self.drop_last else n
        for start in range(0, end, self.batch_size):
            idx = order[start : start + self.batch_size]
            yield self.dataset.images[idx], self.dataset.labels[idx]
