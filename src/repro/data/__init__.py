"""Datasets and loaders.

The environment has no network access, so ImageNet/CIFAR-10 are
substituted by deterministic synthetic datasets whose classes are
Gaussian perturbations of per-class image prototypes (see
``DESIGN.md §2``).  They are hard enough that an untrained net scores at
chance and a small CNN needs real optimisation to separate them — which
is what the pruning-accuracy experiments require.
"""

from repro.data.synthetic import SyntheticImageDataset, make_cifar10_like, make_imagenet_like
from repro.data.loader import DataLoader

__all__ = [
    "SyntheticImageDataset",
    "make_cifar10_like",
    "make_imagenet_like",
    "DataLoader",
]
