"""Accuracy-side experiments: Tables 2, 3, 4, and 7's accuracy columns.

Each function returns a :class:`~repro.bench.reporting.ResultTable` and
is deterministic given its arguments.  ``fast=True`` (the default used
by tests) shrinks epochs; benchmarks run the same settings so results
in test logs and EXPERIMENTS.md agree.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bench import paper
from repro.bench.reporting import ResultTable
from repro.bench.trainutil import clone_pretrained, pretrained_workbench
from repro.core import (
    ADMMConfig,
    PatDNNPruner,
    PruningConfig,
    compression_rate,
)
from repro.core.baselines import (
    ADMMUnstructuredPruner,
    GrowPrunePruner,
    MagnitudePruner,
    StructuredPruner,
)
from repro.core.masking import MaskedRetrainer


def _admm_config(fast: bool) -> ADMMConfig:
    return ADMMConfig(
        iterations=4 if fast else 8,
        epochs_per_iteration=3,
        rho=0.1,
        lr=3e-3,
    )


def _prune_with_patterns(wb, state, num_patterns: int, connectivity_rate: float | None, fast: bool):
    model = clone_pretrained(wb, state)
    # Joint pattern+connectivity restricts a much smaller feasible set
    # than free magnitude pruning, so it gets a correspondingly longer
    # masked fine-tune (the paper spends up to 120 epochs total).
    cfg = PruningConfig(
        num_patterns=num_patterns,
        connectivity_rate=connectivity_rate,
        retrain_epochs=(6 if connectivity_rate is None else 10) if fast else 16,
        admm=_admm_config(fast),
    )
    result = PatDNNPruner(cfg).fit(model, wb.loader)
    return model, result


# ----------------------------------------------------------------------
@lru_cache(maxsize=2)
def _table3_cached(fast: bool = True) -> ResultTable:
    wb, state = pretrained_workbench()
    base = clone_pretrained(wb, state)
    base_acc = wb.accuracy(base) * 100
    table = ResultTable(
        "Table 3 — accuracy vs pattern count (kernel pattern pruning only)",
        ["setting", "accuracy %", "paper (VGG top-5 %)"],
    )
    table.add("original", f"{base_acc:.1f}", paper.TABLE3["vgg16"]["original"])
    for k in (6, 8, 12):
        model, _ = _prune_with_patterns(wb, state, k, None, fast)
        acc = wb.accuracy(model) * 100
        table.add(f"{k}-pattern", f"{acc:.1f}", paper.TABLE3["vgg16"][k])
    table.note(
        "scaled CNN on synthetic CIFAR; the reproduced claim is the *shape*: "
        "pattern pruning at 2.25x costs little-to-no accuracy at any k in 6..12"
    )
    return table


def table3_pattern_accuracy(fast: bool = True) -> ResultTable:
    """Accuracy with 6/8/12-pattern kernel pruning vs the dense baseline."""
    return _table3_cached(fast)


# ----------------------------------------------------------------------
@lru_cache(maxsize=2)
def _table4_cached(fast: bool = True) -> ResultTable:
    wb, state = pretrained_workbench()
    table = ResultTable(
        "Table 4 — joint pattern+connectivity vs baseline pruning schemes",
        ["method", "accuracy %", "conv compression", "paper (acc%, rate)"],
    )
    base_acc = wb.accuracy(clone_pretrained(wb, state)) * 100
    table.add("dense baseline", f"{base_acc:.1f}", "1.0x", "(91.7, 1.0)")

    retrain = 6 if fast else 12
    runs = [
        ("deep compression (magnitude)", MagnitudePruner(rate=3.5, steps=2, retrain_epochs=retrain), "deep_compression"),
        ("NeST (grow-prune)", GrowPrunePruner(rate=6.5, rounds=1 if fast else 2, retrain_epochs=retrain), "nest"),
        ("ADMM-NN (non-structured)", ADMMUnstructuredPruner(rate=8.0, iterations=4 if fast else 6, epochs_per_iteration=3, retrain_epochs=retrain, rho=0.1, lr=3e-3), "admm_nn"),
    ]
    for label, pruner, key in runs:
        model = clone_pretrained(wb, state)
        pruner.prune(model, wb.loader)
        acc = wb.accuracy(model) * 100
        rate = compression_rate(model)
        table.add(label, f"{acc:.1f}", f"{rate:.1f}x", str(paper.TABLE4["vgg16"][key]))

    model, _ = _prune_with_patterns(wb, state, 8, 3.6, fast)
    acc = wb.accuracy(model) * 100
    rate = compression_rate(model)
    table.add("ours (8-pattern + connectivity)", f"{acc:.1f}", f"{rate:.1f}x", str(paper.TABLE4["vgg16"]["ours"]))
    table.note(
        "claim reproduced when 'ours' matches ADMM-NN's compression ballpark "
        "at equal-or-better accuracy and beats the heuristic baselines"
    )
    return table


def table4_compression(fast: bool = True) -> ResultTable:
    """Compression-rate / accuracy comparison against baseline pruners."""
    return _table4_cached(fast)


# ----------------------------------------------------------------------
@lru_cache(maxsize=2)
def _table2_cached(fast: bool = True) -> ResultTable:
    wb, state = pretrained_workbench()
    rate = 4.0
    retrain = 6 if fast else 12
    table = ResultTable(
        "Table 2 — pruning schemes at equal 4x rate (accuracy / hw-friendliness)",
        ["scheme", "accuracy %", "hardware speedup rank (paper)"],
    )
    # Non-structured (highest accuracy, minor speedup).
    m = clone_pretrained(wb, state)
    ADMMUnstructuredPruner(
        rate=rate, iterations=4 if fast else 6, epochs_per_iteration=3,
        retrain_epochs=retrain, rho=0.1, lr=3e-3,
    ).prune(m, wb.loader)
    table.add("non-structured", f"{wb.accuracy(m) * 100:.1f}", "minor")
    # Filter pruning (highest loss, highest speedup).
    m = clone_pretrained(wb, state)
    StructuredPruner(rate=rate, granularity="filter", retrain_epochs=retrain).prune(m, wb.loader)
    table.add("filter (structured)", f"{wb.accuracy(m) * 100:.1f}", "highest")
    # Channel pruning.
    m = clone_pretrained(wb, state)
    StructuredPruner(rate=rate, granularity="channel", retrain_epochs=retrain).prune(m, wb.loader)
    table.add("channel (structured)", f"{wb.accuracy(m) * 100:.1f}", "highest")
    # Pattern (minor loss, high speedup): 2.25x pattern + ~1.8x connectivity.
    m, _ = _prune_with_patterns(wb, state, 8, rate / 2.25, fast)
    table.add("pattern + connectivity", f"{wb.accuracy(m) * 100:.1f}", "high/moderate")
    table.note("expected ordering: non-structured >= pattern > structured accuracy")
    return table


def table2_scheme_comparison(fast: bool = True) -> ResultTable:
    """Qualitative Table 2 with measured accuracies at one pruning rate."""
    return _table2_cached(fast)


# ----------------------------------------------------------------------
def table7_accuracy(fast: bool = True) -> dict[int, float]:
    """Accuracy at 6/8/12 patterns with 3.6x connectivity (Table 7)."""
    wb, state = pretrained_workbench()
    out: dict[int, float] = {}
    for k in (6, 8, 12):
        model, _ = _prune_with_patterns(wb, state, k, 3.6, fast)
        out[k] = wb.accuracy(model) * 100
    return out


def masked_retraining_recovers(fast: bool = True) -> ResultTable:
    """Ablation: accuracy directly after hard projection vs after retraining."""
    wb, state = pretrained_workbench()
    model = clone_pretrained(wb, state)
    cfg = PruningConfig(num_patterns=8, connectivity_rate=3.6, retrain_epochs=0, admm=_admm_config(fast))
    result = PatDNNPruner(cfg).fit(model, wb.loader)
    acc_before = wb.accuracy(model) * 100
    MaskedRetrainer(model, result.masks).train(wb.loader, epochs=4 if fast else 8)
    acc_after = wb.accuracy(model) * 100
    table = ResultTable(
        "Ablation — masked retraining after hard projection",
        ["stage", "accuracy %"],
    )
    table.add("hard projection only", f"{acc_before:.1f}")
    table.add("+ masked retraining", f"{acc_after:.1f}")
    return table
