"""Experiment registry: id → (description, callable).

The per-experiment index of DESIGN.md resolves here; ``repro-bench``
style tooling, the benchmarks, and EXPERIMENTS.md generation all look
experiments up by the paper's table/figure ids.
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from repro.bench import accuracy_experiments as acc
from repro.bench import perf_experiments as perf
from repro.bench.reporting import ResultTable


@dataclass(frozen=True)
class Experiment:
    """One reproducible paper experiment."""

    exp_id: str
    description: str
    run: Callable[[], ResultTable]
    kind: str  # 'accuracy' | 'performance'


EXPERIMENTS: dict[str, Experiment] = {
    e.exp_id: e
    for e in [
        Experiment("table1", "framework optimization-knob matrix", perf.table1_features, "performance"),
        Experiment("table2", "pruning-scheme accuracy/speedup comparison", acc.table2_scheme_comparison, "accuracy"),
        Experiment("table3", "accuracy vs pattern count", acc.table3_pattern_accuracy, "accuracy"),
        Experiment("table4", "compression-rate comparison", acc.table4_compression, "accuracy"),
        Experiment("table5", "model characteristics", perf.table5_model_zoo, "performance"),
        Experiment("table6", "VGG unique conv layers", perf.table6_vgg_layers, "performance"),
        Experiment("table7", "pattern count vs latency", perf.table7_latency, "performance"),
        Experiment("fig12", "overall latency vs TFLite/TVM/MNN", perf.fig12_overall, "performance"),
        Experiment("fig13", "per-optimization speedup breakdown", perf.fig13_breakdown, "performance"),
        Experiment("fig14a", "FKR filter-length distribution", perf.fig14a_filter_lengths, "performance"),
        Experiment("fig14b", "LRE register-load counts", perf.fig14b_register_loads, "performance"),
        Experiment("fig15", "loop permutation / tiling sweep", perf.fig15_permutations, "performance"),
        Experiment("fig16", "FKW vs CSR storage overhead", perf.fig16_fkw_vs_csr, "performance"),
        Experiment("fig17a", "dense PatDNN vs MNN (no Winograd)", perf.fig17_dense_vs_mnn, "performance"),
        Experiment("fig17b", "GFLOPS pattern vs dense", perf.fig17_pattern_vs_dense, "performance"),
        Experiment("fig18", "portability across devices", perf.fig18_portability, "performance"),
        Experiment("tuner", "GA exploration + MLP estimator", perf.tuner_exploration, "performance"),
        Experiment("ablation-retrain", "masked retraining recovery", acc.masked_retraining_recovers, "accuracy"),
    ]
}


def list_experiments() -> list[str]:
    return sorted(EXPERIMENTS)


def get_experiment(exp_id: str) -> Experiment:
    if exp_id not in EXPERIMENTS:
        raise KeyError(f"unknown experiment {exp_id!r}; known: {list_experiments()}")
    return EXPERIMENTS[exp_id]
