"""Benchmark harness: experiment registry, reporting, paper comparisons.

Every table and figure of the paper's evaluation maps to a function in
:mod:`repro.bench.perf_experiments` or
:mod:`repro.bench.accuracy_experiments`; :mod:`repro.bench.registry`
indexes them by experiment id (``table3``, ``fig13``, ...).  The
``benchmarks/`` tree contains thin pytest-benchmark wrappers around
these functions, and EXPERIMENTS.md is generated from the same results
via :mod:`repro.bench.paper` expectations.
"""

from repro.bench.reporting import ResultTable
from repro.bench.registry import EXPERIMENTS, get_experiment, list_experiments
from repro.bench import paper

__all__ = ["ResultTable", "EXPERIMENTS", "get_experiment", "list_experiments", "paper"]
