"""Result tables for experiment output (text + markdown)."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.utils.misc import sizeof_fmt_table


@dataclass
class ResultTable:
    """A titled table of experiment results.

    Attributes:
        title: experiment id + short description.
        headers: column names.
        rows: row values (stringified on render).
        notes: free-form caveats appended under the table.
    """

    title: str
    headers: list[str]
    rows: list[list[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add(self, *values: Any) -> None:
        if len(values) != len(self.headers):
            raise ValueError(f"row has {len(values)} cells, expected {len(self.headers)}")
        self.rows.append(list(values))

    def note(self, text: str) -> None:
        self.notes.append(text)

    def to_text(self) -> str:
        body = sizeof_fmt_table(self.rows, self.headers)
        parts = [f"== {self.title} ==", body]
        parts.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(parts)

    def to_markdown(self) -> str:
        header = "| " + " | ".join(self.headers) + " |"
        sep = "|" + "|".join("---" for _ in self.headers) + "|"
        lines = [f"### {self.title}", "", header, sep]
        for row in self.rows:
            lines.append("| " + " | ".join(str(c) for c in row) + " |")
        for n in self.notes:
            lines.append(f"\n> {n}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.to_text()

    def column(self, name: str) -> list[Any]:
        idx = self.headers.index(name)
        return [row[idx] for row in self.rows]
