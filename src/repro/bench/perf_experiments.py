"""Performance-side experiments: Figures 12–18 and Tables 1/5/6/7.

All latency numbers come from the device cost model over real compiler
artifacts (see DESIGN.md §2's substitution notes).  Heavy preparations
(pattern compilation of full-scale models) are cached per process so
tests, benchmarks, and EXPERIMENTS.md generation share work.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.bench import paper
from repro.bench.reporting import ResultTable
from repro.compiler.compile import OptLevel, compile_layer, prune_spec_layer
from repro.compiler.lre import count_register_loads
from repro.compiler.reorder import filter_kernel_reorder, identity_reorder
from repro.compiler.storage import CSRLayer, FKWLayer
from repro.compiler.tuner import GATuner, PerformanceEstimator, Schedule, ScheduleSpace
from repro.core.patterns import mine_pattern_set
from repro.frameworks import UnsupportedModelError, feature_matrix, get_engine
from repro.hardware import DEVICES, SNAPDRAGON_855, get_device
from repro.hardware.cost_model import ConvCostModel, ConvWorkload, SchedParams
from repro.models import get_spec
from repro.models.vgg import VGG_UNIQUE_LAYERS, unique_layer_spec
from repro.utils.rng import make_rng

_MODELS = ("vgg16", "resnet50", "mobilenet_v2")
_SHORT = {"vgg16": "VGG", "resnet50": "RNT", "mobilenet_v2": "MBNT"}


# ----------------------------------------------------------------------
# Cached preparations
# ----------------------------------------------------------------------
@lru_cache(maxsize=128)
def _latency(engine: str, model: str, dataset: str, unit: str, device: str = "snapdragon855", mode: str | None = None, num_patterns: int = 8) -> float | None:
    """Prepared-latency cache; None when the engine rejects the model."""
    spec = get_spec(model, dataset)
    kwargs = {}
    if engine == "patdnn":
        kwargs = {"mode": mode or "pattern", "num_patterns": num_patterns}
    eng = get_engine(engine, get_device(device), unit, **kwargs)
    try:
        return eng.prepare(spec).latency_ms
    except UnsupportedModelError:
        return None


@lru_cache(maxsize=8)
def _vgg_pattern_set(num_patterns: int = 8):
    rng = make_rng(0)
    spec = get_spec("vgg16", "imagenet")
    tensors = [c.make_weights(rng) for c in spec.conv_3x3()[:4]]
    return mine_pattern_set(tensors, k=num_patterns)


@lru_cache(maxsize=64)
def _pruned_unique_layer(name: str, connectivity_rate: float = 3.6, num_patterns: int = 8):
    spec = unique_layer_spec(name)
    ps = _vgg_pattern_set(num_patterns)
    rng = make_rng(1)
    if name == "L1":
        # §4.2: the first layer is smaller yet more sensitive; the paper
        # applies a gentler connectivity rate there.
        connectivity_rate = min(connectivity_rate, 1.5)
    w, assignment = prune_spec_layer(spec, ps, connectivity_rate, rng)
    return spec, w, assignment, ps


def _cost_model(unit: str, device: str = "snapdragon855") -> ConvCostModel:
    dev = get_device(device)
    return ConvCostModel(
        dev,
        unit,
        utilization=0.42 if unit == "cpu" else 0.055,
        sparse_efficiency=0.70 if unit == "cpu" else 0.45,
        fp16=unit == "gpu",
    )


# ----------------------------------------------------------------------
# Table 1 / 5 / 6
# ----------------------------------------------------------------------
def table1_features() -> ResultTable:
    """Framework optimization-knob matrix."""
    matrix = feature_matrix()
    table = ResultTable(
        "Table 1 — DNN acceleration frameworks on mobile devices",
        ["optimization knob", "TFLite", "TVM", "MNN", "PatDNN"],
    )
    for knob, support in matrix.items():
        table.add(
            knob,
            *("Y" if support[e] else "N" for e in ("tflite", "tvm", "mnn", "patdnn")),
        )
    return table


def table5_model_zoo() -> ResultTable:
    """Model characteristics vs the paper's Table 5."""
    table = ResultTable(
        "Table 5 — DNN characteristics",
        ["network", "dataset", "layers", "convs", "size MB", "paper MB"],
    )
    for model in _MODELS:
        for dataset in ("imagenet", "cifar10"):
            spec = get_spec(model, dataset)
            expected = paper.TABLE5[(model, dataset)]
            table.add(
                _SHORT[model],
                dataset,
                spec.total_layers,
                spec.conv_count,
                f"{spec.size_mb:.1f}",
                expected["size_mb"],
            )
    return table


def table6_vgg_layers() -> ResultTable:
    """VGG-16 unique CONV layer shapes."""
    table = ResultTable(
        "Table 6 — VGG unique CONV layers",
        ["name", "filter shape", "paper"],
    )
    for name in VGG_UNIQUE_LAYERS:
        spec = unique_layer_spec(name)
        table.add(name, str(list(spec.filter_shape)), str(list(paper.TABLE6[name])))
    return table


# ----------------------------------------------------------------------
# Figure 12 — overall performance
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _fig12_cached(dataset: str) -> ResultTable:
    table = ResultTable(
        f"Figure 12 — overall inference latency (ms), {dataset}, Snapdragon 855",
        ["model", "unit", "TFLite", "TVM", "MNN", "PatDNN", "best speedup"],
    )
    for model in _MODELS:
        for unit in ("cpu", "gpu"):
            lat = {e: _latency(e, model, dataset, unit) for e in ("tflite", "tvm", "mnn")}
            pat = _latency("patdnn", model, dataset, unit)
            speedups = [v / pat for v in lat.values() if v is not None]
            table.add(
                _SHORT[model],
                unit,
                *(f"{lat[e]:.1f}" if lat[e] is not None else "N/A" for e in ("tflite", "tvm", "mnn")),
                f"{pat:.1f}",
                f"{max(speedups):.1f}x",
            )
    table.note("paper: PatDNN up to 44.5x over TFLite, 11.4x over TVM, 7.1x over MNN")
    return table


def fig12_overall(dataset: str = "imagenet") -> ResultTable:
    return _fig12_cached(dataset)


# ----------------------------------------------------------------------
# Figure 13 — optimization breakdown on L1..L9
# ----------------------------------------------------------------------
@lru_cache(maxsize=4)
def _fig13_cached(unit: str) -> ResultTable:
    cm = _cost_model(unit)
    table = ResultTable(
        f"Figure 13 — speedup over No-opt per optimization, VGG layers ({unit})",
        ["layer", "no-opt ms", "+reorder", "+lre", "+tune", "total"],
    )
    for name in VGG_UNIQUE_LAYERS:
        spec, w, assignment, ps = _pruned_unique_layer(name)
        times = {}
        for lvl in OptLevel:
            cl = compile_layer(spec, w, assignment, ps, cm, lvl)
            times[lvl] = cl.estimated_ms
        table.add(
            name,
            f"{times[OptLevel.NO_OPT]:.2f}",
            f"{times[OptLevel.NO_OPT] / times[OptLevel.REORDER]:.2f}x",
            f"{times[OptLevel.REORDER] / times[OptLevel.LRE]:.2f}x",
            f"{times[OptLevel.LRE] / times[OptLevel.TUNE]:.2f}x",
            f"{times[OptLevel.NO_OPT] / times[OptLevel.TUNE]:.2f}x",
        )
    lo_r, hi_r = paper.FIG13_RANGES[(unit, "reorder")]
    table.note(f"paper {unit} ranges: reorder {lo_r}-{hi_r}x, "
               f"lre {paper.FIG13_RANGES[(unit, 'lre')]}, tune {paper.FIG13_RANGES[(unit, 'tune')]}")
    return table


def fig13_breakdown(unit: str = "cpu") -> ResultTable:
    return _fig13_cached(unit)


# ----------------------------------------------------------------------
# Figure 14 — FKR length distribution + LRE load counts
# ----------------------------------------------------------------------
def fig14a_filter_lengths(layer: str = "L4") -> ResultTable:
    """Filter-length distribution before/after FKR (VGG L4)."""
    spec, w, assignment, ps = _pruned_unique_layer(layer)
    before = identity_reorder(assignment)
    after = filter_kernel_reorder(assignment)
    table = ResultTable(
        f"Figure 14a — filter lengths before/after FKR ({layer})",
        ["metric", "before", "after"],
    )
    monotone = bool(np.all(np.diff(after.lengths_after) <= 0))
    table.add("min length", int(before.lengths_before.min()), int(after.lengths_after.min()))
    table.add("max length", int(before.lengths_before.max()), int(after.lengths_after.max()))
    table.add("adjacent-equal fraction",
              f"{float(np.mean(np.diff(before.lengths_after) == 0)):.2f}",
              f"{float(np.mean(np.diff(after.lengths_after) == 0)):.2f}")
    table.add("groups (equal length)", len(set(before.lengths_before.tolist())), after.num_groups)
    table.add("sorted into groups", "no", "yes" if monotone else "no")
    return table


def fig14b_register_loads(unit: str = "cpu") -> ResultTable:
    """Register load counts before/after LRE for L1..L9."""
    table = ResultTable(
        "Figure 14b — register load counts before/after elimination",
        ["layer", "no-eliminate", "eliminate", "reduction"],
    )
    for name in VGG_UNIQUE_LAYERS:
        spec, w, assignment, ps = _pruned_unique_layer(name)
        fkw = FKWLayer.from_pruned(w, assignment, ps)
        loads = count_register_loads(fkw, spec.out_hw)
        table.add(name, loads.no_lre, loads.filter_lre, f"{loads.total_reduction:.2f}x")
    table.note("paper Fig. 14b shows roughly 2-3x reduction across layers")
    return table


# ----------------------------------------------------------------------
# Figure 15 — permutation/tiling sweep (GFLOPS)
# ----------------------------------------------------------------------
def fig15_permutations(dataset: str = "imagenet") -> ResultTable:
    """GFLOPS per loop permutation × blocking for each unique layer."""
    table = ResultTable(
        f"Figure 15 — GFLOPS by permutation and blocking ({dataset}, CPU)",
        ["layer", "CoCiHW", "CoHWCi", "CoCiHW-Block", "CoHWCi-Block"],
    )
    cm = _cost_model("cpu")
    for name in VGG_UNIQUE_LAYERS:
        spec, w, assignment, ps = _pruned_unique_layer(name)
        if dataset == "cifar10":
            # CIFAR runs the same filter shapes on small feature maps.
            from dataclasses import replace as _replace

            spec = _replace(spec, in_hw=max(4, spec.in_hw // 7))
            w, assignment = prune_spec_layer(spec, ps, 3.6, make_rng(1), weights=w)
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        row = [name]
        for perm in ("cocihw", "cohwci"):
            for blocked in (False, True):
                sched = SchedParams(
                    permutation=perm,
                    blocked=blocked,
                    unroll_oc=4 if blocked else 1,
                    unroll_ow=2 if blocked else 1,
                    tile_oc=32,
                )
                cost = cm.estimate(cl.workload, sched)
                gflops = 2 * cl.fkw.nnz * spec.out_hw**2 / (cost.total_ms / 1e3) / 1e9
                row.append(f"{gflops:.1f}")
        # reorder columns: CoCiHW, CoHWCi, CoCiHW-Block, CoHWCi-Block
        table.add(row[0], row[1], row[3], row[2], row[4])
    table.note("blocked+unrolled schedules should dominate; permutation shifts cache reuse")
    return table


# ----------------------------------------------------------------------
# Figure 16 — FKW vs CSR extra-structure overhead
# ----------------------------------------------------------------------
def fig16_fkw_vs_csr() -> ResultTable:
    """FKW/CSR overhead ratio per layer at 8x/12x/18x overall pruning."""
    table = ResultTable(
        "Figure 16 — FKW extra-structure overhead relative to CSR",
        ["layer", "8x", "12x", "18x"],
    )
    # overall rate = 2.25 (pattern) × connectivity rate
    conn_by_rate = {8: 3.6, 12: 5.33, 18: 8.0}
    totals = {r: [0, 0] for r in conn_by_rate}
    for name in VGG_UNIQUE_LAYERS:
        row = [name]
        for rate, conn in conn_by_rate.items():
            spec, w, assignment, ps = _pruned_unique_layer(name, connectivity_rate=conn)
            fkw = FKWLayer.from_pruned(w, assignment, ps)
            csr = CSRLayer.from_dense(w)
            ratio = fkw.overhead_bytes() / max(1, csr.overhead_bytes())
            totals[rate][0] += fkw.overhead_bytes()
            totals[rate][1] += csr.overhead_bytes()
            row.append(f"{100 * ratio:.1f}%")
        table.add(*row)
    all_row = ["All"]
    for rate in conn_by_rate:
        all_row.append(f"{100 * totals[rate][0] / totals[rate][1]:.1f}%")
    table.add(*all_row)
    table.note(
        "paper: FKW saves 87.9% (8x), 91.6% (12x), 93.4% (18x) of CSR's "
        "extra structure, i.e. ratios of 12.1% / 8.4% / 6.6%"
    )
    return table


# ----------------------------------------------------------------------
# Figure 17 — GFLOPS analysis
# ----------------------------------------------------------------------
def fig17_dense_vs_mnn() -> ResultTable:
    """PatDNN's dense baseline vs MNN, Winograd off (Fig. 17a)."""
    table = ResultTable(
        "Figure 17a — dense VGG latency without Winograd (ms)",
        ["unit", "MNN", "PatDNN dense", "advantage"],
    )
    spec = get_spec("vgg16", "imagenet")
    for unit in ("cpu", "gpu"):
        results = {}
        for name in ("mnn", "patdnn"):
            kwargs = {"mode": "dense"} if name == "patdnn" else {}
            eng = get_engine(name, SNAPDRAGON_855, unit, **kwargs)
            eng.profile = eng.profile.__class__(**{**eng.profile.__dict__, "has_winograd": False})
            results[name] = eng.prepare(spec).latency_ms
        table.add(unit, f"{results['mnn']:.1f}", f"{results['patdnn']:.1f}",
                  f"{results['mnn'] / results['patdnn']:.2f}x")
    table.note(f"paper: dense PatDNN is {paper.DENSE_ADVANTAGE[0]}-{paper.DENSE_ADVANTAGE[1]}x faster than TVM/MNN")
    return table


def fig17_pattern_vs_dense() -> ResultTable:
    """Achieved GFLOPS: pattern vs dense (no Winograd), L1..L9 (Fig. 17b)."""
    table = ResultTable(
        "Figure 17b — GFLOPS per layer: pattern vs dense (no Winograd)",
        ["layer", "cpu dense", "cpu pattern", "gpu dense", "gpu pattern"],
    )
    for name in VGG_UNIQUE_LAYERS:
        row = [name]
        for unit in ("cpu", "gpu"):
            cm = _cost_model(unit)
            spec, w, assignment, ps = _pruned_unique_layer(name)
            dense_work = ConvWorkload.dense(spec, winograd=False)
            dense_cost = cm.estimate(dense_work, SchedParams(unroll_oc=4, unroll_ow=2, blocked=True))
            dense_gflops = spec.flops / (dense_cost.total_ms / 1e3) / 1e9
            cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.TUNE)
            pat_cost = cm.estimate(cl.workload, cl.schedule.to_sched_params())
            pat_gflops = 2 * cl.fkw.nnz * spec.out_hw**2 / (pat_cost.total_ms / 1e3) / 1e9
            row.extend([f"{dense_gflops:.1f}", f"{pat_gflops:.1f}"])
        table.add(*row)
    table.note("paper: pattern GFLOPS comparable to dense on CPU, higher on GPU")
    return table


# ----------------------------------------------------------------------
# Figure 18 — portability
# ----------------------------------------------------------------------
@lru_cache(maxsize=2)
def _fig18_cached() -> ResultTable:
    table = ResultTable(
        "Figure 18 — portability: VGG latency across devices (ms)",
        ["device", "unit", "TFLite", "TVM", "MNN", "PatDNN"],
    )
    for device in ("snapdragon855", "snapdragon845", "kirin980"):
        for unit in ("cpu", "gpu"):
            cells = []
            for engine in ("tflite", "tvm", "mnn", "patdnn"):
                ms = _latency(engine, "vgg16", "imagenet", unit, device=device)
                cells.append(f"{ms:.1f}" if ms is not None else "N/A")
            table.add(device, unit, *cells)
    table.note("paper: baselines degrade sharply on Kirin 980 (Mali GPU); PatDNN stays stable")
    return table


def fig18_portability() -> ResultTable:
    return _fig18_cached()


# ----------------------------------------------------------------------
# Table 7 latency side + tuner exploration
# ----------------------------------------------------------------------
def table7_latency() -> ResultTable:
    """VGG latency vs pattern-set size (Table 7's time columns)."""
    table = ResultTable(
        "Table 7 — pattern count vs latency (VGG, ImageNet)",
        ["patterns", "cpu ms", "gpu ms", "paper cpu", "paper gpu"],
    )
    for k in (6, 8, 12):
        cpu = _latency("patdnn", "vgg16", "imagenet", "cpu", num_patterns=k)
        gpu = _latency("patdnn", "vgg16", "imagenet", "gpu", num_patterns=k)
        table.add(k, f"{cpu:.1f}", f"{gpu:.1f}", paper.TABLE7[k]["cpu_ms"], paper.TABLE7[k]["gpu_ms"])
    table.note("expected: mild growth 6->8, sharp growth at 12 (i-cache pressure)")
    return table


def tuner_exploration(layer: str = "L6") -> ResultTable:
    """GA exploration quality and estimator accuracy (§5.5)."""
    spec, w, assignment, ps = _pruned_unique_layer(layer)
    cm = _cost_model("cpu")
    cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
    work = cl.workload
    space = ScheduleSpace.for_layer(spec.out_channels, spec.out_hw, "cpu")
    rng = make_rng(5)

    ga = GATuner(cm, population=24, generations=12, seed=7)
    result = ga.tune(work, space)
    random_best = min(
        cm.estimate(work, space.random(rng).to_sched_params()).total_ms
        for _ in range(24 * 12)
    )
    default_ms = cm.estimate(work, Schedule.default().to_sched_params()).total_ms

    est = PerformanceEstimator(seed=3)
    rmse = est.fit(result.history[:200], work)
    candidates = [space.random(rng) for _ in range(64)]
    predicted = est.best_of(candidates, work)
    predicted_ms = cm.estimate(work, predicted.to_sched_params()).total_ms

    table = ResultTable(
        f"§5.5 — auto-tuner exploration on {layer}",
        ["method", "latency ms"],
    )
    table.add("default schedule", f"{default_ms:.2f}")
    table.add("random search (288 samples)", f"{random_best:.2f}")
    table.add("GA (24x12)", f"{result.best_ms:.2f}")
    table.add("estimator-predicted pick (64 candidates)", f"{predicted_ms:.2f}")
    table.note(f"estimator fit RMSE (log-ms): {rmse:.3f}")
    return table
