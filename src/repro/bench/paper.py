"""Paper-reported values, for shape comparison in EXPERIMENTS.md.

These are the numbers printed in the paper (Snapdragon 855 unless
noted).  The reproduction's cost model is calibrated once against the
dense VGG baselines; everything else is derived, so agreement in the
*ratios* below is the reproduction criterion (see DESIGN.md §4).
"""

from __future__ import annotations

# Figure 12 highlights (ms, VGG-16 / ImageNet on Snapdragon 855).
FIG12_VGG_IMAGENET = {
    ("tflite", "cpu"): 818.1,
    ("tflite", "gpu"): None,  # unsupported (footnote 3)
    ("patdnn", "gpu"): 18.9,
}
# Figure 12 speedup ranges (PatDNN vs baseline, across all 6 workloads).
FIG12_SPEEDUP_RANGES = {
    ("tflite", "cpu"): (12.3, 44.5),
    ("tvm", "cpu"): (2.4, 5.1),
    ("mnn", "cpu"): (1.9, 7.1),
    ("tflite", "gpu"): (2.5, 20.0),
    ("tvm", "gpu"): (2.8, 11.4),
    ("mnn", "gpu"): (1.6, 6.2),
}

# Figure 13: per-optimization speedup ranges over No-opt.
FIG13_RANGES = {
    ("cpu", "reorder"): (1.6, 3.0),
    ("cpu", "lre"): (1.6, 2.8),
    ("cpu", "tune"): (1.2, 1.9),
    ("gpu", "reorder"): (2.7, 6.1),
    ("gpu", "lre"): (1.5, 3.3),
    ("gpu", "tune"): (1.4, 3.8),
}

# Figure 16: FKW saving over CSR (fraction of extra structure removed).
FIG16_FKW_SAVINGS = {18: 0.934, 12: 0.916, 8: 0.879}

# Table 3: Top-5 ImageNet accuracy vs pattern count.
TABLE3 = {
    "vgg16": {"original": 91.7, 6: 92.1, 8: 92.3, 12: 92.4},
    "resnet50": {"original": 92.7, 6: 92.7, 8: 92.8, 12: 93.0},
}

# Table 4: CONV compression at matched accuracy.
TABLE4 = {
    "vgg16": {
        "deep_compression": (89.1, 3.5),
        "nest": (89.4, 6.5),
        "admm_nn": (88.9, 8.0),
        "ours": (91.6, 8.0),
    },
    "resnet50": {
        "fine_grained": (92.3, 2.6),
        "admm_nn": (92.3, 7.0),
        "ours": (92.5, 4.4),
    },
}

# Table 5: model characteristics.
TABLE5 = {
    ("vgg16", "imagenet"): {"layers": 16, "convs": 13, "size_mb": 553.5, "accu": 91.6, "loss": 0.1},
    ("resnet50", "imagenet"): {"layers": 50, "convs": 49, "size_mb": 102.5, "accu": 92.5, "loss": 0.2},
    ("mobilenet_v2", "imagenet"): {"layers": 53, "convs": 52, "size_mb": 14.2, "accu": 90.3, "loss": 0.0},
    ("vgg16", "cifar10"): {"layers": 16, "convs": 13, "size_mb": 61.0, "accu": 93.9, "loss": -0.4},
    ("resnet50", "cifar10"): {"layers": 50, "convs": 49, "size_mb": 94.4, "accu": 95.6, "loss": -1.0},
    ("mobilenet_v2", "cifar10"): {"layers": 54, "convs": 53, "size_mb": 9.4, "accu": 94.6, "loss": -0.1},
}

# Table 6: VGG unique conv layer shapes.
TABLE6 = {
    "L1": (64, 3, 3, 3),
    "L2": (64, 64, 3, 3),
    "L3": (128, 64, 3, 3),
    "L4": (128, 128, 3, 3),
    "L5": (256, 128, 3, 3),
    "L6": (256, 256, 3, 3),
    "L7": (512, 256, 3, 3),
    "L8": (512, 512, 3, 3),
    "L9": (512, 512, 3, 3),
}

# Table 7: pattern-count impact on VGG (ImageNet, 3.6x connectivity).
TABLE7 = {
    6: {"accu": 91.4, "loss": 0.3, "cpu_ms": 50.5, "gpu_ms": 18.6},
    8: {"accu": 91.6, "loss": 0.1, "cpu_ms": 51.8, "gpu_ms": 18.9},
    12: {"accu": 91.7, "loss": 0.0, "cpu_ms": 92.5, "gpu_ms": 27.6},
}

# §5.5: GA exploration completes in 3–5 ms for a large DNN.
TUNER_EXPLORATION_MS = (3.0, 5.0)

# §6.2: PatDNN dense is 1.1–1.6× faster than TVM/MNN dense.
DENSE_ADVANTAGE = (1.1, 1.6)


def within(value: float, lo: float, hi: float, slack: float = 0.0) -> bool:
    """Is ``value`` inside [lo, hi] with multiplicative slack on both ends?"""
    return lo * (1.0 - slack) <= value <= hi * (1.0 + slack)
