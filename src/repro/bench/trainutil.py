"""Shared training helpers for the accuracy experiments.

Accuracy experiments (Tables 2/3/4/7) run the *identical* algorithmic
pipeline to the paper — pre-train, ADMM-regularise, hard-project, masked
retrain — on scaled models and synthetic data (DESIGN.md §2).  This
module centralises the setup so every scheme sees the same data, model
seed, and epoch budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro import nn
from repro.core.metrics import evaluate_accuracy
from repro.data import DataLoader, make_cifar10_like
from repro.data.synthetic import SyntheticImageDataset
from repro.models import build_small_cnn
from repro.optim import Adam
from repro.utils.rng import make_rng


@dataclass
class Workbench:
    """A reproducible (dataset, model, loader) training setup."""

    train: SyntheticImageDataset
    test: SyntheticImageDataset
    loader: DataLoader
    model_seed: int = 0
    channels: tuple[int, ...] = (16, 32)
    in_size: int = 12

    def fresh_model(self) -> nn.Module:
        return build_small_cnn(channels=self.channels, in_size=self.in_size, seed=self.model_seed)

    def accuracy(self, model: nn.Module, topk: int = 1) -> float:
        return evaluate_accuracy(model, self.test.images, self.test.labels, topk=topk)


def make_workbench(
    samples_per_class: int = 60,
    size: int = 12,
    batch: int = 32,
    seed: int = 11,
    channels: tuple[int, ...] = (32, 64),
) -> Workbench:
    """Default workbench is deliberately over-parameterised (32/64
    channels for a 10-class 12x12 task) — pruning experiments need the
    same redundancy headroom the paper's ImageNet models have."""
    ds = make_cifar10_like(samples_per_class=samples_per_class, size=size, seed=seed)
    train, test = ds.split(0.8)
    loader = DataLoader(train, batch_size=batch, shuffle=True, rng=make_rng(seed + 1))
    return Workbench(train=train, test=test, loader=loader, in_size=size, channels=channels)


def train_model(
    model: nn.Module,
    loader: DataLoader,
    epochs: int = 20,
    lr: float = 3e-3,
) -> list[float]:
    """Plain supervised pre-training; returns per-epoch losses."""
    from repro.training import Trainer

    trainer = Trainer(model, loader, optimizer=Adam(model.parameters(), lr=lr))
    return trainer.run(epochs).epoch_losses


@lru_cache(maxsize=4)
def pretrained_workbench(epochs: int = 20, seed: int = 11) -> tuple[Workbench, dict]:
    """Cached (workbench, pretrained state dict) shared by experiments.

    Experiments clone the state into fresh models so schemes never
    contaminate each other.
    """
    wb = make_workbench(seed=seed)
    model = wb.fresh_model()
    train_model(model, wb.loader, epochs=epochs)
    return wb, model.state_dict()


def clone_pretrained(wb: Workbench, state: dict) -> nn.Module:
    model = wb.fresh_model()
    model.load_state_dict(state)
    return model
