"""Learning-rate schedules."""

from __future__ import annotations

import math

from repro.optim.base import Optimizer


class StepLR:
    """Multiply LR by ``gamma`` every ``step_size`` epochs."""

    def __init__(self, optimizer: Optimizer, step_size: int, gamma: float = 0.1) -> None:
        self.optimizer = optimizer
        self.step_size = step_size
        self.gamma = gamma
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        drops = self.epoch // self.step_size
        self.optimizer.lr = self.base_lr * (self.gamma**drops)


class CosineLR:
    """Cosine annealing from the base LR to ``eta_min`` over ``t_max`` epochs."""

    def __init__(self, optimizer: Optimizer, t_max: int, eta_min: float = 0.0) -> None:
        self.optimizer = optimizer
        self.t_max = t_max
        self.eta_min = eta_min
        self.base_lr = optimizer.lr
        self.epoch = 0

    def step(self) -> None:
        self.epoch += 1
        t = min(self.epoch, self.t_max)
        cos = (1.0 + math.cos(math.pi * t / self.t_max)) / 2.0
        self.optimizer.lr = self.eta_min + (self.base_lr - self.eta_min) * cos
