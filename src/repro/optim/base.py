"""Optimizer base class."""

from __future__ import annotations

from repro.nn.module import Parameter


class Optimizer:
    """Holds parameter references and per-parameter state.

    Subclasses implement :meth:`step`, reading ``param.grad`` and updating
    ``param.data`` in place.
    """

    def __init__(self, params: list[Parameter], lr: float) -> None:
        self.params = list(params)
        if not self.params:
            raise ValueError("optimizer received an empty parameter list")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = float(lr)
        self.state: dict[int, dict] = {}

    def zero_grad(self) -> None:
        for p in self.params:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError
