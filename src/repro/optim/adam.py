"""Adam optimizer — the paper solves ADMM subproblem 1 with Adam [27]."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer


class Adam(Optimizer):
    """Adam with bias correction (Kingma & Ba, 2014)."""

    def __init__(
        self,
        params,
        lr: float = 1e-3,
        betas: tuple[float, float] = (0.9, 0.999),
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ) -> None:
        super().__init__(params, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            st = self.state.setdefault(id(p), {})
            if not st:
                st["m"] = np.zeros_like(p.data)
                st["v"] = np.zeros_like(p.data)
                st["t"] = 0
            st["t"] += 1
            m, v, t = st["m"], st["v"], st["t"]
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / (1.0 - self.beta1**t)
            v_hat = v / (1.0 - self.beta2**t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)
