"""Stochastic gradient descent with momentum and weight decay."""

from __future__ import annotations

import numpy as np

from repro.optim.base import Optimizer


class SGD(Optimizer):
    """Classic SGD; supports heavy-ball momentum and Nesterov lookahead."""

    def __init__(
        self,
        params,
        lr: float = 0.01,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
        nesterov: bool = False,
    ) -> None:
        super().__init__(params, lr)
        if nesterov and momentum == 0.0:
            raise ValueError("nesterov momentum requires momentum > 0")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self.nesterov = nesterov

    def step(self) -> None:
        for p in self.params:
            if p.grad is None:
                continue
            grad = p.grad
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                buf = self.state.setdefault(id(p), {}).get("momentum")
                if buf is None:
                    buf = np.zeros_like(p.data)
                    self.state[id(p)]["momentum"] = buf
                buf *= self.momentum
                buf += grad
                grad = grad + self.momentum * buf if self.nesterov else buf
            p.data -= self.lr * grad
