"""Optimizers and learning-rate schedules for the training stage."""

from repro.optim.sgd import SGD
from repro.optim.adam import Adam
from repro.optim.scheduler import StepLR, CosineLR

__all__ = ["SGD", "Adam", "StepLR", "CosineLR"]
