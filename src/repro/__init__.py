"""repro — a reproduction of PatDNN (ASPLOS 2020).

PatDNN achieves real-time DNN inference on mobile devices by combining
**pattern-based weight pruning** (fine-grained 4-entry kernel patterns +
connectivity pruning, trained with an extended ADMM framework) with a
**compiler stack** that recovers structured-pruning efficiency: filter
kernel reorder (FKR), the FKW compressed weight format, register-level
load redundancy elimination (LRE), and GA-based parameter auto-tuning.

Package map (see ``DESIGN.md`` for the full inventory):

======================  ====================================================
``repro.autograd``      numpy reverse-mode autodiff (training substrate)
``repro.nn``            layer library (Conv2d, BatchNorm2d, ...)
``repro.optim``         SGD / Adam / schedulers
``repro.data``          synthetic ImageNet/CIFAR-10 stand-ins
``repro.models``        VGG-16 / ResNet-50 / MobileNet-V2 specs + trainables
``repro.core``          pattern-based pruning: patterns, ADMM, projections
``repro.graph``         computational-graph IR + optimization passes
``repro.compiler``      LR, FKR, FKW storage, LRE, codegen, auto-tuner
``repro.hardware``      mobile SoC models + execution cost model
``repro.frameworks``    emulated TFLite / TVM / MNN baselines + PatDNN engine
``repro.runtime``       functional executor for compiled models
``repro.bench``         experiment registry + reporting for the benchmarks
======================  ====================================================
"""

__version__ = "1.0.0"
