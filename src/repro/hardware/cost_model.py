"""Analytical execution cost model for convolution layers.

The model charges time for the exact effects PatDNN's compiler
optimizations target (paper §5, Figures 13–17):

=====================  =====================================================
term                   source
=====================  =====================================================
MAC cycles             nnz weights × output pixels, divided by SIMD width ×
                       cores × issue efficiency (unroll-dependent → tuning)
register-load cycles   counted by the LRE analysis; the dominant
                       instruction overhead of sparse execution
branch cycles          per-kernel pattern switches (Fig. 7 "No-opt");
                       removed by filter kernel reorder
imbalance factor       max/mean thread work from the actual filter-length
                       distribution (CPU: per-thread chunks; GPU:
                       per-wavefront divergence) — removed by FKR grouping
memory time            weight bytes (format-dependent) + input reloads
                       (tile-dependent) + output bytes (fusion-dependent),
                       divided by sustained DRAM bandwidth
overhead               per-layer dispatch cost (framework) + GPU kernel
                       launch latency
=====================  =====================================================

``total = max(compute, memory) + overhead`` — the classic roofline
composition.  Sustained-efficiency calibration per framework lives in
:class:`repro.frameworks.features.EngineProfile`; everything else is
derived from layer structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.hardware.device import CPUSpec, DeviceSpec, GPUSpec
from repro.models.spec import ConvSpec

# Winograd F(2x2, 3x3): 2.25x multiply reduction, ~15% transform overhead.
WINOGRAD_MAC_FACTOR = 2.25
WINOGRAD_OVERHEAD = 1.15


@dataclass
class SchedParams:
    """The schedule knobs the auto-tuner explores (paper §5.5).

    Attributes:
        tile_oc/tile_oh/tile_ow: output tile sizes (blocking).
        tile_ic: input-channel strip processed per pass.
        unroll_oc/unroll_ow: register-level unroll factors (ILP + the
            filter-level LRE reuse window).
        permutation: loop order, e.g. ``cohwci`` = oc, oh, ow, ic
            (Fig. 8's ``permute`` field).
        blocked: whether tiling is applied at all (Fig. 15's -Block).
    """

    tile_oc: int = 32
    tile_oh: int = 8
    tile_ow: int = 8
    tile_ic: int = 32
    unroll_oc: int = 1
    unroll_ow: int = 1
    permutation: str = "cohwci"
    blocked: bool = False

    def ilp_efficiency(self) -> float:
        """Issue-slot efficiency from register unrolling.

        A single non-unrolled FMA chain stalls on latency; unrolling by
        independent outputs fills the pipeline.  4–8 independent chains
        saturate mobile cores (empirically; see tuner ablation bench).
        """
        product = max(1, self.unroll_oc * self.unroll_ow)
        return min(1.0, 0.55 + 0.15 * np.log2(product))


@dataclass
class ConvWorkload:
    """One conv layer's execution-relevant structure.

    Dense engines use :meth:`dense`; the PatDNN engine builds sparse
    workloads from compiler artifacts (see ``repro.compiler.compile``).

    Attributes:
        spec: layer shapes.
        nnz_weights: surviving weights (= spec.weight_count when dense).
        nonzero_kernels: surviving kernels (connectivity pruning).
        filter_lengths: per-filter surviving-kernel counts, in execution
            order — the imbalance input.  ``None`` means perfectly even.
        pattern_runs_per_filter: mean number of same-pattern runs per
            filter; after kernel reorder this collapses to ≤ #patterns.
        branchy: True when the inner loop needs a per-kernel switch
            (sparse without FKR).
        register_loads: vector register loads for the whole layer (from
            the LRE analysis); ``None`` → derived as macs / simd lanes.
        weight_bytes: weight storage incl. format overhead.
        winograd: dense 3×3 stride-1 fast-convolution eligibility.
        fused_activation: activation folded into the conv (graph opt).
        sparse: sparse execution path (indices, no winograd).
    """

    spec: ConvSpec
    nnz_weights: int
    nonzero_kernels: int
    filter_lengths: np.ndarray | None = None
    pattern_runs_per_filter: float = 1.0
    branchy: bool = False
    register_loads: int | None = None
    weight_bytes: int | None = None
    winograd: bool = False
    fused_activation: bool = True
    sparse: bool = False
    vectorized: bool = True  # False for index-chasing CSR code (no SIMD)
    warp_divergence: float = 1.0  # GPU: mean serialized switch paths/warp
    load_cost_multiplier: float = 1.0  # >1 for cache-hostile access (CSR)
    code_versions: int = 8  # specialised kernel bodies (= pattern count)

    @property
    def icache_factor(self) -> float:
        """Instruction-cache pressure of pattern-specialised code.

        Each pattern gets its own unrolled body; up to ~8 versions fit
        the I-cache working-set budget, beyond which fetch stalls grow
        super-linearly (the Table 7 latency cliff at 12 patterns).
        """
        return max(1.0, (self.code_versions / 8.0) ** 1.5)

    @classmethod
    def dense(cls, spec: ConvSpec, winograd: bool = True, fused_activation: bool = True) -> "ConvWorkload":
        """Dense-execution workload for a layer spec."""
        eligible = spec.kernel_size == 3 and spec.stride == 1 and spec.groups == 1
        return cls(
            spec=spec,
            nnz_weights=spec.weight_count,
            nonzero_kernels=spec.kernel_count,
            winograd=winograd and eligible,
            fused_activation=fused_activation,
        )

    @property
    def effective_macs(self) -> float:
        """MACs actually executed (Winograd-adjusted for dense 3×3)."""
        macs = self.nnz_weights * self.spec.out_hw * self.spec.out_hw
        if self.winograd and not self.sparse:
            macs = macs / WINOGRAD_MAC_FACTOR * WINOGRAD_OVERHEAD
        return float(macs)


@dataclass
class CostBreakdown:
    """Per-layer cost terms (milliseconds unless noted)."""

    mac_ms: float = 0.0
    load_ms: float = 0.0
    branch_ms: float = 0.0
    imbalance: float = 1.0
    compute_ms: float = 0.0
    traffic_bytes: int = 0
    memory_ms: float = 0.0
    overhead_ms: float = 0.0
    total_ms: float = 0.0
    gflops: float = 0.0
    detail: dict = field(default_factory=dict)

    def scaled(self, factor: float) -> "CostBreakdown":
        """Uniformly scale all time terms (used for batch > 1)."""
        return CostBreakdown(
            mac_ms=self.mac_ms * factor,
            load_ms=self.load_ms * factor,
            branch_ms=self.branch_ms * factor,
            imbalance=self.imbalance,
            compute_ms=self.compute_ms * factor,
            traffic_bytes=int(self.traffic_bytes * factor),
            memory_ms=self.memory_ms * factor,
            overhead_ms=self.overhead_ms,
            total_ms=(self.compute_ms + self.memory_ms) * factor + self.overhead_ms,
            gflops=self.gflops,
            detail=dict(self.detail),
        )


def _imbalance_cpu(filter_lengths: np.ndarray | None, threads: int) -> float:
    """max/mean work over contiguous per-thread filter chunks."""
    if filter_lengths is None or len(filter_lengths) == 0:
        return 1.0
    lengths = np.asarray(filter_lengths, dtype=np.float64)
    if lengths.sum() == 0:
        return 1.0
    chunks = np.array_split(lengths, threads)
    work = np.array([c.sum() for c in chunks if len(c)])
    mean = work.mean()
    if mean == 0:
        return 1.0
    return float(max(1.0, work.max() / mean))


def _imbalance_gpu(filter_lengths: np.ndarray | None, wavefront: int) -> float:
    """Mean per-wavefront divergence: lockstep threads wait for the
    longest filter in their wavefront."""
    if filter_lengths is None or len(filter_lengths) == 0:
        return 1.0
    lengths = np.asarray(filter_lengths, dtype=np.float64)
    if lengths.sum() == 0:
        return 1.0
    factors = []
    for start in range(0, len(lengths), wavefront):
        group = lengths[start : start + wavefront]
        mean = group.mean()
        if mean > 0:
            factors.append(group.max() / mean)
    return float(max(1.0, np.mean(factors))) if factors else 1.0


class ConvCostModel:
    """Estimate one conv layer's latency on a device's CPU or GPU.

    Args:
        device: the SoC.
        unit: ``'cpu'`` or ``'gpu'``.
        utilization: sustained fraction of peak MAC throughput the
            engine's generated code reaches (framework calibration).
        fp16: GPU half-precision execution (paper's GPU setting).
        branch_miss_rate: misprediction probability of the per-kernel
            pattern switch when patterns are unordered.
    """

    def __init__(
        self,
        device: DeviceSpec,
        unit: str = "cpu",
        utilization: float = 0.4,
        sparse_efficiency: float = 0.7,
        fp16: bool = False,
        branch_miss_rate: float = 0.5,
        per_op_overhead_ms: float = 0.02,
    ) -> None:
        if unit not in ("cpu", "gpu"):
            raise ValueError(f"unit must be 'cpu' or 'gpu', got {unit!r}")
        self.device = device
        self.unit = unit
        self.utilization = utilization
        self.sparse_efficiency = sparse_efficiency
        self.fp16 = fp16 and unit == "gpu"
        self.branch_miss_rate = branch_miss_rate
        self.per_op_overhead_ms = per_op_overhead_ms

    # ------------------------------------------------------------------
    @property
    def _hw(self) -> CPUSpec | GPUSpec:
        return self.device.unit(self.unit)

    def _peak_macs_per_sec(self) -> float:
        hw = self._hw
        if self.unit == "cpu":
            return hw.peak_gflops / 2.0 * 1e9
        peak = hw.peak_gflops_fp16 if self.fp16 else hw.peak_gflops_fp32
        return peak / 2.0 * 1e9

    def _freq_hz(self) -> float:
        return self._hw.freq_ghz * 1e9

    def _parallel_units(self) -> int:
        hw = self._hw
        return hw.cores if self.unit == "cpu" else hw.sm_count * hw.wavefront

    # ------------------------------------------------------------------
    def estimate(self, work: ConvWorkload, sched: SchedParams | None = None) -> CostBreakdown:
        """Compute the cost breakdown for one layer, batch size 1."""
        sched = sched or SchedParams()
        hw = self._hw
        spec = work.spec
        out_pixels = spec.out_hw * spec.out_hw

        # ---- compute: MAC throughput ------------------------------------
        # Dense library code is modelled as a utilisation roofline (the
        # engine's sustained fraction of peak); PatDNN-generated sparse
        # code is modelled at the instruction level — explicit FMA issue
        # plus the load/branch cycles counted below.
        macs = work.effective_macs
        if work.sparse:
            eff = self.sparse_efficiency * sched.ilp_efficiency()
            if self.unit == "cpu" and (not work.vectorized or work.branchy):
                # A data-dependent switch in the innermost loop defeats
                # auto-vectorisation (paper §2.3: control flow degrades
                # ILP); index-chasing CSR code is scalar for the same
                # reason.  FKR hoists the dispatch and re-enables SIMD.
                eff /= hw.simd_lanes_fp32
        else:
            eff = self.utilization * sched.ilp_efficiency()
        mac_s = macs / (self._peak_macs_per_sec() * eff)
        if self.unit == "gpu" and work.sparse:
            # Divergent switch paths serialise within a wavefront; after
            # FKR every lane takes the same path (factor ≈ 1).
            mac_s *= max(1.0, work.warp_divergence)

        load_s = 0.0
        branch_s = 0.0
        loads = 0.0
        branches = 0.0
        lanes = hw.simd_lanes_fp32 if self.unit == "cpu" else 4
        if work.sparse:
            # ---- register loads (counted by the LRE analysis) ----------
            if work.register_loads is not None:
                loads = float(work.register_loads)
            else:
                loads = macs / max(lanes, 1)  # one load per vector FMA
            load_cycles = loads * hw.load_cost_cycles * work.load_cost_multiplier
            issue_units = hw.cores if self.unit == "cpu" else self._parallel_units() / lanes
            load_s = load_cycles / (self._freq_hz() * issue_units)

            # ---- branches (pattern switch in the inner loop) ------------
            out_vectors = max(1, out_pixels // lanes)
            if work.branchy:
                branches = work.nonzero_kernels * out_vectors
                miss = self.branch_miss_rate
            else:
                # After FKR: one (predictable) transition per pattern run.
                runs_total = work.pattern_runs_per_filter * spec.out_channels
                branches = runs_total * out_vectors
                miss = 0.05
            branch_cycles = branches * miss * hw.branch_miss_penalty
            units = hw.cores if self.unit == "cpu" else hw.sm_count * hw.wavefront
            branch_s = branch_cycles / (self._freq_hz() * units)

        # ---- thread-level imbalance ------------------------------------
        if self.unit == "cpu":
            imbalance = _imbalance_cpu(work.filter_lengths, hw.cores)
        else:
            imbalance = _imbalance_gpu(work.filter_lengths, hw.wavefront)
        if not work.sparse:
            imbalance = 1.0  # dense work splits evenly by construction

        compute_s = (mac_s + load_s + branch_s) * imbalance
        if work.sparse:
            compute_s *= work.icache_factor

        # ---- memory traffic --------------------------------------------
        elem = 2 if self.fp16 else 4
        weight_bytes = work.weight_bytes
        if weight_bytes is None:
            weight_bytes = work.nnz_weights * elem
        input_bytes = spec.in_channels * spec.in_hw * spec.in_hw * elem
        output_bytes = spec.out_channels * spec.out_hw * spec.out_hw * elem
        # Input reloads: one pass per output-channel tile unless the whole
        # input stays resident in the last-level cache.
        llc_bytes = (hw.l3_kb if self.unit == "cpu" else hw.local_mem_kb * hw.sm_count * 8) * 1024
        passes = max(1, int(np.ceil(spec.out_channels / max(1, sched.tile_oc))))
        if sched.blocked and input_bytes <= llc_bytes:
            input_traffic = input_bytes  # stays cached across tiles
        elif input_bytes <= llc_bytes // 4:
            input_traffic = input_bytes
        else:
            input_traffic = input_bytes * passes
        output_traffic = output_bytes * (1 if work.fused_activation else 2)
        traffic = int(weight_bytes + input_traffic + output_traffic)
        memory_s = traffic / (hw.dram_bw_gbs * 1e9)

        # ---- overheads ---------------------------------------------------
        overhead_ms = self.per_op_overhead_ms
        if self.unit == "gpu":
            overhead_ms += hw.launch_overhead_us / 1000.0

        compute_ms = compute_s * 1e3
        memory_ms = memory_s * 1e3
        total_ms = max(compute_ms, memory_ms) + overhead_ms
        flops = 2.0 * work.nnz_weights * out_pixels  # true work, not winograd-adjusted
        gflops = flops / (total_ms / 1e3) / 1e9 if total_ms > 0 else 0.0
        return CostBreakdown(
            mac_ms=mac_s * 1e3,
            load_ms=load_s * 1e3,
            branch_ms=branch_s * 1e3,
            imbalance=imbalance,
            compute_ms=compute_ms,
            traffic_bytes=traffic,
            memory_ms=memory_ms,
            overhead_ms=overhead_ms,
            total_ms=total_ms,
            gflops=gflops,
            detail={"macs": macs, "loads": loads, "branches": branches},
        )

    def estimate_model(self, workloads: list[ConvWorkload], sched_map: dict[str, SchedParams] | None = None) -> tuple[float, list[CostBreakdown]]:
        """Sum per-layer estimates; returns (total ms, per-layer breakdowns)."""
        sched_map = sched_map or {}
        results = []
        for w in workloads:
            results.append(self.estimate(w, sched_map.get(w.spec.name)))
        return sum(r.total_ms for r in results), results
