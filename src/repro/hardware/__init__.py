"""Mobile hardware simulation substrate.

The paper measures on physical phones (Snapdragon 855/845, Kirin 980);
this environment has none, so latency is produced by a mechanistic cost
model (:mod:`repro.hardware.cost_model`) over device descriptions
(:mod:`repro.hardware.device`).  The model charges cycles for exactly
the effects the paper reasons about:

* MAC throughput limited by SIMD lanes × cores × utilisation,
* register loads (counted by the compiler's LRE analysis),
* branch mispredictions from per-kernel pattern switches (removed by FKR),
* thread-level load imbalance from the filter-length distribution
  (removed by FKR grouping; weighted more heavily on GPU),
* memory traffic vs. bandwidth with tile-dependent reuse (auto-tuning).

A set-associative cache simulator (:mod:`repro.hardware.cache`) validates
the analytical reuse factors on small traces.
"""

from repro.hardware.device import (
    CPUSpec,
    GPUSpec,
    DeviceSpec,
    SNAPDRAGON_855,
    SNAPDRAGON_845,
    KIRIN_980,
    DEVICES,
    get_device,
)
from repro.hardware.cache import CacheSim
from repro.hardware.cost_model import ConvWorkload, CostBreakdown, ConvCostModel

__all__ = [
    "CPUSpec",
    "GPUSpec",
    "DeviceSpec",
    "SNAPDRAGON_855",
    "SNAPDRAGON_845",
    "KIRIN_980",
    "DEVICES",
    "get_device",
    "CacheSim",
    "ConvWorkload",
    "CostBreakdown",
    "ConvCostModel",
]
