"""Set-associative cache simulator (LRU).

Used by tests to validate the analytical data-reuse factors the cost
model assumes, and by the ablation benches to show why the auto-tuner's
tile choices matter.  Trace-driven, so keep traces small.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field


@dataclass
class CacheStats:
    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0


class CacheSim:
    """One level of set-associative cache with LRU replacement.

    Args:
        size_bytes: total capacity.
        line_bytes: cache-line size (64 on all three SoCs).
        ways: associativity.
    """

    def __init__(self, size_bytes: int, line_bytes: int = 64, ways: int = 4) -> None:
        if size_bytes % (line_bytes * ways):
            raise ValueError("cache size must be a multiple of line_bytes * ways")
        self.line_bytes = line_bytes
        self.ways = ways
        self.num_sets = size_bytes // (line_bytes * ways)
        self._sets: list[OrderedDict[int, None]] = [OrderedDict() for _ in range(self.num_sets)]
        self.stats = CacheStats()

    def access(self, address: int) -> bool:
        """Touch one byte address; returns True on hit."""
        line = address // self.line_bytes
        set_idx = line % self.num_sets
        ways = self._sets[set_idx]
        self.stats.accesses += 1
        if line in ways:
            ways.move_to_end(line)
            self.stats.hits += 1
            return True
        ways[line] = None
        if len(ways) > self.ways:
            ways.popitem(last=False)
        return False

    def access_range(self, start: int, nbytes: int, stride: int = 4) -> None:
        """Touch a strided range (e.g. a row of float32s)."""
        for off in range(0, nbytes, stride):
            self.access(start + off)

    def reset_stats(self) -> None:
        self.stats = CacheStats()


@dataclass
class CacheHierarchy:
    """L1 + L2 two-level hierarchy; L2 sees only L1 misses."""

    l1: CacheSim
    l2: CacheSim
    dram_accesses: int = field(default=0)

    def access(self, address: int) -> str:
        """Returns 'l1', 'l2', or 'dram' for where the access was served."""
        if self.l1.access(address):
            return "l1"
        if self.l2.access(address):
            return "l2"
        self.dram_accesses += 1
        return "dram"
