"""Memory-access trace generation for tiled convolutions.

The analytical cost model assumes "if the input fits the last-level
cache, it is read from DRAM once; otherwise once per output-channel
tile".  This module generates the actual (tile-ordered) byte-address
trace of a conv layer so the cache simulator can *validate* that
assumption — used by the hardware tests and the tiling ablation bench.

Traces are per cache line (not per element) to keep them small; run on
scaled-down layers only.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass

from repro.hardware.cache import CacheSim
from repro.models.spec import ConvSpec

_LINE = 64


@dataclass(frozen=True)
class TraceRegions:
    """Base addresses of the three tensors in the simulated heap."""

    input_base: int = 0
    weight_base: int = 1 << 28
    output_base: int = 1 << 29


def conv_line_trace(
    spec: ConvSpec,
    tile_oc: int,
    tile_hw: int,
    elem_bytes: int = 4,
    regions: TraceRegions = TraceRegions(),
) -> Iterator[int]:
    """Yield cache-line addresses touched by a tiled direct convolution.

    Loop order is ``oc-tile → spatial-tile → ic → window`` (the
    ``cohwci`` permutation); each yielded address is line-aligned.
    """
    c_in, hw = spec.in_channels, spec.in_hw
    k, pad, stride = spec.kernel_size, spec.padding, spec.stride
    out_hw = spec.out_hw
    row_bytes = hw * elem_bytes

    def input_line(ci: int, y: int, x: int) -> int:
        addr = regions.input_base + ((ci * hw + y) * hw + x) * elem_bytes
        return addr // _LINE * _LINE

    def weight_line(oc: int, ci: int) -> int:
        addr = regions.weight_base + ((oc * c_in + ci) * k * k) * elem_bytes
        return addr // _LINE * _LINE

    def output_line(oc: int, y: int, x: int) -> int:
        addr = regions.output_base + ((oc * out_hw + y) * out_hw + x) * elem_bytes
        return addr // _LINE * _LINE

    for oc_start in range(0, spec.out_channels, tile_oc):
        for ty in range(0, out_hw, tile_hw):
            for tx in range(0, out_hw, tile_hw):
                for oc in range(oc_start, min(oc_start + tile_oc, spec.out_channels)):
                    for ci in range(c_in):
                        yield weight_line(oc, ci)
                        for oy in range(ty, min(ty + tile_hw, out_hw)):
                            iy = oy * stride - pad
                            for r in range(k):
                                if not 0 <= iy + r < hw:
                                    continue
                                # one line covers several x positions;
                                # touch line-granular input row segment
                                x0 = max(0, tx * stride - pad)
                                x1 = min(hw, (min(tx + tile_hw, out_hw) - 1) * stride - pad + k)
                                for x in range(x0, x1, _LINE // elem_bytes):
                                    yield input_line(ci, iy + r, x)
                    for oy in range(ty, min(ty + tile_hw, out_hw)):
                        for x in range(tx, min(tx + tile_hw, out_hw), _LINE // elem_bytes):
                            yield output_line(oc, oy, x)


def measure_dram_traffic(
    spec: ConvSpec,
    tile_oc: int,
    tile_hw: int,
    cache_kb: int = 64,
    ways: int = 4,
) -> dict[str, float]:
    """Run the trace through a cache and report miss traffic by tensor.

    Returns a dict with ``input_reload_factor`` — DRAM bytes fetched for
    the input divided by its footprint — the quantity the analytical
    model predicts from tile sizes.
    """
    cache = CacheSim(cache_kb * 1024, line_bytes=_LINE, ways=ways)
    regions = TraceRegions()
    input_misses = 0
    total_misses = 0
    for line in conv_line_trace(spec, tile_oc, tile_hw, regions=regions):
        hit = cache.access(line)
        if not hit:
            total_misses += 1
            if line < regions.weight_base:
                input_misses += 1
    input_bytes = spec.in_channels * spec.in_hw * spec.in_hw * 4
    return {
        "input_dram_bytes": input_misses * _LINE,
        "total_dram_bytes": total_misses * _LINE,
        "input_reload_factor": input_misses * _LINE / input_bytes,
        "accesses": cache.stats.accesses,
        "hit_rate": cache.stats.hit_rate,
    }
