"""Device catalog: the three mobile SoCs used in the paper's evaluation.

Numbers are public spec-sheet values (frequencies, SIMD widths, cache
sizes, theoretical GFLOPS, LPDDR4X bandwidth); *sustained-efficiency*
knobs live in the frameworks' calibration (see
``repro.frameworks.features``), not here — a device is the same silicon
regardless of which framework runs on it.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CPUSpec:
    """Mobile big.LITTLE CPU cluster, abstracted to the paper's usage
    (8 threads pinned across all cores).

    Attributes:
        freq_ghz: throughput-weighted average core frequency.
        cores: hardware threads used by the runtimes (8 in the paper).
        simd_lanes_fp32: vector lanes per FMA unit (NEON 128-bit = 4).
        fma_per_cycle: fused multiply-adds issued per lane per cycle.
        l1_kb / l2_kb / l3_kb: per-core L1, per-cluster L2, system cache.
        branch_miss_penalty: pipeline refill cycles on a mispredict.
        load_cost_cycles: amortised cycles per (L1-hit) vector register load.
        dram_bw_gbs: sustained LPDDR bandwidth available to the CPU.
    """

    freq_ghz: float
    cores: int
    simd_lanes_fp32: int
    fma_per_cycle: int
    l1_kb: int
    l2_kb: int
    l3_kb: int
    branch_miss_penalty: int
    load_cost_cycles: float
    dram_bw_gbs: float

    @property
    def peak_gflops(self) -> float:
        """Theoretical fp32 GFLOPS (2 flops per FMA)."""
        return self.freq_ghz * self.cores * self.simd_lanes_fp32 * self.fma_per_cycle * 2.0


@dataclass(frozen=True)
class GPUSpec:
    """Mobile GPU abstracted at the wavefront level.

    Attributes:
        peak_gflops_fp32: theoretical fp32 throughput.
        fp16_ratio: fp16 speedup factor (2.0 on Adreno/Mali with packed
            half math; the paper runs all GPU tests in fp16).
        wavefront: threads executing in lockstep (divergence granularity).
        sm_count: shader cores (workgroup-level parallelism).
        local_mem_kb: on-chip local memory per shader core.
        dram_bw_gbs: sustained bandwidth available to the GPU.
        launch_overhead_us: per-kernel dispatch cost.
        load_cost_cycles / branch_miss_penalty: as for CPU, in GPU cycles.
        freq_ghz: shader clock.
        arch: GPU family ('adreno' | 'mali'); engines' hand-tuned dense
            kernels have family-specific sustained efficiency (§6.5).
    """

    peak_gflops_fp32: float
    fp16_ratio: float
    wavefront: int
    sm_count: int
    local_mem_kb: int
    dram_bw_gbs: float
    launch_overhead_us: float
    load_cost_cycles: float
    branch_miss_penalty: int
    freq_ghz: float
    arch: str = "adreno"

    @property
    def peak_gflops_fp16(self) -> float:
        return self.peak_gflops_fp32 * self.fp16_ratio

    @property
    def macs_per_cycle(self) -> float:
        """Aggregate fp32 MACs per clock across the whole GPU."""
        return self.peak_gflops_fp32 / 2.0 / self.freq_ghz


@dataclass(frozen=True)
class DeviceSpec:
    """One SoC = CPU cluster + GPU + shared memory system."""

    name: str
    cpu: CPUSpec
    gpu: GPUSpec

    def unit(self, kind: str):
        if kind == "cpu":
            return self.cpu
        if kind == "gpu":
            return self.gpu
        raise KeyError(f"unknown unit {kind!r}; expected 'cpu' or 'gpu'")


SNAPDRAGON_855 = DeviceSpec(
    name="snapdragon855",
    cpu=CPUSpec(
        freq_ghz=2.42,  # 1x2.84 + 3x2.42 + 4x1.78, throughput-weighted
        cores=8,
        simd_lanes_fp32=4,
        fma_per_cycle=2,
        l1_kb=64,
        l2_kb=512,
        l3_kb=2048,
        branch_miss_penalty=14,
        load_cost_cycles=0.5,
        dram_bw_gbs=30.0,
    ),
    gpu=GPUSpec(
        peak_gflops_fp32=950.0,  # Adreno 640
        fp16_ratio=2.0,
        wavefront=64,
        sm_count=2,
        local_mem_kb=32,
        dram_bw_gbs=28.0,
        launch_overhead_us=20.0,
        load_cost_cycles=0.4,
        branch_miss_penalty=32,
        freq_ghz=0.585,
    ),
)

SNAPDRAGON_845 = DeviceSpec(
    name="snapdragon845",
    cpu=CPUSpec(
        freq_ghz=2.10,  # Kryo 385: 4x2.8 + 4x1.77, derated
        cores=8,
        simd_lanes_fp32=4,
        fma_per_cycle=2,
        l1_kb=64,
        l2_kb=512,
        l3_kb=2048,
        branch_miss_penalty=14,
        load_cost_cycles=0.5,
        dram_bw_gbs=26.0,
    ),
    gpu=GPUSpec(
        peak_gflops_fp32=727.0,  # Adreno 630
        fp16_ratio=2.0,
        wavefront=64,
        sm_count=2,
        local_mem_kb=32,
        dram_bw_gbs=24.0,
        launch_overhead_us=22.0,
        load_cost_cycles=0.4,
        branch_miss_penalty=32,
        freq_ghz=0.710,
    ),
)

KIRIN_980 = DeviceSpec(
    name="kirin980",
    cpu=CPUSpec(
        freq_ghz=2.05,  # 2x2.6 A76 + 2x1.92 A76 + 4x1.8 A55, derated
        cores=8,
        simd_lanes_fp32=4,
        fma_per_cycle=2,
        l1_kb=64,
        l2_kb=512,
        l3_kb=4096,
        branch_miss_penalty=13,
        load_cost_cycles=0.5,
        dram_bw_gbs=28.0,
    ),
    gpu=GPUSpec(
        peak_gflops_fp32=690.0,  # Mali-G76 MP10
        fp16_ratio=2.0,
        wavefront=8,  # Mali warp width (G76: 8-wide execution engines)
        sm_count=10,
        local_mem_kb=32,
        # Mali's effective bandwidth per GFLOP is the paper's explanation
        # for the baselines' instability on Magic 2 (§6.5): dense runs
        # starve on memory, PatDNN's reduced traffic keeps it stable.
        dram_bw_gbs=14.0,
        launch_overhead_us=35.0,
        load_cost_cycles=0.5,
        branch_miss_penalty=24,
        freq_ghz=0.720,
        arch="mali",
    ),
)

DEVICES: dict[str, DeviceSpec] = {
    SNAPDRAGON_855.name: SNAPDRAGON_855,
    SNAPDRAGON_845.name: SNAPDRAGON_845,
    KIRIN_980.name: KIRIN_980,
}


def get_device(name: str) -> DeviceSpec:
    """Look up a device by name (``snapdragon855``/``845``, ``kirin980``)."""
    key = name.lower().replace("-", "").replace("_", "")
    if key not in DEVICES:
        raise KeyError(f"unknown device {name!r}; known: {sorted(DEVICES)}")
    return DEVICES[key]
