"""Graph IR: typed nodes with attributes, edges, and shape inference."""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.utils.misc import prod


class OpKind(str, enum.Enum):
    """Operator vocabulary — the union of what our three models need."""

    INPUT = "input"
    CONV2D = "conv2d"
    BATCHNORM = "batchnorm"
    RELU = "relu"
    RELU6 = "relu6"
    MAXPOOL = "maxpool"
    AVGPOOL = "avgpool"
    GLOBAL_AVGPOOL = "global_avgpool"
    FLATTEN = "flatten"
    LINEAR = "linear"
    ADD = "add"
    CONSTANT = "constant"
    OUTPUT = "output"


@dataclass
class Node:
    """One operator instance.

    Attributes:
        name: unique name within the graph.
        op: operator kind.
        inputs: producer node names, in positional order.
        attrs: operator attributes (stride, padding, ...).
        params: named weight arrays (``weight``, ``bias``, BN stats...).
        out_shape: inferred output shape (N excluded; CHW or features).
    """

    name: str
    op: OpKind
    inputs: list[str] = field(default_factory=list)
    attrs: dict[str, Any] = field(default_factory=dict)
    params: dict[str, np.ndarray] = field(default_factory=dict)
    out_shape: tuple[int, ...] = ()

    @property
    def param_bytes(self) -> int:
        return sum(p.nbytes for p in self.params.values())

    def __repr__(self) -> str:
        return f"Node({self.name}: {self.op.value} {self.out_shape})"


class Graph:
    """A DAG of nodes with insertion-ordered storage.

    Nodes are stored in topological insertion order (builders append in
    execution order); :meth:`toposort` re-derives order after passes
    mutate the graph.
    """

    def __init__(self, name: str = "graph") -> None:
        self.name = name
        self.nodes: dict[str, Node] = {}
        self.outputs: list[str] = []

    # ------------------------------------------------------------------
    def add(self, node: Node) -> Node:
        if node.name in self.nodes:
            raise ValueError(f"duplicate node name {node.name!r}")
        for inp in node.inputs:
            if inp not in self.nodes:
                raise ValueError(f"node {node.name!r} references unknown input {inp!r}")
        self.nodes[node.name] = node
        return node

    def remove(self, name: str) -> None:
        """Remove a node; callers must have rewired consumers first."""
        consumers = self.consumers(name)
        if consumers:
            raise ValueError(f"cannot remove {name!r}: still consumed by {[c.name for c in consumers]}")
        del self.nodes[name]
        self.outputs = [o for o in self.outputs if o != name]

    def consumers(self, name: str) -> list[Node]:
        return [n for n in self.nodes.values() if name in n.inputs]

    def rewire(self, old: str, new: str) -> None:
        """Point every consumer of ``old`` at ``new`` (and graph outputs)."""
        for node in self.nodes.values():
            node.inputs = [new if i == old else i for i in node.inputs]
        self.outputs = [new if o == old else o for o in self.outputs]

    # ------------------------------------------------------------------
    def toposort(self) -> list[Node]:
        order: list[Node] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            if name in seen:
                return
            seen.add(name)
            node = self.nodes[name]
            for inp in node.inputs:
                visit(inp)
            order.append(node)

        for out in self.outputs or list(self.nodes):
            visit(out)
        # Include any dangling nodes (diagnostics) deterministically.
        for name in self.nodes:
            visit(name)
        return order

    def conv_nodes(self) -> list[Node]:
        return [n for n in self.toposort() if n.op == OpKind.CONV2D]

    def op_histogram(self) -> dict[str, int]:
        hist: dict[str, int] = {}
        for n in self.nodes.values():
            hist[n.op.value] = hist.get(n.op.value, 0) + 1
        return hist

    def validate(self) -> None:
        """Check edges resolve and shapes are set; raises on violation."""
        for node in self.nodes.values():
            for inp in node.inputs:
                if inp not in self.nodes:
                    raise ValueError(f"{node.name} has dangling input {inp}")
            if node.op not in (OpKind.OUTPUT,) and not node.out_shape:
                raise ValueError(f"{node.name} has no inferred shape")

    def __repr__(self) -> str:
        return f"Graph({self.name}: {len(self.nodes)} nodes, ops={self.op_histogram()})"


# ----------------------------------------------------------------------
# Shape inference
# ----------------------------------------------------------------------
def infer_shape(node: Node, input_shapes: list[tuple[int, ...]]) -> tuple[int, ...]:
    """Output shape (channels-first, batch dim omitted) for one node."""
    op = node.op
    if op in (OpKind.INPUT, OpKind.CONSTANT):
        return tuple(node.attrs["shape"])
    if op == OpKind.CONV2D:
        c, h, w = input_shapes[0]
        k = node.attrs["kernel_size"]
        s = node.attrs.get("stride", 1)
        p = node.attrs.get("padding", 0)
        oc = node.attrs["out_channels"]
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        return (oc, oh, ow)
    if op in (OpKind.BATCHNORM, OpKind.RELU, OpKind.RELU6, OpKind.OUTPUT):
        return input_shapes[0]
    if op in (OpKind.MAXPOOL, OpKind.AVGPOOL):
        c, h, w = input_shapes[0]
        k = node.attrs["kernel_size"]
        s = node.attrs.get("stride", k)
        p = node.attrs.get("padding", 0)
        return (c, (h + 2 * p - k) // s + 1, (w + 2 * p - k) // s + 1)
    if op == OpKind.GLOBAL_AVGPOOL:
        c = input_shapes[0][0]
        return (c, 1, 1)
    if op == OpKind.FLATTEN:
        return (prod(input_shapes[0]),)
    if op == OpKind.LINEAR:
        return (node.attrs["out_features"],)
    if op == OpKind.ADD:
        if input_shapes[0] != input_shapes[1]:
            raise ValueError(f"ADD shape mismatch: {input_shapes}")
        return input_shapes[0]
    raise NotImplementedError(f"no shape rule for {op}")


def run_shape_inference(graph: Graph) -> None:
    """Infer and store out_shape for every node in topo order."""
    shapes: dict[str, tuple[int, ...]] = {}
    for node in graph.toposort():
        in_shapes = [shapes[i] for i in node.inputs]
        node.out_shape = infer_shape(node, in_shapes)
        shapes[node.name] = node.out_shape
