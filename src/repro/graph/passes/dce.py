"""Dead-code elimination: drop nodes unreachable from the graph outputs.

Rewrites from other passes (folding, replacement) can orphan producer
chains; DCE sweeps them so the memory planner and executors never touch
dead buffers.
"""

from __future__ import annotations

from repro.graph.ir import Graph, OpKind


def eliminate_dead_nodes(graph: Graph) -> int:
    """Remove nodes that no output transitively consumes; returns count."""
    if not graph.outputs:
        return 0
    live: set[str] = set()
    stack = list(graph.outputs)
    while stack:
        name = stack.pop()
        if name in live:
            continue
        live.add(name)
        stack.extend(graph.nodes[name].inputs)
    dead = [name for name in graph.nodes if name not in live]
    # Remove in reverse topological order so consumers go first.
    order = {n.name: i for i, n in enumerate(graph.toposort())}
    for name in sorted(dead, key=lambda n: -order[n]):
        graph.remove(name)
    return len(dead)
