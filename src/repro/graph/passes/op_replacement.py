"""Operation replacement (the '**' footnote of Table 1).

PatDNN replaces operator instances with cheaper equivalents when the
attributes allow.  Implemented rewrites:

* ``AVGPOOL`` covering the whole spatial extent → ``GLOBAL_AVGPOOL``
  (specialised reduction kernel, no windowing overhead);
* 1×1 MAXPOOL/AVGPOOL with stride 1 → identity (dropped).
"""

from __future__ import annotations

from repro.graph.ir import Graph, OpKind


def replace_ops(graph: Graph) -> int:
    """Apply replacement rules; returns number of rewrites."""
    rewrites = 0
    for node in list(graph.toposort()):
        if node.op in (OpKind.MAXPOOL, OpKind.AVGPOOL):
            k = node.attrs["kernel_size"]
            s = node.attrs.get("stride", k)
            in_shape = graph.nodes[node.inputs[0]].out_shape
            if k == 1 and s == 1:
                graph.rewire(node.name, node.inputs[0])
                graph.remove(node.name)
                rewrites += 1
                continue
            if node.op == OpKind.AVGPOOL and len(in_shape) == 3 and k == in_shape[1] == in_shape[2]:
                node.op = OpKind.GLOBAL_AVGPOOL
                node.attrs.pop("kernel_size", None)
                node.attrs.pop("stride", None)
                rewrites += 1
    return rewrites
