"""Fold BatchNorm into the preceding convolution.

At inference, ``BN(conv(x)) = conv'(x)`` where

    w' = w * gamma / sqrt(var + eps)        (per output channel)
    b' = (b - mean) * gamma / sqrt(var+eps) + beta

This is a *real* rewrite: when the conv node carries weights, they are
transformed in place; spec-only nodes (no weights yet) just drop the BN
node and record ``folded_bn`` so the cost model stops charging a second
activation pass.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ir import Graph, OpKind


def fold_batchnorm(graph: Graph) -> int:
    """Fold every BN whose sole producer is a conv; returns #folds."""
    folds = 0
    for node in list(graph.toposort()):
        if node.op != OpKind.BATCHNORM:
            continue
        producer = graph.nodes[node.inputs[0]]
        if producer.op != OpKind.CONV2D:
            continue
        if len(graph.consumers(producer.name)) != 1:
            continue  # conv output also used elsewhere; cannot fold
        if "weight" in producer.params and "gamma" in node.params:
            gamma = node.params["gamma"]
            beta = node.params["beta"]
            mean = node.params["mean"]
            var = node.params["var"]
            eps = node.attrs.get("eps", 1e-5)
            scale = gamma / np.sqrt(var + eps)
            w = producer.params["weight"]
            producer.params["weight"] = (w * scale[:, None, None, None]).astype(w.dtype)
            bias = producer.params.get("bias")
            if bias is None:
                bias = np.zeros(w.shape[0], dtype=w.dtype)
            producer.params["bias"] = ((bias - mean) * scale + beta).astype(w.dtype)
        producer.attrs["folded_bn"] = True
        graph.rewire(node.name, producer.name)
        graph.remove(node.name)
        folds += 1
    return folds
