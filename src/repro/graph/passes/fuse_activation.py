"""Fuse elementwise activations into the producing conv/linear/add node.

The fused node gains ``attrs['activation']`` ∈ {'relu', 'relu6'} and the
standalone activation node disappears — the executor applies the
nonlinearity in-register instead of in a second memory pass (the cost
model's ``fused_activation`` flag).
"""

from __future__ import annotations

from repro.graph.ir import Graph, OpKind

_FUSABLE_PRODUCERS = (OpKind.CONV2D, OpKind.LINEAR, OpKind.ADD)
_ACTIVATIONS = {OpKind.RELU: "relu", OpKind.RELU6: "relu6"}


def fuse_activation(graph: Graph) -> int:
    """Fuse activations whose producer has no other consumer; returns count."""
    fused = 0
    for node in list(graph.toposort()):
        act = _ACTIVATIONS.get(node.op)
        if act is None:
            continue
        producer = graph.nodes[node.inputs[0]]
        if producer.op not in _FUSABLE_PRODUCERS:
            continue
        if len(graph.consumers(producer.name)) != 1:
            continue
        if "activation" in producer.attrs:
            continue
        producer.attrs["activation"] = act
        graph.rewire(node.name, producer.name)
        graph.remove(node.name)
        fused += 1
    return fused
