"""Data-layout assignment (Table 1: 'data layout transform').

CPU kernels prefer channel-blocked NCHWc (vector lane = channel block);
GPU kernels prefer NHWC (coalesced loads along channels).  The pass
annotates every tensor-producing node; the codegen and the cost model's
locality terms read the annotation.
"""

from __future__ import annotations

from repro.graph.ir import Graph, OpKind

_LAYOUTS = {"cpu": "NCHWc", "gpu": "NHWC"}


def assign_layout(graph: Graph, unit: str = "cpu", vector_width: int = 4) -> int:
    """Annotate nodes with their execution layout; returns #annotated."""
    if unit not in _LAYOUTS:
        raise ValueError(f"unit must be 'cpu' or 'gpu', got {unit!r}")
    layout = _LAYOUTS[unit]
    count = 0
    for node in graph.nodes.values():
        if node.op in (OpKind.INPUT, OpKind.CONV2D, OpKind.BATCHNORM, OpKind.RELU,
                       OpKind.RELU6, OpKind.MAXPOOL, OpKind.AVGPOOL,
                       OpKind.GLOBAL_AVGPOOL, OpKind.ADD):
            node.attrs["layout"] = layout
            if layout == "NCHWc":
                node.attrs["channel_block"] = vector_width
            count += 1
    return count
