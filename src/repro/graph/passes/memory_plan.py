"""Static memory planning (Table 1: 'static memory plan').

Computes buffer liveness over the topological order and assigns offsets
greedily (first-fit on a free list).  The plan's peak is what an
inference runtime would actually allocate — compared against the naive
sum-of-all-buffers in the tests and the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.graph.ir import Graph, OpKind
from repro.utils.misc import prod


@dataclass
class MemoryPlan:
    """Buffer offsets and footprint summary.

    Attributes:
        offsets: node name → byte offset in the arena.
        peak_bytes: arena size.
        naive_bytes: sum of all buffers (no reuse) for comparison.
    """

    offsets: dict[str, int] = field(default_factory=dict)
    peak_bytes: int = 0
    naive_bytes: int = 0

    @property
    def reuse_ratio(self) -> float:
        return self.naive_bytes / self.peak_bytes if self.peak_bytes else 1.0


def _buffer_bytes(shape: tuple[int, ...], elem: int = 4) -> int:
    return prod(shape) * elem


def compute_liveness(graph: Graph, order: list | None = None) -> dict[str, int]:
    """Last-use step per producer name over the topological order.

    A buffer is born at its producer and dies after its last consumer;
    graph outputs are pinned to ``len(order)`` so they outlive every
    step.  Names that are never consumed (dangling diagnostics nodes) do
    not appear.  Shared by the static planner below and the executors'
    run-time value retirement / buffer-arena recycling.
    """
    if order is None:
        order = graph.toposort()
    index = {n.name: i for i, n in enumerate(order)}
    last_use: dict[str, int] = {}
    for node in order:
        for inp in node.inputs:
            last_use[inp] = max(last_use.get(inp, 0), index[node.name])
    for out in graph.outputs:
        last_use[out] = len(order)
    return last_use


def plan_memory(graph: Graph, elem_bytes: int = 4) -> MemoryPlan:
    """First-fit static planner over liveness intervals."""
    order = graph.toposort()
    last_use = compute_liveness(graph, order)

    plan = MemoryPlan()
    # Active allocations: list of (offset, size, death_step, name).
    active: list[tuple[int, int, int, str]] = []
    for step, node in enumerate(order):
        if node.op in (OpKind.OUTPUT,):
            continue
        size = _buffer_bytes(node.out_shape, elem_bytes)
        if size == 0:
            continue
        plan.naive_bytes += size
        # Expire buffers whose last consumer has already executed; a
        # buffer read at step t is still live while step t writes its
        # output, so expiry is strictly-after (death >= step survives).
        active = [a for a in active if a[2] >= step]
        # First-fit: scan gaps between sorted active allocations.
        active.sort()
        offset = 0
        for a_off, a_size, _, _ in active:
            if offset + size <= a_off:
                break
            offset = max(offset, a_off + a_size)
        active.append((offset, size, last_use.get(node.name, step + 1), node.name))
        plan.offsets[node.name] = offset
        plan.peak_bytes = max(plan.peak_bytes, offset + size)
    return plan
