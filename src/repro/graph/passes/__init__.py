"""Graph-optimization passes (the Table 1 'computation graph' knobs)."""

from repro.graph.passes.fold_batchnorm import fold_batchnorm
from repro.graph.passes.fuse_activation import fuse_activation
from repro.graph.passes.constant_fold import constant_fold
from repro.graph.passes.layout import assign_layout
from repro.graph.passes.memory_plan import compute_liveness, plan_memory, MemoryPlan
from repro.graph.passes.op_replacement import replace_ops
from repro.graph.passes.dce import eliminate_dead_nodes

__all__ = [
    "fold_batchnorm",
    "fuse_activation",
    "constant_fold",
    "assign_layout",
    "compute_liveness",
    "plan_memory",
    "MemoryPlan",
    "replace_ops",
    "eliminate_dead_nodes",
]
