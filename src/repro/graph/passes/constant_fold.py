"""Constant folding: collapse subgraphs fed only by CONSTANT nodes.

Our exported graphs are mostly weight-parameterised (weights live in
``node.params``, not as constant nodes), so in practice this pass folds
degenerate chains produced by other passes.  It is implemented fully —
evaluating the node with the reference executor — so synthetic graphs in
tests exercise real folding.
"""

from __future__ import annotations

import numpy as np

from repro.graph.ir import Graph, Node, OpKind


def _eval_node(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    if node.op == OpKind.ADD:
        return inputs[0] + inputs[1]
    if node.op == OpKind.RELU:
        return np.maximum(inputs[0], 0.0)
    if node.op == OpKind.RELU6:
        return np.clip(inputs[0], 0.0, 6.0)
    if node.op == OpKind.FLATTEN:
        return inputs[0].reshape(-1)
    raise NotImplementedError(f"constant folding not supported for {node.op}")


def constant_fold(graph: Graph) -> int:
    """Replace foldable nodes with CONSTANT results; returns #folds."""
    folds = 0
    changed = True
    while changed:
        changed = False
        for node in list(graph.toposort()):
            if node.op in (OpKind.CONSTANT, OpKind.INPUT, OpKind.OUTPUT):
                continue
            producers = [graph.nodes[i] for i in node.inputs]
            if not producers or not all(p.op == OpKind.CONSTANT for p in producers):
                continue
            try:
                value = _eval_node(node, [p.params["value"] for p in producers])
            except NotImplementedError:
                continue
            folded = Node(
                name=f"{node.name}_folded",
                op=OpKind.CONSTANT,
                attrs={"shape": tuple(value.shape)},
                params={"value": value},
                out_shape=tuple(value.shape),
            )
            graph.add(folded)
            graph.rewire(node.name, folded.name)
            graph.remove(node.name)
            for p in producers:
                if not graph.consumers(p.name):
                    graph.remove(p.name)
            folds += 1
            changed = True
    return folds
