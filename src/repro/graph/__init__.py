"""Computational-graph IR and graph-level optimizations (paper §5, Table 1).

PatDNN "converts DNN models into computational graphs and applies
multiple graph-based optimizations" before its layerwise work.  This
package provides:

* :mod:`repro.graph.ir` — the node/graph types with shape inference,
* :mod:`repro.graph.builder` — build a graph from a ``repro.nn`` model
  or a :class:`~repro.models.spec.ModelSpec`,
* :mod:`repro.graph.passes` — conv+BN folding, activation fusion,
  constant folding, data-layout transform, static memory planning,
  operation replacement,
* :mod:`repro.graph.pass_manager` — ordered pass application.
"""

from repro.graph.ir import Graph, Node, OpKind
from repro.graph.builder import build_graph, graph_from_spec
from repro.graph.pass_manager import PassManager, default_pipeline

__all__ = [
    "Graph",
    "Node",
    "OpKind",
    "build_graph",
    "graph_from_spec",
    "PassManager",
    "default_pipeline",
]
