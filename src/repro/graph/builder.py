"""Build graph IR from ``repro.nn`` models or from ``ModelSpec``s.

The module builder walks the model structurally through an *expander
registry*: leaf layer types map 1:1 to IR nodes, composite blocks
(ResNet bottleneck, MobileNet inverted residual) register expanders that
emit their internal dataflow including the residual ADD.  Unknown
composites raise — the same contract real exporters use.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro import nn
from repro.graph.ir import Graph, Node, OpKind, run_shape_inference
from repro.models.mobilenet import _InvertedResidual, _MobileNetV2
from repro.models.resnet import _Bottleneck, _ResNet
from repro.models.spec import ConvSpec, ModelSpec


class _Builder:
    def __init__(self, graph: Graph) -> None:
        self.graph = graph
        self._counter: dict[str, int] = {}

    def fresh(self, kind: str) -> str:
        i = self._counter.get(kind, 0)
        self._counter[kind] = i + 1
        return f"{kind}_{i}"

    def emit(self, op: OpKind, inputs: list[str], attrs=None, params=None, name: str | None = None) -> str:
        node = Node(
            name=name or self.fresh(op.value),
            op=op,
            inputs=list(inputs),
            attrs=dict(attrs or {}),
            params=dict(params or {}),
        )
        self.graph.add(node)
        return node.name


# Registry: module type -> expander(builder, module, input_name) -> output_name
_EXPANDERS: dict[type, Callable[[_Builder, nn.Module, str], str]] = {}


def register_expander(module_type: type):
    """Decorator registering a graph expander for a composite module."""

    def deco(fn):
        _EXPANDERS[module_type] = fn
        return fn

    return deco


def _expand(b: _Builder, module: nn.Module, x: str) -> str:
    for mtype, expander in _EXPANDERS.items():
        if isinstance(module, mtype):
            return expander(b, module, x)
    raise TypeError(
        f"no graph expander for module type {type(module).__name__}; "
        "register one with repro.graph.builder.register_expander"
    )


# ----------------------------------------------------------------------
# Leaf expanders
# ----------------------------------------------------------------------
@register_expander(nn.Conv2d)
def _conv(b: _Builder, m: nn.Conv2d, x: str) -> str:
    params = {"weight": m.weight.data}
    if m.bias is not None:
        params["bias"] = m.bias.data
    return b.emit(
        OpKind.CONV2D,
        [x],
        attrs={
            "out_channels": m.out_channels,
            "kernel_size": m.kernel_size,
            "stride": m.stride,
            "padding": m.padding,
            "groups": m.groups,
        },
        params=params,
    )


@register_expander(nn.BatchNorm2d)
def _bn(b: _Builder, m: nn.BatchNorm2d, x: str) -> str:
    return b.emit(
        OpKind.BATCHNORM,
        [x],
        attrs={"eps": m.eps},
        params={
            "gamma": m.weight.data,
            "beta": m.bias.data,
            "mean": np.array(m.running_mean),
            "var": np.array(m.running_var),
        },
    )


@register_expander(nn.ReLU)
def _relu(b: _Builder, m: nn.ReLU, x: str) -> str:
    return b.emit(OpKind.RELU, [x])


@register_expander(nn.ReLU6)
def _relu6(b: _Builder, m: nn.ReLU6, x: str) -> str:
    return b.emit(OpKind.RELU6, [x])


@register_expander(nn.MaxPool2d)
def _maxpool(b: _Builder, m: nn.MaxPool2d, x: str) -> str:
    return b.emit(
        OpKind.MAXPOOL,
        [x],
        attrs={"kernel_size": m.kernel_size, "stride": m.stride, "padding": m.padding},
    )


@register_expander(nn.AvgPool2d)
def _avgpool(b: _Builder, m: nn.AvgPool2d, x: str) -> str:
    return b.emit(OpKind.AVGPOOL, [x], attrs={"kernel_size": m.kernel_size, "stride": m.stride})


@register_expander(nn.GlobalAvgPool2d)
def _gap(b: _Builder, m, x: str) -> str:
    return b.emit(OpKind.GLOBAL_AVGPOOL, [x])


@register_expander(nn.AdaptiveAvgPool2d)
def _aap(b: _Builder, m, x: str) -> str:
    return b.emit(OpKind.GLOBAL_AVGPOOL, [x]) if m.output_size == 1 else b.emit(
        OpKind.AVGPOOL, [x], attrs={"kernel_size": m.output_size, "stride": m.output_size}
    )


@register_expander(nn.Flatten)
def _flatten(b: _Builder, m, x: str) -> str:
    return b.emit(OpKind.FLATTEN, [x])


@register_expander(nn.Dropout)
def _dropout(b: _Builder, m, x: str) -> str:
    return x  # identity at inference


@register_expander(nn.Identity)
def _identity(b: _Builder, m, x: str) -> str:
    return x


@register_expander(nn.Linear)
def _linear(b: _Builder, m: nn.Linear, x: str) -> str:
    params = {"weight": m.weight.data}
    if m.bias is not None:
        params["bias"] = m.bias.data
    return b.emit(OpKind.LINEAR, [x], attrs={"out_features": m.out_features}, params=params)


# ----------------------------------------------------------------------
# Composite expanders
# ----------------------------------------------------------------------
@register_expander(nn.Sequential)
def _sequential(b: _Builder, m: nn.Sequential, x: str) -> str:
    for layer in m:
        x = _expand(b, layer, x)
    return x


@register_expander(_Bottleneck)
def _bottleneck(b: _Builder, m: _Bottleneck, x: str) -> str:
    identity = x if m.downsample is None else _expand(b, m.downsample, x)
    out = _expand(b, m.conv1, x)
    out = _expand(b, m.bn1, out)
    out = b.emit(OpKind.RELU, [out])
    out = _expand(b, m.conv2, out)
    out = _expand(b, m.bn2, out)
    out = b.emit(OpKind.RELU, [out])
    out = _expand(b, m.conv3, out)
    out = _expand(b, m.bn3, out)
    out = b.emit(OpKind.ADD, [out, identity])
    return b.emit(OpKind.RELU, [out])


@register_expander(_InvertedResidual)
def _inverted(b: _Builder, m: _InvertedResidual, x: str) -> str:
    out = _expand(b, m.body, x)
    if m.use_residual:
        out = b.emit(OpKind.ADD, [out, x])
    return out


@register_expander(_ResNet)
def _resnet(b: _Builder, m: _ResNet, x: str) -> str:
    x = _expand(b, m.stem, x)
    x = _expand(b, m.blocks, x)
    return _expand(b, m.head, x)


@register_expander(_MobileNetV2)
def _mbv2(b: _Builder, m: _MobileNetV2, x: str) -> str:
    x = _expand(b, m.stem, x)
    x = _expand(b, m.blocks, x)
    return _expand(b, m.head, x)


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def build_graph(model: nn.Module, input_shape: tuple[int, int, int], name: str = "model") -> Graph:
    """Export a trainable model to graph IR with shapes inferred.

    Args:
        model: any module composed of registered types.
        input_shape: (C, H, W) of a single sample.
    """
    graph = Graph(name)
    b = _Builder(graph)
    x = b.emit(OpKind.INPUT, [], attrs={"shape": tuple(input_shape)}, name="input")
    out = _expand(b, model, x)
    out = b.emit(OpKind.OUTPUT, [out], name="output")
    graph.outputs = [out]
    run_shape_inference(graph)
    return graph


def graph_from_spec(spec: ModelSpec, with_bn_relu: bool = True) -> Graph:
    """Chain a spec's conv layers into a graph (full-scale experiments).

    Weights are *not* instantiated; nodes carry the :class:`ConvSpec` in
    their attrs so the compiler can lazily materialise per-layer weights.
    Residual edges are omitted — per-layer latency work (Figs. 12–17)
    sums over convs, where add nodes are negligible.
    """
    graph = Graph(f"{spec.name}-{spec.dataset}")
    b = _Builder(graph)
    prev = b.emit(OpKind.INPUT, [], attrs={"shape": (3, spec.convs[0].in_hw, spec.convs[0].in_hw)}, name="input")
    prev_hw = None
    for conv in spec.convs:
        if prev_hw is not None and conv.in_hw != prev_hw:
            # Spatial change not produced by stride: a pooling stage sits
            # between these convs in the real network (VGG's maxpools).
            if conv.in_hw < prev_hw:
                factor = prev_hw // conv.in_hw
                prev = b.emit(OpKind.MAXPOOL, [prev], attrs={"kernel_size": factor, "stride": factor})
        prev = b.emit(
            OpKind.CONV2D,
            [prev],
            attrs={
                "out_channels": conv.out_channels,
                "kernel_size": conv.kernel_size,
                "stride": conv.stride,
                "padding": conv.padding,
                "groups": conv.groups,
                "spec": conv,
            },
            name=conv.name,
        )
        if with_bn_relu:
            prev = b.emit(OpKind.BATCHNORM, [prev], attrs={"eps": 1e-5})
            prev = b.emit(OpKind.RELU, [prev])
        prev_hw = conv.out_hw
    out = b.emit(OpKind.OUTPUT, [prev], name="output")
    graph.outputs = [out]
    # Shape inference works because conv attrs carry real shapes; BN/ReLU
    # pass shapes through, and spec-driven maxpools divide exactly.
    run_shape_inference(graph)
    return graph
