"""Ordered application of graph passes with a report."""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.graph.ir import Graph
from repro.graph.passes import (
    constant_fold,
    eliminate_dead_nodes,
    fold_batchnorm,
    fuse_activation,
    replace_ops,
)


@dataclass
class PassReport:
    """Counts of rewrites applied per pass."""

    applied: dict[str, int] = field(default_factory=dict)

    def total(self) -> int:
        return sum(self.applied.values())


class PassManager:
    """Run a named sequence of graph passes.

    Each pass is ``Callable[[Graph], int]`` returning its rewrite count.
    """

    def __init__(self, passes: list[tuple[str, Callable[[Graph], int]]]) -> None:
        self.passes = passes

    def run(self, graph: Graph) -> PassReport:
        report = PassReport()
        for name, fn in self.passes:
            report.applied[name] = fn(graph)
        graph.validate()
        return report


def default_pipeline() -> PassManager:
    """PatDNN's graph-level pipeline (Table 1 '**' row)."""
    return PassManager(
        [
            ("fold_batchnorm", fold_batchnorm),
            ("fuse_activation", fuse_activation),
            ("constant_fold", constant_fold),
            ("op_replacement", replace_ops),
            ("dead_code_elimination", eliminate_dead_nodes),
        ]
    )
