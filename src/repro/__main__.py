"""``python -m repro`` entry point.

The ``__main__`` guard is load-bearing: multiprocessing's ``spawn``
start method (used by ``repro.runtime.cluster`` workers, e.g. under the
``serve`` subcommand) re-imports this module in every child process —
without the guard each worker would recursively re-run the CLI.
"""

import sys

from repro.cli import main

if __name__ == "__main__":
    sys.exit(main())
