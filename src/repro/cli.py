"""Command-line interface.

Subcommands::

    python -m repro experiments                 # list registered experiments
    python -m repro experiments table3          # run one and print its table
    python -m repro devices                     # device catalog
    python -m repro latency vgg16 --unit gpu    # engine comparison for a model
    python -m repro compile vgg16 --layer L4    # compile one layer, show artifacts
    python -m repro serve --shards 2            # multi-process sharded serving demo
    python -m repro serve --transport tcp       # same demo over loopback TCP
    python -m repro serve --model small=demo --model big=demo   # multi-tenant registry
    python -m repro serve --metrics-port 9100 --linger 60   # scrape /metrics meanwhile
    python -m repro worker --listen 0.0.0.0:7070        # shard worker for another host
    python -m repro serve --shards host1:7070,host2:7070  # route to remote workers
    python -m repro serve --shard-file shards.txt   # elastic membership from a watched file
"""

from __future__ import annotations

import argparse
import sys


def _parse_shards(value: str):
    """``--shards`` accepts a local worker count (``4``) or remote worker
    addresses (``host1:7070,host2:7070``), one shard per address.
    Non-positive counts and duplicate addresses are rejected here, at
    argparse level, instead of surfacing as a raw traceback from
    ``ShardedServer`` after the spec capture already ran."""
    try:
        count = int(value.strip())
    except ValueError:
        count = None
    if count is not None:
        if count < 1:
            raise argparse.ArgumentTypeError(
                f"shard count must be a positive integer, got {count}"
            )
        return count
    from repro.runtime.transport_tcp import parse_hostport

    addresses = [part.strip() for part in value.split(",") if part.strip()]
    if not addresses:
        raise argparse.ArgumentTypeError("expected a count or HOST:PORT[,HOST:PORT...]")
    seen: set[str] = set()
    dupes: list[str] = []
    for address in addresses:
        try:
            parse_hostport(address)
        except ValueError as exc:
            raise argparse.ArgumentTypeError(str(exc)) from None
        if address in seen and address not in dupes:
            dupes.append(address)
        seen.add(address)
    if dupes:
        raise argparse.ArgumentTypeError(
            f"duplicate shard address(es): {', '.join(dupes)} — each address "
            "hosts exactly one shard (a worker serves one router connection)"
        )
    return addresses


def _parse_model_arg(value: str):
    """``--model`` takes ``NAME=SPEC`` where SPEC is ``demo`` (a demo CNN
    whose weights are seeded from NAME, so every registered model computes
    a *different* function) or a path to a JSON spec file."""
    name, sep, src = value.partition("=")
    name, src = name.strip(), src.strip()
    if not sep or not name or not src:
        raise argparse.ArgumentTypeError(
            f"expected NAME=SPEC (SPEC: 'demo' or a spec .json path), got {value!r}"
        )
    return name, src


def _cmd_experiments(args: argparse.Namespace) -> int:
    from repro.bench.registry import EXPERIMENTS, get_experiment

    if not args.exp_id:
        for exp_id, exp in EXPERIMENTS.items():
            print(f"{exp_id:18s} [{exp.kind}] {exp.description}")
        return 0
    table = get_experiment(args.exp_id).run()
    print(table.to_text())
    return 0


def _cmd_devices(args: argparse.Namespace) -> int:
    from repro.hardware import DEVICES

    for name, dev in DEVICES.items():
        print(
            f"{name:15s} cpu: {dev.cpu.cores}c @ {dev.cpu.freq_ghz:.2f} GHz "
            f"({dev.cpu.peak_gflops:.0f} GFLOPS peak)   "
            f"gpu: {dev.gpu.arch} {dev.gpu.peak_gflops_fp32:.0f} GFLOPS fp32, "
            f"{dev.gpu.dram_bw_gbs:.0f} GB/s"
        )
    return 0


def _cmd_latency(args: argparse.Namespace) -> int:
    from repro.frameworks import UnsupportedModelError, get_engine
    from repro.hardware import get_device
    from repro.models import get_spec

    spec = get_spec(args.model, args.dataset)
    device = get_device(args.device)
    print(f"{spec} on {device.name}/{args.unit}")
    for engine in ("tflite", "tvm", "mnn"):
        try:
            ms = get_engine(engine, device, args.unit).prepare(spec).latency_ms
            print(f"  {engine:8s} {ms:9.1f} ms")
        except UnsupportedModelError as err:
            print(f"  {engine:8s}       N/A  ({err})")
    for mode in ("dense", "csr", "pattern"):
        ms = get_engine("patdnn", device, args.unit, mode=mode).prepare(spec).latency_ms
        print(f"  patdnn-{mode:8s} {ms:7.1f} ms")
    return 0


def _cmd_compile(args: argparse.Namespace) -> int:
    from repro.bench.perf_experiments import _cost_model, _pruned_unique_layer
    from repro.compiler.codegen import generate_source
    from repro.compiler.compile import OptLevel, compile_layer

    spec, w, assignment, ps = _pruned_unique_layer(args.layer)
    cm = _cost_model(args.unit, args.device)
    layer = compile_layer(spec, w, assignment, ps, cm, OptLevel.TUNE)
    print(f"== {args.layer}: {spec.filter_shape}, {layer.fkw.num_kernels} kernels, {layer.fkw.nnz} weights ==")
    print(f"estimated latency: {layer.estimated_ms:.3f} ms on {args.device}/{args.unit}")
    print(f"register loads (no/kernel/filter LRE): {layer.loads.no_lre} / "
          f"{layer.loads.kernel_lre} / {layer.loads.filter_lre}")
    print("\n-- layerwise representation --")
    print(layer.lr.to_yaml())
    if args.source:
        print("\n-- generated source --")
        print(generate_source(layer.fkw, "lre"))
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    """Run one shard worker: listen for a router connection and serve it.

    Started on each machine that should host a shard; the router
    (``repro serve --shards host:port,...``) connects, ships the session
    spec + bundle, and streams framed tensor requests.  The worker keeps
    listening after a router disconnects, so router restarts and network
    blips just reconnect.
    """
    from repro.runtime.transport_tcp import parse_hostport, worker_serve

    host, port = parse_hostport(args.listen)
    try:
        worker_serve(host, port, log=print)
    except KeyboardInterrupt:
        print("worker interrupted; exiting")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    """Spin up a sharded server on a pattern-pruned small CNN and hammer
    it with closed-loop clients; print the aggregated cluster stats."""
    import os
    import tempfile
    import threading
    import time

    import numpy as np

    from repro.runtime import FaultPlan, ResilienceConfig, ServingConfig, TelemetryConfig
    from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec

    addresses = args.shards if isinstance(args.shards, list) else None
    num_shards = len(addresses) if addresses is not None else args.shards
    resilience = ResilienceConfig(max_retries=args.retries)
    faults = None
    if args.chaos > 0:
        # split the chaos budget over the recoverable kinds: every faulted
        # request must still resolve correctly (retries) or with a typed
        # error (deadline) — the CLI demo doubles as a chaos smoke test
        faults = FaultPlan(
            seed=args.chaos_seed,
            crash_rate=args.chaos / 3,
            slow_rate=args.chaos / 3,
            corrupt_rate=args.chaos / 3,
            start_after=num_shards * 2,  # let warmup traffic through
        )
    deadline = args.deadline_ms / 1e3 if args.deadline_ms else None
    telemetry = TelemetryConfig(
        trace_sample_rate=args.trace_sample,
        metrics_port=args.metrics_port,
    )
    with tempfile.TemporaryDirectory() as tmp:
        specs = {}
        if args.model:
            import json
            import zlib

            from repro.runtime import spec_from_json

            for name, src in args.model:
                if name in specs:
                    raise SystemExit(f"duplicate --model name: {name}")
                if src == "demo":
                    # per-name seed: each registered model computes a distinct
                    # function, so the output check below proves requests were
                    # routed to the model they named
                    seed = 7 + zlib.crc32(name.encode()) % 1000
                    print(f"== capture: {name} = projection-pruned smallcnn "
                          f"({args.in_size}x{args.in_size}, seed {seed}) ==")
                    specs[name] = projected_smallcnn_spec(
                        os.path.join(tmp, f"bundle-{name}.npz"),
                        in_size=args.in_size,
                        seed=seed,
                        serving_config=ServingConfig(max_batch=args.max_batch),
                    )
                else:
                    print(f"== capture: {name} = spec file {src} ==")
                    with open(src) as fh:
                        specs[name] = spec_from_json(json.load(fh))
        else:
            from repro.runtime import DEFAULT_MODEL

            print(f"== capture: projection-pruned smallcnn ({args.in_size}x{args.in_size}) ==")
            specs[DEFAULT_MODEL] = projected_smallcnn_spec(
                os.path.join(tmp, "bundle.npz"),
                in_size=args.in_size,
                serving_config=ServingConfig(max_batch=args.max_batch),
            )
        names = list(specs)
        # clients round-robin over the registered models; expected outputs
        # come from a private single-process session per model
        client_model = [names[i % len(names)] for i in range(args.clients)]
        rng = np.random.default_rng(0)
        samples = [
            rng.standard_normal((1, *specs[client_model[i]].input_shape)).astype(np.float32)
            for i in range(args.clients)
        ]
        expected = [None] * args.clients
        for name in names:
            session = specs[name].build()
            for i in range(args.clients):
                if client_model[i] == name:
                    expected[i] = session.run(samples[i])
            session.close()

        per_client = max(1, args.requests // args.clients)
        total = per_client * args.clients
        where = f"at {', '.join(addresses)}" if addresses else f"[{args.transport}]"
        what = f"{len(names)} models ({', '.join(names)})" if len(names) > 1 else "1 model"
        print(f"== serving {total} requests ({what}) from {args.clients} "
              f"closed-loop clients over {num_shards} shard(s) {where} ==")
        errors: list[BaseException] = []
        shed = 0
        shed_lock = threading.Lock()
        with ShardedServer(
            specs, num_shards=num_shards, transport=args.transport, shards=addresses,
            resilience=resilience, faults=faults, telemetry=telemetry,
        ) as server:
            if server.metrics_port is not None:
                print(f"admin endpoint: http://127.0.0.1:{server.metrics_port}"
                      f" (/metrics /healthz /stats /traces /events /models; "
                      f"POST /shards/add /shards/<id>/remove "
                      f"/models/load /models/<name>/unload)")
            watcher = None
            if args.shard_file:
                from repro.runtime.membership import ShardFileWatcher

                watcher = ShardFileWatcher(server, args.shard_file).start()
                print(f"watching shard file {args.shard_file} "
                      f"(one entry per line: 'local' or HOST:PORT)")

            def client(i: int) -> None:
                nonlocal shed
                try:
                    for _ in range(per_client):
                        try:
                            out = server.submit(
                                samples[i], model=client_model[i], deadline=deadline
                            ).result(timeout=120)
                        except RuntimeError as exc:
                            if type(exc) is RuntimeError:
                                raise
                            with shed_lock:  # typed shed/deadline error: expected under chaos
                                shed += 1
                            continue
                        np.testing.assert_allclose(out, expected[i], rtol=1e-4, atol=1e-5)
                except BaseException as exc:  # noqa: BLE001 - reported below
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(i,)) for i in range(args.clients)]
            start = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            elapsed = time.perf_counter() - start
            if errors:
                raise errors[0]
            if args.linger > 0 and server.metrics_port is not None:
                print(f"lingering {args.linger:.0f} s for scrapes at "
                      f"http://127.0.0.1:{server.metrics_port}/metrics (Ctrl-C to stop)")
                try:
                    time.sleep(args.linger)
                except KeyboardInterrupt:
                    pass
            if watcher is not None:
                watcher.close()
            server.close()
            stats = server.cluster_stats

        print(f"outputs verified against the single-process session (rtol 1e-4)")
        print(f"throughput: {total / elapsed:.0f} req/s ({elapsed:.2f} s wallclock)\n")
        header = f"{'shard':>5s} {'pid':>8s} {'requests':>9s} {'errors':>7s} {'respawns':>9s} " \
                 f"{'breaker':>9s} {'batches':>8s} {'mean batch':>11s} " \
                 f"{'p50 ms':>8s} {'p95 ms':>8s} {'p99 ms':>8s}"
        print(header)
        for entry in stats["shards"]:
            serving = entry["serving"] or {}
            # remote shards have an address instead of a local pid
            who = entry["pid"] if entry["pid"] is not None else (entry["address"] or "-")
            print(f"{entry['shard']:>5d} {str(who):>8s} {entry['requests']:>9d} "
                  f"{entry['errors']:>7d} {entry['respawns']:>9d} "
                  f"{entry['breaker']['state']:>9s} "
                  f"{serving.get('batches', 0):>8d} {serving.get('mean_batch', 0.0):>11.2f} "
                  f"{serving.get('p50_ms', 0.0):>8.2f} {serving.get('p95_ms', 0.0):>8.2f} "
                  f"{serving.get('p99_ms', 0.0):>8.2f}")
        print(f"\ntotal: {stats['requests']} requests, {stats['errors']} errors, "
              f"{stats['respawns']} respawns, cluster mean batch {stats['mean_batch']:.2f}")
        print(f"transport: {stats['transport']}; router end-to-end "
              f"p50 {stats['router_p50_ms']:.2f} ms / p95 {stats['router_p95_ms']:.2f} ms "
              f"/ p99 {stats['router_p99_ms']:.2f} ms")
        print(f"resilience: {stats['retries']} retries, {stats['hedges']} hedges, "
              f"{stats['shed']} shed, {stats['timed_out']} timed out, "
              f"{stats['corrupt']} corrupt payloads caught; "
              f"{shed} client-visible typed errors")
        if len(stats.get("models", {})) > 1:
            print("\nper-model:")
            for name in sorted(stats["models"]):
                m = stats["models"][name]
                print(f"  {name:>12s} {m['requests']:>7d} requests  "
                      f"p50 {m['router_p50_ms']:>7.2f} ms  "
                      f"p95 {m['router_p95_ms']:>7.2f} ms  "
                      f"worker batches {m['worker_batches']}")
        if stats["injected_faults"] is not None:
            injected = ", ".join(f"{k}={v}" for k, v in stats["injected_faults"].items() if v)
            print(f"injected (router-side decisions): {injected or 'none'}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description="PatDNN reproduction toolkit")
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("experiments", help="list or run paper experiments")
    p.add_argument("exp_id", nargs="?", help="experiment id (e.g. table3, fig13)")
    p.set_defaults(fn=_cmd_experiments)

    p = sub.add_parser("devices", help="show the device catalog")
    p.set_defaults(fn=_cmd_devices)

    p = sub.add_parser("latency", help="engine latency comparison for a model")
    p.add_argument("model", help="vgg16 | resnet50 | mobilenet_v2")
    p.add_argument("--dataset", default="imagenet", choices=["imagenet", "cifar10"])
    p.add_argument("--unit", default="cpu", choices=["cpu", "gpu"])
    p.add_argument("--device", default="snapdragon855")
    p.set_defaults(fn=_cmd_latency)

    p = sub.add_parser("compile", help="compile one VGG unique layer and show artifacts")
    p.add_argument("--layer", default="L4", help="L1..L9")
    p.add_argument("--unit", default="cpu", choices=["cpu", "gpu"])
    p.add_argument("--device", default="snapdragon855")
    p.add_argument("--source", action="store_true", help="print generated source")
    p.set_defaults(fn=_cmd_compile)

    p = sub.add_parser("worker", help="run one TCP shard worker (for cross-host serving)")
    p.add_argument("--listen", required=True, metavar="HOST:PORT",
                   help="address to accept router connections on "
                        "(e.g. 0.0.0.0:7070, or 127.0.0.1:7070 for loopback)")
    p.set_defaults(fn=_cmd_worker)

    p = sub.add_parser("serve", help="multi-process sharded serving demo (small CNN)")
    p.add_argument("--shards", type=_parse_shards, default=2,
                   help="worker process count, or remote worker addresses "
                        "host1:7070,host2:7070 (one shard per address; implies TCP)")
    p.add_argument("--transport", default="shm", choices=["shm", "tcp"],
                   help="local shard transport: shared-memory rings or loopback TCP "
                        "(ignored when --shards lists addresses)")
    p.add_argument("--model", action="append", type=_parse_model_arg,
                   default=None, metavar="NAME=SPEC",
                   help="register a model under NAME (repeatable; clients "
                        "round-robin over the registry). SPEC is 'demo' for a "
                        "demo CNN seeded from NAME, or a path to a JSON spec "
                        "file (see repro.runtime.spec_to_json). Default: one "
                        "demo model")
    p.add_argument("--shard-file", metavar="PATH", default=None,
                   help="watch PATH for the desired shard list (one entry per "
                        "line: 'local' spawns a worker here, HOST:PORT joins a "
                        "remote worker; '#' comments) and elastically "
                        "add/remove shards on the live server to match it")
    p.add_argument("--clients", type=int, default=8, help="closed-loop client threads")
    p.add_argument("--requests", type=int, default=256, help="total requests to serve")
    p.add_argument("--max-batch", type=int, default=8, help="per-worker micro-batch size")
    p.add_argument("--in-size", type=int, default=8, help="input H=W of the demo CNN")
    p.add_argument("--retries", type=int, default=2,
                   help="retry budget per request (0 = crashes surface immediately)")
    p.add_argument("--deadline-ms", type=float, default=0.0,
                   help="per-request latency budget in ms (0 = none)")
    p.add_argument("--chaos", type=float, default=0.0,
                   help="total injected-fault rate in [0,1) split over crash/slow/corrupt")
    p.add_argument("--chaos-seed", type=int, default=7, help="fault plan seed")
    p.add_argument("--metrics-port", type=int, default=None, metavar="PORT",
                   help="serve /metrics, /healthz, /stats, /trace/<id>, /events "
                        "over HTTP on 127.0.0.1:PORT (0 = ephemeral; default: off)")
    p.add_argument("--trace-sample", type=float, default=0.01, metavar="RATE",
                   help="fraction of requests to trace end to end (default 0.01; "
                        "0 disables tracing)")
    p.add_argument("--linger", type=float, default=0.0, metavar="SECONDS",
                   help="keep the admin endpoint up this long after the load "
                        "finishes, so /metrics can be scraped (needs --metrics-port)")
    p.set_defaults(fn=_cmd_serve)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
