"""Pooling layers."""

from __future__ import annotations

from repro.autograd.ops_conv import AvgPool2d as _AvgFn
from repro.autograd.ops_conv import MaxPool2d as _MaxFn
from repro.nn.module import Module


class MaxPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None, padding: int = 0) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size
        self.padding = padding

    def forward(self, x):
        return _MaxFn.apply(x, kernel=self.kernel_size, stride=self.stride, padding=self.padding)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, s={self.stride}"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x):
        return _AvgFn.apply(x, kernel=self.kernel_size, stride=self.stride)

    def extra_repr(self) -> str:
        return f"k={self.kernel_size}, s={self.stride}"


class AdaptiveAvgPool2d(Module):
    """Average-pool to a fixed output size (only exact divisors supported)."""

    def __init__(self, output_size: int = 1) -> None:
        super().__init__()
        self.output_size = output_size

    def forward(self, x):
        h = x.shape[2]
        if h % self.output_size:
            raise ValueError(
                f"AdaptiveAvgPool2d needs input divisible by output size; got {h} -> {self.output_size}"
            )
        kernel = h // self.output_size
        return _AvgFn.apply(x, kernel=kernel, stride=kernel)


class GlobalAvgPool2d(Module):
    """Mean over the spatial dims, keeping NCHW rank at (N, C, 1, 1)."""

    def forward(self, x):
        return x.mean(axis=(2, 3), keepdims=True)
