"""Loss functions."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.autograd.engine import Function
from repro.nn.module import Module


class _SoftmaxCrossEntropy(Function):
    """Fused, numerically-stable softmax + NLL with integer targets."""

    def forward(self, logits, labels):
        labels = labels.astype(np.int64)
        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        n = logits.shape[0]
        nll = -np.log(probs[np.arange(n), labels] + 1e-12)
        self.save_for_backward(probs, labels)
        return np.asarray(nll.mean(), dtype=logits.dtype)

    def backward(self, grad_out):
        probs, labels = self.saved
        n = probs.shape[0]
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        grad /= n
        return (grad * grad_out, None)


class CrossEntropyLoss(Module):
    """Mean softmax cross-entropy over a batch.

    Accepts logits of shape (N, classes) and integer labels (N,) given as
    a numpy array or Tensor.
    """

    def forward(self, logits: Tensor, labels) -> Tensor:
        label_array = labels.data if isinstance(labels, Tensor) else np.asarray(labels)
        label_tensor = Tensor(label_array.astype(np.float32))
        return _SoftmaxCrossEntropy.apply(logits, label_tensor)


class MSELoss(Module):
    """Mean squared error."""

    def forward(self, prediction: Tensor, target) -> Tensor:
        target_t = target if isinstance(target, Tensor) else Tensor(target)
        diff = prediction - target_t
        return (diff * diff).mean()
