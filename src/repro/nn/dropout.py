"""Inverted dropout."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Module
from repro.utils.rng import make_rng


class Dropout(Module):
    """Zero activations with probability ``p`` during training.

    Uses inverted scaling so eval mode is the identity.  The RNG can be
    injected for deterministic tests.
    """

    def __init__(self, p: float = 0.5, rng: np.random.Generator | None = None) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = rng or make_rng()

    def forward(self, x):
        if not self.training or self.p == 0.0:
            return x
        keep = 1.0 - self.p
        mask = (self._rng.random(x.shape) < keep).astype(np.float32) / keep
        return x * Tensor(mask)

    def extra_repr(self) -> str:
        return f"p={self.p}"
