"""2-D convolution layer (the unit of pattern-based pruning)."""

from __future__ import annotations

import numpy as np

from repro.autograd.ops_conv import Conv2d as _Conv2dFn
from repro.nn import init
from repro.nn.module import Module, Parameter


class Conv2d(Module):
    """Convolution over NCHW inputs.

    Weight layout is ``(out_channels, in_channels // groups, kh, kw)`` —
    the exact 4-D tensor the paper's pattern/connectivity constraints are
    expressed on (filters × kernels × kernel height × kernel width).
    """

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        groups: int = 1,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        if in_channels % groups:
            raise ValueError(f"in_channels ({in_channels}) not divisible by groups ({groups})")
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.groups = groups
        shape = (out_channels, in_channels // groups, kernel_size, kernel_size)
        self.weight = Parameter(init.kaiming_normal(shape, rng))
        self.bias = Parameter(init.zeros((out_channels,))) if bias else None

    def forward(self, x):
        return _Conv2dFn.apply(
            x,
            self.weight,
            *([self.bias] if self.bias is not None else []),
            stride=self.stride,
            padding=self.padding,
            groups=self.groups,
        )

    def extra_repr(self) -> str:
        return (
            f"{self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding}"
            + (f", groups={self.groups}" if self.groups != 1 else "")
        )
