"""Activation layers."""

from __future__ import annotations

from repro.nn.module import Module


class ReLU(Module):
    def forward(self, x):
        return x.relu()


class ReLU6(Module):
    """Clipped ReLU used throughout MobileNet-V2."""

    def forward(self, x):
        return x.clip(0.0, 6.0)


class Sigmoid(Module):
    def forward(self, x):
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x):
        return x.tanh()
