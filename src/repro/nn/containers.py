"""Module containers."""

from __future__ import annotations

from collections.abc import Iterator

from repro.nn.module import Module


class Sequential(Module):
    """Chain modules in order; indexable like a list."""

    def __init__(self, *layers: Module) -> None:
        super().__init__()
        self._layers = list(layers)
        for i, layer in enumerate(layers):
            setattr(self, str(i), layer)

    def forward(self, x):
        for layer in self._layers:
            x = layer(x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._layers)

    def __len__(self) -> int:
        return len(self._layers)

    def __getitem__(self, idx: int) -> Module:
        return self._layers[idx]


class ModuleList(Module):
    """A list of sub-modules registered for traversal (no forward)."""

    def __init__(self, modules: list[Module] | None = None) -> None:
        super().__init__()
        self._items: list[Module] = []
        for m in modules or []:
            self.append(m)

    def append(self, module: Module) -> None:
        setattr(self, str(len(self._items)), module)
        self._items.append(module)

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, idx: int) -> Module:
        return self._items[idx]
