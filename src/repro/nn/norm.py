"""Batch normalisation (2-D), with running statistics for inference.

The paper's execution stage folds BatchNorm into the preceding conv
(`repro.graph.passes.fold_batchnorm`); the training stage needs the real
thing, implemented here with autograd primitives.
"""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor
from repro.nn.module import Module, Parameter


class BatchNorm2d(Module):
    """Normalise each channel of an NCHW tensor.

    Uses biased batch variance during training (as PyTorch does for the
    normalisation itself) and tracks running estimates for eval mode.
    """

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(np.ones(num_features, dtype=np.float32))
        self.bias = Parameter(np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_mean", np.zeros(num_features, dtype=np.float32))
        self.register_buffer("running_var", np.ones(num_features, dtype=np.float32))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = ((x - mean) * (x - mean)).mean(axis=(0, 2, 3), keepdims=True)
            m = self.momentum
            self.running_mean *= 1.0 - m
            self.running_mean += m * mean.data.reshape(-1)
            self.running_var *= 1.0 - m
            self.running_var += m * var.data.reshape(-1)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        inv_std = (var + self.eps) ** -0.5
        x_hat = (x - mean) * inv_std
        gamma = self.weight.reshape(1, -1, 1, 1)
        beta = self.bias.reshape(1, -1, 1, 1)
        return x_hat * gamma + beta

    def extra_repr(self) -> str:
        return f"{self.num_features}, eps={self.eps}"
