"""Structural no-op / reshape layers."""

from __future__ import annotations

from repro.nn.module import Module


class Flatten(Module):
    """Collapse all dims after the batch dim (NCHW -> N, C*H*W)."""

    def forward(self, x):
        return x.reshape(x.shape[0], -1)


class Identity(Module):
    def forward(self, x):
        return x
