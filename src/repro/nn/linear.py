"""Fully-connected layer."""

from __future__ import annotations

import numpy as np

from repro.autograd.ops_matmul import Linear as _LinearFn
from repro.nn import init
from repro.nn.module import Module, Parameter


class Linear(Module):
    """Affine map ``y = x W^T + b`` with weight shape (out, in)."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_normal((out_features, in_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x):
        if self.bias is not None:
            return _LinearFn.apply(x, self.weight, self.bias)
        return _LinearFn.apply(x, self.weight)

    def extra_repr(self) -> str:
        return f"{self.in_features}, {self.out_features}"
