"""Weight initialisation schemes (Kaiming / Xavier) used by the model zoo."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import make_rng


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 2:  # Linear: (out, in)
        return shape[1], shape[0]
    if len(shape) == 4:  # Conv: (F, C, KH, KW)
        receptive = shape[2] * shape[3]
        return shape[1] * receptive, shape[0] * receptive
    raise ValueError(f"unsupported weight shape for init: {shape}")


def kaiming_normal(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """He initialisation for ReLU networks (fan-in mode)."""
    rng = rng or make_rng()
    fan_in, _ = _fan_in_out(shape)
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator | None = None) -> np.ndarray:
    """Glorot uniform initialisation."""
    rng = rng or make_rng()
    fan_in, fan_out = _fan_in_out(shape)
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
