"""Neural-network layer library (module system on top of repro.autograd).

Mirrors the subset of ``torch.nn`` the paper's training stage relies on:
convolution, batch normalization, fully-connected layers, ReLU/ReLU6,
pooling, dropout, and sequential containers — enough to express VGG-16,
ResNet-50, and MobileNet-V2 exactly.
"""

from repro.nn.module import Module, Parameter
from repro.nn.containers import Sequential, ModuleList
from repro.nn.conv import Conv2d
from repro.nn.linear import Linear
from repro.nn.norm import BatchNorm2d
from repro.nn.activation import ReLU, ReLU6, Sigmoid, Tanh
from repro.nn.pooling import MaxPool2d, AvgPool2d, AdaptiveAvgPool2d, GlobalAvgPool2d
from repro.nn.dropout import Dropout
from repro.nn.flatten import Flatten, Identity
from repro.nn.loss import CrossEntropyLoss, MSELoss
from repro.nn import functional, init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Conv2d",
    "Linear",
    "BatchNorm2d",
    "ReLU",
    "ReLU6",
    "Sigmoid",
    "Tanh",
    "MaxPool2d",
    "AvgPool2d",
    "AdaptiveAvgPool2d",
    "GlobalAvgPool2d",
    "Dropout",
    "Flatten",
    "Identity",
    "CrossEntropyLoss",
    "MSELoss",
    "functional",
    "init",
]
