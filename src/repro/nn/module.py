"""Module base class: parameter registration, traversal, and state dicts."""

from __future__ import annotations

from collections import OrderedDict
from collections.abc import Iterator
from typing import Any

import numpy as np

from repro.autograd import Tensor


class Parameter(Tensor):
    """A Tensor that is registered as a trainable leaf by Modules."""

    def __init__(self, data: Any):
        super().__init__(data, requires_grad=True)


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, :class:`Module`, or buffer
    (plain numpy array via :meth:`register_buffer`) attributes; traversal
    utilities discover them by attribute inspection, exactly like
    ``torch.nn.Module``.
    """

    def __init__(self) -> None:
        self._parameters: OrderedDict[str, Parameter] = OrderedDict()
        self._buffers: OrderedDict[str, np.ndarray] = OrderedDict()
        self._modules: OrderedDict[str, Module] = OrderedDict()
        self.training = True

    # ------------------------------------------------------------------
    # Registration
    # ------------------------------------------------------------------
    def __setattr__(self, name: str, value: Any) -> None:
        if isinstance(value, Parameter):
            self.__dict__.setdefault("_parameters", OrderedDict())[name] = value
        elif isinstance(value, Module):
            self.__dict__.setdefault("_modules", OrderedDict())[name] = value
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, array: np.ndarray) -> None:
        """Track a non-trainable array (e.g. BatchNorm running stats)."""
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    def _update_buffer(self, name: str, array: np.ndarray) -> None:
        """Replace a registered buffer's contents (keeps registration)."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} was never registered")
        self._buffers[name] = array
        object.__setattr__(self, name, array)

    # ------------------------------------------------------------------
    # Traversal
    # ------------------------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def modules(self) -> Iterator["Module"]:
        for _, m in self.named_modules():
            yield m

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for mod_name, module in self.named_modules(prefix):
            for p_name, param in module._parameters.items():
                full = f"{mod_name}.{p_name}" if mod_name else p_name
                yield full, param

    def parameters(self) -> list[Parameter]:
        return [p for _, p in self.named_parameters()]

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for mod_name, module in self.named_modules(prefix):
            for b_name, buf in module._buffers.items():
                full = f"{mod_name}.{b_name}" if mod_name else b_name
                yield full, buf

    # ------------------------------------------------------------------
    # Modes / grads
    # ------------------------------------------------------------------
    def train(self) -> "Module":
        for m in self.modules():
            m.training = True
        return self

    def eval(self) -> "Module":
        for m in self.modules():
            m.training = False
        return self

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        state = {name: p.data.copy() for name, p in self.named_parameters()}
        for name, buf in self.named_buffers():
            state[name] = np.array(buf, copy=True)
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        own_params = dict(self.named_parameters())
        own_buffers = {name: mod for name, mod in self._buffer_owners()}
        for name, value in state.items():
            if name in own_params:
                target = own_params[name]
                if target.data.shape != value.shape:
                    raise ValueError(f"shape mismatch for {name}: {target.data.shape} vs {value.shape}")
                target.data = value.astype(target.data.dtype).copy()
            elif name in own_buffers:
                module, b_name = own_buffers[name]
                module._update_buffer(b_name, value.copy())
            else:
                raise KeyError(f"unexpected key in state dict: {name}")

    def _buffer_owners(self) -> Iterator[tuple[str, tuple["Module", str]]]:
        for mod_name, module in self.named_modules():
            for b_name in module._buffers:
                full = f"{mod_name}.{b_name}" if mod_name else b_name
                yield full, (module, b_name)

    # ------------------------------------------------------------------
    # Call protocol
    # ------------------------------------------------------------------
    def forward(self, *args: Any, **kwargs: Any) -> Tensor:
        raise NotImplementedError

    def __call__(self, *args: Any, **kwargs: Any) -> Tensor:
        return self.forward(*args, **kwargs)

    def __repr__(self) -> str:
        child_lines = [f"  ({name}): {child!r}".replace("\n", "\n  ") for name, child in self._modules.items()]
        body = "\n".join(child_lines)
        header = f"{type(self).__name__}({self.extra_repr()})"
        if not body:
            return header
        return f"{type(self).__name__}(\n{body}\n)"

    def extra_repr(self) -> str:
        return ""
