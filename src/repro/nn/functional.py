"""Stateless functional forms (softmax, log-softmax, one-hot)."""

from __future__ import annotations

import numpy as np

from repro.autograd import Tensor


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    exp = shifted.exp()
    return exp / exp.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def one_hot(labels: np.ndarray, num_classes: int) -> np.ndarray:
    """Integer labels (N,) -> float32 one-hot matrix (N, num_classes)."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.shape[0], num_classes), dtype=np.float32)
    out[np.arange(labels.shape[0]), labels] = 1.0
    return out


def accuracy(logits: np.ndarray, labels: np.ndarray, topk: int = 1) -> float:
    """Top-k classification accuracy in [0, 1].

    ``topk=5`` reproduces the paper's ImageNet metric; ``topk=1`` its
    CIFAR-10 metric (Table 5 caption).
    """
    labels = np.asarray(labels)
    k = min(topk, logits.shape[1])
    top = np.argpartition(-logits, kth=k - 1, axis=1)[:, :k]
    hits = (top == labels[:, None]).any(axis=1)
    return float(hits.mean())
