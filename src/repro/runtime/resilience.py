"""Resilience primitives for the serving stack: typed failure taxonomy,
per-shard circuit breakers, and latency-aware routing scores.

The sharded cluster (:mod:`repro.runtime.cluster`) and the in-process
micro-batcher (:mod:`repro.runtime.serving`) share one failure
vocabulary so clients can branch on *what* went wrong instead of
string-matching ``RuntimeError`` messages:

* :class:`QueueFullError` — admission refused because the backlog (or
  every transport slot) was full within the caller's patience.
* :class:`DeadlineExceededError` — the request's latency budget ran out
  before a result landed; over-deadline work is shed, never executed.
* :class:`CorruptedPayloadError` — a checksummed shared-memory payload
  failed verification (a torn or corrupted transport, caught instead of
  silently returning wrong numbers).
* :class:`RequestTimeoutError` — one attempt stalled past the
  router-side per-request timeout and no retry budget remained.
* :class:`InjectedFaultError` — a deliberate fault from
  :mod:`repro.runtime.faults` (chaos tests assert on this type to
  separate injected failures from real bugs).
* :class:`UnknownModelError` — the request named a model that is not in
  the cluster's registry (a client-side mistake or a race with unload,
  never retried into oblivion: the registry is authoritative).

All subclass ``RuntimeError`` so pre-existing ``except RuntimeError``
call sites keep working (back-compat is load-bearing for
``MicroBatchServer.submit``).

:class:`CircuitBreaker` is the classic closed → open → half-open state
machine: consecutive failures trip it open, an open breaker sheds load
for ``reset_s``, then exactly one half-open probe is admitted — its
outcome decides between closing again and another open period.  The
router holds one breaker per shard and consults it before dispatch, so
a stalled or flapping worker stops receiving traffic *before* piling up
more doomed requests.

:func:`route_score` folds the p50/p95 latency reservoirs already
collected by :class:`~repro.runtime.serving.ServingStats` into the
routing decision: the score estimates the completion time of a request
joining a shard's queue, so a slow-but-idle shard and a fast-but-busy
shard compete on equal terms (plain least-outstanding routing treats a
stalling shard as *attractive* — its queue never drains, as the PR 3
crash tests exploited).
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

__all__ = [
    "QueueFullError",
    "DeadlineExceededError",
    "CorruptedPayloadError",
    "RequestTimeoutError",
    "InjectedFaultError",
    "UnknownModelError",
    "ResilienceConfig",
    "CircuitBreaker",
    "route_score",
]


class QueueFullError(RuntimeError):
    """Admission refused: the queue/slot backlog stayed full past the
    caller's ``timeout`` (shed at the door, nothing was executed)."""


class DeadlineExceededError(RuntimeError):
    """The request's deadline passed before a result could be delivered
    (shed before dispatch where possible, failed in flight otherwise)."""


class CorruptedPayloadError(RuntimeError):
    """A shared-memory payload failed its checksum — the transport
    delivered bytes that are provably not what the sender wrote."""


class RequestTimeoutError(RuntimeError):
    """An attempt stalled past the per-request timeout with no retry
    budget left (the shard is likely wedged; its breaker has been
    notified)."""


class InjectedFaultError(RuntimeError):
    """A deliberate failure injected by :mod:`repro.runtime.faults`."""


class UnknownModelError(RuntimeError):
    """The request named a model the cluster does not serve — either a
    typo'd ``submit(..., model=...)`` or a race with a completed unload."""


@dataclass(frozen=True)
class ResilienceConfig:
    """Knobs for the cluster's retry / breaker / deadline behaviour.

    Attributes:
        max_retries: extra dispatch attempts after the first one when a
            shard crashes (or a payload arrives corrupted) with the
            request in flight.  ``0`` restores the PR 3 behaviour:
            clients see :class:`~repro.runtime.cluster.ShardCrashedError`
            on the first crash.
        hedge_after_ms: age at which a still-unanswered request is
            *hedged* — a duplicate attempt is dispatched to a different
            shard and the first response wins (the loser is discarded,
            its slot reclaimed).  ``None`` disables hedging.
        breaker_threshold: consecutive attempt failures (crashes, stall
            timeouts, corrupted payloads) that trip a shard's breaker
            open.
        breaker_reset_s: how long an open breaker sheds load before
            admitting one half-open probe.
        request_timeout_s: router-side cap on a single attempt's age.
            A request older than this counts a breaker failure against
            its shard and is retried elsewhere (or failed with
            :class:`RequestTimeoutError` when retries are exhausted).
            ``None`` disables stall detection.
    """

    max_retries: int = 2
    hedge_after_ms: float | None = None
    breaker_threshold: int = 3
    breaker_reset_s: float = 1.0
    request_timeout_s: float | None = None

    def __post_init__(self) -> None:
        if self.max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.hedge_after_ms is not None and self.hedge_after_ms <= 0:
            raise ValueError(f"hedge_after_ms must be > 0, got {self.hedge_after_ms}")
        if self.breaker_threshold < 1:
            raise ValueError(f"breaker_threshold must be >= 1, got {self.breaker_threshold}")
        if self.breaker_reset_s <= 0:
            raise ValueError(f"breaker_reset_s must be > 0, got {self.breaker_reset_s}")
        if self.request_timeout_s is not None and self.request_timeout_s <= 0:
            raise ValueError(
                f"request_timeout_s must be > 0, got {self.request_timeout_s}"
            )

    @property
    def max_attempts(self) -> int:
        """Total dispatch attempts a request may consume (first + retries
        + hedges share one budget, so a hedged pair cannot retry forever)."""
        return 1 + self.max_retries


class CircuitBreaker:
    """Closed → open → half-open breaker over consecutive failures.

    Thread-safe; time is injectable for deterministic tests.  The
    half-open state admits exactly one probe at a time: the first
    :meth:`try_acquire` after ``reset_s`` returns True, further calls
    return False until :meth:`record_success` (→ closed) or
    :meth:`record_failure` (→ open again) settles the probe.

    ``on_transition(old_state, new_state)`` (optional) is invoked after
    every state change — outside the breaker lock, so it may safely log
    or emit events — which is how breaker transitions reach the
    cluster's structured event log.
    """

    def __init__(
        self,
        threshold: int = 3,
        reset_s: float = 1.0,
        clock=time.monotonic,
        *,
        on_transition=None,
    ) -> None:
        if threshold < 1:
            raise ValueError(f"threshold must be >= 1, got {threshold}")
        if reset_s <= 0:
            raise ValueError(f"reset_s must be > 0, got {reset_s}")
        self.threshold = threshold
        self.reset_s = reset_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._consecutive_failures = 0
        self._opened_at = 0.0
        self._probe_outstanding = False
        self._on_transition = on_transition
        self._pending_transitions: list[tuple[str, str]] = []
        # observability counters (monotonic, never reset)
        self.trips = 0
        self.failures = 0
        self.successes = 0

    def _set_state_locked(self, new: str) -> None:
        old = self._state
        if old != new:
            self._state = new
            if self._on_transition is not None:
                self._pending_transitions.append((old, new))

    def _drain_locked(self) -> list[tuple[str, str]]:
        pending, self._pending_transitions = self._pending_transitions, []
        return pending

    def _fire(self, pending: list[tuple[str, str]]) -> None:
        """Deliver queued transition notifications (lock released)."""
        for old, new in pending:
            try:
                self._on_transition(old, new)
            except Exception:  # observers never break the breaker
                pass

    @property
    def state(self) -> str:
        """``'closed'`` | ``'open'`` | ``'half_open'`` (open flips to
        half-open lazily once ``reset_s`` has elapsed)."""
        with self._lock:
            state = self._state_locked()
            pending = self._drain_locked()
        self._fire(pending)
        return state

    def _state_locked(self) -> str:
        if self._state == "open" and self._clock() - self._opened_at >= self.reset_s:
            self._set_state_locked("half_open")
            self._probe_outstanding = False
        return self._state

    def try_acquire(self) -> bool:
        """May a request be routed here right now?

        Closed: always.  Open: never.  Half-open: exactly one caller
        gets True (the probe); everyone else waits for its verdict.
        """
        with self._lock:
            state = self._state_locked()
            if state == "closed":
                allowed = True
            elif state == "half_open" and not self._probe_outstanding:
                self._probe_outstanding = True
                allowed = True
            else:
                allowed = False
            pending = self._drain_locked()
        self._fire(pending)
        return allowed

    def record_success(self) -> None:
        """An attempt completed: close the breaker, clear the streak."""
        with self._lock:
            self.successes += 1
            self._consecutive_failures = 0
            self._probe_outstanding = False
            self._set_state_locked("closed")
            pending = self._drain_locked()
        self._fire(pending)

    def record_failure(self) -> None:
        """An attempt failed (crash / stall timeout / corruption): extend
        the streak; trip open at the threshold.  A half-open probe
        failure re-opens immediately."""
        with self._lock:
            self.failures += 1
            self._consecutive_failures += 1
            state = self._state_locked()
            if state == "half_open" or (
                state == "closed" and self._consecutive_failures >= self.threshold
            ):
                self._set_state_locked("open")
                self._opened_at = self._clock()
                self._probe_outstanding = False
                self.trips += 1
            pending = self._drain_locked()
        self._fire(pending)

    def snapshot(self) -> dict:
        """Picklable point-in-time view (for ``cluster_stats``)."""
        with self._lock:
            snap = {
                "state": self._state_locked(),
                "consecutive_failures": self._consecutive_failures,
                "trips": self.trips,
                "failures": self.failures,
                "successes": self.successes,
            }
            pending = self._drain_locked()
        self._fire(pending)
        return snap


def route_score(outstanding: int, p50_ms: float, p95_ms: float) -> float:
    """Estimated completion time (ms) of a request joining this shard.

    Each queued request ahead of us costs roughly the shard's typical
    latency (p50); our own request then pays the tail (p95) — so the
    score is ``outstanding * p50 + p95``.  Shards that have not reported
    latency stats yet score by outstanding count alone (both terms fall
    back to 1.0 ms, preserving plain least-outstanding routing until the
    first health pong arrives).
    """
    p50 = p50_ms if p50_ms and p50_ms > 0 else 1.0
    p95 = p95_ms if p95_ms and p95_ms > 0 else p50
    return outstanding * p50 + p95
