"""End-to-end telemetry: metrics registry, request tracing, event log,
and an HTTP exposition endpoint.

Until this module, the serving stack's only window into its own behavior
was a hand-rolled stats dict (:class:`~repro.runtime.serving.ServingStats`)
and two p50/p95 reservoirs — enough to print a footer, useless for
answering "where did *this* request spend its time" or for scraping the
server from outside.  PatDNN's own tuning loop (§5.5) runs on *measured*
per-layer execution latencies, which is exactly the signal the ROADMAP's
online auto-tuning and autoscaling items need; this module is that
measurement substrate.  Four pieces:

* :class:`MetricsRegistry` — a thread-safe namespace of named
  **counters**, **gauges**, and **histograms** with picklable
  :meth:`~MetricsRegistry.snapshot`\\ s.  Worker-side serving counters
  and the router's resilience counters are registry-backed, so a
  worker's snapshot (shipped in health pongs) and the router's own
  metrics merge under one namespace and render together as Prometheus
  text (:func:`render_prometheus`).
* **Request tracing** — :class:`Tracer` mints a trace id at ``submit()``
  (sampled at a configurable rate so the hot path stays cheap); the id
  travels through the framed codec on both the shm and TCP transports,
  workers collect their own spans into a :class:`SpanCollector` (queue
  wait, kernel execution with per-layer timings from
  :func:`profile_layers`, reply), and the router stitches everything
  into one :class:`Trace` timeline — retries and hedges appear as
  sibling ``dispatch``/``transport`` spans under the same trace.
* :class:`EventLog` — a bounded ring (plus optional JSON-lines file
  sink) of structured lifecycle events: shard spawn/crash/respawn,
  breaker transitions, retries, hedges, injected faults.
* :class:`AdminServer` — a background HTTP server exposing
  ``/metrics`` (Prometheus text format), ``/healthz``, ``/stats``
  (JSON), ``/trace/<id>``, and ``/events``; wired up by
  ``ShardedServer`` when :attr:`TelemetryConfig.metrics_port` is set
  (``python -m repro serve --metrics-port``).

Usage::

    from repro.runtime import ShardedServer, TelemetryConfig

    with ShardedServer(spec, num_shards=4,
                       telemetry=TelemetryConfig(trace_sample_rate=1.0,
                                                 metrics_port=9100)) as server:
        fut = server.submit(x)
        fut.result()
        trace = server.get_trace(fut.trace_id)   # full span timeline
        # ...meanwhile: curl http://127.0.0.1:9100/metrics
"""

from __future__ import annotations

import itertools
import json
import os
import threading
import time
from collections import OrderedDict, deque
from contextlib import contextmanager
from dataclasses import dataclass

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "render_prometheus",
    "SpanCollector",
    "Trace",
    "TraceStore",
    "Tracer",
    "EventLog",
    "AdminServer",
    "TelemetryConfig",
    "Telemetry",
    "profile_layers",
    "active_layer_profile",
    "new_trace_id",
    "DEFAULT_TRACE_SAMPLE_RATE",
]

#: default trace sampling rate: one request in 100 carries a trace —
#: cheap enough for the hot path, frequent enough that a live server
#: always has recent timelines to show
DEFAULT_TRACE_SAMPLE_RATE = 0.01

#: default latency-histogram bucket upper bounds (milliseconds)
DEFAULT_BUCKETS_MS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0, 1000.0)


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
class Counter:
    """Monotonically increasing counter (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._value = 0
        self._lock = lock

    def inc(self, n: int | float = 1) -> None:
        if n < 0:
            raise ValueError(f"counters only go up; got increment {n}")
        with self._lock:
            self._value += n

    @property
    def value(self) -> int | float:
        with self._lock:
            return self._value


class Gauge:
    """Point-in-time value that may go up or down (thread-safe)."""

    __slots__ = ("_value", "_lock")

    def __init__(self, lock: threading.Lock) -> None:
        self._value = 0.0
        self._lock = lock

    def set(self, value: float) -> None:
        with self._lock:
            self._value = value

    def inc(self, n: float = 1.0) -> None:
        with self._lock:
            self._value += n

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative-bucket histogram (Prometheus semantics, thread-safe).

    ``buckets`` are upper bounds; an implicit ``+Inf`` bucket catches the
    rest.  :meth:`observe` is O(buckets) with a linear scan — bucket
    lists are short and observation is off the inner kernel loop.
    """

    __slots__ = ("buckets", "_counts", "_sum", "_count", "_lock")

    def __init__(self, lock: threading.Lock, buckets: tuple[float, ...]) -> None:
        if not buckets or list(buckets) != sorted(buckets):
            raise ValueError(f"buckets must be non-empty and ascending, got {buckets}")
        self.buckets = tuple(float(b) for b in buckets)
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._lock = lock

    def observe(self, value: float) -> None:
        with self._lock:
            for i, bound in enumerate(self.buckets):
                if value <= bound:
                    self._counts[i] += 1
                    break
            else:
                self._counts[-1] += 1
            self._sum += value
            self._count += 1

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    @property
    def sum(self) -> float:
        with self._lock:
            return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(le, cumulative_count)`` pairs including the +Inf bucket."""
        with self._lock:
            out, running = [], 0
            for bound, n in zip(self.buckets, self._counts):
                running += n
                out.append((bound, running))
            out.append((float("inf"), running + self._counts[-1]))
            return out


_KINDS = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricsRegistry:
    """Thread-safe namespace of named counters, gauges, and histograms.

    Metrics are get-or-create: asking twice for the same
    ``(name, labels)`` returns the same object, and re-registering a
    name under a different kind raises.  Labels are plain keyword
    strings (``registry.counter("requests_total", shard="0")``).

    :meth:`snapshot` returns a picklable plain-dict view — workers ship
    their registry snapshots through health pongs so the router can
    merge worker and router metrics under one namespace (and
    :func:`render_prometheus` can expose both with a ``shard`` label).
    """

    def __init__(self) -> None:
        # reentrant: holders (ServingStats) take it around multi-metric
        # updates/reads for whole-snapshot consistency while the individual
        # metric ops re-acquire it internally
        self._lock = threading.RLock()
        # name -> (kind, help); name -> {sorted-label-items -> metric}
        self._meta: dict[str, tuple[str, str]] = {}
        self._series: dict[str, dict[tuple, object]] = {}

    def _get(self, kind: str, name: str, help: str, labels: dict, **kwargs):
        key = tuple(sorted((k, str(v)) for k, v in labels.items()))
        with self._lock:
            meta = self._meta.get(name)
            if meta is not None and meta[0] != kind:
                raise ValueError(
                    f"metric {name!r} is already registered as a {meta[0]}, not a {kind}"
                )
            if meta is None or (not meta[1] and help):
                self._meta[name] = (kind, help)
            series = self._series.setdefault(name, {})
            metric = series.get(key)
            if metric is None:
                metric = _KINDS[kind](self._lock, **kwargs) if kind == "histogram" \
                    else _KINDS[kind](self._lock)
                series[key] = metric
            return metric

    def counter(self, name: str, help: str = "", **labels) -> Counter:
        return self._get("counter", name, help, labels)

    def gauge(self, name: str, help: str = "", **labels) -> Gauge:
        return self._get("gauge", name, help, labels)

    def histogram(
        self, name: str, help: str = "", buckets: tuple[float, ...] = DEFAULT_BUCKETS_MS,
        **labels,
    ) -> Histogram:
        return self._get("histogram", name, help, labels, buckets=buckets)

    def snapshot(self) -> dict:
        """Picklable point-in-time copy of every registered series."""
        with self._lock:
            out: dict = {}
            for name, series in self._series.items():
                kind, help = self._meta[name]
                rows = []
                for key, metric in series.items():
                    row: dict = {"labels": dict(key)}
                    if kind == "histogram":
                        # inline (no metric.cumulative(): we already hold the lock)
                        running, cum = 0, []
                        for bound, n in zip(metric.buckets, metric._counts):
                            running += n
                            cum.append([bound, running])
                        cum.append([float("inf"), running + metric._counts[-1]])
                        row.update(buckets=cum, sum=metric._sum, count=metric._count)
                    else:
                        row["value"] = metric._value
                    rows.append(row)
                out[name] = {"kind": kind, "help": help, "series": rows}
            return out


def _format_value(v) -> str:
    if isinstance(v, float):
        if v != v:  # NaN
            return "NaN"
        if v in (float("inf"), float("-inf")):
            return "+Inf" if v > 0 else "-Inf"
        return repr(v)
    return str(v)


def _escape_label_value(v) -> str:
    """Prometheus text-format label-value escaping (backslash first, or
    the escapes themselves get re-escaped): ``\\``, ``"`` and newline
    are the three characters the spec requires escaped — a crash
    ``fail_reason`` or an ``address`` containing any of them would
    otherwise render /metrics unparsable."""
    return str(v).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _escape_help(text) -> str:
    """HELP-line escaping per the text-format spec: ``\\`` and newline
    (quotes are legal there)."""
    return str(text).replace("\\", "\\\\").replace("\n", "\\n")


def _format_labels(labels: dict) -> str:
    if not labels:
        return ""
    body = ",".join(
        f'{k}="{_escape_label_value(v)}"' for k, v in sorted(labels.items())
    )
    return "{" + body + "}"


def render_prometheus(snapshots: list[tuple[dict, dict]]) -> str:
    """Render registry snapshots as Prometheus text exposition format.

    ``snapshots`` is ``[(registry_snapshot, extra_labels), ...]`` —
    extra labels (e.g. ``{"shard": "0"}``) are stamped onto every series
    of that snapshot, which is how per-worker registries merge into the
    router's ``/metrics`` page under one namespace.  Series from
    different snapshots sharing a metric name are emitted under one
    ``# HELP``/``# TYPE`` header, as the format requires.
    """
    merged: dict[str, dict] = OrderedDict()
    for snap, extra in snapshots:
        for name, metric in snap.items():
            slot = merged.setdefault(name, {"kind": metric["kind"],
                                            "help": metric["help"], "series": []})
            if not slot["help"] and metric["help"]:
                slot["help"] = metric["help"]
            for row in metric["series"]:
                labels = {**row["labels"], **extra}
                slot["series"].append({**row, "labels": labels})
    lines: list[str] = []
    for name, metric in merged.items():
        if metric["help"]:
            lines.append(f"# HELP {name} {_escape_help(metric['help'])}")
        lines.append(f"# TYPE {name} {metric['kind']}")
        for row in metric["series"]:
            labels = row["labels"]
            if metric["kind"] == "histogram":
                for bound, cum in row["buckets"]:
                    le = {**labels, "le": _format_value(float(bound))}
                    lines.append(f"{name}_bucket{_format_labels(le)} {cum}")
                lines.append(f"{name}_sum{_format_labels(labels)} {_format_value(row['sum'])}")
                lines.append(f"{name}_count{_format_labels(labels)} {row['count']}")
            else:
                lines.append(f"{name}{_format_labels(labels)} {_format_value(row['value'])}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Per-layer profiling hook (consumed by runtime.executor)
# ----------------------------------------------------------------------
_LAYER_PROFILE = threading.local()


def active_layer_profile() -> list | None:
    """The current thread's layer-timing sink, or ``None`` (the common,
    zero-cost case).  Executors check this once per ``run()``."""
    return getattr(_LAYER_PROFILE, "sink", None)


@contextmanager
def profile_layers(sink: list):
    """Collect per-layer execution timings from any executor run on this
    thread: each graph node append ``(node_name, op_name, t_start,
    t_end)`` (``time.monotonic`` seconds) to ``sink``."""
    prev = getattr(_LAYER_PROFILE, "sink", None)
    _LAYER_PROFILE.sink = sink
    try:
        yield sink
    finally:
        _LAYER_PROFILE.sink = prev


# ----------------------------------------------------------------------
# Tracing
# ----------------------------------------------------------------------
def new_trace_id() -> int:
    """Random nonzero 64-bit trace id (0 means "not sampled" on the wire)."""
    tid = int.from_bytes(os.urandom(8), "big")
    return tid or 1


class SpanCollector:
    """Worker-side span sink for one traced request.

    Spans are stored relative to the collector's ``t0`` (the moment the
    worker received the request), so the exported list is meaningful on
    another host with a different monotonic clock: the router rebases
    the whole batch at the attempt's send timestamp.
    """

    __slots__ = ("trace_id", "t0", "_spans", "_lock")

    def __init__(self, trace_id: int, t0: float | None = None) -> None:
        self.trace_id = trace_id
        self.t0 = time.monotonic() if t0 is None else t0
        self._spans: list[dict] = []
        self._lock = threading.Lock()

    def add(self, name: str, start_s: float, end_s: float, **attrs) -> None:
        """Record one span from absolute local-monotonic timestamps."""
        span = {
            "name": name,
            "t0_ms": (start_s - self.t0) * 1e3,
            "dur_ms": max(0.0, (end_s - start_s) * 1e3),
        }
        if attrs:
            span.update(attrs)
        with self._lock:
            self._spans.append(span)

    def export(self) -> list[dict]:
        """Picklable copy of the collected spans (relative-ms offsets)."""
        with self._lock:
            return [dict(s) for s in self._spans]


class Trace:
    """Router-side record of one sampled request: a flat span timeline.

    Every span carries ``t0_ms``/``dur_ms`` relative to the trace start
    plus free-form attributes (``shard``, ``attempt``, ``kind``...).
    Retries and hedges are *sibling* spans — same trace, distinct
    ``attempt`` numbers.
    """

    __slots__ = ("trace_id", "t0", "created_at", "spans", "status", "_lock")

    def __init__(self, trace_id: int) -> None:
        self.trace_id = trace_id
        self.t0 = time.monotonic()
        self.created_at = time.time()
        self.spans: list[dict] = []
        self.status: str | None = None  # None = still in flight
        self._lock = threading.Lock()

    def add_span(self, name: str, start_s: float, end_s: float, **attrs) -> None:
        """Record a router-side span from absolute monotonic timestamps."""
        span = {
            "name": name,
            "t0_ms": (start_s - self.t0) * 1e3,
            "dur_ms": max(0.0, (end_s - start_s) * 1e3),
        }
        if attrs:
            span.update(attrs)
        with self._lock:
            self.spans.append(span)

    def add_remote_spans(self, spans: list[dict], base_s: float, **attrs) -> None:
        """Splice in worker-exported spans (relative ms), rebased so the
        worker's ``t0`` lands at ``base_s`` on the router's clock — the
        attempt's send timestamp, the closest router-side anchor for the
        worker's receipt."""
        base_ms = (base_s - self.t0) * 1e3
        rebased = []
        for span in spans:
            row = dict(span)
            row["t0_ms"] = base_ms + row.get("t0_ms", 0.0)
            row.update(attrs)
            rebased.append(row)
        with self._lock:
            self.spans.extend(rebased)

    def finish(self, status: str = "ok") -> None:
        with self._lock:
            if self.status is None:
                self.status = status

    def span_names(self) -> list[str]:
        with self._lock:
            return [s["name"] for s in self.spans]

    def to_dict(self) -> dict:
        """JSON-ready view, spans sorted by timeline offset."""
        with self._lock:
            spans = sorted((dict(s) for s in self.spans), key=lambda s: s["t0_ms"])
            return {
                "trace_id": self.trace_id,
                "created_at": self.created_at,
                "status": self.status,
                "duration_ms": max((s["t0_ms"] + s["dur_ms"] for s in spans), default=0.0),
                "spans": spans,
            }


class TraceStore:
    """Bounded LRU store of recent traces (oldest evicted)."""

    def __init__(self, capacity: int = 256) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._traces: OrderedDict[int, Trace] = OrderedDict()
        self._lock = threading.Lock()

    def start(self, trace_id: int) -> Trace:
        trace = Trace(trace_id)
        with self._lock:
            self._traces[trace_id] = trace
            while len(self._traces) > self.capacity:
                self._traces.popitem(last=False)
        return trace

    def get(self, trace_id: int) -> Trace | None:
        with self._lock:
            return self._traces.get(trace_id)

    def ids(self) -> list[int]:
        """Stored trace ids, oldest first."""
        with self._lock:
            return list(self._traces)


class Tracer:
    """Deterministic request sampler: every ``round(1/rate)``-th call to
    :meth:`maybe_start` mints a trace.  Counter-based (not random) so
    tests and benchmarks see an exact sampling cadence, and the
    unsampled path costs one counter increment."""

    def __init__(self, sample_rate: float = DEFAULT_TRACE_SAMPLE_RATE,
                 store: TraceStore | None = None) -> None:
        if sample_rate < 0 or sample_rate > 1:
            raise ValueError(f"sample_rate must be in [0, 1], got {sample_rate}")
        self.sample_rate = sample_rate
        self.store = store if store is not None else TraceStore()
        self._period = 0 if sample_rate <= 0 else max(1, round(1.0 / sample_rate))
        self._seq = itertools.count()

    def maybe_start(self) -> Trace | None:
        """A new :class:`Trace` for a sampled request, else ``None``."""
        if self._period == 0:
            return None
        if next(self._seq) % self._period:
            return None
        return self.store.start(new_trace_id())


# ----------------------------------------------------------------------
# Structured event log
# ----------------------------------------------------------------------
class EventLog:
    """Bounded ring of structured lifecycle events, with an optional
    JSON-lines file sink.

    Each event is ``{"ts": unix_seconds, "kind": ..., **fields}``.  The
    ring keeps the last ``capacity`` events for ``/events`` and tests;
    the sink (when given) appends every event durably.  Thread-safe;
    emitting never raises (a failed sink write disables the sink rather
    than taking the serving path down with it).
    """

    def __init__(self, capacity: int = 1024, sink_path: str | None = None) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._ring: deque[dict] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._sink = None
        self.sink_path = sink_path
        if sink_path is not None:
            self._sink = open(sink_path, "a", encoding="utf-8")

    def emit(self, kind: str, **fields) -> dict:
        event = {"ts": time.time(), "kind": kind, **fields}
        with self._lock:
            self._ring.append(event)
            if self._sink is not None:
                try:
                    self._sink.write(json.dumps(event, default=str) + "\n")
                    self._sink.flush()
                except OSError:
                    self._sink = None  # sink is gone; keep serving
        return event

    def tail(self, n: int | None = None) -> list[dict]:
        """The most recent ``n`` events (all retained when ``None``)."""
        with self._lock:
            events = list(self._ring)
        return events if n is None else events[-n:]

    def kinds(self) -> list[str]:
        return [e["kind"] for e in self.tail()]

    def close(self) -> None:
        with self._lock:
            if self._sink is not None:
                try:
                    self._sink.close()
                except OSError:
                    pass
                self._sink = None


# ----------------------------------------------------------------------
# HTTP exposition
# ----------------------------------------------------------------------
class AdminServer:
    """Background HTTP server exposing a provider's telemetry.

    The provider (``ShardedServer``) supplies ``metrics_text()``,
    ``cluster_stats``, ``health()``, ``get_trace(id)``, and an event
    log; the handler maps them to::

        GET /metrics      Prometheus text format
        GET /healthz      200 {"status": "ok"} / 503 when nothing serves
        GET /stats        cluster_stats as JSON
        GET /trace/<id>   one trace's span timeline as JSON (404: unknown)
        GET /traces       recent trace ids
        GET /events       the event ring as JSON

    When the provider supports elastic membership (``add_shard`` /
    ``remove_shard``), two mutating routes join/drain shards at runtime::

        POST /shards/add           body {"address": "host:port"}? ->
                                   {"shard": <new index>} (no address:
                                   spawn a local worker)
        POST /shards/<id>/remove   body {"drain": bool?, "timeout": s?} ->
                                   the removal outcome dict (404 unknown
                                   shard; 409 refused, e.g. last shard)

    When the provider serves a model registry (``models`` /
    ``load_model`` / ``unload_model``), three more routes manage it::

        GET  /models                  {"models": [names...]}
        POST /models/load             body {"name": ..., "spec": {...}}
                                      (spec as accepted by
                                      :func:`~repro.runtime.session.spec_from_json`)
        POST /models/<name>/unload    body {"drain": bool?, "timeout": s?}
                                      (404 unknown model; 409 refused —
                                      the last model never unloads)

    Binds ``host:port`` (``port=0`` picks an ephemeral port, reported
    via :attr:`port`) and serves from a daemon thread until
    :meth:`close`.
    """

    def __init__(self, provider, host: str = "127.0.0.1", port: int = 0) -> None:
        from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

        admin = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:  # keep serving stdout clean
                pass

            def _reply(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _json(self, status: int, payload) -> None:
                body = json.dumps(payload, default=str).encode()
                self._reply(status, "application/json", body)

            def do_GET(self) -> None:  # noqa: N802 - http.server API
                try:
                    self._route()
                except BrokenPipeError:  # client went away mid-reply
                    pass
                except Exception as exc:  # never kill the admin thread
                    try:
                        self._json(500, {"error": f"{type(exc).__name__}: {exc}"})
                    except OSError:
                        pass

            def do_POST(self) -> None:  # noqa: N802 - http.server API
                try:
                    self._route_post()
                except BrokenPipeError:  # client went away mid-reply
                    pass
                except Exception as exc:  # never kill the admin thread
                    try:
                        self._json(500, {"error": f"{type(exc).__name__}: {exc}"})
                    except OSError:
                        pass

            def _read_json(self) -> dict | None:
                """Optional JSON-object request body ({} when absent);
                None means the 400 was already sent."""
                length = int(self.headers.get("Content-Length") or 0)
                raw = self.rfile.read(length) if length > 0 else b""
                if not raw:
                    return {}
                try:
                    body = json.loads(raw)
                except ValueError:
                    self._json(400, {"error": "request body must be JSON"})
                    return None
                if not isinstance(body, dict):
                    self._json(400, {"error": "request body must be a JSON object"})
                    return None
                return body

            def _route_post(self) -> None:
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                provider = admin.provider
                body = self._read_json()
                if body is None:
                    return
                parts = path.strip("/").split("/")
                try:
                    if path == "/shards/add":
                        index = provider.add_shard(body.get("address"))
                        self._json(200, {"shard": index,
                                         "address": body.get("address")})
                    elif (len(parts) == 3 and parts[0] == "shards"
                          and parts[2] == "remove" and parts[1].isdigit()):
                        self._json(200, provider.remove_shard(
                            int(parts[1]),
                            drain=bool(body.get("drain", True)),
                            timeout=float(body.get("timeout", 30.0)),
                        ))
                    elif path == "/models/load":
                        from repro.runtime.session import spec_from_json

                        if "name" not in body or "spec" not in body:
                            self._json(400, {"error":
                                             'body must carry "name" and "spec"'})
                            return
                        self._json(200, provider.load_model(
                            body["name"], spec_from_json(body["spec"]),
                            timeout=float(body.get("timeout", 30.0)),
                        ))
                    elif (len(parts) == 3 and parts[0] == "models"
                          and parts[2] == "unload"):
                        self._json(200, provider.unload_model(
                            parts[1],
                            drain=bool(body.get("drain", True)),
                            timeout=float(body.get("timeout", 30.0)),
                        ))
                    else:
                        self._json(404, {"error": f"unknown path {path!r}",
                                         "routes": ["POST /shards/add",
                                                    "POST /shards/<id>/remove",
                                                    "POST /models/load",
                                                    "POST /models/<name>/unload"]})
                except KeyError as exc:  # unknown shard index
                    self._json(404, {"error": str(exc).strip("'\"")})
                except (TypeError, ValueError) as exc:  # bad arguments / refused
                    self._json(409, {"error": str(exc)})
                except RuntimeError as exc:  # e.g. server closed
                    self._json(409, {"error": str(exc)})

            def _route(self) -> None:
                path = self.path.split("?", 1)[0].rstrip("/") or "/"
                provider = admin.provider
                if path == "/metrics":
                    self._reply(200, "text/plain; version=0.0.4; charset=utf-8",
                                provider.metrics_text().encode())
                elif path == "/healthz":
                    ok, detail = provider.health()
                    self._json(200 if ok else 503,
                               {"status": "ok" if ok else "unavailable", **detail})
                elif path == "/stats":
                    self._json(200, provider.cluster_stats)
                elif path == "/traces":
                    self._json(200, {"trace_ids": provider.trace_ids()})
                elif path.startswith("/trace/"):
                    raw = path[len("/trace/"):]
                    try:
                        tid = int(raw)
                    except ValueError:
                        self._json(400, {"error": f"trace id must be an integer, got {raw!r}"})
                        return
                    trace = provider.get_trace(tid)
                    if trace is None:
                        self._json(404, {"error": f"no trace {tid} (sampled traces only)"})
                    else:
                        self._json(200, trace)
                elif path == "/models":
                    self._json(200, {"models": provider.models()})
                elif path == "/events":
                    self._json(200, {"events": provider.events.tail()})
                else:
                    self._json(404, {"error": f"unknown path {path!r}",
                                     "routes": ["/metrics", "/healthz", "/stats",
                                                "/traces", "/trace/<id>", "/events",
                                                "/models"]})

        self.provider = provider
        self._httpd = ThreadingHTTPServer((host, port), Handler)
        self._httpd.daemon_threads = True
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-metrics-http", daemon=True
        )
        self._thread.start()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        self._thread.join(timeout=5.0)


# ----------------------------------------------------------------------
# Configuration + hub
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class TelemetryConfig:
    """Knobs for the serving stack's telemetry.

    Attributes:
        trace_sample_rate: fraction of requests that carry a trace
            (deterministic 1-in-``round(1/rate)`` cadence; 0 disables
            tracing entirely, 1.0 traces everything — tests).
        trace_capacity: recent traces retained for ``/trace/<id>``.
        event_capacity: lifecycle events retained in the ring.
        event_log_path: optional JSON-lines file every event is also
            appended to (durable log; the ring is the query surface).
        metrics_port: when set, an :class:`AdminServer` is started on
            ``metrics_host:metrics_port`` (0 = ephemeral port, exposed
            as ``server.metrics_port``); ``None`` (default) serves no
            HTTP.
        metrics_host: bind address for the admin server.
    """

    trace_sample_rate: float = DEFAULT_TRACE_SAMPLE_RATE
    trace_capacity: int = 256
    event_capacity: int = 1024
    event_log_path: str | None = None
    metrics_port: int | None = None
    metrics_host: str = "127.0.0.1"

    def __post_init__(self) -> None:
        if not 0 <= self.trace_sample_rate <= 1:
            raise ValueError(
                f"trace_sample_rate must be in [0, 1], got {self.trace_sample_rate}"
            )
        if self.trace_capacity < 1 or self.event_capacity < 1:
            raise ValueError("trace_capacity and event_capacity must be >= 1")


class Telemetry:
    """One server's telemetry hub: registry + tracer + trace store +
    event log, built from a :class:`TelemetryConfig`."""

    def __init__(self, config: TelemetryConfig | None = None) -> None:
        self.config = config if config is not None else TelemetryConfig()
        self.registry = MetricsRegistry()
        self.traces = TraceStore(self.config.trace_capacity)
        self.tracer = Tracer(self.config.trace_sample_rate, self.traces)
        self.events = EventLog(self.config.event_capacity, self.config.event_log_path)

    def close(self) -> None:
        self.events.close()
