"""Functional runtime: execute graph IR and compiled (FKW) models.

``ReferenceExecutor`` interprets graph IR with plain numpy kernels —
the semantic baseline every transformation is verified against.
``CompiledExecutor`` swaps pattern-pruned conv nodes for the compiler's
generated FKW kernels, making "the compiled model computes the same
function" a testable property end to end.
"""

from repro.runtime.ops import eval_node
from repro.runtime.executor import ReferenceExecutor, CompiledExecutor
from repro.runtime.session import InferenceSession

__all__ = ["eval_node", "ReferenceExecutor", "CompiledExecutor", "InferenceSession"]
