"""Functional runtime: execute graph IR and compiled (FKW) models.

``ReferenceExecutor`` interprets graph IR with plain numpy kernels —
the semantic baseline every transformation is verified against.
``CompiledExecutor`` swaps pattern-pruned conv nodes for the compiler's
generated FKW kernels, making "the compiled model computes the same
function" a testable property end to end.

The compiled path is engineered for batch-heavy serving:

* **Batched kernels** — generated closures consume whole ``(N, C, H, W)``
  batches in one call (no per-sample Python loop) with bias + activation
  fused into the closure's epilogue.
* **Kernel cache** — closures are memoised by FKW signature + schedule
  knobs (:class:`repro.compiler.codegen.KernelCache`), so repeated
  identical layers compile once.
* **Buffer arena** — padded-input and output scratch buffers are
  recycled across ``run()`` calls (:class:`repro.runtime.arena.BufferArena`),
  and intermediates are retired the moment liveness says they are dead
  (:func:`repro.graph.passes.memory_plan.compute_liveness`).

``InferenceSession`` wires model export, graph optimization, and the
executor choice into one user-facing entry point, and the stack is
thread-safe end to end: many client threads may share one session, and
:class:`repro.runtime.serving.MicroBatchServer` (or
``InferenceSession.run_async``) coalesces their concurrent single-sample
requests into efficient micro-batches.

Serving is **resilient** end to end (:mod:`repro.runtime.resilience`):
requests carry deadlines through every tier, over-budget or over-capacity
work is shed with typed errors (:class:`DeadlineExceededError`,
:class:`QueueFullError`), shard crashes are retried transparently within
a bounded budget (:class:`ResilienceConfig`), per-shard circuit breakers
route around wedged workers, shared-memory payloads are
checksum-verified (:class:`CorruptedPayloadError`), and a seeded
:class:`FaultPlan` (:mod:`repro.runtime.faults`) makes all of it
reproducibly testable.

And it is **observable** (:mod:`repro.runtime.telemetry`): serving
counters live in a :class:`MetricsRegistry` shared between the
micro-batcher and the cluster router, sampled requests carry a trace id
across the transport so per-request span timelines (admission → queue →
dispatch → transport → worker queue → kernel execution, down to
per-layer timings) can be inspected end to end, lifecycle events land
in a structured :class:`EventLog`, and ``TelemetryConfig(metrics_port=...)``
exposes all of it over HTTP (``/metrics`` Prometheus text, ``/healthz``,
``/stats``, ``/trace/<id>``, ``/events``).

Cluster membership is **elastic** (:mod:`repro.runtime.membership`):
``ShardedServer.add_shard`` / ``remove_shard`` grow and drain-shrink a
live cluster (local spawns or remote ``host:port`` workers), the admin
server accepts ``POST /shards/add`` / ``POST /shards/<id>/remove``, and
:class:`ShardFileWatcher` reconciles membership against a watched
shard-list file.

Serving is **multi-tenant**: a cluster hosts a ``{name: SessionSpec}``
model registry — every shard builds one session per model over a shared
kernel cache and arena, each behind its own micro-batch queue — and
clients pick a model per request (``submit(x, model=...)``; unknown
names raise :class:`UnknownModelError`).  The registry is elastic too:
``load_model`` hot-loads into every live shard, ``unload_model`` drains
and removes (the last model is refused), and the admin server exposes
``GET /models`` / ``POST /models/load`` / ``POST /models/<name>/unload``.
"""

from repro.runtime.ops import eval_node
from repro.runtime.arena import BufferArena
from repro.runtime.executor import ReferenceExecutor, CompiledExecutor
from repro.runtime.resilience import (
    CircuitBreaker,
    CorruptedPayloadError,
    DeadlineExceededError,
    InjectedFaultError,
    QueueFullError,
    RequestTimeoutError,
    ResilienceConfig,
    UnknownModelError,
)
from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.metrics import LatencyReservoir
from repro.runtime.serving import MicroBatchServer, ServingConfig, ServingStats
from repro.runtime.session import (
    DEFAULT_MODEL,
    InferenceSession,
    SessionSpec,
    spec_from_json,
    spec_to_json,
)
from repro.runtime.shm_ring import ShmSlotRing
from repro.runtime.telemetry import (
    AdminServer,
    EventLog,
    MetricsRegistry,
    SpanCollector,
    Telemetry,
    TelemetryConfig,
    Trace,
    TraceStore,
    Tracer,
    profile_layers,
    render_prometheus,
)
from repro.runtime.transport import (
    CreditGate,
    ShardEndpoint,
    ShardLauncher,
    TransportClosedError,
    WorkerTransport,
)
from repro.runtime.transport_shm import ShmShardLauncher
from repro.runtime.transport_tcp import (
    LocalTcpLauncher,
    RemoteTcpLauncher,
    parse_hostport,
    worker_serve,
)
from repro.runtime.cluster import ShardedServer, ShardCrashedError
from repro.runtime.membership import ShardFileWatcher, parse_shard_file

__all__ = [
    "eval_node",
    "BufferArena",
    "ReferenceExecutor",
    "CompiledExecutor",
    "InferenceSession",
    "SessionSpec",
    "DEFAULT_MODEL",
    "spec_from_json",
    "spec_to_json",
    "MicroBatchServer",
    "ServingConfig",
    "ServingStats",
    "ShmSlotRing",
    "ShardedServer",
    "ShardCrashedError",
    "ShardFileWatcher",
    "parse_shard_file",
    "ResilienceConfig",
    "CircuitBreaker",
    "QueueFullError",
    "DeadlineExceededError",
    "CorruptedPayloadError",
    "RequestTimeoutError",
    "InjectedFaultError",
    "UnknownModelError",
    "FaultPlan",
    "FaultInjector",
    "LatencyReservoir",
    "MetricsRegistry",
    "Telemetry",
    "TelemetryConfig",
    "Tracer",
    "Trace",
    "TraceStore",
    "SpanCollector",
    "EventLog",
    "AdminServer",
    "profile_layers",
    "render_prometheus",
    "TransportClosedError",
    "ShardEndpoint",
    "WorkerTransport",
    "ShardLauncher",
    "CreditGate",
    "ShmShardLauncher",
    "LocalTcpLauncher",
    "RemoteTcpLauncher",
    "parse_hostport",
    "worker_serve",
]
