"""Shape-keyed scratch-buffer arena for the compiled runtime.

The batched FKW kernels allocate two kinds of scratch per call: a padded
copy of the layer input and a zeroed accumulator for the layer output.
Re-allocating (and re-zeroing) both on every ``run()`` is pure overhead
under steady traffic, so :class:`BufferArena` keeps them alive across
calls:

* **Padded-input scratch** is persistent per ``(input shape, padding)``
  key.  The zero border is written once at allocation; later calls only
  copy the interior (the border is never written with anything else, so
  it stays zero) — the ``np.pad`` allocate-and-copy disappears from the
  steady state.
* **General buffers** (kernel outputs) cycle through a shape-keyed free
  pool: the executor acquires them per node and releases them back when
  liveness says the value is dead, so two same-shaped conv layers in a
  network share one physical accumulator.

Safety rules the executor relies on:

* ``release`` only accepts buffers the arena itself allocated (tracked
  by identity); foreign arrays — user inputs, reference-kernel outputs —
  are silently ignored, so releasing indiscriminately is safe.
* ``sanitize_output`` copies a result that aliases arena memory before
  it escapes to the caller, so a later ``run()`` can never overwrite a
  value the user still holds.
"""

from __future__ import annotations

import numpy as np


class BufferArena:
    """Reusable scratch buffers, keyed by shape (and padding for pads).

    Not thread-safe: one arena per executor, one executor per thread.
    """

    def __init__(self) -> None:
        self._free: dict[tuple, list[np.ndarray]] = {}
        # id -> buffer for every array this arena ever allocated; holding
        # the reference keeps ids stable (no reuse-after-gc confusion).
        self._owned: dict[int, np.ndarray] = {}
        self._pad: dict[tuple, np.ndarray] = {}
        self.allocations = 0
        self.reuses = 0
        self.pad_allocations = 0
        self.pad_reuses = 0

    # ------------------------------------------------------------------
    def acquire(self, shape: tuple[int, ...], dtype=np.float32, zero: bool = False) -> np.ndarray:
        """Hand out a buffer of ``shape``, recycling a free one if possible."""
        key = (tuple(shape), np.dtype(dtype).str)
        pool = self._free.get(key)
        if pool:
            buf = pool.pop()
            self.reuses += 1
            if zero:
                buf.fill(0)
            return buf
        self.allocations += 1
        buf = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
        self._owned[id(buf)] = buf
        return buf

    def release(self, arr: np.ndarray | None) -> None:
        """Return an arena-owned buffer to the free pool (no-op otherwise)."""
        if arr is None or id(arr) not in self._owned:
            return
        pool = self._free.setdefault((arr.shape, arr.dtype.str), [])
        if any(b is arr for b in pool):  # guard against double release
            return
        pool.append(arr)

    def owns(self, arr: np.ndarray) -> bool:
        return id(arr) in self._owned

    # ------------------------------------------------------------------
    def padded(self, x: np.ndarray, padding: int) -> np.ndarray:
        """Write ``x`` into a persistent zero-bordered scratch buffer.

        Returns ``x`` itself when ``padding == 0`` (no copy at all).  The
        returned buffer is only valid until the next ``padded`` call with
        the same key — callers must consume it before then (the generated
        kernels do: the pad scratch is dead once the conv returns).
        """
        if padding == 0:
            return x
        n, c, h, w = x.shape
        key = (n, c, h, w, padding)
        buf = self._pad.get(key)
        if buf is None:
            buf = np.zeros((n, c, h + 2 * padding, w + 2 * padding), np.float32)
            self._pad[key] = buf
            self.pad_allocations += 1
        else:
            self.pad_reuses += 1
        buf[:, :, padding : padding + h, padding : padding + w] = x
        return buf

    def reclaim(self) -> None:
        """Return every in-flight owned buffer to the free pool.

        End-of-run backstop: a buffer whose value died while a view of it
        was still live (e.g. FLATTEN aliasing a conv output) is skipped
        by per-step retirement and would otherwise stay out of the pool
        forever.  By the end of ``run()`` every in-flight buffer is dead
        — the result has been detached via :meth:`sanitize_output` — so
        pooling them all keeps the arena's footprint at the peak across
        the distinct shapes seen (one scratch set per shape key; see
        ROADMAP for eviction under many-shape traffic) instead of
        growing with call count.
        """
        pooled = {id(b) for pool in self._free.values() for b in pool}
        for buf in self._owned.values():
            if id(buf) not in pooled:
                self._free.setdefault((buf.shape, buf.dtype.str), []).append(buf)

    # ------------------------------------------------------------------
    def sanitize_output(self, arr: np.ndarray) -> np.ndarray:
        """Copy ``arr`` if it aliases arena memory, else return it as-is."""
        for buf in self._owned.values():
            if arr is buf or np.may_share_memory(arr, buf):
                return arr.copy()
        return arr

    def clear(self) -> None:
        """Drop every buffer and reset counters (frees the memory)."""
        self._free.clear()
        self._owned.clear()
        self._pad.clear()
        self.allocations = self.reuses = 0
        self.pad_allocations = self.pad_reuses = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BufferArena(owned={len(self._owned)}, pads={len(self._pad)}, "
            f"alloc={self.allocations}, reused={self.reuses})"
        )
