"""Shape-keyed scratch-buffer arena for the compiled runtime.

The batched FKW kernels allocate two kinds of scratch per call: a padded
copy of the layer input and a zeroed accumulator for the layer output.
Re-allocating (and re-zeroing) both on every ``run()`` is pure overhead
under steady traffic, so :class:`BufferArena` keeps them alive across
calls:

* **Padded-input scratch** is persistent per ``(thread, input shape,
  padding, dtype)`` key.  The zero border is written once at allocation;
  later calls only copy the interior (the border is never written with
  anything else, so it stays zero) — the ``np.pad`` allocate-and-copy
  disappears from the steady state.
* **General buffers** (kernel outputs) cycle through a shape-keyed free
  pool: the executor acquires them per node and releases them back when
  liveness says the value is dead, so two same-shaped conv layers in a
  network share one physical accumulator.

Thread safety
-------------
The arena is safe to share across threads (one shared executor serving
many client threads):

* every bookkeeping structure is guarded by an internal ``RLock``;
* buffers handed out by :meth:`acquire` are tracked as *in flight* per
  calling thread, so :meth:`reclaim` — the end-of-run backstop — only
  pools the calling thread's buffers and can never steal scratch out
  from under a run still executing on another thread;
* padded-input scratch is keyed by thread id, so two threads convolving
  same-shaped inputs never write into one pad buffer.

Growth cap
----------
Pass ``max_bytes`` to bound retained scratch under many-shape traffic:
when the total footprint of arena-owned buffers exceeds the cap, free
(pooled) buffers and pad scratch are evicted least-recently-used first.
Buffers currently in flight are never evicted — the cap bounds what the
arena *retains* between runs, not the live working set of a run in
progress.  Evicting a pad buffer only drops the arena's reference; a
kernel still holding it locally is unaffected.

Safety rules the executor relies on:

* ``release`` only accepts buffers the arena itself allocated (tracked
  by identity); foreign arrays — user inputs, reference-kernel outputs —
  are silently ignored, so releasing indiscriminately is safe.
* ``sanitize_output`` copies a result that aliases arena memory before
  it escapes to the caller, so a later ``run()`` can never overwrite a
  value the user still holds.
"""

from __future__ import annotations

import threading

import numpy as np


class BufferArena:
    """Reusable scratch buffers, keyed by shape/dtype (and padding for pads).

    Thread-safe: one arena may back one executor shared by many threads.

    Args:
        max_bytes: optional cap on retained scratch; free buffers and pad
            scratch are LRU-evicted when the total footprint exceeds it.
    """

    def __init__(self, max_bytes: int | None = None) -> None:
        if max_bytes is not None and max_bytes < 0:
            raise ValueError(f"max_bytes must be >= 0, got {max_bytes}")
        self.max_bytes = max_bytes
        self._lock = threading.RLock()
        self._free: dict[tuple, list[np.ndarray]] = {}
        # id -> buffer for every array this arena ever allocated; holding
        # the reference keeps ids stable (no reuse-after-gc confusion).
        self._owned: dict[int, np.ndarray] = {}
        # thread ident -> {id: buffer} handed out and not yet released,
        # plus the owning thread object so reclaim can tell dead owners
        # from live ones (foreign, non-threading-module threads report
        # alive and are simply never auto-reaped).
        self._in_flight: dict[int, dict[int, np.ndarray]] = {}
        self._flight_owner: dict[int, threading.Thread] = {}
        self._pad: dict[tuple, np.ndarray] = {}
        # thread ident -> owning thread, for pad scratch: reclaim drops
        # the pad buffers of exited threads (thread-per-request traffic
        # must not leak one pad set per dead thread).
        self._pad_owner: dict[int, threading.Thread] = {}
        # running total of owned + pad bytes; kept incrementally so the
        # cap check never re-scans every buffer under the lock.
        self._footprint = 0
        # LRU clocks: id -> tick for pooled buffers, pad key -> tick.
        self._tick = 0
        self._free_tick: dict[int, int] = {}
        self._pad_tick: dict[tuple, int] = {}
        self.allocations = 0
        self.reuses = 0
        self.pad_allocations = 0
        self.pad_reuses = 0
        self.evictions = 0

    # ------------------------------------------------------------------
    @property
    def footprint_bytes(self) -> int:
        """Total bytes of every buffer the arena currently holds."""
        with self._lock:
            return self._footprint

    def _next_tick(self) -> int:
        self._tick += 1
        return self._tick

    def _enforce_cap(self) -> None:
        """LRU-evict free buffers / pad scratch until under ``max_bytes``.

        Must be called with the lock held.  In-flight buffers are never
        evicted, so a run's live working set can transiently exceed the
        cap; by end of run (``reclaim``) everything is evictable again.
        """
        if self.max_bytes is None or self._footprint <= self.max_bytes:
            return
        # Candidates: (tick, kind, key/buffer) over pooled + pad entries.
        candidates: list[tuple[int, str, object]] = []
        for key, pool in self._free.items():
            for buf in pool:
                candidates.append((self._free_tick.get(id(buf), 0), "free", (key, buf)))
        for key in self._pad:
            candidates.append((self._pad_tick.get(key, 0), "pad", key))
        candidates.sort(key=lambda t: t[0])
        for _, kind, ref in candidates:
            if self._footprint <= self.max_bytes:
                break
            if kind == "free":
                key, buf = ref  # type: ignore[misc]
                pool = self._free.get(key)
                if pool is None:
                    continue
                pool[:] = [b for b in pool if b is not buf]
                if not pool:
                    del self._free[key]
                self._owned.pop(id(buf), None)
                self._free_tick.pop(id(buf), None)
            else:
                buf = self._pad.pop(ref)  # type: ignore[arg-type]
                self._pad_tick.pop(ref, None)
            self._footprint -= buf.nbytes
            self.evictions += 1

    # ------------------------------------------------------------------
    def acquire(self, shape: tuple[int, ...], dtype=np.float32, zero: bool = False) -> np.ndarray:
        """Hand out a buffer of ``shape``, recycling a free one if possible."""
        key = (tuple(shape), np.dtype(dtype).str)
        ident = threading.get_ident()
        buf = None
        with self._lock:
            pool = self._free.get(key)
            if pool:
                buf = pool.pop()
                self._free_tick.pop(id(buf), None)
                self.reuses += 1
                self._in_flight.setdefault(ident, {})[id(buf)] = buf
                self._flight_owner[ident] = threading.current_thread()
        if buf is not None:
            if zero:
                # re-zero outside the lock: the buffer is exclusively ours
                buf.fill(0)
            return buf
        # allocate (and zero-fill) outside the lock — other threads'
        # acquire/release must not stall behind a large cold allocation
        buf = np.zeros(shape, dtype) if zero else np.empty(shape, dtype)
        with self._lock:
            self.allocations += 1
            self._owned[id(buf)] = buf
            self._footprint += buf.nbytes
            self._in_flight.setdefault(ident, {})[id(buf)] = buf
            self._flight_owner[ident] = threading.current_thread()
            self._enforce_cap()
        return buf

    def release(self, arr: np.ndarray | None) -> None:
        """Return an arena-owned buffer to the free pool (no-op otherwise)."""
        if arr is None:
            return
        with self._lock:
            if id(arr) not in self._owned:
                return
            pool = self._free.setdefault((arr.shape, arr.dtype.str), [])
            if any(b is arr for b in pool):  # guard against double release
                return
            pool.append(arr)
            self._free_tick[id(arr)] = self._next_tick()
            for flight in self._in_flight.values():
                if flight.pop(id(arr), None) is not None:
                    break
            self._enforce_cap()

    def owns(self, arr: np.ndarray) -> bool:
        with self._lock:
            return id(arr) in self._owned

    # ------------------------------------------------------------------
    def padded(self, x: np.ndarray, padding: int) -> np.ndarray:
        """Write ``x`` into a persistent zero-bordered scratch buffer.

        Returns ``x`` itself when ``padding == 0`` (no copy at all).  The
        scratch is keyed by calling thread, input shape, padding, *and
        dtype* — the buffer is allocated with ``x.dtype``, so non-float32
        inputs are never silently downcast and two dtypes never collide
        on one buffer.  The returned buffer is only valid until the next
        ``padded`` call with the same key from the same thread — callers
        must consume it before then (the generated kernels do: the pad
        scratch is dead once the conv returns).
        """
        if padding == 0:
            return x
        n, c, h, w = x.shape
        ident = threading.get_ident()
        key = (ident, n, c, h, w, padding, x.dtype.str)
        with self._lock:
            buf = self._pad.get(key)
            if buf is not None:
                self.pad_reuses += 1
                self._pad_tick[key] = self._next_tick()
        if buf is None:
            # allocate outside the lock; the key is thread-private, so no
            # other thread can race this insert
            buf = np.zeros((n, c, h + 2 * padding, w + 2 * padding), x.dtype)
            with self._lock:
                self._pad[key] = buf
                self.pad_allocations += 1
                self._pad_tick[key] = self._next_tick()
                self._pad_owner[ident] = threading.current_thread()
                self._footprint += buf.nbytes
                self._enforce_cap()
        buf[:, :, padding : padding + h, padding : padding + w] = x
        return buf

    def reclaim(self) -> None:
        """Return the calling thread's in-flight buffers to the free pool.

        End-of-run backstop: a buffer whose value died while a view of it
        was still live (e.g. FLATTEN aliasing a conv output) is skipped
        by per-step retirement and would otherwise stay out of the pool
        forever.  By the end of ``run()`` every buffer this thread holds
        is dead — the result has been detached via
        :meth:`sanitize_output` — so pooling them keeps the arena's
        footprint at the peak across the distinct shapes seen instead of
        growing with call count.  Only the *calling thread's* buffers are
        pooled, plus those of owner threads known to have exited
        (``Thread.is_alive()`` false) — a run still executing on another
        thread, including a foreign non-``threading``-module thread
        (which reports alive and is simply never auto-reaped), keeps its
        scratch.
        """
        with self._lock:
            idents = [
                ident
                for ident, owner in self._flight_owner.items()
                if ident == threading.get_ident() or not owner.is_alive()
            ]
            for ident in idents:
                self._flight_owner.pop(ident, None)
                for buf in self._in_flight.pop(ident, {}).values():
                    pool = self._free.setdefault((buf.shape, buf.dtype.str), [])
                    if not any(b is buf for b in pool):
                        pool.append(buf)
                        self._free_tick[id(buf)] = self._next_tick()
            # drop pad scratch of exited threads: it is keyed by thread
            # ident and would otherwise leak one pad set per dead thread
            # under thread-per-request traffic (the calling thread's own
            # pads stay — keeping them warm is the point of pad scratch)
            dead_pads = [
                ident for ident, owner in self._pad_owner.items() if not owner.is_alive()
            ]
            for ident in dead_pads:
                self._pad_owner.pop(ident, None)
                for key in [k for k in self._pad if k[0] == ident]:
                    self._footprint -= self._pad.pop(key).nbytes
                    self._pad_tick.pop(key, None)
            self._enforce_cap()

    # ------------------------------------------------------------------
    def sanitize_output(self, arr: np.ndarray) -> np.ndarray:
        """Copy ``arr`` if it aliases arena memory, else return it as-is."""
        with self._lock:
            buffers = list(self._owned.values())
        for buf in buffers:
            if arr is buf or np.may_share_memory(arr, buf):
                return arr.copy()
        return arr

    def clear(self) -> None:
        """Drop every buffer and reset counters (frees the memory)."""
        with self._lock:
            self._free.clear()
            self._owned.clear()
            self._in_flight.clear()
            self._flight_owner.clear()
            self._pad.clear()
            self._pad_owner.clear()
            self._free_tick.clear()
            self._pad_tick.clear()
            self._footprint = 0
            self.allocations = self.reuses = 0
            self.pad_allocations = self.pad_reuses = 0
            self.evictions = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"BufferArena(owned={len(self._owned)}, pads={len(self._pad)}, "
            f"alloc={self.allocations}, reused={self.reuses}, "
            f"evicted={self.evictions}, cap={self.max_bytes})"
        )
