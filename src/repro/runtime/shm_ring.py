"""Fixed-slot shared-memory rings: tensor transport between processes.

Moving request/response tensors between a router process and its shard
workers through ``multiprocessing.Pipe`` would pickle every array —
a serialize/copy/deserialize round trip per request.  :class:`ShmSlotRing`
removes the pickling: one ``multiprocessing.shared_memory`` segment is
carved into ``slots`` fixed-size slots, array bytes are copied straight
into a slot on one side and straight out on the other, and only a tiny
control tuple (request id, slot index, shape, dtype) crosses the pipe.

Slot lifecycle is deliberately single-owner: the *creating* side (the
router) acquires and releases slots; the attached side (a worker) only
reads and writes slot contents.  A request's slot does double duty — the
router writes the input into it, the worker overwrites it with the
output, and the router frees it after copying the result out — so no
free-list coordination ever crosses the process boundary, and the slot
count is a natural bound on per-worker outstanding requests
(backpressure, exactly like ``ServingConfig.queue_depth`` in-process).

The ring is transport only: it never interprets the bytes.  Shape and
dtype travel in the control message (:meth:`write` returns the header to
send), so heterogeneous shapes and dtypes share one ring as long as each
payload fits ``slot_bytes``.

Payloads are **checksummed**: :meth:`write` returns a CRC32 of the bytes
it copied in, the checksum travels in the control message next to shape
and dtype, and :meth:`read` verifies it — a torn, clobbered, or
(fault-injected) corrupted slot raises
:class:`~repro.runtime.resilience.CorruptedPayloadError` instead of
silently handing wrong numbers to a client.  The router treats a failed
checksum like a failed attempt (breaker failure + retry), so transport
corruption degrades into latency, not wrong answers.
"""

from __future__ import annotations

import threading
import zlib
from collections.abc import Callable
from multiprocessing import shared_memory

import numpy as np

from repro.runtime.resilience import CorruptedPayloadError

__all__ = ["ShmSlotRing"]

_ALIGN = 64  # slot alignment: keeps every slot cache-line aligned


class ShmSlotRing:
    """``slots`` fixed-size byte slots in one shared-memory segment.

    Construct through :meth:`create` (owner side: allocates the segment
    and manages the free list) or :meth:`attach` (worker side: maps an
    existing segment by name; read/write only).
    """

    def __init__(self, shm: shared_memory.SharedMemory, slots: int, slot_bytes: int, owner: bool) -> None:
        self._shm = shm
        self.slots = slots
        self.slot_bytes = slot_bytes
        self._owner = owner
        self._closed = False
        #: optional fault-injection hook (:mod:`repro.runtime.faults`):
        #: when set and it returns True, :meth:`acquire` reports the ring
        #: as full for that call.  ``None`` (the default) is a no-op.
        self.fault_hook: Callable[[], bool] | None = None
        if owner:
            # LIFO free list: the most recently released slot is hottest
            # in cache.  Condition guards the list and wakes blocked
            # acquirers on release.
            self._free = list(reversed(range(slots)))
            self._available = threading.Condition(threading.Lock())

    # ------------------------------------------------------------------
    @classmethod
    def create(cls, slots: int, slot_bytes: int) -> "ShmSlotRing":
        """Allocate a new segment with ``slots`` slots of ``slot_bytes``."""
        if slots < 1:
            raise ValueError(f"slots must be >= 1, got {slots}")
        if slot_bytes < 1:
            raise ValueError(f"slot_bytes must be >= 1, got {slot_bytes}")
        slot_bytes = -(-slot_bytes // _ALIGN) * _ALIGN
        shm = shared_memory.SharedMemory(create=True, size=slots * slot_bytes)
        return cls(shm, slots, slot_bytes, owner=True)

    @classmethod
    def attach(cls, name: str, slots: int, slot_bytes: int) -> "ShmSlotRing":
        """Map an existing segment created by :meth:`create`.

        ``slot_bytes`` must be the *aligned* value read back from the
        creating ring (``ring.slot_bytes``), not the requested one.
        """
        shm = shared_memory.SharedMemory(name=name)
        if shm.size < slots * slot_bytes:
            size = shm.size
            shm.close()
            raise ValueError(
                f"segment {name!r} holds {size} bytes but {slots} x {slot_bytes} "
                f"= {slots * slot_bytes} were expected"
            )
        return cls(shm, slots, slot_bytes, owner=False)

    @property
    def name(self) -> str:
        """OS name of the segment (pass to :meth:`attach` in the worker)."""
        return self._shm.name

    # ------------------------------------------------------------------
    # Slot lifecycle (owner side only)
    # ------------------------------------------------------------------
    def acquire(self, timeout: float | None = None) -> int | None:
        """Take a free slot index; ``None`` on timeout (all slots busy)."""
        if not self._owner:
            raise RuntimeError("only the creating side manages slot lifecycle")
        if self.fault_hook is not None and self.fault_hook():
            return None  # injected slot exhaustion: behave as if full
        with self._available:
            if not self._available.wait_for(lambda: bool(self._free) or self._closed, timeout):
                return None
            if self._closed:
                raise RuntimeError("ring is closed")
            return self._free.pop()

    def release(self, slot: int) -> None:
        """Return a slot to the free list (wakes one blocked acquirer)."""
        if not self._owner:
            raise RuntimeError("only the creating side manages slot lifecycle")
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range 0..{self.slots - 1}")
        with self._available:
            if slot in self._free:
                raise ValueError(f"slot {slot} is already free (double release)")
            self._free.append(slot)
            self._available.notify()

    @property
    def free_slots(self) -> int:
        """Number of currently free slots (owner side)."""
        with self._available:
            return len(self._free)

    # ------------------------------------------------------------------
    # Payload transfer (both sides)
    # ------------------------------------------------------------------
    def write(self, slot: int, arr: np.ndarray) -> tuple[tuple[int, ...], str, int]:
        """Copy ``arr``'s bytes into ``slot``; returns the
        ``(shape, dtype, crc32)`` header the receiving side needs to
        :meth:`read` (and verify) it back."""
        arr = np.ascontiguousarray(arr)
        if arr.nbytes > self.slot_bytes:
            raise ValueError(
                f"array of {arr.nbytes} bytes (shape {arr.shape}, {arr.dtype}) "
                f"exceeds the {self.slot_bytes}-byte slot capacity"
            )
        view = np.ndarray(arr.shape, arr.dtype, buffer=self._shm.buf, offset=slot * self.slot_bytes)
        view[...] = arr
        del view  # drop the buffer export before anyone closes the segment
        return arr.shape, arr.dtype.str, zlib.crc32(arr.data)

    def read(
        self, slot: int, shape: tuple[int, ...], dtype: str, crc: int | None = None
    ) -> np.ndarray:
        """Copy a payload out of ``slot`` (the copy owns its memory, so
        the slot may be reused or the segment closed afterwards).

        When ``crc`` is given, the copied bytes are verified against it;
        a mismatch raises :class:`CorruptedPayloadError` — the bytes in
        the slot are provably not what :meth:`write` put there.
        """
        dt = np.dtype(dtype)
        nbytes = int(np.prod(shape, dtype=np.int64)) * dt.itemsize
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"header describes {nbytes} bytes (shape {tuple(shape)}, {dt}) "
                f"but slots hold only {self.slot_bytes}"
            )
        view = np.ndarray(tuple(shape), dt, buffer=self._shm.buf, offset=slot * self.slot_bytes)
        out = view.copy()
        del view
        if crc is not None:
            got = zlib.crc32(np.ascontiguousarray(out).data)
            if got != crc:
                raise CorruptedPayloadError(
                    f"slot {slot} payload failed checksum (crc {got:#010x} != "
                    f"expected {crc:#010x}, shape {tuple(shape)}, {dt})"
                )
        return out

    def corrupt(self, slot: int, nbytes: int = 1) -> None:
        """Flip the first ``nbytes`` bytes of ``slot`` in place.

        Fault-injection helper (:mod:`repro.runtime.faults` ``corrupt``
        kind): called *after* :meth:`write` computed the checksum, so the
        reader's verification is guaranteed to fail — exercising the
        corruption-detection path end to end.
        """
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range 0..{self.slots - 1}")
        base = slot * self.slot_bytes
        for i in range(max(1, nbytes)):
            self._shm.buf[base + i] ^= 0xFF

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Unmap the segment (both sides; idempotent)."""
        if self._closed:
            return
        self._closed = True
        if self._owner:
            with self._available:
                self._available.notify_all()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment (owner side, after every side closed)."""
        try:
            self._shm.unlink()
        except FileNotFoundError:  # already unlinked (e.g. double cleanup)
            pass

    def __enter__(self) -> "ShmSlotRing":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
        if self._owner:
            self.unlink()
