"""Graph executors: reference (numpy) and compiled (batched FKW kernels).

Both executors walk the topological order with an execution plan built
at construction time from :func:`~repro.graph.passes.memory_plan.compute_liveness`:
each intermediate value is dropped from the environment right after its
last consumer runs, so peak live memory during ``run()`` matches the
static memory-plan pass instead of retaining every tensor to the end.

:class:`CompiledExecutor` additionally dispatches pattern-pruned conv
nodes to **whole-batch** generated kernels (no per-sample Python loop),
with bias + activation fused into the closure, compiled closures shared
through a :class:`~repro.compiler.codegen.KernelCache` (identical layers
compile once), and padded-input/output scratch recycled across calls via
a :class:`~repro.runtime.arena.BufferArena`.  Dead intermediates produced
by compiled kernels are released back to the arena mid-run, so repeated
same-shape layers share physical buffers.

Both executors are safe to share across threads: per-run state lives in
locals, the kernel cache locks its lookups, and the arena tracks
in-flight scratch per thread (see :mod:`repro.runtime.arena`) — so one
``CompiledExecutor`` can back a multi-threaded serving front-end
(:mod:`repro.runtime.serving`) without per-thread executor copies.
"""

from __future__ import annotations

import time

import numpy as np

from repro.compiler.codegen import KernelCache, KernelFn
from repro.compiler.reorder import filter_kernel_reorder
from repro.compiler.storage import FKWLayer
from repro.core.patterns import PatternSet
from repro.graph.ir import Graph, OpKind
from repro.graph.passes.memory_plan import compute_liveness
from repro.runtime.arena import BufferArena
from repro.runtime.ops import eval_node
from repro.runtime.telemetry import active_layer_profile


class ReferenceExecutor:
    """Interpret a graph with reference numpy kernels.

    Intermediates are freed as soon as their last consumer has run
    (liveness-driven retirement), so long graphs don't accumulate every
    activation in memory.
    """

    def __init__(self, graph: Graph) -> None:
        graph.validate()
        self.graph = graph
        self._order = graph.toposort()
        # Execution plan: which value names die after each step.  Graph
        # outputs have last_use == len(order), so they are never retired.
        steps = len(self._order)
        self._dies_at: dict[int, list[str]] = {}
        for name, last in compute_liveness(graph, self._order).items():
            if last < steps:
                self._dies_at.setdefault(last, []).append(name)

    # ------------------------------------------------------------------
    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute on a batched NCHW input; returns the graph output."""
        return self._execute(x, arena=None)

    def _dispatch(self, node, inputs: list[np.ndarray], arena) -> np.ndarray:
        """Evaluate one node; subclasses intercept compiled nodes here."""
        return eval_node(node, inputs)

    def _execute(self, x: np.ndarray, arena: BufferArena | None) -> np.ndarray:
        values: dict[str, np.ndarray] = {}
        out = None
        # Per-layer telemetry hook (repro.runtime.telemetry.profile_layers):
        # checked once per run — the unprofiled hot path pays a single
        # thread-local read, the profiled path two clock reads per node.
        profile = active_layer_profile()
        for step, node in enumerate(self._order):
            if node.op == OpKind.INPUT:
                value = np.asarray(x, dtype=np.float32)
            else:
                inputs = [values[i] for i in node.inputs]
                if profile is not None:
                    t0 = time.monotonic()
                    value = self._dispatch(node, inputs, arena)
                    profile.append((node.name, node.op.name, t0, time.monotonic()))
                else:
                    value = self._dispatch(node, inputs, arena)
            values[node.name] = value
            out = value
            self._retire(values, step, arena)
        result = values[self.graph.outputs[0]] if self.graph.outputs else out
        if arena is not None:
            # Never hand the caller a buffer the arena may recycle; then
            # pool every in-flight buffer (including ones whose release
            # was skipped because a since-dead view aliased them).
            result = arena.sanitize_output(result)
            values.clear()
            arena.reclaim()
        return result

    def _retire(self, values: dict[str, np.ndarray], step: int, arena: BufferArena | None) -> None:
        """Drop (and recycle) values whose last consumer was ``step``."""
        for name in self._dies_at.get(step, ()):
            dead = values.pop(name, None)
            if arena is None or dead is None:
                continue
            # A view of this buffer may still be live (e.g. FLATTEN's
            # reshape aliases the conv output) — keep it out of the pool.
            if any(dead is live or np.may_share_memory(dead, live) for live in values.values()):
                continue
            arena.release(dead)


class CompiledExecutor(ReferenceExecutor):
    """Execute pattern-pruned conv nodes through generated FKW kernels.

    Conv nodes whose name appears in ``assignments`` are packed to FKW
    (with FKR) and dispatched to whole-batch closures from
    :func:`~repro.compiler.codegen.generate_kernel` — bias and activation
    fused, one call per node per batch; every other node falls back to
    the reference kernel.  Output equality with
    :class:`ReferenceExecutor` is the compiler's end-to-end correctness
    property.

    Args:
        graph: optimized graph IR.
        pattern_set / assignments: pruning artifacts; ``assignments``
            maps conv node names to (F, C) pattern-id arrays.
        opt_level: codegen variant (``'no-opt'`` | ``'reorder'`` | ``'lre'``
            | ``'gemm'``).  ``'gemm'`` — the default — is the batch-serving
            production level (per-coordinate scattered-weight BLAS
            contractions over the pattern union); the other three mirror
            the paper's Figure 7 ladder structurally.
        kernel_cache: compile-once cache; a private one is created when
            omitted.  Repeated identical layers share one closure
            (``kernel_cache.hits`` counts the saves).
        arena: scratch-buffer arena reused across ``run()`` calls; a
            private one is created when omitted.
        arena_max_bytes: retained-scratch cap for the private arena (LRU
            eviction under many-shape traffic); ignored when an explicit
            ``arena`` is passed.
    """

    def __init__(
        self,
        graph: Graph,
        pattern_set: PatternSet,
        assignments: dict[str, np.ndarray],
        opt_level: str = "gemm",
        kernel_cache: KernelCache | None = None,
        arena: BufferArena | None = None,
        arena_max_bytes: int | None = None,
    ) -> None:
        super().__init__(graph)
        self.pattern_set = pattern_set
        self.opt_level = opt_level
        self.kernel_cache = kernel_cache if kernel_cache is not None else KernelCache()
        self.arena = arena if arena is not None else BufferArena(max_bytes=arena_max_bytes)
        self._compiled: dict[str, KernelFn] = {}
        for name, assignment in assignments.items():
            if name not in graph.nodes:
                raise KeyError(f"assignment for unknown node {name!r}")
            node = graph.nodes[name]
            if node.op != OpKind.CONV2D:
                raise ValueError(f"{name!r} is not a conv node")
            weights = node.params["weight"]
            fkr = filter_kernel_reorder(assignment)
            fkw = FKWLayer.from_pruned(weights, assignment, pattern_set, fkr)
            self._compiled[name] = self.kernel_cache.get(
                fkw,
                node.attrs.get("stride", 1),
                node.attrs.get("padding", 0),
                opt_level,
                bias=node.params.get("bias"),
                activation=node.attrs.get("activation"),
            )

    def run(self, x: np.ndarray) -> np.ndarray:
        return self._execute(x, arena=self.arena)

    def _dispatch(self, node, inputs: list[np.ndarray], arena) -> np.ndarray:
        fn = self._compiled.get(node.name)
        if fn is not None:
            return fn(inputs[0], arena=arena)
        return eval_node(node, inputs)
