"""Graph executors: reference (numpy) and compiled (FKW kernels)."""

from __future__ import annotations

import numpy as np

from repro.compiler.codegen import generate_kernel
from repro.compiler.reorder import filter_kernel_reorder
from repro.compiler.storage import FKWLayer
from repro.core.patterns import PatternSet
from repro.graph.ir import Graph, OpKind
from repro.runtime.ops import _apply_activation, eval_node


class ReferenceExecutor:
    """Interpret a graph with reference numpy kernels."""

    def __init__(self, graph: Graph) -> None:
        graph.validate()
        self.graph = graph
        self._order = graph.toposort()

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute on a batched NCHW input; returns the graph output."""
        values: dict[str, np.ndarray] = {}
        out = None
        for node in self._order:
            if node.op == OpKind.INPUT:
                values[node.name] = x.astype(np.float32)
                continue
            inputs = [values[i] for i in node.inputs]
            values[node.name] = eval_node(node, inputs)
            out = values[node.name]
        if not self.graph.outputs:
            return out
        return values[self.graph.outputs[0]]


class CompiledExecutor(ReferenceExecutor):
    """Execute pattern-pruned conv nodes through generated FKW kernels.

    Conv nodes whose name appears in ``assignments`` are packed to FKW
    (with FKR) and dispatched to :func:`generate_kernel`; every other
    node falls back to the reference kernel.  Output equality with
    :class:`ReferenceExecutor` is the compiler's end-to-end correctness
    property.
    """

    def __init__(
        self,
        graph: Graph,
        pattern_set: PatternSet,
        assignments: dict[str, np.ndarray],
        opt_level: str = "lre",
    ) -> None:
        super().__init__(graph)
        self.pattern_set = pattern_set
        self._compiled: dict[str, tuple] = {}
        for name, assignment in assignments.items():
            if name not in graph.nodes:
                raise KeyError(f"assignment for unknown node {name!r}")
            node = graph.nodes[name]
            if node.op != OpKind.CONV2D:
                raise ValueError(f"{name!r} is not a conv node")
            weights = node.params["weight"]
            fkr = filter_kernel_reorder(assignment)
            fkw = FKWLayer.from_pruned(weights, assignment, pattern_set, fkr)
            fn = generate_kernel(
                fkw, node.attrs.get("stride", 1), node.attrs.get("padding", 0), opt_level
            )
            self._compiled[name] = (fn, node.params.get("bias"), node.attrs.get("activation"))

    def run(self, x: np.ndarray) -> np.ndarray:
        values: dict[str, np.ndarray] = {}
        out = None
        for node in self._order:
            if node.op == OpKind.INPUT:
                values[node.name] = x.astype(np.float32)
                continue
            inputs = [values[i] for i in node.inputs]
            if node.name in self._compiled:
                fn, bias, activation = self._compiled[node.name]
                batch = np.stack([fn(sample) for sample in inputs[0]])
                if bias is not None:
                    batch += bias.reshape(1, -1, 1, 1)
                values[node.name] = _apply_activation(batch, activation)
            else:
                values[node.name] = eval_node(node, inputs)
            out = values[node.name]
        if not self.graph.outputs:
            return out
        return values[self.graph.outputs[0]]
