"""Abstract shard transport: the protocol the cluster router speaks.

PR 3 wired :class:`~repro.runtime.cluster.ShardedServer` directly to
``ShmSlotRing`` + ``multiprocessing.Pipe``; that made the cluster
single-host by construction.  This module is the seam that undoes it:
the router, resilience, and fault-injection layers now talk to three
small abstractions, and *where a shard process lives* becomes a detail
of which implementation is plugged in —

* :class:`ShardEndpoint` — the router's handle to one shard: acquire /
  release backpressure tokens, send framed tensor requests (req_id +
  deadline + CRC), send pings/stop, receive **normalized events**, and
  answer lifecycle questions (alive? pid? kill, join, dispose).
* :class:`WorkerTransport` — the worker-side mirror: receive requests /
  pings / stop, read (checksum-verified) payloads, send results,
  errors, and control messages back.
* :class:`ShardLauncher` — the factory that brings a shard incarnation
  into existence (spawn a local process, or connect to a remote one)
  and hands back its endpoint.  Respawn-after-crash is just
  ``launch(index)`` again.

Implementations: :mod:`repro.runtime.transport_shm` (shared-memory slot
rings + pipes — today's single-host behaviour, preserved bitwise) and
:mod:`repro.runtime.transport_tcp` (length-prefixed numpy frames over
sockets — shards on other machines).

Normalized router-side events (returned by :meth:`ShardEndpoint.recv`;
payload reading and token release happen *inside* the endpoint):

========================================  =====================================
``("ready", pid)``                        worker built its session(s)
``("res", req_id, out, exc)``             reply: ``out`` ndarray, or ``exc``
                                          (``CorruptedPayloadError`` etc.)
``("err", req_id, code, text)``           worker-side typed failure; ``code in
                                          {"deadline","corrupt","unknown_model",
                                          "error"}``
``("pong", seq, stats)``                  health reply + serving-stats snapshot
``("bye", stats)``                        worker drained and is exiting
``("fatal", text)``                       session build failed (permanent)
``("trace", req_id, spans)``              worker-side span timeline for a
                                          sampled (traced) request
``("model", op, name, detail)``           ack for a hot model ``("load"`` /
                                          ``"unload")`` control message;
                                          ``detail`` is an error string or None
========================================  =====================================

The byte-level **tensor framing** used by stream transports also lives
here (:func:`pack_tensor_frame` / :func:`unpack_tensor_frame`) so it can
be unit-tested without sockets: a frame is a 5-byte ``(length, type)``
header followed by either a pickled control tuple or a tensor body of
``req_id (u64) | trace_id (u64, 0 = untraced) | deadline_remaining_s
(f64, NaN = none) | crc32 (u32) | ndim (u8) | model (u8 length + utf-8,
empty = the single default model) | dims (u32 each) | dtype-str (u8
length + ascii) | raw payload bytes``.  Deadlines cross host boundaries
as *remaining seconds* (absolute ``time.monotonic`` values are
meaningless on another machine) and are re-anchored to the receiver's
clock; trace ids ride the same prefix so a sampled request stays
sampled across the wire (see :mod:`repro.runtime.telemetry`); the model
id routes the request to the right per-model micro-batch queue inside a
multi-tenant worker (see :mod:`repro.runtime.worker`).
"""

from __future__ import annotations

import math
import pickle
import struct
import threading
import zlib
from abc import ABC, abstractmethod
from typing import Any

import numpy as np

from repro.runtime.resilience import CorruptedPayloadError

__all__ = [
    "TransportClosedError",
    "ShardEndpoint",
    "WorkerTransport",
    "ShardLauncher",
    "CreditGate",
    "FRAME_CONTROL",
    "FRAME_TENSOR",
    "FRAME_HEADER",
    "MAX_FRAME_BYTES",
    "MAX_MODEL_ID_BYTES",
    "pack_control_frame",
    "unpack_control_body",
    "pack_tensor_frame",
    "unpack_tensor_frame",
    "tensor_frame_req_id",
    "tensor_frame_meta",
    "pack_bundle_payload",
    "verify_bundle_payload",
]


class TransportClosedError(ConnectionError):
    """The peer (worker or router) is gone: the pipe/socket hit EOF, a
    send failed, or the transport was torn down mid-operation.  The
    router treats this exactly like a shard crash (rehome in-flight
    requests, respawn/reconnect); a worker treats it as "router died,
    exit"."""


# ----------------------------------------------------------------------
# Stream framing (transport-agnostic byte level; used by TCP, unit-tested
# directly)
# ----------------------------------------------------------------------
#: frame header: payload byte length (excluding header) + frame type
FRAME_HEADER = struct.Struct(">IB")
FRAME_CONTROL = 0  # body = pickled control tuple
FRAME_TENSOR = 1  # body = tensor header + raw ndarray bytes

#: hard sanity bound on any single frame — a length prefix beyond this
#: means a desynchronized or hostile stream, not a real tensor
MAX_FRAME_BYTES = 1 << 30

#: tensor body prefix: req_id, trace_id (0 = untraced), deadline_remaining_s
#: (NaN = no deadline), crc32 of the payload bytes, ndim
_TENSOR_PREFIX = struct.Struct(">QQdIB")
_MAX_NDIM = 16
#: the model id is a u8-length-prefixed utf-8 string right after the
#: fixed prefix — bounded so a corrupt length byte cannot demand a
#: megabyte name
MAX_MODEL_ID_BYTES = 255


def pack_control_frame(msg: Any) -> bytes:
    """One framed control message (pickled tuple) as raw bytes."""
    body = pickle.dumps(msg)
    return FRAME_HEADER.pack(len(body), FRAME_CONTROL) + body


def unpack_control_body(body: bytes) -> Any:
    return pickle.loads(body)


def pack_tensor_frame(
    req_id: int,
    arr: np.ndarray,
    deadline_remaining_s: float | None = None,
    trace_id: int = 0,
    model: str = "",
) -> bytes:
    """Frame one tensor (header + body) for a byte-stream transport.

    ``trace_id`` (0 = untraced) propagates request sampling across the
    wire so the worker knows to collect spans for this request.
    ``model`` ("" = the single default model) names the tenant the
    request is for; a multi-model worker uses it to pick the right
    micro-batch queue.

    Zero-size tensors are refused up front: an empty request cannot
    produce a row per sample, so framing one is always a caller bug —
    better a ``ValueError`` here than a shape error three processes away.
    """
    arr = np.ascontiguousarray(arr)
    if arr.size == 0:
        raise ValueError(
            f"refusing to frame a zero-size tensor (shape {arr.shape}): "
            "batches must contain at least one sample"
        )
    if arr.ndim > _MAX_NDIM:
        raise ValueError(f"tensor rank {arr.ndim} exceeds the frame limit of {_MAX_NDIM}")
    model_bytes = model.encode("utf-8")
    if len(model_bytes) > MAX_MODEL_ID_BYTES:
        raise ValueError(
            f"model id {model!r} encodes to {len(model_bytes)} bytes "
            f"(limit {MAX_MODEL_ID_BYTES})"
        )
    dtype_str = arr.dtype.str.encode("ascii")
    payload = arr.tobytes()
    remaining = math.nan if deadline_remaining_s is None else float(deadline_remaining_s)
    body = b"".join(
        (
            _TENSOR_PREFIX.pack(req_id, trace_id, remaining, zlib.crc32(payload), arr.ndim),
            struct.pack(">B", len(model_bytes)),
            model_bytes,
            struct.pack(f">{arr.ndim}I", *arr.shape),
            struct.pack(">B", len(dtype_str)),
            dtype_str,
            payload,
        )
    )
    if len(body) > MAX_FRAME_BYTES:
        raise ValueError(f"tensor frame of {len(body)} bytes exceeds MAX_FRAME_BYTES")
    return FRAME_HEADER.pack(len(body), FRAME_TENSOR) + body


def tensor_frame_req_id(body: bytes) -> int | None:
    """Best-effort request id from a (possibly corrupt) tensor body, so
    a failed :func:`unpack_tensor_frame` can still be attributed to the
    request it answered (and retried) instead of killing the stream."""
    if len(body) < 8:
        return None
    return struct.unpack_from(">Q", body)[0]


def tensor_frame_meta(body: bytes) -> tuple[int, float | None, int, str] | None:
    """``(req_id, deadline_remaining_s, trace_id, model)`` from a tensor
    body prefix without decoding (or verifying) the payload — lets a
    worker route a corrupt frame's typed error to the right request
    instead of tearing the stream down.  ``None`` when the body is too
    short to carry even the prefix; the model id degrades to ``""`` when
    its bytes are cut short or undecodable (the request can still be
    attributed and failed typed)."""
    if len(body) < 24:
        return None
    req_id, trace_id, remaining = struct.unpack_from(">QQd", body)
    model = ""
    if len(body) > _TENSOR_PREFIX.size:
        (model_len,) = struct.unpack_from(">B", body, _TENSOR_PREFIX.size)
        raw = body[_TENSOR_PREFIX.size + 1 : _TENSOR_PREFIX.size + 1 + model_len]
        if len(raw) == model_len:
            try:
                model = raw.decode("utf-8")
            except UnicodeDecodeError:
                model = ""
    return req_id, (None if math.isnan(remaining) else remaining), trace_id, model


def unpack_tensor_frame(
    body: bytes,
) -> tuple[int, float | None, np.ndarray, int, str]:
    """Decode a tensor body into ``(req_id, deadline_remaining_s, array,
    trace_id, model)``.

    Every structural defect — truncated header, impossible rank, bogus
    model id or dtype, payload shorter or longer than the dims promise,
    zero-size payload, checksum mismatch — raises
    :class:`~repro.runtime.resilience.CorruptedPayloadError`: the bytes
    are provably not what :func:`pack_tensor_frame` produced, and the
    router's retry machinery (not the client) should deal with it.
    """
    if len(body) < _TENSOR_PREFIX.size:
        raise CorruptedPayloadError(
            f"truncated tensor frame: {len(body)} bytes < {_TENSOR_PREFIX.size}-byte header"
        )
    req_id, trace_id, remaining, crc, ndim = _TENSOR_PREFIX.unpack_from(body)
    if ndim > _MAX_NDIM:
        raise CorruptedPayloadError(f"tensor frame claims rank {ndim} > {_MAX_NDIM}")
    offset = _TENSOR_PREFIX.size
    if len(body) < offset + 1:
        raise CorruptedPayloadError("truncated tensor frame: model id cut short")
    (model_len,) = struct.unpack_from(">B", body, offset)
    offset += 1
    if len(body) < offset + model_len:
        raise CorruptedPayloadError("truncated tensor frame: model id cut short")
    try:
        model = body[offset : offset + model_len].decode("utf-8")
    except UnicodeDecodeError as exc:
        raise CorruptedPayloadError(f"tensor frame carries an invalid model id: {exc}") from None
    offset += model_len
    dims_size = 4 * ndim
    if len(body) < offset + dims_size + 1:
        raise CorruptedPayloadError("truncated tensor frame: header cut short")
    shape = struct.unpack_from(f">{ndim}I", body, offset)
    offset += dims_size
    (dtype_len,) = struct.unpack_from(">B", body, offset)
    offset += 1
    if len(body) < offset + dtype_len:
        raise CorruptedPayloadError("truncated tensor frame: dtype cut short")
    try:
        dtype = np.dtype(body[offset : offset + dtype_len].decode("ascii"))
    except (TypeError, UnicodeDecodeError) as exc:
        raise CorruptedPayloadError(f"tensor frame carries an invalid dtype: {exc}") from None
    offset += dtype_len
    expected = int(np.prod(shape, dtype=np.int64)) * dtype.itemsize
    payload = body[offset:]
    if expected == 0:
        raise CorruptedPayloadError(
            f"tensor frame describes a zero-size payload (shape {tuple(shape)})"
        )
    if len(payload) != expected:
        raise CorruptedPayloadError(
            f"truncated tensor frame: payload holds {len(payload)} bytes but shape "
            f"{tuple(shape)} ({dtype}) needs {expected}"
        )
    got = zlib.crc32(payload)
    if got != crc:
        raise CorruptedPayloadError(
            f"tensor frame failed checksum (crc {got:#010x} != expected {crc:#010x}, "
            f"shape {tuple(shape)}, {dtype})"
        )
    arr = np.frombuffer(payload, dtype=dtype).reshape(shape).copy()
    return req_id, (None if math.isnan(remaining) else remaining), arr, trace_id, model


# ----------------------------------------------------------------------
# Bundle payloads (handshake / hot-load shipping of .npz session bundles)
# ----------------------------------------------------------------------
def pack_bundle_payload(data: bytes) -> tuple[int, int, bytes]:
    """Wrap raw bundle bytes as ``(crc32, size, data)`` for shipment in a
    handshake or a hot ``("load", ...)`` control message."""
    return zlib.crc32(data), len(data), data


def verify_bundle_payload(name: str, payload: tuple) -> bytes:
    """Check a shipped bundle's size and CRC; returns the verified bytes.

    A truncated or corrupted multi-bundle handshake must fail *typed*
    (:class:`~repro.runtime.resilience.CorruptedPayloadError` names the
    offending model) instead of half-loading: the worker reports it as a
    fatal build failure and the router marks the shard permanently
    failed rather than serving a model zoo with a silently missing or
    damaged tenant.
    """
    try:
        crc, size, data = payload
    except (TypeError, ValueError):
        raise CorruptedPayloadError(
            f"bundle payload for model {name!r} is malformed: expected "
            "(crc32, size, bytes)"
        ) from None
    if len(data) != size:
        raise CorruptedPayloadError(
            f"bundle for model {name!r} was truncated in transit: "
            f"{len(data)} bytes arrived but {size} were sent"
        )
    got = zlib.crc32(data)
    if got != crc:
        raise CorruptedPayloadError(
            f"bundle for model {name!r} failed checksum "
            f"(crc {got:#010x} != expected {crc:#010x})"
        )
    return data


# ----------------------------------------------------------------------
# Backpressure for transports without natural slots
# ----------------------------------------------------------------------
class CreditGate:
    """Counted admission tokens mirroring ``ShmSlotRing``'s slot
    semantics for transports (like TCP) that have no physical slots:
    ``credits`` concurrent requests per shard, :meth:`acquire` blocks or
    times out when all are out, :meth:`release` returns one.

    The LIFO free list, double-release check, closed-ring error, and
    timeout behaviour intentionally match the shm ring so the router's
    dispatch loop cannot tell the two apart.
    """

    def __init__(self, credits: int) -> None:
        if credits < 1:
            raise ValueError(f"credits must be >= 1, got {credits}")
        self.credits = credits
        self._free = list(reversed(range(credits)))
        self._available = threading.Condition(threading.Lock())
        self._closed = False

    def acquire(self, timeout: float | None = None) -> int | None:
        """Take a credit token; ``None`` on timeout (all credits out)."""
        with self._available:
            if not self._available.wait_for(lambda: bool(self._free) or self._closed, timeout):
                return None
            if self._closed:
                raise RuntimeError("credit gate is closed")
            return self._free.pop()

    def release(self, token: int) -> None:
        if not 0 <= token < self.credits:
            raise ValueError(f"token {token} out of range 0..{self.credits - 1}")
        with self._available:
            if token in self._free:
                raise ValueError(f"token {token} is already free (double release)")
            self._free.append(token)
            self._available.notify()

    @property
    def free(self) -> int:
        with self._available:
            return len(self._free)

    def close(self) -> None:
        """Wake every blocked acquirer with the closed error (idempotent)."""
        with self._available:
            self._closed = True
            self._available.notify_all()


# ----------------------------------------------------------------------
# The protocol proper
# ----------------------------------------------------------------------
class ShardEndpoint(ABC):
    """Router-side handle to one shard incarnation.

    Transport operations raise :class:`TransportClosedError` once the
    peer is gone; the router maps that to its crash-handling path.
    ``recv`` reads payloads and releases backpressure tokens internally,
    so the router only ever sees the normalized events documented in the
    module docstring.
    """

    # -- backpressure ---------------------------------------------------
    @abstractmethod
    def acquire(self, timeout: float | None = None) -> int | None:
        """Reserve capacity for one request: a slot index / credit token,
        or ``None`` when the shard is full past ``timeout``."""

    @abstractmethod
    def release(self, token: int) -> None:
        """Return capacity reserved by :meth:`acquire` but never sent
        (a dispatch that aborted).  Sent requests release via recv."""

    # -- sending --------------------------------------------------------
    @abstractmethod
    def send_request(
        self,
        token: int,
        req_id: int,
        x: np.ndarray,
        deadline_at: float | None,
        trace_id: int = 0,
        model: str = "",
    ) -> None:
        """Frame and send one request tensor.  ``deadline_at`` is an
        absolute local ``time.monotonic`` value (or None); cross-host
        transports convert it to remaining seconds on the wire.
        ``trace_id`` (0 = untraced) marks a sampled request: the worker
        collects spans and ships them back as a ``("trace", ...)``
        event after the reply.  ``model`` names the tenant queue the
        worker should dispatch into ("" = the single default model)."""

    @abstractmethod
    def send_ping(self, seq: int) -> None: ...

    @abstractmethod
    def send_stop(self) -> None: ...

    def send_control(self, msg: tuple) -> None:
        """Ship an out-of-band control tuple to the worker (hot model
        ``("load", name, spec, payload)`` / ``("unload", name)``).
        Transports without a control channel may ignore it."""

    # -- receiving ------------------------------------------------------
    @abstractmethod
    def recv(self) -> tuple:
        """Block for the next normalized event (see module docstring);
        raises :class:`TransportClosedError` when the peer is gone."""

    # -- lifecycle ------------------------------------------------------
    @property
    @abstractmethod
    def pid(self) -> int | None:
        """Worker process id, or ``None`` for a remote shard."""

    @abstractmethod
    def alive(self) -> bool:
        """Best-effort liveness: process running / connection healthy."""

    @abstractmethod
    def kill(self) -> None:
        """Forcefully end this incarnation (terminate the local process
        and/or sever the connection).  Idempotent."""

    @abstractmethod
    def join(self, timeout: float | None = None) -> None:
        """Wait for this incarnation to end (process exit / peer
        disconnect), up to ``timeout`` seconds."""

    @abstractmethod
    def close(self) -> None:
        """Release the router-side handles (connection, ring mapping);
        safe while other threads may still race operations.  Idempotent."""

    def dispose(self) -> None:
        """Final resource teardown at server close (e.g. unlink shared
        memory).  Default: just :meth:`close`."""
        self.close()


class WorkerTransport(ABC):
    """Worker-side mirror of :class:`ShardEndpoint`, consumed by
    :func:`repro.runtime.worker.run_worker`.

    ``recv`` yields ``("req", req_id, deadline_at, trace_id, model,
    handle)`` (with ``deadline_at`` already re-anchored to the *worker's*
    monotonic clock, ``trace_id == 0`` for untraced requests, and
    ``model`` naming the tenant queue, ``""`` = default), ``("ping",
    seq)``, ``("stop",)``, or a hot-model control message ``("load",
    name, spec, payload)`` / ``("unload", name)``; the opaque ``handle``
    carries whatever the transport needs to read the payload and route
    the reply (an shm slot, a decoded TCP frame).
    """

    #: largest reply payload the transport can carry (bytes), or None
    #: for unbounded — the worker refuses larger outputs with a typed
    #: error instead of corrupting the transport
    payload_capacity: int | None = None

    @abstractmethod
    def recv(self) -> tuple:
        """Next inbound message; raises :class:`TransportClosedError`
        when the router is gone."""

    @abstractmethod
    def read_payload(self, handle) -> np.ndarray:
        """Copy the request tensor out of ``handle``, checksum-verified
        (raises :class:`CorruptedPayloadError` on mismatch)."""

    @abstractmethod
    def send_result(self, req_id: int, handle, out: np.ndarray, corrupt: bool = False) -> None:
        """Send a successful reply.  ``corrupt=True`` (fault injection
        only) clobbers the payload *after* its checksum was computed so
        the router's verification provably catches it."""

    @abstractmethod
    def send_error(self, req_id: int, handle, code: str, text: str) -> None:
        """Send a typed failure (``code in {"deadline","corrupt","error"}``)."""

    def send_trace(self, req_id: int, spans: list[dict]) -> None:
        """Ship a traced request's worker-side span timeline back to the
        router (after the reply for ``req_id``, same ordered channel).
        Default: drop — a transport without a control channel loses
        spans, never requests."""

    def send_model_ack(self, op: str, name: str, detail: str | None) -> None:
        """Acknowledge a hot model load/unload (``op``) for ``name``;
        ``detail`` carries the error text on failure, ``None`` on
        success.  Default: drop, mirroring :meth:`send_trace`."""

    @abstractmethod
    def send_ready(self, pid: int) -> None: ...

    @abstractmethod
    def send_pong(self, seq: int, stats: dict | None) -> None: ...

    @abstractmethod
    def send_bye(self, stats: dict | None) -> None: ...

    @abstractmethod
    def send_fatal(self, text: str) -> None: ...

    @abstractmethod
    def close(self) -> None: ...


class ShardLauncher(ABC):
    """Factory for shard incarnations.  ``launch(index)`` starts (or
    connects to) the worker for shard ``index`` and returns its
    endpoint; the router calls it again to respawn after a crash."""

    #: short transport name surfaced in ``cluster_stats`` ("shm", "tcp")
    kind: str = "?"

    @abstractmethod
    def launch(self, index: int) -> ShardEndpoint: ...

    def close(self) -> None:
        """Release launcher-held resources (none by default)."""
