"""TCP shard transport: length-prefixed numpy frames over sockets.

Everything the router does — retries, hedging, circuit breakers,
deadlines, fault injection, respawn — already speaks the
:mod:`repro.runtime.transport` protocol; this module makes a shard's
location irrelevant by speaking that protocol over a socket:

* **Framing** — every message is a 5-byte ``(length, type)`` header plus
  either a pickled control tuple or a raw tensor body (req_id, deadline,
  CRC32, dims, dtype, payload bytes; see
  :func:`~repro.runtime.transport.pack_tensor_frame`).  Payloads are
  checksum-verified on both sides, exactly like the shm slots.
* **Handshake** — the router opens a connection and sends
  ``("hello", {specs, bundles, fault_plan, payload_bytes, protocol})``.
  ``specs`` is the full model registry (``{name: SessionSpec}``);
  ``bundles`` maps each model to ``(crc32, size, bytes)`` of its raw
  ``.npz`` session bundle when the worker may not share a filesystem
  (remote shards) — each is size-checked and CRC-verified before the
  worker materializes it to a temp file, so a truncated multi-bundle
  handshake fails typed (``fatal``) instead of half-loading the zoo.
  A protocol-version mismatch is answered with a ``fatal`` frame naming
  both versions, so the router surfaces a clear error instead of a
  silent disconnect.
* **Deadlines re-anchored** — absolute ``time.monotonic`` values are
  meaningless across hosts, so deadlines travel as *remaining seconds*
  and are converted back to the worker's own clock on arrival.
* **Backpressure** — a :class:`~repro.runtime.transport.CreditGate`
  mirrors the shm ring's slot semantics: ``slots_per_shard`` requests
  may be outstanding per shard; credits release as replies arrive.
* **Liveness** — a local worker is watched through its process handle; a
  remote one through the connection itself: EOF/RST surfaces
  immediately as :class:`~repro.runtime.transport.TransportClosedError`,
  and a connection that stops carrying frames (not even health pongs)
  past ``heartbeat_timeout_s`` is declared dead — the half-open-socket
  case EOF never reports.
* **Reconnect-aware respawn** — "respawning" a remote shard means
  reconnecting to its address with bounded retries
  (:class:`RemoteTcpLauncher`): ``python -m repro worker`` keeps
  listening after a router disconnects, so a router restart, a network
  blip, or a drained connection just re-handshakes.  A worker that
  cannot be reached after the retry budget is marked permanently failed
  by the router's usual early-death accounting.

Two launchers cover the deployment modes: :class:`LocalTcpLauncher`
spawns loopback worker processes (used to run the whole cluster test
matrix over TCP), :class:`RemoteTcpLauncher` connects to externally
started ``python -m repro worker --listen HOST:PORT`` processes.

Security note: the control channel carries pickled tuples (as the
multiprocessing pipes always did), so this transport trusts its network
— run it on a private interconnect, not the open internet.
"""

from __future__ import annotations

import dataclasses
import os
import socket
import tempfile
import threading
import time

import numpy as np

from repro.runtime.faults import FaultPlan
from repro.runtime.resilience import CorruptedPayloadError
from repro.runtime.session import SessionSpec
from repro.runtime.transport import (
    FRAME_HEADER,
    FRAME_TENSOR,
    MAX_FRAME_BYTES,
    CreditGate,
    ShardEndpoint,
    ShardLauncher,
    TransportClosedError,
    WorkerTransport,
    pack_bundle_payload,
    pack_control_frame,
    pack_tensor_frame,
    tensor_frame_meta,
    tensor_frame_req_id,
    unpack_control_body,
    unpack_tensor_frame,
    verify_bundle_payload,
)
from repro.runtime.transport_shm import spawn_with_env

__all__ = [
    "TcpShardEndpoint",
    "TcpWorkerTransport",
    "LocalTcpLauncher",
    "RemoteTcpLauncher",
    "worker_serve",
    "parse_hostport",
]

#: handshake protocol version (bumped on wire-format changes; v2 added
#: the trace_id field to the tensor-frame prefix and the ("trace", ...)
#: control message; v3 added the model id to the tensor frame, the
#: multi-spec/multi-bundle handshake, and hot model load/unload control
#: messages)
PROTOCOL_VERSION = 3

#: a connection that carried no frame (not even a pong) for this long is
#: considered dead even though the socket never EOF'd (half-open peer).
#: Generous by default: router pings every ``health_interval_s`` and any
#: frame resets the clock, so only a truly wedged link trips this.
DEFAULT_HEARTBEAT_TIMEOUT_S = 10.0

#: connection attempts per (re)launch of a remote shard, with
#: exponential backoff between them — a respawn is a reconnect here
CONNECT_RETRIES = 3
CONNECT_BACKOFF_S = 0.3


def parse_hostport(address: str) -> tuple[str, int]:
    """Split ``"host:port"`` (no IPv6 brackets — serving interconnects
    here are named hosts or dotted quads)."""
    host, sep, port = address.rpartition(":")
    if not sep or not host:
        raise ValueError(f"expected HOST:PORT, got {address!r}")
    try:
        return host, int(port)
    except ValueError:
        raise ValueError(f"invalid port in {address!r}") from None


# ----------------------------------------------------------------------
# Socket frame I/O
# ----------------------------------------------------------------------
def _recv_exact(sock: socket.socket, n: int) -> bytes:
    buf = bytearray()
    while len(buf) < n:
        try:
            chunk = sock.recv(n - len(buf))
        except OSError as exc:
            raise TransportClosedError(f"connection lost mid-frame: {exc}") from exc
        if not chunk:
            raise TransportClosedError(
                "peer closed the connection" + (" mid-frame" if buf else "")
            )
        buf += chunk
    return bytes(buf)


def read_frame(sock: socket.socket) -> tuple[int, bytes]:
    """Read one ``(type, body)`` frame; :class:`TransportClosedError` on
    EOF, reset, or an insane length prefix (desynchronized stream)."""
    length, ftype = FRAME_HEADER.unpack(_recv_exact(sock, FRAME_HEADER.size))
    if length > MAX_FRAME_BYTES:
        raise TransportClosedError(
            f"frame claims {length} bytes (> {MAX_FRAME_BYTES}): stream desynchronized"
        )
    return ftype, _recv_exact(sock, length)


def _send_bytes(sock: socket.socket, data: bytes) -> None:
    try:
        sock.sendall(data)
    except OSError as exc:
        raise TransportClosedError(f"send failed: {exc}") from exc


def _configure(sock: socket.socket) -> socket.socket:
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)  # tiny control frames
    sock.settimeout(None)
    return sock


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class TcpWorkerTransport(WorkerTransport):
    """Worker half of one router connection."""

    def __init__(self, sock: socket.socket, payload_capacity: int | None = None) -> None:
        self._sock = sock
        self._send_lock = threading.Lock()
        self.payload_capacity = payload_capacity

    def recv(self) -> tuple:
        ftype, body = read_frame(self._sock)
        if ftype == FRAME_TENSOR:
            meta = tensor_frame_meta(body)
            if meta is None:  # not even a request id: the stream is gone
                raise TransportClosedError("tensor frame too short to carry a request id")
            req_id, remaining, trace_id, model = meta
            # re-anchor the deadline to *this* host's monotonic clock; a
            # budget already spent arrives negative and is shed on submit
            deadline_at = None if remaining is None else time.monotonic() + remaining
            return ("req", req_id, deadline_at, trace_id, model, body)
        return unpack_control_body(body)  # ping / stop / load / unload

    def read_payload(self, handle) -> np.ndarray:
        # full decode deferred to here so a corrupt payload surfaces as
        # CorruptedPayloadError on *this request*, not a dead stream
        return unpack_tensor_frame(handle)[2]

    def _send(self, data: bytes) -> None:
        with self._send_lock:
            _send_bytes(self._sock, data)

    def send_result(self, req_id: int, handle, out: np.ndarray, corrupt: bool = False) -> None:
        frame = pack_tensor_frame(req_id, out)
        if corrupt:
            # injected fault: flip the last payload byte *after* the
            # checksum was computed — the router's verify must catch it
            frame = frame[:-1] + bytes([frame[-1] ^ 0xFF])
        self._send(frame)

    def send_error(self, req_id: int, handle, code: str, text: str) -> None:
        self._send(pack_control_frame(("err", req_id, code, text)))

    def send_trace(self, req_id: int, spans: list[dict]) -> None:
        self._send(pack_control_frame(("trace", req_id, spans)))

    def send_model_ack(self, op: str, name: str, detail: str | None) -> None:
        self._send(pack_control_frame(("model", op, name, detail)))

    def send_ready(self, pid: int) -> None:
        self._send(pack_control_frame(("ready", pid)))

    def send_pong(self, seq: int, stats: dict | None) -> None:
        self._send(pack_control_frame(("pong", seq, stats)))

    def send_bye(self, stats: dict | None) -> None:
        self._send(pack_control_frame(("bye", stats)))

    def send_fatal(self, text: str) -> None:
        self._send(pack_control_frame(("fatal", text)))

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass


def _serve_connection(conn: socket.socket) -> None:
    """Handshake + serve one router connection until stop/EOF."""
    from repro.runtime.worker import run_worker

    bundle_paths: list[str] = []
    try:
        ftype, body = read_frame(conn)
        msg = unpack_control_body(body) if ftype != FRAME_TENSOR else None
        if not (isinstance(msg, tuple) and msg and msg[0] == "hello"):
            raise TransportClosedError("peer did not open with a hello handshake")
        info = msg[1]
        transport = TcpWorkerTransport(
            _configure(conn), payload_capacity=info.get("payload_bytes")
        )
        if info.get("protocol") != PROTOCOL_VERSION:
            # answer with a fatal frame so the router sees *why* instead
            # of an unexplained disconnect (version skew across hosts is
            # exactly the failure a remote deploy hits first)
            text = (
                f"protocol mismatch: router speaks {info.get('protocol')}, "
                f"worker speaks {PROTOCOL_VERSION}"
            )
            try:
                transport.send_fatal(text)
            except TransportClosedError:
                pass
            raise TransportClosedError(text)
        specs: dict[str, SessionSpec] = dict(info["specs"])
        bundles: dict[str, tuple] = info.get("bundles") or {}
        try:
            for name, payload in bundles.items():
                if payload is None or name not in specs:
                    continue
                # the router may not share our filesystem: verify the
                # shipped bundle (size + CRC — a truncated multi-bundle
                # handshake must fail typed, not half-load the zoo) and
                # materialize it locally
                data = verify_bundle_payload(name, payload)
                fd, path = tempfile.mkstemp(
                    prefix=f"repro-bundle-{name}-", suffix=".npz"
                )
                bundle_paths.append(path)
                with os.fdopen(fd, "wb") as fh:
                    fh.write(data)
                specs[name] = dataclasses.replace(specs[name], bundle_path=path)
        except CorruptedPayloadError as exc:
            try:
                transport.send_fatal(str(exc))
            except TransportClosedError:
                pass
            raise TransportClosedError(str(exc))
        run_worker(specs, transport, info.get("fault_plan"))
    except (TransportClosedError, EOFError, OSError):
        pass  # router vanished mid-handshake/serve: back to accept()
    finally:
        try:
            conn.close()
        except OSError:
            pass
        for path in bundle_paths:
            try:
                os.unlink(path)
            except OSError:
                pass


def worker_serve(
    host: str,
    port: int,
    *,
    once: bool = False,
    on_bound=None,
    log=None,
) -> None:
    """Accept-loop of ``python -m repro worker --listen HOST:PORT``.

    Serves one router connection at a time (a shard worker has exactly
    one router); when that router disconnects — drain, crash, or network
    blip — the worker returns to ``accept()`` so the router's respawn
    logic can simply reconnect.  ``once=True`` exits after the first
    connection ends (used by :class:`LocalTcpLauncher`, whose router
    respawns whole processes).  ``on_bound(port)`` reports the actual
    port after binding (for ``port=0`` ephemeral listens).
    """
    srv = socket.create_server((host, port), backlog=4)
    try:
        bound = srv.getsockname()[1]
        if on_bound is not None:
            on_bound(bound)
        if log is not None:
            log(f"worker listening on {host}:{bound}")
        while True:
            conn, addr = srv.accept()
            if log is not None:
                log(f"router connected from {addr[0]}:{addr[1]}")
            _serve_connection(conn)
            if log is not None:
                log("router disconnected; awaiting a new connection")
            if once:
                return
    finally:
        srv.close()


def _tcp_worker_main(report_conn) -> None:
    """Spawn target for :class:`LocalTcpLauncher` (module-level: must be
    importable under spawn).  Binds an ephemeral loopback port, reports
    it back through the bootstrap pipe, serves one router connection."""
    def on_bound(port: int) -> None:
        report_conn.send(port)
        report_conn.close()

    worker_serve("127.0.0.1", 0, once=True, on_bound=on_bound)


# ----------------------------------------------------------------------
# Router side
# ----------------------------------------------------------------------
class TcpShardEndpoint(ShardEndpoint):
    """Router half of one shard connection (local or remote worker)."""

    def __init__(
        self,
        sock: socket.socket,
        *,
        credits: int,
        process=None,
        address: str | None = None,
        heartbeat_timeout_s: float | None = DEFAULT_HEARTBEAT_TIMEOUT_S,
    ) -> None:
        self._sock = sock
        self._gate = CreditGate(credits)
        self.process = process  # local worker process handle, or None (remote)
        self.address = address
        self._heartbeat_timeout_s = heartbeat_timeout_s
        self._send_lock = threading.Lock()
        self._token_lock = threading.Lock()
        self._tokens: dict[int, int] = {}  # req_id -> credit token
        self._dead = threading.Event()
        self._last_rx = time.monotonic()
        self._got_frame = False

    # -- backpressure ---------------------------------------------------
    def acquire(self, timeout: float | None = None) -> int | None:
        try:
            return self._gate.acquire(timeout=timeout)
        except RuntimeError as exc:
            raise TransportClosedError(str(exc)) from exc

    def release(self, token: int) -> None:
        try:
            self._gate.release(token)
        except ValueError:
            pass  # already back (endpoint torn down under us)

    def _release_for(self, req_id: int) -> None:
        with self._token_lock:
            token = self._tokens.pop(req_id, None)
        if token is not None:
            self.release(token)

    # -- sending --------------------------------------------------------
    def send_request(
        self,
        token: int,
        req_id: int,
        x: np.ndarray,
        deadline_at: float | None,
        trace_id: int = 0,
        model: str = "",
    ) -> None:
        remaining = None if deadline_at is None else deadline_at - time.monotonic()
        frame = pack_tensor_frame(req_id, x, remaining, trace_id, model)
        with self._token_lock:
            self._tokens[req_id] = token  # mapped before send: the reply may race us
        try:
            with self._send_lock:
                _send_bytes(self._sock, frame)
        except TransportClosedError:
            self._dead.set()
            raise

    def send_ping(self, seq: int) -> None:
        self._send_control(("ping", seq))

    def send_stop(self) -> None:
        self._send_control(("stop",))

    def send_control(self, msg: tuple) -> None:
        self._send_control(msg)

    def _send_control(self, msg) -> None:
        try:
            with self._send_lock:
                _send_bytes(self._sock, pack_control_frame(msg))
        except TransportClosedError:
            self._dead.set()
            raise

    # -- receiving ------------------------------------------------------
    def recv(self) -> tuple:
        try:
            ftype, body = read_frame(self._sock)
        except TransportClosedError:
            self._dead.set()
            raise
        self._last_rx = time.monotonic()
        self._got_frame = True
        if ftype == FRAME_TENSOR:
            try:
                req_id, _, out, _, _ = unpack_tensor_frame(body)
                err: Exception | None = None
            except Exception as exc:  # CorruptedPayloadError: retryable
                rid = tensor_frame_req_id(body)
                if rid is None:
                    self._dead.set()
                    raise TransportClosedError(
                        "undecodable tensor frame (stream desynchronized)"
                    ) from exc
                req_id, out, err = rid, None, exc
            self._release_for(req_id)
            return ("res", req_id, out, err)
        msg = unpack_control_body(body)
        if msg[0] == "err":
            self._release_for(msg[1])
        return msg  # err / ready / pong / bye / fatal / model

    # -- lifecycle ------------------------------------------------------
    @property
    def pid(self) -> int | None:
        return self.process.pid if self.process is not None else None

    def alive(self) -> bool:
        if self._dead.is_set():
            return False
        if self.process is not None:
            return self.process.is_alive()
        if self._heartbeat_timeout_s is not None and self._got_frame:
            # half-open detection: a healthy worker answers pings, so a
            # frameless connection this old is wedged even without EOF
            return (time.monotonic() - self._last_rx) <= self._heartbeat_timeout_s
        return True

    def kill(self) -> None:
        self._dead.set()
        if self.process is not None:
            self.process.terminate()
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def join(self, timeout: float | None = None) -> None:
        if self.process is not None:
            self.process.join(timeout=timeout)
        else:
            self._dead.wait(timeout=timeout)

    def close(self) -> None:
        self._dead.set()
        self._gate.close()  # wake any dispatcher blocked on acquire
        try:
            self._sock.close()
        except OSError:
            pass


def _handshake(
    sock: socket.socket,
    specs: dict[str, SessionSpec],
    *,
    bundles: dict[str, tuple] | None,
    fault_plan: FaultPlan | None,
    payload_bytes: int | None,
) -> None:
    _send_bytes(
        sock,
        pack_control_frame(
            ("hello", {
                "protocol": PROTOCOL_VERSION,
                "specs": dict(specs),
                "bundles": dict(bundles) if bundles else {},
                "fault_plan": fault_plan,
                "payload_bytes": payload_bytes,
            })
        ),
    )


class LocalTcpLauncher(ShardLauncher):
    """Spawns loopback worker processes and connects to them over TCP.

    Functionally equivalent to the shm launcher (local processes, crash
    = process death, respawn = fresh process) but every byte moves over
    a real socket — which is exactly what lets the whole cluster test
    matrix run unchanged against the TCP stack.
    """

    kind = "tcp"

    def __init__(
        self,
        specs: dict[str, SessionSpec],
        *,
        slots_per_shard: int,
        slot_bytes: int,
        ctx,
        fault_plan: FaultPlan | None = None,
        worker_env: dict[str, str] | None = None,
        connect_timeout_s: float = 30.0,
        heartbeat_timeout_s: float | None = DEFAULT_HEARTBEAT_TIMEOUT_S,
    ) -> None:
        self.specs = specs
        self.slots_per_shard = slots_per_shard
        self.slot_bytes = slot_bytes
        self._ctx = ctx
        self._fault_plan = fault_plan
        self._worker_env = worker_env
        self._connect_timeout_s = connect_timeout_s
        self._heartbeat_timeout_s = heartbeat_timeout_s

    def launch(self, index: int) -> TcpShardEndpoint:
        parent_conn, child_conn = self._ctx.Pipe(duplex=False)
        process = self._ctx.Process(
            target=_tcp_worker_main,
            args=(child_conn,),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        spawn_with_env(process, self._worker_env)
        child_conn.close()
        sock = None
        try:
            if not parent_conn.poll(self._connect_timeout_s):
                raise RuntimeError(
                    f"shard {index} worker never reported its port "
                    f"(waited {self._connect_timeout_s}s)"
                )
            port = parent_conn.recv()
            sock = _configure(
                socket.create_connection(("127.0.0.1", port), timeout=self._connect_timeout_s)
            )
            # local workers share the filesystem: every spec's bundle
            # path is readable as-is, so build failures surface in the
            # worker (as "fatal") exactly like the shm transport
            _handshake(sock, self.specs, bundles=None, fault_plan=self._fault_plan,
                       payload_bytes=self.slot_bytes)
            return TcpShardEndpoint(
                sock, credits=self.slots_per_shard, process=process,
                address=f"127.0.0.1:{port}",
                heartbeat_timeout_s=self._heartbeat_timeout_s,
            )
        except BaseException:
            if sock is not None:
                try:
                    sock.close()
                except OSError:
                    pass
            process.terminate()
            process.join(timeout=5.0)
            raise
        finally:
            parent_conn.close()


class RemoteTcpLauncher(ShardLauncher):
    """Connects to externally started workers
    (``python -m repro worker --listen HOST:PORT``), one address per
    shard index.  A respawn is a reconnect: the worker's accept loop
    survives router disconnects, so bounded connect retries (with
    backoff) bring a blipped shard back; an unreachable one exhausts the
    budget and is marked permanently failed by the router.

    Founding shards map onto ``addresses`` by index; shards added to a
    live cluster are pinned to their address with :meth:`assign` (so
    ``addresses`` may be empty when every shard is assigned that way —
    the elastic add-by-address path on an otherwise-local cluster)."""

    kind = "tcp"

    def __init__(
        self,
        specs: dict[str, SessionSpec],
        addresses: list[str],
        *,
        slots_per_shard: int,
        slot_bytes: int,
        fault_plan: FaultPlan | None = None,
        connect_timeout_s: float = 10.0,
        heartbeat_timeout_s: float | None = DEFAULT_HEARTBEAT_TIMEOUT_S,
    ) -> None:
        self.specs = specs
        self.addresses = [parse_hostport(a) and a for a in addresses]  # validate early
        #: explicit index -> address pins (elastic membership adds);
        #: indices without a pin fall back to the founding address list
        self._assigned: dict[int, str] = {}
        self.slots_per_shard = slots_per_shard
        self.slot_bytes = slot_bytes
        self._fault_plan = fault_plan
        self._connect_timeout_s = connect_timeout_s
        self._heartbeat_timeout_s = heartbeat_timeout_s
        #: bundle_path -> packed (crc32, size, bytes) payload or None,
        #: read once per path and reused by every (re)connect; keyed by
        #: path (not model name) so a hot-reloaded model with a new
        #: bundle ships fresh bytes
        self._bundle_cache: dict[str, tuple | None] = {}

    def _bundle_payloads(self, specs: dict[str, SessionSpec]) -> dict[str, tuple]:
        """Ship each model's session bundle (CRC-framed) unless it is
        unreadable here (then the worker falls back to the spec's own
        path — and a worker that cannot read it either reports the build
        failure as fatal)."""
        payloads: dict[str, tuple] = {}
        for name, spec in specs.items():
            path = spec.bundle_path
            if path not in self._bundle_cache:
                try:
                    with open(path, "rb") as fh:
                        self._bundle_cache[path] = pack_bundle_payload(fh.read())
                except OSError:
                    self._bundle_cache[path] = None
            payload = self._bundle_cache[path]
            if payload is not None:
                payloads[name] = payload
        return payloads

    def assign(self, index: int, address: str) -> None:
        """Pin one shard index to a worker address; ``launch(index)``
        (and every relaunch — the respawn/reconnect path) connects
        there from now on."""
        parse_hostport(address)
        self._assigned[index] = address

    def launch(self, index: int) -> TcpShardEndpoint:
        address = self._assigned.get(index)
        if address is None:
            if not self.addresses:
                raise RuntimeError(
                    f"shard {index} has no assigned address and the launcher "
                    "has no founding address list"
                )
            address = self.addresses[index % len(self.addresses)]
        host, port = parse_hostport(address)
        last: Exception | None = None
        for attempt in range(CONNECT_RETRIES):
            if attempt:
                time.sleep(CONNECT_BACKOFF_S * (2 ** (attempt - 1)))
            try:
                sock = _configure(
                    socket.create_connection((host, port), timeout=self._connect_timeout_s)
                )
                break
            except OSError as exc:
                last = exc
        else:
            raise RuntimeError(
                f"shard {index} unreachable at {address} after {CONNECT_RETRIES} "
                f"attempts: {last}"
            )
        try:
            specs = dict(self.specs)  # snapshot the live registry at connect time
            _handshake(sock, specs, bundles=self._bundle_payloads(specs),
                       fault_plan=self._fault_plan, payload_bytes=self.slot_bytes)
        except BaseException:
            try:
                sock.close()
            except OSError:
                pass
            raise
        return TcpShardEndpoint(
            sock, credits=self.slots_per_shard, process=None, address=address,
            heartbeat_timeout_s=self._heartbeat_timeout_s,
        )
