"""Shared-memory shard transport: slot rings + control pipes.

This is PR 3's single-host transport, repackaged behind the
:mod:`repro.runtime.transport` protocol with its wire behaviour
**preserved bitwise**: request/response tensors still move through
per-worker :class:`~repro.runtime.shm_ring.ShmSlotRing` slots (one slot
carries the request in *and* the response out; the slot count is the
per-shard backpressure bound), and only the same tiny control tuples
cross the ``multiprocessing.Pipe``:

    router -> worker: ``("req", req_id, slot, shape, dtype, crc, deadline_at,
                      trace_id, model)``, ``("ping", seq)``, ``("stop",)``,
                      ``("load", name, spec, payload)``, ``("unload", name)``
    worker -> router: ``("ready", pid)``, ``("res", req_id, slot, shape, dtype, crc)``,
                      ``("err", req_id, slot, code, text)``,
                      ``("trace", req_id, spans)``,
                      ``("model", op, name, detail)``,
                      ``("pong", seq, stats)``, ``("bye", stats)``, ``("fatal", text)``

Deadlines cross the boundary as absolute ``time.monotonic`` values,
which is valid precisely because this transport never leaves the host
(CLOCK_MONOTONIC is system-wide on Linux) — the TCP transport is the one
that must re-anchor clocks.
"""

from __future__ import annotations

import os
import threading

import numpy as np

from repro.runtime.faults import FaultPlan
from repro.runtime.resilience import CorruptedPayloadError
from repro.runtime.session import SessionSpec
from repro.runtime.shm_ring import ShmSlotRing
from repro.runtime.transport import (
    ShardEndpoint,
    ShardLauncher,
    TransportClosedError,
    WorkerTransport,
)

__all__ = ["ShmShardEndpoint", "ShmWorkerTransport", "ShmShardLauncher", "spawn_with_env"]


def spawn_with_env(process, worker_env: dict[str, str] | None) -> None:
    """Start ``process`` with ``worker_env`` overlaid on the parent
    environment (restored afterwards) — e.g. pin BLAS threads per worker
    with ``{"OPENBLAS_NUM_THREADS": "1"}`` so shards don't fight over
    cores."""
    saved_env: dict[str, str | None] = {}
    if worker_env:
        saved_env = {k: os.environ.get(k) for k in worker_env}
        os.environ.update(worker_env)
    try:
        process.start()
    finally:
        for key, value in saved_env.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------
class ShmWorkerTransport(WorkerTransport):
    """Worker half: reads control tuples off the pipe, payloads out of
    the shared ring; replies go back into the request's own slot."""

    def __init__(self, conn, ring: ShmSlotRing) -> None:
        self._conn = conn
        self._ring = ring
        self._send_lock = threading.Lock()
        self.payload_capacity = ring.slot_bytes

    def _send(self, msg) -> None:
        with self._send_lock:
            try:
                self._conn.send(msg)
            except (BrokenPipeError, OSError) as exc:
                raise TransportClosedError(str(exc)) from exc

    def recv(self) -> tuple:
        try:
            msg = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise TransportClosedError(str(exc)) from exc
        if msg[0] == "req":
            _, req_id, slot, shape, dtype, crc, deadline_at, trace_id, model = msg
            # same host, system-wide monotonic clock: the absolute
            # deadline needs no re-anchoring
            return ("req", req_id, deadline_at, trace_id, model, (slot, shape, dtype, crc))
        return msg  # ("ping", seq) / ("stop",) / ("load", ...) / ("unload", ...)

    def read_payload(self, handle) -> np.ndarray:
        slot, shape, dtype, crc = handle
        return self._ring.read(slot, shape, dtype, crc)

    def send_result(self, req_id: int, handle, out: np.ndarray, corrupt: bool = False) -> None:
        slot = handle[0]
        shape, dtype, crc = self._ring.write(slot, out)
        if corrupt:
            # injected fault: clobber the payload *after* the checksum was
            # computed — the router's verification must catch it
            self._ring.corrupt(slot)
        self._send(("res", req_id, slot, shape, dtype, crc))

    def send_error(self, req_id: int, handle, code: str, text: str) -> None:
        self._send(("err", req_id, handle[0], code, text))

    def send_trace(self, req_id: int, spans: list[dict]) -> None:
        self._send(("trace", req_id, spans))

    def send_model_ack(self, op: str, name: str, detail: str | None) -> None:
        self._send(("model", op, name, detail))

    def send_ready(self, pid: int) -> None:
        self._send(("ready", pid))

    def send_pong(self, seq: int, stats: dict | None) -> None:
        self._send(("pong", seq, stats))

    def send_bye(self, stats: dict | None) -> None:
        self._send(("bye", stats))

    def send_fatal(self, text: str) -> None:
        self._send(("fatal", text))

    def close(self) -> None:
        try:
            self._ring.close()
        except BufferError:  # a reply thread still holds a view
            pass
        try:
            self._conn.close()
        except OSError:
            pass


def _shm_worker_main(
    specs: dict[str, SessionSpec],
    ring_name: str,
    slots: int,
    slot_bytes: int,
    conn,
    fault_plan: FaultPlan | None = None,
) -> None:
    """Spawn target (module-level: must be importable under spawn)."""
    from repro.runtime.worker import run_worker

    ring = ShmSlotRing.attach(ring_name, slots, slot_bytes)
    run_worker(specs, ShmWorkerTransport(conn, ring), fault_plan)


# ----------------------------------------------------------------------
# Router side
# ----------------------------------------------------------------------
class ShmShardEndpoint(ShardEndpoint):
    """Router half: owns the slot lifecycle (acquire/release) and the
    worker process handle; normalizes pipe tuples into protocol events."""

    def __init__(self, process, conn, ring: ShmSlotRing) -> None:
        self.process = process
        self._conn = conn
        self._ring = ring
        self._send_lock = threading.Lock()

    # -- backpressure ---------------------------------------------------
    def acquire(self, timeout: float | None = None) -> int | None:
        try:
            return self._ring.acquire(timeout=timeout)
        except RuntimeError as exc:  # ring closed: shard died while we waited
            raise TransportClosedError(str(exc)) from exc

    def release(self, token: int) -> None:
        try:
            self._ring.release(token)
        except (RuntimeError, ValueError):
            pass  # ring already torn down with the shard

    # -- sending --------------------------------------------------------
    def send_request(
        self,
        token: int,
        req_id: int,
        x: np.ndarray,
        deadline_at: float | None,
        trace_id: int = 0,
        model: str = "",
    ) -> None:
        shape, dtype, crc = self._ring.write(token, x)
        self._send(("req", req_id, token, shape, dtype, crc, deadline_at, trace_id, model))

    def send_ping(self, seq: int) -> None:
        self._send(("ping", seq))

    def send_stop(self) -> None:
        self._send(("stop",))

    def send_control(self, msg: tuple) -> None:
        self._send(msg)

    def _send(self, msg) -> None:
        with self._send_lock:
            try:
                self._conn.send(msg)
            except (BrokenPipeError, OSError) as exc:
                raise TransportClosedError(str(exc)) from exc

    # -- receiving ------------------------------------------------------
    def recv(self) -> tuple:
        try:
            msg = self._conn.recv()
        except (EOFError, OSError) as exc:
            raise TransportClosedError(str(exc)) from exc
        kind = msg[0]
        if kind == "res":
            _, req_id, slot, shape, dtype, crc = msg
            try:
                out = self._ring.read(slot, shape, dtype, crc)
                err: Exception | None = None
            except CorruptedPayloadError as exc:  # transport corruption: retryable
                out, err = None, exc
            except Exception as exc:  # torn ring (shard raced a close)
                out, err = None, exc
            self.release(slot)
            return ("res", req_id, out, err)
        if kind == "err":
            _, req_id, slot, code, text = msg
            self.release(slot)
            return ("err", req_id, code, text)
        return msg  # ready / pong / bye / fatal

    # -- lifecycle ------------------------------------------------------
    @property
    def pid(self) -> int | None:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.is_alive()

    def kill(self) -> None:
        self.process.terminate()

    def join(self, timeout: float | None = None) -> None:
        self.process.join(timeout=timeout)

    def close(self) -> None:
        """Best-effort retire: ``SharedMemory.close`` raises
        ``BufferError`` while another thread is mid write/read with a
        live view — a real window when a shard dies under concurrent
        submits — so the final close is retried by :meth:`dispose` at
        server shutdown."""
        try:
            self._conn.close()
        except OSError:
            pass
        try:
            self._ring.close()
        except BufferError:
            pass

    def dispose(self) -> None:
        try:
            self._ring.close()
        except BufferError:  # a straggler thread still holds a view
            pass
        self._ring.unlink()


class ShmShardLauncher(ShardLauncher):
    """Spawns local worker processes wired up with a fresh ring + pipe.

    ``specs`` is the cluster's **live** model registry (shared by
    reference, mutated by hot load/unload): every launch — founding
    shard, respawn after a crash, elastic ``add_shard`` — snapshots the
    registry at spawn time, so a new incarnation always builds the
    current model set.
    """

    kind = "shm"

    def __init__(
        self,
        specs: dict[str, SessionSpec],
        *,
        slots_per_shard: int,
        slot_bytes: int,
        ctx,
        fault_plan: FaultPlan | None = None,
        worker_env: dict[str, str] | None = None,
    ) -> None:
        self.specs = specs
        self.slots_per_shard = slots_per_shard
        self.slot_bytes = slot_bytes
        self._ctx = ctx
        self._fault_plan = fault_plan
        self._worker_env = worker_env

    def launch(self, index: int) -> ShmShardEndpoint:
        ring = ShmSlotRing.create(self.slots_per_shard, self.slot_bytes)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_shm_worker_main,
            args=(dict(self.specs), ring.name, self.slots_per_shard, ring.slot_bytes,
                  child_conn, self._fault_plan),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        spawn_with_env(process, self._worker_env)
        child_conn.close()  # parent keeps one end; EOF then tracks the worker's life
        return ShmShardEndpoint(process, parent_conn, ring)
