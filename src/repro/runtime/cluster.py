"""Multi-process sharded serving: worker pool + shared-memory transport.

One :class:`~repro.runtime.serving.MicroBatchServer` tops out at a
single Python process — aggregate throughput is capped by the GIL and
one arena/kernel-cache domain.  :class:`ShardedServer` scales past that
by replicating the whole compiled engine across OS processes, the same
way PatDNN-class runtimes replicate compiled models across execution
units:

* **Worker pool** — N worker processes, each rebuilding its own
  :class:`~repro.runtime.session.InferenceSession` (plus its in-process
  micro-batching front-end) from a picklable
  :class:`~repro.runtime.session.SessionSpec`.  Sessions hold compiled
  kernel closures and cannot be pickled; the spec + on-disk artifact
  bundle can.
* **Shared-memory transport** — request and response tensors move
  through per-worker :class:`~repro.runtime.shm_ring.ShmSlotRing`
  slots instead of being pickled through the control pipe; only tiny
  ``(request id, slot, shape, dtype)`` tuples cross the pipe.  A
  request's slot does double duty (input in, output back out), so slot
  lifecycle stays entirely router-owned and the slot count doubles as
  per-shard backpressure.
* **Load-aware router** — :meth:`ShardedServer.submit` keeps the PR 2
  futures API and routes each request to the live shard with the fewest
  outstanding requests.
* **Self-healing** — a health monitor pings workers for liveness and
  serving stats; a crashed shard fails its in-flight futures with
  :class:`ShardCrashedError` (clients see errors, never hangs) and is
  respawned automatically.  A shard that keeps dying young (e.g. its
  bundle path is unreadable in the worker) is marked permanently failed
  instead of respawn-looping.

Usage::

    from repro.runtime import SessionSpec, ShardedServer

    spec = SessionSpec.capture("smallcnn", model, (3, 16, 16), "bundle.npz",
                               pattern_set=ps, assignments=result.assignments,
                               model_kwargs={"channels": (16, 32), "in_size": 16})
    with ShardedServer(spec, num_shards=4) as server:
        futures = [server.submit(x) for x in samples]      # many threads
        outs = [f.result() for f in futures]
        print(server.cluster_stats["mean_batch"])

Workers are spawned (not forked) by default: a forked child would
inherit arbitrary lock/thread state from a serving process mid-flight,
and the spec is picklable precisely so spawn works.
"""

from __future__ import annotations

import itertools
import os
import threading
import time
from concurrent.futures import Future
from math import prod
from multiprocessing import get_context

import numpy as np

from repro.runtime.session import SessionSpec
from repro.runtime.shm_ring import ShmSlotRing

__all__ = ["ShardedServer", "ShardCrashedError", "projected_smallcnn_spec"]

#: a shard dying within this many seconds of spawn, before serving
#: anything, counts as an "early death" (permanent failure after two)
_FAST_FAIL_S = 5.0


class ShardCrashedError(RuntimeError):
    """The shard holding this request died before responding."""


# ----------------------------------------------------------------------
# Worker process
# ----------------------------------------------------------------------
def _worker_main(spec: SessionSpec, ring_name: str, slots: int, slot_bytes: int, conn) -> None:
    """Shard worker body (module-level: must be importable under spawn).

    Rebuilds the session from the spec, then serves the control pipe:
    each ``req`` payload is copied out of its shared-memory slot,
    submitted to the session's micro-batching front-end, and the
    response written back into the *same* slot when the future resolves.
    """
    send_lock = threading.Lock()

    def _send(msg) -> None:
        with send_lock:
            try:
                conn.send(msg)
            except (BrokenPipeError, OSError):
                pass  # router is gone; nothing useful left to do with results

    try:
        session = spec.build()
    except BaseException as exc:  # surface build failures instead of respawn-looping
        _send(("fatal", f"{type(exc).__name__}: {exc}"))
        conn.close()
        return

    ring = ShmSlotRing.attach(ring_name, slots, slot_bytes)

    def _reply(req_id: int, slot: int, fut: Future) -> None:
        exc = fut.exception()
        if exc is not None:
            _send(("err", req_id, slot, f"{type(exc).__name__}: {exc}"))
            return
        out = np.ascontiguousarray(fut.result())
        if out.nbytes > ring.slot_bytes:
            _send(
                ("err", req_id, slot,
                 f"output of {out.nbytes} bytes exceeds the {ring.slot_bytes}-byte slot")
            )
            return
        shape, dtype = ring.write(slot, out)
        _send(("res", req_id, slot, shape, dtype))

    stats = None  # the ServingStats object outlives session.close()
    try:
        _send(("ready", os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                return  # router died; daemon worker just exits
            kind = msg[0]
            if kind == "stop":
                return
            if kind == "ping":
                stats = session.serving_stats or stats
                _send(("pong", msg[1], stats.snapshot() if stats is not None else None))
            elif kind == "req":
                _, req_id, slot, shape, dtype = msg
                x = ring.read(slot, shape, dtype)  # copy: slot is reusable for the reply
                stats = session.serving_stats or stats
                fut = session.submit(x)
                fut.add_done_callback(lambda f, r=req_id, s=slot: _reply(r, s, f))
    finally:
        stats = session.serving_stats or stats
        session.close()  # graceful drain: in-flight futures resolve, replies go out
        _send(("bye", stats.snapshot() if stats is not None else None))
        ring.close()
        conn.close()


# ----------------------------------------------------------------------
# Router-side shard bookkeeping
# ----------------------------------------------------------------------
class _Shard:
    """One worker incarnation as seen by the router."""

    def __init__(self, index: int, process, conn, ring: ShmSlotRing) -> None:
        self.index = index
        self.process = process
        self.conn = conn
        self.ring = ring
        self.lock = threading.Lock()  # pending/slot_of/counters
        self.send_lock = threading.Lock()
        self.pending: dict[int, Future] = {}
        self.slot_of: dict[int, int] = {}
        self.ready = threading.Event()
        self.down = False
        self.permanent = False  # down for good: no replacement is coming
        self.fail_reason: str | None = None
        self.spawned_at = time.monotonic()
        self.recv_thread: threading.Thread | None = None
        self.worker_stats: dict | None = None
        # cumulative across incarnations of this shard index
        self.requests = 0
        self.errors = 0
        self.respawns = 0
        self.early_deaths = 0

    @property
    def outstanding(self) -> int:
        return len(self.pending)


class ShardedServer:
    """Serve one model from N worker processes behind a load-aware router.

    Args:
        spec: picklable session recipe every worker rebuilds.
        num_shards: worker process count.
        slots_per_shard: shared-memory slots per worker — the bound on
            that worker's outstanding requests (backpressure).
        max_request_samples: largest ``N`` accepted per request; also
            sizes the slots (``max(input, output) elements x N x
            float32``), so larger requests raise instead of overflowing.
        health_interval_s: monitor period for liveness pings and
            serving-stats refresh.
        mp_start: multiprocessing start method (``spawn`` default; see
            module docstring).
        worker_env: extra environment for workers (e.g. pin BLAS threads
            with ``{"OPENBLAS_NUM_THREADS": "1"}`` so shards don't fight
            over cores); applied around spawn, parent env restored.
    """

    def __init__(
        self,
        spec: SessionSpec,
        num_shards: int = 2,
        *,
        slots_per_shard: int = 16,
        max_request_samples: int = 16,
        health_interval_s: float = 0.5,
        mp_start: str = "spawn",
        worker_env: dict[str, str] | None = None,
    ) -> None:
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if slots_per_shard < 1:
            raise ValueError(f"slots_per_shard must be >= 1, got {slots_per_shard}")
        self.spec = spec
        self.num_shards = num_shards
        self.slots_per_shard = slots_per_shard
        self.max_request_samples = max_request_samples
        self.health_interval_s = health_interval_s
        self._worker_env = dict(worker_env) if worker_env else None
        self._ctx = get_context(mp_start)
        elems = max(prod(spec.input_shape), prod(spec.probe_output_shape()))
        self._slot_bytes = max_request_samples * elems * np.dtype(np.float32).itemsize
        self._lock = threading.Lock()  # shard list mutation + down transitions
        self._closed = False
        self._req_ids = itertools.count()
        self._retired_rings: list[ShmSlotRing] = []
        self._shards: list[_Shard] = []
        try:
            for i in range(num_shards):
                self._shards.append(self._spawn_shard(i))
        except BaseException:
            # don't leak already-spawned workers/segments when a later
            # spawn fails (e.g. /dev/shm exhausted): nothing can call
            # close() on an object whose constructor raised
            self._closed = True  # recv threads must not respawn what we reap
            for shard in self._shards:
                shard.process.terminate()
                shard.process.join(timeout=5.0)
                self._retire_ring(shard.ring)
            for ring in self._retired_rings:
                ring.unlink()
            raise
        self._stop_monitor = threading.Event()
        self._ping_seq = itertools.count(1)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()

    # ------------------------------------------------------------------
    # Spawning / crash handling
    # ------------------------------------------------------------------
    def _spawn_shard(self, index: int) -> _Shard:
        ring = ShmSlotRing.create(self.slots_per_shard, self._slot_bytes)
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(self.spec, ring.name, self.slots_per_shard, ring.slot_bytes, child_conn),
            name=f"repro-shard-{index}",
            daemon=True,
        )
        saved_env: dict[str, str | None] = {}
        if self._worker_env:
            saved_env = {k: os.environ.get(k) for k in self._worker_env}
            os.environ.update(self._worker_env)
        try:
            process.start()
        finally:
            for key, value in saved_env.items():
                if value is None:
                    os.environ.pop(key, None)
                else:
                    os.environ[key] = value
        child_conn.close()  # parent keeps one end; EOF then tracks the worker's life
        shard = _Shard(index, process, parent_conn, ring)
        shard.recv_thread = threading.Thread(
            target=self._recv_loop, args=(shard,), name=f"repro-shard-{index}-recv", daemon=True
        )
        shard.recv_thread.start()
        return shard

    def _recv_loop(self, shard: _Shard) -> None:
        """Per-shard response pump: resolves futures, frees slots."""
        while True:
            try:
                msg = shard.conn.recv()
            except (EOFError, OSError):
                self._handle_shard_down(shard, "worker process died")
                return
            kind = msg[0]
            if kind == "res":
                _, req_id, slot, shape, dtype = msg
                try:
                    out = shard.ring.read(slot, shape, dtype)
                except Exception as exc:  # torn ring (shard raced a close)
                    out, read_err = None, exc
                else:
                    read_err = None
                with shard.lock:
                    fut = shard.pending.pop(req_id, None)
                    shard.slot_of.pop(req_id, None)
                self._release_slot(shard, slot)
                if fut is not None and fut.set_running_or_notify_cancel():
                    if read_err is None:
                        fut.set_result(out)
                    else:
                        fut.set_exception(read_err)
            elif kind == "err":
                _, req_id, slot, text = msg
                with shard.lock:
                    fut = shard.pending.pop(req_id, None)
                    shard.slot_of.pop(req_id, None)
                    shard.errors += 1
                self._release_slot(shard, slot)
                if fut is not None and fut.set_running_or_notify_cancel():
                    fut.set_exception(RuntimeError(f"shard {shard.index}: {text}"))
            elif kind == "pong":
                shard.worker_stats = msg[2]
            elif kind == "bye":
                shard.worker_stats = msg[1]
            elif kind == "ready":
                shard.ready.set()
            elif kind == "fatal":
                shard.fail_reason = f"worker failed to build session: {msg[1]}"

    @staticmethod
    def _release_slot(shard: _Shard, slot: int) -> None:
        try:
            shard.ring.release(slot)
        except (RuntimeError, ValueError):
            pass  # ring already torn down with the shard

    def _retire_ring(self, ring: ShmSlotRing) -> None:
        """Best-effort close now, unlink deferred to server close().

        ``SharedMemory.close`` raises ``BufferError`` if another thread
        is mid ``write``/``read`` with a live view on the buffer — a
        real window when a shard dies under concurrent submits.  The
        retired list retries close at server shutdown, when no request
        threads can be touching the ring anymore.
        """
        try:
            ring.close()
        except BufferError:
            pass
        self._retired_rings.append(ring)

    def _handle_shard_down(self, shard: _Shard, reason: str) -> None:
        """Fail a dead shard's in-flight requests; respawn unless closing.

        Idempotent per incarnation — the first caller (recv thread on
        EOF, submit on a broken pipe, or the monitor) wins.
        """
        with self._lock:
            if shard.down:
                return
            shard.down = True
            closing = self._closed
            lifetime = time.monotonic() - shard.spawned_at
            # a reported build failure is an early death no matter how
            # long the spawn+build took — respawning it cannot help
            early = shard.fail_reason is not None or (
                lifetime < _FAST_FAIL_S and not shard.ready.is_set()
            )
            shard.early_deaths = shard.early_deaths + 1 if early else 0
        with shard.lock:
            doomed = dict(shard.pending)
            shard.pending.clear()
            shard.slot_of.clear()
            shard.errors += len(doomed)
        detail = shard.fail_reason or reason
        for fut in doomed.values():
            if fut.set_running_or_notify_cancel():
                fut.set_exception(
                    ShardCrashedError(
                        f"shard {shard.index} crashed with the request in flight ({detail})"
                    )
                )
        if shard.process.is_alive():  # pipe died first (shouldn't happen) — reap anyway
            shard.process.terminate()
        shard.process.join(timeout=5.0)
        self._retire_ring(shard.ring)  # closed best-effort now, unlinked at close()
        if closing:
            return
        if shard.early_deaths >= 2:
            shard.permanent = True
            shard.fail_reason = (
                f"shard {shard.index} permanently failed: died {shard.early_deaths}x "
                f"right after spawn before serving ({detail})"
            )
            return
        with self._lock:
            if self._closed or self._shards[shard.index] is not shard:
                return
            replacement = self._spawn_shard(shard.index)
            replacement.requests = shard.requests
            replacement.errors = shard.errors
            replacement.respawns = shard.respawns + 1
            replacement.early_deaths = shard.early_deaths
            self._shards[shard.index] = replacement

    def _monitor_loop(self) -> None:
        """Liveness + stats heartbeat (crash detection itself is mostly
        event-driven: a dead worker's pipe EOFs its recv thread)."""
        while not self._stop_monitor.wait(self.health_interval_s):
            for shard in list(self._shards):
                if shard.down:
                    continue
                if not shard.process.is_alive():
                    self._handle_shard_down(shard, "worker process died")
                    continue
                try:
                    with shard.send_lock:
                        shard.conn.send(("ping", next(self._ping_seq)))
                except (BrokenPipeError, OSError):
                    self._handle_shard_down(shard, "health ping failed")

    # ------------------------------------------------------------------
    # Client API (same futures vocabulary as MicroBatchServer)
    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> Future:
        """Route one request to the least-loaded shard; future of logits.

        ``x`` is one ``(C, H, W)`` sample or an ``(N, C, H, W)`` batch
        with ``N <= max_request_samples``.  Blocks for backpressure when
        every shard's slot ring is full.  A request whose shard dies
        before its response lands fails with :class:`ShardCrashedError`
        (requests not yet sent are transparently retried elsewhere).
        """
        x = np.asarray(x)
        if x.ndim == 3:
            x = x[None]
        if x.ndim != 4:
            raise ValueError(f"expected (C, H, W) or (N, C, H, W) input, got shape {x.shape}")
        if x.shape[0] > self.max_request_samples:
            raise ValueError(
                f"request holds {x.shape[0]} samples but max_request_samples is "
                f"{self.max_request_samples}; split it client-side"
            )
        if x.nbytes > self._slot_bytes:
            raise ValueError(
                f"request of {x.nbytes} bytes ({x.dtype}) exceeds the "
                f"{self._slot_bytes}-byte transport slots (sized for float32)"
            )
        future: Future = Future()
        req_id = next(self._req_ids)
        while True:
            if self._closed:
                raise RuntimeError("ShardedServer is closed")
            shard = self._pick_shard()
            if shard is None:  # every shard is mid-respawn: wait it out
                time.sleep(0.05)
                continue
            try:
                slot = shard.ring.acquire(timeout=0.05)
            except RuntimeError:  # ring closed: shard died while we waited
                continue
            if slot is None:  # shard full — re-pick (load may have shifted)
                continue
            with shard.lock:
                if shard.down:
                    self._release_slot(shard, slot)
                    continue
                shard.pending[req_id] = future
                shard.slot_of[req_id] = slot
            try:
                shape, dtype = shard.ring.write(slot, x)
                with shard.send_lock:
                    shard.conn.send(("req", req_id, slot, shape, dtype))
                with shard.lock:
                    shard.requests += 1
                return future
            except Exception:
                with shard.lock:
                    owned = shard.pending.pop(req_id, None)
                    shard.slot_of.pop(req_id, None)
                self._handle_shard_down(shard, "request transport failed")
                if owned is None:
                    # the crash handler beat us to the future and failed it
                    return future

    #: alias matching ``InferenceSession.run_async`` / ``submit``
    run_async = submit

    def run(self, x: np.ndarray, timeout: float | None = None) -> np.ndarray:
        """Synchronous convenience: ``submit(x).result(timeout)``."""
        return self.submit(x).result(timeout)

    def _pick_shard(self) -> _Shard | None:
        """Least-outstanding-requests routing over live shards.

        Returns ``None`` during the transient window where every shard
        is down but at least one respawn is still coming (the caller
        waits and retries); raises only when failure is permanent.
        """
        live = [s for s in self._shards if not s.down]
        if live:
            return min(live, key=lambda s: s.outstanding)
        if any(not s.permanent for s in self._shards):
            return None
        reasons = sorted({s.fail_reason for s in self._shards if s.fail_reason})
        raise RuntimeError(
            "no live shards to route to" + (f" ({'; '.join(reasons)})" if reasons else "")
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_pids(self) -> list[int | None]:
        """Current worker PID per shard index (None before spawn)."""
        return [s.process.pid for s in self._shards]

    @property
    def cluster_stats(self) -> dict:
        """Aggregated router + worker counters (read any time).

        Per-shard: router-side ``requests``/``errors``/``outstanding``/
        ``respawns`` plus the worker's own serving-stats snapshot
        (``None`` until its first health pong).  Global: sums, plus
        worker-side batch counters and the cluster-wide mean batch.
        """
        shards = []
        totals = {"requests": 0, "errors": 0, "outstanding": 0, "respawns": 0}
        batches = samples = 0
        for s in self._shards:
            serving = s.worker_stats
            alive = not s.down and s.process.is_alive()
            entry = {
                "shard": s.index,
                "pid": s.process.pid,
                "alive": alive,
                "requests": s.requests,
                "errors": s.errors,
                "outstanding": s.outstanding,
                "respawns": s.respawns,
                "serving": serving,
            }
            shards.append(entry)
            totals["requests"] += s.requests
            totals["errors"] += s.errors
            totals["outstanding"] += s.outstanding
            totals["respawns"] += s.respawns
            if serving:
                batches += serving.get("batches", 0)
                samples += serving.get("samples", 0)
        return {
            "shards": shards,
            **totals,
            "alive_shards": sum(1 for e in shards if e["alive"]),
            "worker_batches": batches,
            "worker_samples": samples,
            "mean_batch": samples / batches if batches else 0.0,
        }

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Graceful drain: stop accepting, let workers finish in-flight
        requests, reap processes, release shared memory (idempotent)."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
        self._stop_monitor.set()
        self._monitor.join(timeout=5.0)
        deadline = time.monotonic() + timeout
        for shard in self._shards:
            if shard.down:
                continue
            try:
                with shard.send_lock:
                    shard.conn.send(("stop",))
            except (BrokenPipeError, OSError):
                pass
        for shard in self._shards:
            shard.process.join(timeout=max(0.0, deadline - time.monotonic()))
            if shard.process.is_alive():  # drain overran the deadline
                shard.process.terminate()
                shard.process.join(timeout=5.0)
        for shard in self._shards:
            if shard.recv_thread is not None:
                shard.recv_thread.join(timeout=5.0)
            # workers drained before exiting, so normally nothing is left
            with shard.lock:
                leftovers = dict(shard.pending)
                shard.pending.clear()
                shard.slot_of.clear()
                shard.errors += len(leftovers)
            for fut in leftovers.values():
                if fut.set_running_or_notify_cancel():
                    fut.set_exception(
                        RuntimeError("ShardedServer closed with the request unanswered")
                    )
            try:
                shard.conn.close()
            except OSError:
                pass
            self._retire_ring(shard.ring)
        for ring in self._retired_rings:
            try:
                ring.close()
            except BufferError:  # a straggler thread still holds a view
                pass
            ring.unlink()
        self._retired_rings.clear()

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Demo spec (CLI / examples / benchmarks)
# ----------------------------------------------------------------------
def projected_smallcnn_spec(
    bundle_path: str,
    *,
    channels: tuple[int, ...] = (8, 16),
    in_size: int = 8,
    num_patterns: int = 8,
    connectivity_rate: float = 2.0,
    seed: int = 7,
    **spec_kwargs,
) -> SessionSpec:
    """Build a pattern-pruned small CNN by direct projection and capture
    it as a :class:`SessionSpec` (bundle written to ``bundle_path``).

    One-shot hard projection instead of ADMM — seconds, not minutes —
    which is exactly what the serving demos and benchmarks need: a model
    whose conv layers genuinely execute through compiled FKW kernels.
    """
    from repro.core.masking import apply_masks, extract_masks
    from repro.core.patterns import PatternSet, enumerate_candidate_patterns
    from repro.core.projections import project_kernel_pattern
    from repro.models import build_small_cnn
    from repro import nn

    model = build_small_cnn(channels=channels, in_size=in_size, seed=seed)
    ps = PatternSet(enumerate_candidate_patterns()[:num_patterns])
    apply_masks(model, extract_masks(model, ps, connectivity_rate=connectivity_rate))
    model.eval()
    assignments = {}
    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            _, a = project_kernel_pattern(module.weight.data, ps)
            energy = (module.weight.data.reshape(a.shape[0], a.shape[1], -1) ** 2).sum(axis=2)
            assignments[name] = (a * (energy > 0)).astype(np.int32)
    model_kwargs = {"channels": tuple(channels), "in_size": in_size, "seed": seed}
    return SessionSpec.capture(
        "smallcnn",
        model,
        (3, in_size, in_size),
        str(bundle_path),
        pattern_set=ps,
        assignments=assignments,
        model_kwargs=model_kwargs,
        **spec_kwargs,
    )
