"""Sharded serving: a resilient, transport-neutral request router.

One :class:`~repro.runtime.serving.MicroBatchServer` tops out at a
single Python process — aggregate throughput is capped by the GIL and
one arena/kernel-cache domain.  :class:`ShardedServer` scales past that
by replicating the whole compiled engine across workers, the same way
PatDNN-class runtimes replicate compiled models across execution units:

* **Worker pool behind a transport seam** — N workers, each rebuilding
  its own :class:`~repro.runtime.session.InferenceSession` (plus its
  in-process micro-batching front-end) from a picklable
  :class:`~repro.runtime.session.SessionSpec`.  The router speaks only
  the abstract :class:`~repro.runtime.transport.ShardEndpoint` protocol,
  so *where a worker lives* is a plug-in choice:

  - ``transport="shm"`` (default) — local processes with per-worker
    :class:`~repro.runtime.shm_ring.ShmSlotRing` shared-memory slots
    (:mod:`repro.runtime.transport_shm`): PR 3's wire behaviour,
    preserved bitwise.
  - ``transport="tcp"`` — length-prefixed numpy frames over sockets
    (:mod:`repro.runtime.transport_tcp`): either local loopback workers,
    or — with ``shards=["host:port", ...]`` — workers started on other
    machines with ``python -m repro worker --listen HOST:PORT``.

  Payloads are CRC-checksummed both ways on every transport, so a
  corrupted buffer raises
  :class:`~repro.runtime.resilience.CorruptedPayloadError` (and is
  retried) instead of silently returning wrong numbers.
* **Resilient, latency-aware router** — :meth:`ShardedServer.submit`
  keeps the PR 2 futures API; each request's payload is retained while
  in flight, so a shard crash (or corrupted response, or stall timeout)
  transparently **retries** the request on a healthy shard, bounded by
  :attr:`~repro.runtime.resilience.ResilienceConfig.max_retries` —
  clients only see :class:`ShardCrashedError` once the retry budget is
  exhausted.  Optional **hedging** duplicates a slow request onto a
  second shard with strict only-once result delivery.  Routing weighs
  the workers' own p50/p95 latency reservoirs alongside outstanding
  counts (:func:`~repro.runtime.resilience.route_score`), and a
  per-shard **circuit breaker** (closed → open → half-open) takes a
  failing or stalled shard out of rotation until a probe succeeds.
  None of this code knows which transport is underneath.
* **Deadlines & admission control** — ``submit(x, deadline=...)``
  attaches a latency budget that propagates through the transport into
  each worker's micro-batcher (re-anchored across host clock domains by
  the TCP transport); over-deadline requests are shed with
  :class:`~repro.runtime.resilience.DeadlineExceededError` before they
  burn kernel time, and ``submit(x, timeout=...)`` fails fast with
  :class:`~repro.runtime.resilience.QueueFullError` when every
  transport slot stays busy (instead of blocking forever).
* **Self-healing** — a health monitor pings workers for liveness and
  serving stats; a crashed shard rehomes or fails its in-flight
  requests (clients see results or typed errors, never hangs) and is
  respawned automatically — for a remote shard, "respawn" means
  reconnecting to its address.  A shard that keeps dying young (e.g.
  its bundle path is unreadable in the worker) is marked permanently
  failed instead of respawn-looping.  A peer that disconnects while a
  graceful :meth:`close` is draining resolves its in-flight futures
  with a typed error immediately instead of letting clients wait out
  the drain timeout.
* **Elastic membership** — :meth:`ShardedServer.add_shard` joins a new
  worker to a *live* cluster (a local spawn, or an external
  ``host:port`` worker — also on an shm cluster, which then serves with
  mixed transports), and :meth:`ShardedServer.remove_shard` takes one
  out: routing stops first, in-flight requests settle under the usual
  deadline/retry machinery (typed errors, never hangs), then the
  endpoint is torn down and a ``shard_removed`` event is emitted.
  Membership lives in a generation-stamped shard map — indices are
  allocated monotonically and never reused, and every reader
  (routing, crash handling, stats, close) works on a point-in-time
  snapshot.  The same operations are exposed over the admin server
  (``POST /shards/add``, ``POST /shards/<id>/remove``) and a watched
  shard-list file (:class:`~repro.runtime.membership.ShardFileWatcher`,
  ``python -m repro serve --shard-file``).
* **Observability** — one :class:`~repro.runtime.telemetry.Telemetry`
  hub per server: the resilience counters live in a
  :class:`~repro.runtime.telemetry.MetricsRegistry` (the same cells
  ``cluster_stats`` reports), a deterministic sampler mints request
  **traces** whose ids travel inside the tensor frames so worker-side
  spans (queue wait, kernel execution, per-layer timings) splice into
  the router's timeline on any transport, lifecycle events (spawns,
  crashes, respawns, breaker flips, retries, hedges, injected faults)
  land in a bounded structured event log, and ``telemetry=
  TelemetryConfig(metrics_port=...)`` serves it all over HTTP —
  ``/metrics`` (Prometheus), ``/healthz``, ``/stats``, ``/traces``,
  ``/trace/<id>``, ``/events``.
* **Deterministic chaos** — a seeded
  :class:`~repro.runtime.faults.FaultPlan` can be injected to crash,
  stall, slow, corrupt, or slot-starve requests reproducibly; the
  hooks are no-ops when no plan is given, and work identically over
  every transport.

Usage::

    from repro.runtime import ResilienceConfig, SessionSpec, ShardedServer

    spec = SessionSpec.capture("smallcnn", model, (3, 16, 16), "bundle.npz",
                               pattern_set=ps, assignments=result.assignments,
                               model_kwargs={"channels": (16, 32), "in_size": 16})
    with ShardedServer(spec, num_shards=4,
                       resilience=ResilienceConfig(max_retries=2)) as server:
        futures = [server.submit(x, deadline=0.5) for x in samples]
        outs = [f.result() for f in futures]
        print(server.cluster_stats["retries"], server.cluster_stats["mean_batch"])

    # same cluster, shards on other machines:
    with ShardedServer(spec, shards=["10.0.0.5:7070", "10.0.0.6:7070"]) as server:
        ...

    # a model zoo: every shard hosts the whole registry (sessions share
    # the worker's kernel cache and arena), clients pick per request
    with ShardedServer(specs={"small": spec_a, "large": spec_b}) as server:
        fut = server.submit(x, model="small")
        server.load_model("medium", spec_c)     # hot load, all live shards
        server.unload_model("large")            # drained removal

Local workers are spawned (not forked) by default: a forked child would
inherit arbitrary lock/thread state from a serving process mid-flight,
and the spec is picklable precisely so spawn works.
"""

from __future__ import annotations

import itertools
import threading
import time
from concurrent.futures import Future
from math import prod
from multiprocessing import get_context

import numpy as np

from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.metrics import LatencyReservoir
from repro.runtime.resilience import (
    CircuitBreaker,
    CorruptedPayloadError,
    DeadlineExceededError,
    QueueFullError,
    RequestTimeoutError,
    ResilienceConfig,
    UnknownModelError,
    route_score,
)
from repro.runtime.session import DEFAULT_MODEL, SessionSpec
from repro.runtime.telemetry import (
    AdminServer,
    MetricsRegistry,
    Telemetry,
    TelemetryConfig,
    render_prometheus,
)
from repro.runtime.transport import (
    MAX_MODEL_ID_BYTES,
    ShardEndpoint,
    ShardLauncher,
    TransportClosedError,
    pack_bundle_payload,
)
from repro.runtime.transport_shm import ShmShardLauncher
from repro.runtime.transport_tcp import LocalTcpLauncher, RemoteTcpLauncher, parse_hostport

__all__ = ["ShardedServer", "ShardCrashedError", "projected_smallcnn_spec"]

#: a shard dying within this many seconds of spawn, before serving
#: anything, counts as an "early death" (permanent failure after two)
_FAST_FAIL_S = 5.0


class ShardCrashedError(RuntimeError):
    """The shard holding this request died before responding (and the
    retry budget, if any, was exhausted)."""


def _validate_model_name(name) -> None:
    """Registry keys travel inside every tensor frame: non-empty str,
    bounded utf-8 length (the frame encodes it with a one-byte length)."""
    if not isinstance(name, str) or not name:
        raise ValueError(f"model names must be non-empty strings, got {name!r}")
    if len(name.encode("utf-8")) > MAX_MODEL_ID_BYTES:
        raise ValueError(
            f"model name {name!r} exceeds {MAX_MODEL_ID_BYTES} utf-8 bytes"
        )


# ----------------------------------------------------------------------
# Router-side request + shard bookkeeping
# ----------------------------------------------------------------------
class _InFlight:
    """One client request, across all its dispatch attempts.

    Retains the input payload so crash/stall/corruption can re-dispatch
    it, and owns the only-once delivery contract: however many attempts
    (retries, hedges) are racing, exactly one outcome reaches the
    client future — late losers are discarded (their transport capacity
    is still reclaimed by the normal reply path).
    """

    __slots__ = (
        "x", "future", "deadline_at", "attempts", "hedged", "stalled",
        "done", "lock", "created_at", "last_sent_at", "trace", "model",
    )

    def __init__(
        self, x: np.ndarray, future: Future, deadline_at: float | None, trace=None,
        model: str = DEFAULT_MODEL,
    ) -> None:
        self.x = x
        self.future = future
        self.deadline_at = deadline_at
        self.model = model
        self.attempts = 0
        self.hedged = False
        self.stalled = False
        self.done = False
        self.lock = threading.Lock()
        self.created_at = time.monotonic()
        self.last_sent_at = self.created_at
        #: router-side :class:`~repro.runtime.telemetry.Trace` for a
        #: sampled request (None = untraced); finished on delivery
        self.trace = trace

    def expired(self, now: float | None = None) -> bool:
        if self.deadline_at is None:
            return False
        return (time.monotonic() if now is None else now) >= self.deadline_at

    def try_claim_attempt(self, max_attempts: int) -> bool:
        """Reserve one dispatch attempt (False: done or budget spent)."""
        with self.lock:
            if self.done or self.attempts >= max_attempts:
                return False
            self.attempts += 1
            return True

    def unclaim_attempt(self) -> None:
        """Return an attempt that never made it onto a shard."""
        with self.lock:
            self.attempts = max(0, self.attempts - 1)

    def _finish(self) -> bool:
        with self.lock:
            if self.done:
                return False
            self.done = True
            self.x = None  # payload no longer needed; free it early
            return True

    def resolve_result(self, out: np.ndarray) -> bool:
        """Deliver a result if no other attempt beat us to it."""
        if not self._finish():
            return False
        if self.trace is not None:
            self.trace.finish("ok")
        if self.future.set_running_or_notify_cancel():
            self.future.set_result(out)
        return True

    def resolve_exception(self, exc: BaseException) -> bool:
        """Deliver a failure if no other attempt beat us to it."""
        if not self._finish():
            return False
        if self.trace is not None:
            self.trace.finish(type(exc).__name__)
        if self.future.set_running_or_notify_cancel():
            self.future.set_exception(exc)
        return True


class _Shard:
    """One worker incarnation as seen by the router."""

    def __init__(self, index: int, endpoint: ShardEndpoint, breaker: CircuitBreaker) -> None:
        self.index = index
        self.endpoint = endpoint
        self.breaker = breaker  # fresh per incarnation: a respawn starts clean
        self.lock = threading.Lock()  # pending/counters
        self.pending: dict[int, _InFlight] = {}
        self.ready = threading.Event()
        self.down = False
        self.permanent = False  # down for good: no replacement is coming
        self.draining = False  # no new routing; in-flight may still settle
        self.removing = False  # leaving the cluster: no respawn on death
        self.generation = 0  # membership generation that installed us
        self.fail_reason: str | None = None
        self.spawned_at = time.monotonic()
        self.last_routed_at = self.spawned_at
        self.recv_thread: threading.Thread | None = None
        self.worker_stats: dict | None = None
        # cumulative across incarnations of this shard index
        self.requests = 0
        self.errors = 0
        self.respawns = 0
        self.early_deaths = 0

    @property
    def process(self):
        """Local worker process handle (None for a remote shard)."""
        return getattr(self.endpoint, "process", None)

    @property
    def outstanding(self) -> int:
        return len(self.pending)

    def score(self) -> float:
        """Latency-aware routing score (lower = better candidate)."""
        stats = self.worker_stats or {}
        return route_score(
            self.outstanding, stats.get("p50_ms", 0.0), stats.get("p95_ms", 0.0)
        )


class ShardedServer:
    """Serve a registry of models from N workers behind a resilient,
    latency-aware, transport-neutral router.

    Every shard hosts the **whole registry**: one
    :class:`~repro.runtime.session.InferenceSession` per model sharing
    the worker's process-wide kernel cache and buffer arena, each behind
    its own micro-batch queue.  Clients pick a model per request with
    ``submit(x, model=...)``; a single-model cluster keeps the PR 2-9
    behaviour exactly (``model`` may be omitted).  The registry is
    elastic at runtime: :meth:`load_model` hot-loads a new model into
    every live shard, :meth:`unload_model` drains and removes one (the
    last model is refused — a serving cluster never goes empty).

    Args:
        spec: picklable session recipe every worker rebuilds — a single
            :class:`~repro.runtime.session.SessionSpec` (served under
            the model name ``"default"``) or a ``{name: SessionSpec}``
            registry.  ``specs=`` is an explicit keyword alias for the
            registry form.
        num_shards: worker count (ignored when ``shards`` is given).
        transport: ``"shm"`` (local processes over shared-memory slot
            rings; the default) or ``"tcp"`` (local loopback workers
            over framed sockets — the same wire protocol remote shards
            speak).
        shards: remote worker addresses (``["host:port", ...]``), one
            shard per entry, each running
            ``python -m repro worker --listen HOST:PORT``.  Implies
            ``transport="tcp"``; "respawn" becomes reconnect-with-backoff.
        slots_per_shard: outstanding-request bound per worker
            (shared-memory slots, or TCP credits — backpressure either
            way).
        max_request_samples: largest ``N`` accepted per request; also
            sizes the transport payload capacity (``max(input, output)
            elements x N x float32``), so larger requests raise instead
            of overflowing.
        health_interval_s: monitor period for liveness pings, stats
            refresh, deadline/stall scans, and hedging decisions.
        resilience: retry / hedging / breaker / timeout knobs
            (:class:`~repro.runtime.resilience.ResilienceConfig`); the
            default enables 2 retries.  Pass
            ``ResilienceConfig(max_retries=0)`` for the pre-retry
            behaviour (crashes surface as :class:`ShardCrashedError`
            immediately).
        faults: deterministic chaos plan
            (:class:`~repro.runtime.faults.FaultPlan`); ``None`` in
            production — every hook is a no-op.
        mp_start: multiprocessing start method for local workers
            (``spawn`` default; see module docstring).
        worker_env: extra environment for local workers (e.g. pin BLAS
            threads with ``{"OPENBLAS_NUM_THREADS": "1"}`` so shards
            don't fight over cores); applied around spawn, parent env
            restored.
        telemetry: observability knobs
            (:class:`~repro.runtime.telemetry.TelemetryConfig`): trace
            sampling rate, trace/event ring capacities, the optional
            JSON-lines event sink, and — when ``metrics_port`` is set —
            a background HTTP admin server exposing ``/metrics``
            (Prometheus text), ``/healthz``, ``/stats``, ``/trace/<id>``
            and ``/events``.  The default samples 1% of requests and
            runs no HTTP server.
    """

    def __init__(
        self,
        spec: SessionSpec | dict[str, SessionSpec] | None = None,
        num_shards: int = 2,
        *,
        specs: dict[str, SessionSpec] | None = None,
        transport: str = "shm",
        shards: list[str] | None = None,
        slots_per_shard: int = 16,
        max_request_samples: int = 16,
        health_interval_s: float = 0.5,
        resilience: ResilienceConfig | None = None,
        faults: FaultPlan | None = None,
        mp_start: str = "spawn",
        worker_env: dict[str, str] | None = None,
        telemetry: TelemetryConfig | None = None,
    ) -> None:
        if (spec is None) == (specs is None):
            raise ValueError("pass exactly one of spec (positional) or specs=")
        if specs is None:
            specs = spec if isinstance(spec, dict) else {DEFAULT_MODEL: spec}
        if not specs:
            raise ValueError("the model registry must hold at least one model")
        for name, entry in specs.items():
            _validate_model_name(name)
            if not isinstance(entry, SessionSpec):
                raise TypeError(
                    f"model {name!r}: expected a SessionSpec, got {type(entry).__name__}"
                )
        if shards is not None:
            if transport not in ("tcp", "shm"):
                raise ValueError(f"unknown transport {transport!r}")
            transport = "tcp"  # addresses only make sense over sockets
            for address in shards:
                parse_hostport(address)  # validate before spawning anything
            num_shards = len(shards)
        if transport not in ("shm", "tcp"):
            raise ValueError(f"transport must be 'shm' or 'tcp', got {transport!r}")
        if num_shards < 1:
            raise ValueError(f"num_shards must be >= 1, got {num_shards}")
        if slots_per_shard < 1:
            raise ValueError(f"slots_per_shard must be >= 1, got {slots_per_shard}")
        #: the live model registry, shared **by reference** with the
        #: launchers: every spawn/respawn/reconnect snapshots it at
        #: launch time, so new incarnations always build the current set
        self.specs: dict[str, SessionSpec] = dict(specs)
        self.num_shards = num_shards
        self.transport = transport
        self.shard_addresses = list(shards) if shards else None
        self.slots_per_shard = slots_per_shard
        self.max_request_samples = max_request_samples
        self.health_interval_s = health_interval_s
        self.resilience = resilience if resilience is not None else ResilienceConfig()
        self._fault_plan = faults
        self._injector = FaultInjector(faults) if faults is not None else None
        self._worker_env = dict(worker_env) if worker_env else None
        self._ctx = get_context(mp_start)
        # transport slots are sized once, for the largest model in the
        # founding registry; load_model() re-checks the fit because live
        # rings/credits cannot be regrown
        self._slot_bytes = max(
            self._spec_slot_bytes(entry) for entry in self.specs.values()
        )
        self._launcher = self._make_launcher()
        #: per-index launcher overrides: a shard added with an explicit
        #: address on a cluster whose own launcher is local launches
        #: (and respawns/reconnects) through the shared address-routed
        #: TCP launcher instead
        self._index_launcher: dict[int, ShardLauncher] = {}
        self._addressed_launcher: RemoteTcpLauncher | None = None
        self._lock = threading.Lock()  # membership map mutation + down transitions
        self._closed = False
        self._req_ids = itertools.count()
        self._retired_endpoints: list[ShardEndpoint] = []
        #: router-observed end-to-end latency (submit -> resolved), the
        #: same bounded reservoir the workers use for their own p50/p95
        self._latency = LatencyReservoir()
        # telemetry hub: metrics registry + trace store/sampler + event log
        self._telemetry = Telemetry(telemetry)
        self.events = self._telemetry.events
        # resilience counters live in the hub registry so /metrics and
        # cluster_stats read the very same cells
        self._counters = {
            key: self._telemetry.registry.counter(
                f"cluster_{key}_total", help=text
            )
            for key, text in (
                ("retries", "attempts re-dispatched after crash/corruption/stall"),
                ("hedges", "duplicate attempts dispatched for slow requests"),
                ("shed", "requests refused at admission (transport slots full)"),
                ("timed_out", "requests shed or failed on deadline expiry"),
                ("corrupt", "payloads that failed checksum verification"),
            )
        }
        # per-model router stats: request counters live in the hub
        # registry as model-labelled cells (so /metrics exports them);
        # each model also gets a router-side latency reservoir
        self._model_lock = threading.Lock()
        self._model_stats: dict[str, dict] = {}
        for name in self.specs:
            self._model_entry(name)
        # model load/unload ack mailbox: (shard_index, op, name) -> detail
        self._ack_cond = threading.Condition()
        self._model_acks: dict[tuple[int, str, str], str | None] = {}
        # trace bookkeeping: req_id -> (trace, sent_at, shard, attempt)
        # for sampled attempts in flight (bounded; stale entries evicted)
        self._trace_lock = threading.Lock()
        self._trace_sent: dict[int, tuple] = {}
        #: the membership map: shard index -> live incarnation.  Indices
        #: are allocated monotonically (`_next_index`) and never reused;
        #: the map can grow and shrink at runtime, so nothing may assume
        #: dense indices.  Readers take a point-in-time snapshot (the
        #: `_shards` property) and identity-check against the map before
        #: acting on a shard; every membership change (add / remove /
        #: respawn) bumps `_generation`.
        self._shard_map: dict[int, _Shard] = {}
        self._generation = 0
        self._next_index = num_shards
        try:
            for i in range(num_shards):
                self._shard_map[i] = self._spawn_shard(i)
        except BaseException:
            # don't leak already-spawned workers/segments when a later
            # spawn fails (e.g. /dev/shm exhausted): nothing can call
            # close() on an object whose constructor raised
            self._closed = True  # recv threads must not respawn what we reap
            for shard in self._shard_map.values():
                shard.endpoint.kill()
                shard.endpoint.join(timeout=5.0)
                self._retire_endpoint(shard.endpoint)
            for endpoint in self._retired_endpoints:
                endpoint.dispose()
            self._telemetry.close()
            raise
        self._stop_monitor = threading.Event()
        self._ping_seq = itertools.count(1)
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-cluster-monitor", daemon=True
        )
        self._monitor.start()
        # HTTP exposition last: every route reads state built above
        self.admin: AdminServer | None = None
        self.metrics_port: int | None = None
        cfg = self._telemetry.config
        if cfg.metrics_port is not None:
            try:
                self.admin = AdminServer(self, host=cfg.metrics_host, port=cfg.metrics_port)
                self.metrics_port = self.admin.port
            except BaseException:
                self.close()
                raise

    def _make_launcher(self) -> ShardLauncher:
        if self.shard_addresses is not None:
            return RemoteTcpLauncher(
                self.specs,
                self.shard_addresses,
                slots_per_shard=self.slots_per_shard,
                slot_bytes=self._slot_bytes,
                fault_plan=self._fault_plan,
            )
        if self.transport == "tcp":
            return LocalTcpLauncher(
                self.specs,
                slots_per_shard=self.slots_per_shard,
                slot_bytes=self._slot_bytes,
                ctx=self._ctx,
                fault_plan=self._fault_plan,
                worker_env=self._worker_env,
            )
        return ShmShardLauncher(
            self.specs,
            slots_per_shard=self.slots_per_shard,
            slot_bytes=self._slot_bytes,
            ctx=self._ctx,
            fault_plan=self._fault_plan,
            worker_env=self._worker_env,
        )

    @property
    def spec(self) -> SessionSpec:
        """The sole model's spec — single-model back-compat accessor.
        Raises on a multi-model registry (callers must name a model)."""
        if len(self.specs) == 1:
            return next(iter(self.specs.values()))
        raise ValueError(
            f"cluster serves {len(self.specs)} models "
            f"({sorted(self.specs)}); use .specs instead of .spec"
        )

    def _spec_slot_bytes(self, spec: SessionSpec) -> int:
        elems = max(prod(spec.input_shape), prod(spec.probe_output_shape()))
        return self.max_request_samples * elems * np.dtype(np.float32).itemsize

    def _model_entry(self, name: str) -> dict:
        """Per-model router stats cell (created on first use)."""
        with self._model_lock:
            entry = self._model_stats.get(name)
            if entry is None:
                entry = {
                    "requests": self._telemetry.registry.counter(
                        "cluster_model_requests_total",
                        help="requests submitted per model",
                        model=name,
                    ),
                    "latency": LatencyReservoir(),
                }
                self._model_stats[name] = entry
            return entry

    def _count(self, key: str, n: int = 1) -> None:
        self._counters[key].inc(n)

    @property
    def _shards(self) -> list[_Shard]:
        """Point-in-time membership snapshot, ordered by shard index.

        A copied list, never the map itself: membership can change
        between any two calls (add/remove/respawn), so iteration must
        not race the map.  Act-on-a-shard paths re-check
        ``self._shard_map.get(shard.index) is shard`` under the lock
        before mutating membership."""
        with self._lock:
            return [self._shard_map[i] for i in sorted(self._shard_map)]

    # ------------------------------------------------------------------
    # Trace bookkeeping (sampled attempts only)
    # ------------------------------------------------------------------
    #: ceiling on remembered sampled attempts; far above any realistic
    #: in-flight count, it only matters when trace frames go missing
    _TRACE_SENT_CAP = 4096

    def _trace_register(
        self, req_id: int, trace, sent_at: float, shard_idx: int, attempt: int
    ) -> None:
        """Remember a sampled attempt so its reply and worker spans can
        be anchored at the router-side send timestamp."""
        with self._trace_lock:
            self._trace_sent[req_id] = (trace, sent_at, shard_idx, attempt)
            while len(self._trace_sent) > self._TRACE_SENT_CAP:
                self._trace_sent.pop(next(iter(self._trace_sent)))

    def _trace_reply(self, req_id: int) -> None:
        """A reply (result or error) landed: close the transport span."""
        with self._trace_lock:
            entry = self._trace_sent.get(req_id)
        if entry is not None:
            trace, sent_at, shard_idx, attempt = entry
            trace.add_span(
                "transport", sent_at, time.monotonic(),
                shard=shard_idx, attempt=attempt,
            )

    def _trace_splice(self, req_id: int, spans: list) -> None:
        """Worker spans arrived (always after the reply): rebase them at
        the attempt's send timestamp and retire the bookkeeping."""
        with self._trace_lock:
            entry = self._trace_sent.pop(req_id, None)
        if entry is not None:
            trace, sent_at, shard_idx, attempt = entry
            trace.add_remote_spans(spans, sent_at, shard=shard_idx, attempt=attempt)

    def _trace_drop(self, req_ids) -> None:
        """Attempts died with their shard: mark each sampled one crashed."""
        now = time.monotonic()
        with self._trace_lock:
            entries = [self._trace_sent.pop(r, None) for r in req_ids]
        for entry in entries:
            if entry is not None:
                trace, sent_at, shard_idx, attempt = entry
                trace.add_span(
                    "attempt_crashed", sent_at, now, shard=shard_idx, attempt=attempt
                )

    # ------------------------------------------------------------------
    # Spawning / crash handling
    # ------------------------------------------------------------------
    def _spawn_shard(self, index: int) -> _Shard:
        launcher = self._index_launcher.get(index, self._launcher)
        endpoint = launcher.launch(index)
        events = self._telemetry.events
        breaker = CircuitBreaker(
            self.resilience.breaker_threshold,
            self.resilience.breaker_reset_s,
            on_transition=lambda old, new, idx=index: events.emit(
                "breaker_transition", shard=idx, old=old, new=new
            ),
        )
        shard = _Shard(index, endpoint, breaker)
        events.emit("shard_spawn", shard=index, pid=endpoint.pid,
                    address=getattr(endpoint, "address", None))
        shard.recv_thread = threading.Thread(
            target=self._recv_loop, args=(shard,), name=f"repro-shard-{index}-recv", daemon=True
        )
        shard.recv_thread.start()
        return shard

    def _recv_loop(self, shard: _Shard) -> None:
        """Per-shard response pump: resolves in-flight records off the
        endpoint's normalized events (the endpoint itself reads payloads
        and reclaims transport capacity, also for discarded late/
        hedge-loser replies)."""
        while True:
            try:
                msg = shard.endpoint.recv()
            except (TransportClosedError, EOFError, OSError):
                self._handle_shard_down(shard, "worker connection lost")
                return
            kind = msg[0]
            if kind == "res":
                _, req_id, out, read_err = msg
                with shard.lock:
                    inflight = shard.pending.pop(req_id, None)
                self._trace_reply(req_id)
                if isinstance(read_err, CorruptedPayloadError):
                    shard.breaker.record_failure()
                    self._count("corrupt")
                    if inflight is not None:
                        self._retry_or_fail(inflight, read_err, exclude=shard)
                    continue
                shard.breaker.record_success()
                if inflight is None:
                    continue  # late reply for a request already settled elsewhere
                if read_err is None:
                    if inflight.resolve_result(out):
                        latency_ms = (time.monotonic() - inflight.created_at) * 1e3
                        self._latency.record(latency_ms)
                        self._model_entry(inflight.model)["latency"].record(latency_ms)
                else:
                    inflight.resolve_exception(read_err)
            elif kind == "err":
                _, req_id, code, text = msg
                with shard.lock:
                    inflight = shard.pending.pop(req_id, None)
                self._trace_reply(req_id)
                if code == "corrupt":
                    # the *request* arrived corrupted at the worker: the
                    # worker itself is healthy, the transport attempt is not
                    self._count("corrupt")
                    if inflight is not None:
                        self._retry_or_fail(
                            inflight, CorruptedPayloadError(f"shard {shard.index}: {text}"),
                            exclude=None,
                        )
                    continue
                shard.breaker.record_success()  # worker responded: it is alive
                if code == "unknown_model":
                    # the worker does not hold this model — a race with a
                    # hot load/unload (respawns and membership changes can
                    # briefly lag the registry).  The registry is
                    # authoritative: retry on another shard while the
                    # model is still registered, fail typed otherwise.
                    if inflight is not None:
                        if inflight.model in self.specs:
                            self._retry_or_fail(
                                inflight,
                                UnknownModelError(f"shard {shard.index}: {text}"),
                                exclude=shard,
                            )
                        else:
                            inflight.resolve_exception(
                                UnknownModelError(f"shard {shard.index}: {text}")
                            )
                    continue
                if code == "deadline":
                    # count only if this reply actually resolved the client
                    # (the monitor's deadline scan may have beaten us to it
                    # and already counted the expiry)
                    if inflight is not None and inflight.resolve_exception(
                        DeadlineExceededError(f"shard {shard.index}: {text}")
                    ):
                        self._count("timed_out")
                    continue
                with shard.lock:
                    shard.errors += 1
                if inflight is not None:
                    inflight.resolve_exception(RuntimeError(f"shard {shard.index}: {text}"))
            elif kind == "trace":
                self._trace_splice(msg[1], msg[2])
            elif kind == "model":
                _, op, name, detail = msg
                with self._ack_cond:
                    self._model_acks[(shard.index, op, name)] = detail
                    self._ack_cond.notify_all()
            elif kind == "pong":
                shard.worker_stats = msg[2]
            elif kind == "bye":
                shard.worker_stats = msg[1]
            elif kind == "ready":
                shard.ready.set()
            elif kind == "fatal":
                shard.fail_reason = f"worker failed to build session: {msg[1]}"

    def _retire_endpoint(self, endpoint: ShardEndpoint) -> None:
        """Best-effort close now, final disposal deferred to server
        close() — e.g. an shm ring's ``SharedMemory.close`` can raise
        ``BufferError`` while another thread is mid write/read with a
        live view, a real window when a shard dies under concurrent
        submits.  The retired list retries at shutdown, when no request
        threads can be touching the transport anymore."""
        endpoint.close()
        if endpoint not in self._retired_endpoints:  # idempotent: no double dispose
            self._retired_endpoints.append(endpoint)

    def _handle_shard_down(self, shard: _Shard, reason: str) -> None:
        """Rehome or fail a dead shard's in-flight requests; respawn
        (or, for a remote shard, reconnect) unless closing.

        Idempotent per incarnation — the first caller (recv thread on
        EOF, submit on a broken transport, or the monitor) wins.
        Requests with retry budget left are re-dispatched to healthy
        shards on a rescue thread (their payloads were retained for
        exactly this); the rest fail with :class:`ShardCrashedError` —
        typed errors, never hangs.  During a graceful close, a shard
        dying mid-drain resolves its futures here immediately instead
        of making clients wait out the drain timeout.
        """
        with self._lock:
            if shard.down:
                return
            shard.down = True
            closing = self._closed
            removing = shard.removing
            lifetime = time.monotonic() - shard.spawned_at
            # a reported build failure is an early death no matter how
            # long the spawn+build took — respawning it cannot help
            early = shard.fail_reason is not None or (
                lifetime < _FAST_FAIL_S and not shard.ready.is_set()
            )
            shard.early_deaths = shard.early_deaths + 1 if early else 0
        with shard.lock:
            doomed = dict(shard.pending)
            shard.pending.clear()
        detail = shard.fail_reason or reason
        self._telemetry.events.emit(
            "shard_down", shard=shard.index, reason=detail,
            in_flight=len(doomed), early=early,
        )
        self._settle_doomed(
            shard, doomed,
            f"shard {shard.index} crashed with the request in flight ({detail})",
            rehome_allowed=not closing, cause="shard_down",
        )
        shard.endpoint.kill()  # reap the process / sever the connection
        shard.endpoint.join(timeout=5.0)
        self._retire_endpoint(shard.endpoint)  # final disposal at close()
        if closing or removing:
            # a removal in progress owns the rest of the teardown (and
            # the shard_removed event) — no replacement for a shard
            # that is on its way out
            return
        if shard.early_deaths >= 2:
            shard.permanent = True
            shard.fail_reason = (
                f"shard {shard.index} permanently failed: died {shard.early_deaths}x "
                f"right after spawn before serving ({detail})"
            )
            self._telemetry.events.emit(
                "shard_permanent", shard=shard.index, reason=shard.fail_reason
            )
            return
        with self._lock:
            if self._closed or self._shard_map.get(shard.index) is not shard:
                return
        # launch outside the router lock: a TCP reconnect can legally
        # take seconds of backoff, and submits must keep flowing to the
        # surviving shards meanwhile.  No rival writer exists for this
        # index — only the installed incarnation's own down-handler (us)
        # replaces it — so the re-check below only guards close() and a
        # concurrent remove_shard().
        try:
            replacement = self._spawn_shard(shard.index)
        except Exception as exc:  # unreachable remote / spawn failure
            shard.permanent = True
            shard.fail_reason = (
                f"shard {shard.index} permanently failed: respawn failed ({exc})"
            )
            self._telemetry.events.emit(
                "shard_permanent", shard=shard.index, reason=shard.fail_reason
            )
            return
        replacement.requests = shard.requests
        replacement.errors = shard.errors
        replacement.respawns = shard.respawns + 1
        replacement.early_deaths = shard.early_deaths
        with self._lock:
            if self._closed or self._shard_map.get(shard.index) is not shard:
                replacement.endpoint.kill()
                replacement.endpoint.join(timeout=5.0)
                self._retire_endpoint(replacement.endpoint)
                return
            self._shard_map[shard.index] = replacement
            self._generation += 1
            replacement.generation = self._generation
        self._telemetry.events.emit(
            "shard_respawn", shard=shard.index, pid=replacement.endpoint.pid,
            respawns=replacement.respawns,
        )

    def _settle_doomed(
        self,
        shard: _Shard,
        doomed: dict[int, _InFlight],
        message: str,
        *,
        rehome_allowed: bool,
        cause: str,
    ) -> tuple[int, int]:
        """Resolve in-flight records whose attempt on ``shard`` can no
        longer complete (the shard died, or is being removed with the
        drain window spent): expired ones resolve
        :class:`~repro.runtime.resilience.DeadlineExceededError`, ones
        with retry budget left are re-dispatched to healthy shards on a
        rescue thread (their payloads were retained for exactly this),
        and the rest fail with :class:`ShardCrashedError` — typed
        errors, never hangs.  Returns ``(rehomed, failed)``."""
        self._trace_drop(doomed.keys())
        rehome: list[_InFlight] = []
        failed = 0
        for inflight in doomed.values():
            if inflight.done:
                continue  # e.g. a hedge winner already delivered
            if inflight.expired():
                if inflight.resolve_exception(
                    DeadlineExceededError("deadline passed with the request in flight")
                ):
                    self._count("timed_out")
                continue
            if rehome_allowed and inflight.try_claim_attempt(self.resilience.max_attempts):
                rehome.append(inflight)
                continue
            if inflight.resolve_exception(ShardCrashedError(message)):
                failed += 1
        if failed:
            with shard.lock:
                shard.errors += failed
        if rehome:
            self._count("retries", len(rehome))
            self._telemetry.events.emit(
                "retry", shard=shard.index, requests=len(rehome), cause=cause
            )
            threading.Thread(
                target=self._redispatch_batch,
                args=(rehome,),
                name=f"repro-shard-{shard.index}-rescue",
                daemon=True,
            ).start()
        return len(rehome), failed

    # ------------------------------------------------------------------
    # Elastic membership
    # ------------------------------------------------------------------
    def _launcher_for(self, index: int, address: str | None) -> ShardLauncher:
        """Pick (and record) the launcher a new shard index launches
        through — the cluster's own launcher for local adds, the shared
        address-routed TCP launcher for ``host:port`` adds.  Called
        under ``self._lock``."""
        if address is None:
            if isinstance(self._launcher, RemoteTcpLauncher):
                raise ValueError(
                    "this cluster routes to remote workers by address; "
                    "add_shard() needs an explicit 'host:port'"
                )
            return self._launcher
        if isinstance(self._launcher, RemoteTcpLauncher):
            self._launcher.assign(index, address)
            return self._launcher
        if self._addressed_launcher is None:
            self._addressed_launcher = RemoteTcpLauncher(
                self.specs,
                [],
                slots_per_shard=self.slots_per_shard,
                slot_bytes=self._slot_bytes,
                fault_plan=self._fault_plan,
            )
        self._addressed_launcher.assign(index, address)
        self._index_launcher[index] = self._addressed_launcher
        return self._addressed_launcher

    def add_shard(self, address: str | None = None) -> int:
        """Join one new shard to the live cluster; returns its index.

        With ``address=None`` a local worker is spawned through the
        cluster's own launcher (shm or loopback TCP — whatever the
        server was built with).  With ``address="host:port"`` the
        router connects to an externally started worker
        (``python -m repro worker --listen HOST:PORT``) — valid on an
        shm cluster too, which then serves with mixed-transport
        membership.  The new shard takes traffic as soon as it is
        installed; crash handling, respawn, breakers, deadlines, and
        chaos injection apply to it exactly as to founding shards.

        Raises :class:`ShardCrashedError` if the worker dies between
        launch and install (e.g. its bundle is unreadable there) —
        a shard that never served is not left behind as a dead member.
        """
        if address is not None:
            parse_hostport(address)  # validate before reserving an index
        with self._lock:
            if self._closed:
                raise RuntimeError("ShardedServer is closed")
            index = self._next_index
            self._next_index += 1
            self._launcher_for(index, address)
        try:
            shard = self._spawn_shard(index)
        except BaseException:
            with self._lock:
                self._index_launcher.pop(index, None)
            raise
        with self._lock:
            # a worker that died between launch and install never joins:
            # its recv thread already ran the down-path (which skipped
            # respawn — the map has no entry matching it), so installing
            # it would leave a permanently dead member behind
            installed = not self._closed and not shard.down
            if installed:
                self._generation += 1
                shard.generation = self._generation
                self._shard_map[index] = shard
                self.num_shards = len(self._shard_map)
        if not installed:
            if not shard.down:
                shard.endpoint.kill()
                shard.endpoint.join(timeout=5.0)
                self._retire_endpoint(shard.endpoint)
            with self._lock:
                self._index_launcher.pop(index, None)
            if self._closed:
                raise RuntimeError("ShardedServer is closed")
            raise ShardCrashedError(
                f"shard {index} died during launch "
                f"({shard.fail_reason or 'worker connection lost'})"
            )
        self._telemetry.events.emit(
            "shard_added", shard=index, pid=shard.endpoint.pid,
            address=address, generation=shard.generation,
        )
        return index

    def remove_shard(self, index: int, *, drain: bool = True, timeout: float = 30.0) -> dict:
        """Take one shard out of the live cluster.

        Routing to the shard stops immediately.  With ``drain=True``
        the call waits up to ``timeout`` seconds for its in-flight
        requests to settle — the monitor keeps enforcing deadlines and
        stall detection on them meanwhile, so a drain is bounded by the
        existing deadline machinery, not just this window.  Whatever the
        window leaves behind (or everything, with ``drain=False``) is
        re-dispatched to healthy shards while retry budget lasts and
        typed-failed (:class:`ShardCrashedError`) after — never hung.
        The endpoint is then torn down, the shard leaves the membership
        map (bumping ``cluster_stats["generation"]``), and a
        ``shard_removed`` event is emitted.

        Raises ``KeyError`` for an unknown index, ``ValueError`` when
        the shard is already being removed or is the last routable one.
        Returns ``{"shard", "drained", "rehomed", "failed",
        "generation"}`` describing how the removal went.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ShardedServer is closed")
            shard = self._shard_map.get(index)
            if shard is None:
                raise KeyError(
                    f"no shard with index {index} (current: {sorted(self._shard_map)})"
                )
            if shard.removing:
                raise ValueError(f"shard {index} is already being removed")
            rest = [
                s for i, s in self._shard_map.items()
                if i != index and not s.down and not s.permanent and not s.removing
            ]
            if not rest and not shard.down:
                raise ValueError(
                    f"refusing to remove shard {index}: it is the last routable shard"
                )
            shard.removing = True
            shard.draining = True
        self._telemetry.events.emit(
            "shard_draining", shard=index, drain=drain, in_flight=shard.outstanding
        )
        drained = True
        if drain:
            deadline = time.monotonic() + timeout
            while not shard.down and not self._closed:
                with shard.lock:
                    settled = all(f.done for f in shard.pending.values())
                if settled:
                    break
                if time.monotonic() >= deadline:
                    drained = False
                    break
                time.sleep(0.02)
        else:
            drained = shard.outstanding == 0
        rehomed = failed = 0
        if not self._closed and not shard.down:
            # mark the shard down *under the membership lock* so the recv
            # thread's EOF handler (fired by the teardown below) becomes
            # a no-op instead of a rival crash path
            with self._lock:
                already_down = shard.down
                shard.down = True
            if not already_down:
                with shard.lock:
                    doomed = dict(shard.pending)
                    shard.pending.clear()
                live_doomed = {r: f for r, f in doomed.items() if not f.done}
                if live_doomed:
                    drained = False
                    rehomed, failed = self._settle_doomed(
                        shard, live_doomed,
                        f"shard {index} removed with the request still in flight",
                        rehome_allowed=True, cause="shard_removed",
                    )
                try:
                    shard.endpoint.send_stop()  # graceful: worker drains + exits
                except (TransportClosedError, BrokenPipeError, OSError):
                    pass
                shard.endpoint.join(timeout=5.0)
                if shard.endpoint.alive():
                    shard.endpoint.kill()
                    shard.endpoint.join(timeout=5.0)
                self._retire_endpoint(shard.endpoint)  # final disposal at close()
                if shard.recv_thread is not None:
                    shard.recv_thread.join(timeout=5.0)
        with self._lock:
            generation = self._generation
            if self._shard_map.get(index) is shard:
                del self._shard_map[index]
                self._index_launcher.pop(index, None)
                self._generation += 1
                generation = self._generation
                self.num_shards = len(self._shard_map)
        self._telemetry.events.emit(
            "shard_removed", shard=index, drained=drained,
            rehomed=rehomed, failed=failed, generation=generation,
        )
        return {"shard": index, "drained": drained, "rehomed": rehomed,
                "failed": failed, "generation": generation}

    # ------------------------------------------------------------------
    # Model registry (hot load / drained unload)
    # ------------------------------------------------------------------
    def models(self) -> list[str]:
        """Currently registered model names, sorted."""
        with self._lock:
            return sorted(self.specs)

    def _await_model_acks(
        self, shards: list[_Shard], op: str, name: str, deadline: float
    ) -> dict[int, str | None]:
        """Collect each shard's ``("model", op, name)`` ack (None =
        success, str = failure detail).  A shard that dies while we wait
        is excused — its respawn rebuilds from the live registry, which
        was updated before any control was sent."""
        results: dict[int, str | None] = {}
        with self._ack_cond:
            while True:
                pending: list[_Shard] = []
                for shard in shards:
                    if shard.index in results:
                        continue
                    key = (shard.index, op, name)
                    if key in self._model_acks:
                        results[shard.index] = self._model_acks.pop(key)
                    elif shard.down:
                        results[shard.index] = None  # excused (see docstring)
                    else:
                        pending.append(shard)
                if not pending:
                    return results
                timeout = deadline - time.monotonic()
                if timeout <= 0:
                    for shard in pending:
                        results[shard.index] = f"no {op} ack within the timeout"
                    return results
                self._ack_cond.wait(timeout=min(timeout, 0.1))

    def load_model(self, name: str, spec: SessionSpec, *, timeout: float = 30.0) -> dict:
        """Hot-load ``spec`` as model ``name`` into every live shard.

        The live registry is updated first — so respawns, reconnects,
        and elastic :meth:`add_shard` joins build the new model from now
        on — then a ``load`` control is sent to each live shard and
        their acks are awaited.  Remote shards (which may not share a
        filesystem) receive the session-bundle bytes CRC-framed
        alongside the spec.  The new model takes traffic the moment
        this returns; a ``model_loaded`` event is emitted.

        Raises ``ValueError`` for a duplicate or wire-unencodable name,
        or a model whose tensors exceed the transport slots sized at
        construction (live rings cannot be regrown); ``RuntimeError``
        when a live shard fails to build the session — the registry
        change is rolled back so the cluster never advertises a model
        half the fleet cannot serve.
        """
        _validate_model_name(name)
        if not isinstance(spec, SessionSpec):
            raise TypeError(f"expected a SessionSpec, got {type(spec).__name__}")
        needed = self._spec_slot_bytes(spec)
        if needed > self._slot_bytes:
            raise ValueError(
                f"model {name!r} needs {needed}-byte transport slots but this "
                f"cluster's are {self._slot_bytes} bytes; include the model in "
                "the founding registry instead"
            )
        with self._lock:
            if self._closed:
                raise RuntimeError("ShardedServer is closed")
            if name in self.specs:
                raise ValueError(f"model {name!r} is already registered")
            self.specs[name] = spec
            shards = [
                s for s in self._shard_map.values()
                if not s.down and not s.permanent and not s.removing
            ]
        self._model_entry(name)
        payload = None
        if any(s.process is None for s in shards):  # remote workers: ship bytes
            try:
                with open(spec.bundle_path, "rb") as fh:
                    payload = pack_bundle_payload(fh.read())
            except OSError:
                payload = None  # worker falls back to the spec's own path
        sent: list[_Shard] = []
        for shard in shards:
            msg = ("load", name, spec, payload if shard.process is None else None)
            try:
                shard.endpoint.send_control(msg)
                sent.append(shard)
            except (TransportClosedError, BrokenPipeError, OSError):
                pass  # dying shard: its respawn builds from the updated registry
        acks = self._await_model_acks(sent, "load", name, time.monotonic() + timeout)
        failures = {
            idx: detail for idx, detail in acks.items()
            # "already loaded" = a respawn raced us and built the model
            # from the updated registry before our control arrived
            if detail is not None and "already loaded" not in detail
        }
        if failures:
            with self._lock:
                self.specs.pop(name, None)
            for shard in sent:
                if shard.index not in failures and not shard.down:
                    try:
                        shard.endpoint.send_control(("unload", name))
                    except (TransportClosedError, BrokenPipeError, OSError):
                        pass
            raise RuntimeError(
                f"load of model {name!r} failed on shard(s) "
                + ", ".join(f"{i}: {d}" for i, d in sorted(failures.items()))
            )
        self._telemetry.events.emit("model_loaded", model=name, shards=len(sent))
        return {"model": name, "shards": len(sent)}

    def unload_model(self, name: str, *, drain: bool = True, timeout: float = 30.0) -> dict:
        """Drain and remove one model from every shard.

        Admission stops immediately — the name leaves the registry, so
        new ``submit(model=name)`` calls raise
        :class:`~repro.runtime.resilience.UnknownModelError`.  With
        ``drain=True`` the call then waits up to ``timeout`` seconds for
        the model's in-flight requests to settle: the workers still hold
        the model through the drain window, so live requests complete
        normally under the usual deadline/retry machinery (and whatever
        the window leaves behind is still drained worker-side by the
        micro-batcher's own close).  Only then does the ``unload``
        control tear the per-model sessions down.  Emits
        ``model_unloaded``.

        Raises ``KeyError`` for an unknown model and ``ValueError`` for
        the last registered model — a serving cluster never goes empty.
        Returns ``{"model", "shards", "drained"}``.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("ShardedServer is closed")
            if name not in self.specs:
                raise KeyError(
                    f"no model named {name!r} (registered: {sorted(self.specs)})"
                )
            if len(self.specs) == 1:
                raise ValueError(
                    f"refusing to unload {name!r}: it is the last registered model"
                )
            del self.specs[name]  # stops admission for this model
            shards = [
                s for s in self._shard_map.values()
                if not s.down and not s.permanent and not s.removing
            ]
        self._telemetry.events.emit("model_draining", model=name, drain=drain)
        drained = True
        if drain:
            deadline = time.monotonic() + timeout
            while not self._closed:
                busy = False
                for shard in self._shards:
                    with shard.lock:
                        if any(
                            f.model == name and not f.done
                            for f in shard.pending.values()
                        ):
                            busy = True
                            break
                if not busy:
                    break
                if time.monotonic() >= deadline:
                    drained = False
                    break
                time.sleep(0.02)
        sent: list[_Shard] = []
        for shard in shards:
            if shard.down:
                continue
            try:
                shard.endpoint.send_control(("unload", name))
                sent.append(shard)
            except (TransportClosedError, BrokenPipeError, OSError):
                pass
        self._await_model_acks(sent, "unload", name, time.monotonic() + timeout)
        with self._model_lock:
            self._model_stats.pop(name, None)
        self._telemetry.events.emit(
            "model_unloaded", model=name, shards=len(sent), drained=drained
        )
        return {"model": name, "shards": len(sent), "drained": drained}

    def _redispatch_batch(self, inflights: list[_InFlight]) -> None:
        """Rescue thread: re-dispatch rehomed requests (attempt already
        claimed) to healthy shards; failures resolve typed errors."""
        for inflight in inflights:
            self._dispatch_attempt(inflight, claimed=True, kind="retry")

    def _retry_or_fail(
        self, inflight: _InFlight, exc: BaseException, exclude: _Shard | None
    ) -> None:
        """One attempt failed (corruption / stall): spend a retry if the
        budget allows, else deliver the typed error."""
        if inflight.done:
            return
        if inflight.expired():
            if inflight.resolve_exception(
                DeadlineExceededError("deadline passed with the request in flight")
            ):
                self._count("timed_out")
            return
        if self._closed or not inflight.try_claim_attempt(self.resilience.max_attempts):
            inflight.resolve_exception(exc)
            return
        self._count("retries")
        self._telemetry.events.emit(
            "retry", shard=None if exclude is None else exclude.index,
            requests=1, cause=type(exc).__name__,
        )
        threading.Thread(
            target=self._dispatch_attempt,
            args=(inflight,),
            kwargs={"claimed": True, "exclude": exclude, "kind": "retry"},
            name="repro-retry-dispatch",
            daemon=True,
        ).start()

    def _monitor_loop(self) -> None:
        """Liveness + stats heartbeat, plus the per-request scans that
        need a clock: deadline expiry, stall detection (breaker
        failures + retries), and hedging."""
        while not self._stop_monitor.wait(self.health_interval_s):
            # the property is already a snapshot: membership changes
            # mid-scan are fine, each shard is identity-checked downstream
            for shard in self._shards:
                if shard.down:
                    continue
                if not shard.endpoint.alive():
                    self._handle_shard_down(shard, "worker died")
                    continue
                try:
                    shard.endpoint.send_ping(next(self._ping_seq))
                except (TransportClosedError, BrokenPipeError, OSError):
                    self._handle_shard_down(shard, "health ping failed")
                    continue
                self._scan_inflight(shard)

    def _scan_inflight(self, shard: _Shard) -> None:
        """Deadline / stall / hedge pass over one live shard's requests."""
        cfg = self.resilience
        now = time.monotonic()
        with shard.lock:
            items = list(shard.pending.values())
        for inflight in items:
            if inflight.done:
                continue
            if inflight.expired(now):
                # transport capacity stays reserved until the worker
                # replies (it may still write a response); the reply is
                # then discarded
                if inflight.resolve_exception(
                    DeadlineExceededError("deadline passed with the request in flight")
                ):
                    self._count("timed_out")
                continue
            age = now - inflight.last_sent_at
            if (
                cfg.request_timeout_s is not None
                and age > cfg.request_timeout_s
                and not inflight.stalled
            ):
                inflight.stalled = True
                shard.breaker.record_failure()  # stalls trip the breaker
                self._retry_or_fail(
                    inflight,
                    RequestTimeoutError(
                        f"attempt on shard {shard.index} stalled for {age:.2f} s "
                        f"(> request_timeout_s={cfg.request_timeout_s}); no retry "
                        "budget left"
                    ),
                    exclude=shard,
                )
            elif (
                cfg.hedge_after_ms is not None
                and age * 1e3 > cfg.hedge_after_ms
                and not inflight.hedged
            ):
                inflight.hedged = True
                if inflight.try_claim_attempt(cfg.max_attempts):
                    self._count("hedges")
                    self._telemetry.events.emit(
                        "hedge", shard=shard.index, age_ms=age * 1e3
                    )
                    threading.Thread(
                        target=self._dispatch_attempt,
                        args=(inflight,),
                        kwargs={"claimed": True, "exclude": shard,
                                "best_effort": True, "kind": "hedge"},
                        name="repro-hedge-dispatch",
                        daemon=True,
                    ).start()

    # ------------------------------------------------------------------
    # Client API (same futures vocabulary as MicroBatchServer)
    # ------------------------------------------------------------------
    def submit(
        self,
        x: np.ndarray,
        *,
        model: str | None = None,
        deadline: float | None = None,
        timeout: float | None = None,
    ) -> Future:
        """Route one request to the best shard; future of the logits.

        ``x`` is one ``(C, H, W)`` sample or an ``(N, C, H, W)`` batch
        with ``1 <= N <= max_request_samples``.

        Args:
            model: which registered model serves this request.  May be
                omitted on a single-model cluster (the sole model is
                implied); a multi-model cluster requires it.  An
                unregistered name raises
                :class:`~repro.runtime.resilience.UnknownModelError`.
            deadline: latency budget in seconds.  The budget travels
                with the request through every tier (router queue,
                transport, worker micro-batcher — re-anchored across
                host clock domains by the TCP transport); once it
                expires the request resolves with
                :class:`~repro.runtime.resilience.DeadlineExceededError`
                — over-budget work is shed, not executed.
            timeout: admission patience in seconds.  When every live
                shard's transport capacity stays full this long, the
                request is refused with
                :class:`~repro.runtime.resilience.QueueFullError`
                instead of blocking indefinitely (``None`` preserves
                the blocking behaviour).

        A request whose shard dies (or whose response is corrupted, or
        which stalls past ``request_timeout_s``) is retried on another
        shard up to ``resilience.max_retries`` times;
        :class:`ShardCrashedError` surfaces only once that budget is
        spent.
        """
        x = np.asarray(x)
        if x.ndim == 3:
            x = x[None]
        if x.ndim != 4:
            raise ValueError(f"expected (C, H, W) or (N, C, H, W) input, got shape {x.shape}")
        if x.size == 0:
            raise ValueError(
                f"refusing a zero-size request (shape {x.shape}): batches must "
                "contain at least one sample"
            )
        if x.shape[0] > self.max_request_samples:
            raise ValueError(
                f"request holds {x.shape[0]} samples but max_request_samples is "
                f"{self.max_request_samples}; split it client-side"
            )
        if x.nbytes > self._slot_bytes:
            raise ValueError(
                f"request of {x.nbytes} bytes ({x.dtype}) exceeds the "
                f"{self._slot_bytes}-byte transport slots (sized for float32)"
            )
        if self._closed:
            raise RuntimeError("ShardedServer is closed")
        registered = sorted(self.specs)
        if model is None:
            if len(registered) != 1:
                raise UnknownModelError(
                    f"cluster serves {registered}; pass model=..."
                )
            model = registered[0]
        elif model not in self.specs:
            raise UnknownModelError(
                f"no model named {model!r} (registered: {registered})"
            )
        deadline_at = None if deadline is None else time.monotonic() + deadline
        if deadline_at is not None and time.monotonic() >= deadline_at:
            self._count("timed_out")
            raise DeadlineExceededError("request deadline already expired at submission")
        self._model_entry(model)["requests"].inc()
        trace = self._telemetry.tracer.maybe_start()
        inflight = _InFlight(x, Future(), deadline_at, trace=trace, model=model)
        inflight.try_claim_attempt(self.resilience.max_attempts)  # first attempt
        status = self._dispatch_attempt(
            inflight, claimed=True, admission_timeout=timeout, sync=True
        )
        if trace is not None:
            # validation + routing + capacity wait, up to the first send
            trace.add_span("admission", trace.t0, time.monotonic(), model=model)
            inflight.future.trace_id = trace.trace_id
        if status == "queue_full":
            self._count("shed")
            raise QueueFullError(
                f"every live shard's transport slots stayed full for {timeout:.3f} s; "
                "request shed"
            )
        if status == "closed":
            raise RuntimeError("ShardedServer is closed")
        return inflight.future

    #: alias matching ``InferenceSession.run_async`` / ``submit``
    run_async = submit

    def run(self, x: np.ndarray, timeout: float | None = None, **submit_kwargs) -> np.ndarray:
        """Synchronous convenience: ``submit(x).result(timeout)``."""
        return self.submit(x, **submit_kwargs).result(timeout)

    def _dispatch_attempt(
        self,
        inflight: _InFlight,
        *,
        claimed: bool,
        exclude: _Shard | None = None,
        best_effort: bool = False,
        admission_timeout: float | None = None,
        sync: bool = False,
        kind: str = "initial",
    ) -> str:
        """Place one (already claimed) attempt onto a shard.

        Returns ``"sent"`` (attempt is in flight), ``"resolved"`` (the
        in-flight record was settled here — deadline, no-shards, or a
        concurrent attempt won), ``"queue_full"`` (admission timeout
        expired; nothing was settled — the caller decides), or
        ``"closed"``.  ``best_effort`` (hedging) never blocks: if no
        shard has free capacity right now, the attempt is unclaimed and
        dropped.  ``kind`` labels the attempt's ``dispatch`` span in a
        sampled trace (``initial`` | ``retry`` | ``hedge``), which is
        how retries and hedges show up as sibling spans under one trace.
        """
        assert claimed, "attempts must be claimed before dispatch"
        req_id = next(self._req_ids)
        dispatch_start = time.monotonic()
        wait_deadline = (
            None if admission_timeout is None else time.monotonic() + admission_timeout
        )
        while True:
            if inflight.done:
                return "resolved"
            if self._closed:
                inflight.resolve_exception(RuntimeError("ShardedServer is closed"))
                return "closed"
            if inflight.expired():
                if inflight.resolve_exception(
                    DeadlineExceededError("deadline expired while waiting for capacity")
                ):
                    self._count("timed_out")
                return "resolved"
            try:
                shard = self._pick_shard(exclude)
            except RuntimeError as exc:  # permanent: no live shards coming back
                if sync:
                    raise  # surface straight out of submit()
                inflight.resolve_exception(exc)
                return "resolved"
            if shard is None:  # everything down/open/excluded: wait it out
                if best_effort:
                    inflight.unclaim_attempt()
                    inflight.hedged = False  # allow a later hedge try
                    return "resolved"
                if wait_deadline is not None and time.monotonic() >= wait_deadline:
                    return "queue_full"
                time.sleep(0.05)
                continue
            if self._injector is not None and self._injector.exhaust_slot(req_id):
                token = None  # injected slot exhaustion: transport "full" once
                self._telemetry.events.emit(
                    "fault_injected", fault="slot_exhaust", req_id=req_id,
                    shard=shard.index,
                )
            else:
                try:
                    token = shard.endpoint.acquire(timeout=0.0 if best_effort else 0.05)
                except TransportClosedError:  # shard died while we waited
                    continue
            if token is None:  # shard full — re-pick (load may have shifted)
                if best_effort:
                    inflight.unclaim_attempt()
                    inflight.hedged = False
                    return "resolved"
                if wait_deadline is not None and time.monotonic() >= wait_deadline:
                    return "queue_full"
                continue
            x = inflight.x
            if x is None:  # resolved while we acquired: give the capacity back
                shard.endpoint.release(token)
                return "resolved"
            with shard.lock:
                if shard.down or shard.draining:
                    shard.endpoint.release(token)
                    continue
                shard.pending[req_id] = inflight
            trace = inflight.trace
            try:
                shard.endpoint.send_request(
                    token, req_id, x, inflight.deadline_at,
                    trace_id=0 if trace is None else trace.trace_id,
                    model=inflight.model,
                )
                inflight.last_sent_at = time.monotonic()
                inflight.stalled = False
                shard.last_routed_at = inflight.last_sent_at
                with shard.lock:
                    shard.requests += 1
                    attempt_no = inflight.attempts
                if trace is not None:
                    trace.add_span(
                        "dispatch", dispatch_start, inflight.last_sent_at,
                        shard=shard.index, attempt=attempt_no, kind=kind,
                        model=inflight.model,
                    )
                    self._trace_register(
                        req_id, trace, inflight.last_sent_at, shard.index, attempt_no
                    )
                return "sent"
            except Exception:
                with shard.lock:
                    owned = shard.pending.pop(req_id, None)
                self._handle_shard_down(shard, "request transport failed")
                if owned is None:
                    # the crash handler beat us to it: the request is now
                    # its responsibility (rehomed or failed)
                    return "resolved"
                # we still own this attempt — try another shard

    def _pick_shard(self, exclude: _Shard | None = None) -> _Shard | None:
        """Breaker-gated, latency-aware routing over live shards.

        Candidates are live shards whose breaker admits traffic; they
        compete on :func:`route_score` (expected completion time from
        outstanding count + the worker's own p50/p95), except that a
        half-open breaker's probe takes priority — one request risked
        now is the fastest road back to full capacity.  A draining
        shard (being removed) takes no new work but still counts its
        in-flight requests down.  Returns ``None`` during the transient
        window where nothing is routable but recovery is still possible
        (the caller waits); raises only when failure is permanent.
        """
        shards = self._shards  # snapshot: membership can change under us
        live = [s for s in shards if not s.down and not s.draining and s is not exclude]
        if live:
            # latency-aware scores are only comparable when every candidate
            # has reported latencies — a stats-less shard (fresh spawn, no
            # pong yet) would otherwise look optimistically fast and starve
            # the measured ones, so mixed visibility degrades to plain
            # least-outstanding until the pongs catch up
            measured = all(
                s.worker_stats and s.worker_stats.get("p50_ms", 0.0) > 0.0 for s in live
            )
            rank = (lambda s: s.score()) if measured else (lambda s: s.outstanding)
            # exploration guarantee: a shard's p50/p95 only refresh while it
            # serves traffic, so a shard whose last incident left pathological
            # latencies behind (e.g. a batch that spanned a stall) could lose
            # every score comparison forever.  An idle shard that hasn't been
            # routed to recently outranks score-ranked peers — one request per
            # staleness window bounds the starvation and re-measures it.
            now = time.monotonic()
            stale_after = max(4.0 * self.health_interval_s, 1.0)
            fresh = lambda s: s.outstanding > 0 or now - s.last_routed_at <= stale_after
            ranked = sorted(
                live, key=lambda s: (s.breaker.state != "half_open", fresh(s), rank(s))
            )
            for shard in ranked:
                if shard.breaker.try_acquire():
                    return shard
            return None  # every breaker open (or probes outstanding): wait
        if any(not s.permanent and not s.removing for s in shards):
            return None
        reasons = sorted({s.fail_reason for s in shards if s.fail_reason})
        raise RuntimeError(
            "no live shards to route to" + (f" ({'; '.join(reasons)})" if reasons else "")
        )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def worker_pids(self) -> list[int | None]:
        """Current worker PID per shard index (None for remote shards)."""
        return [s.endpoint.pid for s in self._shards]

    @property
    def cluster_stats(self) -> dict:
        """Aggregated router + worker counters (read any time).

        Per-shard: router-side ``requests``/``errors``/``outstanding``/
        ``respawns``, the breaker snapshot, the shard's transport
        address (``None`` for local shm workers), plus the worker's own
        serving-stats snapshot (``None`` until its first health pong).
        Global: sums, worker-side batch counters, the cluster-wide mean
        batch, the transport kind, the router's own end-to-end
        ``router_p50_ms``/``router_p95_ms``/``router_p99_ms``, and the
        resilience counters (``retries``, ``hedges``, ``shed``,
        ``timed_out``, ``corrupt``) — the same registry cells ``/metrics``
        exports, so the two views can never disagree.  ``generation``
        counts membership changes (add/remove/respawn): a consumer that
        cached shard identities refreshes when it moves.  ``models``
        breaks requests, router latency percentiles, and worker batch
        counters down per registered model.
        """
        with self._lock:
            snapshot = [self._shard_map[i] for i in sorted(self._shard_map)]
            generation = self._generation
        shards = []
        totals = {"requests": 0, "errors": 0, "outstanding": 0, "respawns": 0}
        batches = samples = 0
        for s in snapshot:
            serving = s.worker_stats
            alive = not s.down and s.endpoint.alive()
            entry = {
                "shard": s.index,
                "pid": s.endpoint.pid,
                "address": getattr(s.endpoint, "address", None),
                "alive": alive,
                "draining": s.draining,
                "requests": s.requests,
                "errors": s.errors,
                "outstanding": s.outstanding,
                "respawns": s.respawns,
                "breaker": s.breaker.snapshot(),
                "serving": serving,
            }
            shards.append(entry)
            totals["requests"] += s.requests
            totals["errors"] += s.errors
            totals["outstanding"] += s.outstanding
            totals["respawns"] += s.respawns
            if serving:
                batches += serving.get("batches", 0)
                samples += serving.get("samples", 0)
        resilience_counters = {
            key: int(counter.value) for key, counter in self._counters.items()
        }
        injected = dict(self._injector.injected) if self._injector is not None else None
        with self._lock:
            model_names = sorted(self.specs)
        models = {}
        for name in model_names:
            entry = self._model_entry(name)
            reservoir = entry["latency"]
            worker_batches = worker_samples = 0
            for shard_entry in shards:
                serving = shard_entry["serving"] or {}
                per_model = (serving.get("models") or {}).get(name)
                if per_model:
                    worker_batches += per_model.get("batches", 0)
                    worker_samples += per_model.get("samples", 0)
            models[name] = {
                "requests": int(entry["requests"].value),
                "router_p50_ms": reservoir.p50_ms,
                "router_p95_ms": reservoir.p95_ms,
                "router_p99_ms": reservoir.p99_ms,
                "worker_batches": worker_batches,
                "worker_samples": worker_samples,
            }
        return {
            "shards": shards,
            "models": models,
            **totals,
            **resilience_counters,
            "generation": generation,
            "transport": self._launcher.kind,
            "alive_shards": sum(1 for e in shards if e["alive"]),
            "worker_batches": batches,
            "worker_samples": samples,
            "mean_batch": samples / batches if batches else 0.0,
            "router_p50_ms": self._latency.p50_ms,
            "router_p95_ms": self._latency.p95_ms,
            "router_p99_ms": self._latency.p99_ms,
            "injected_faults": injected,
        }

    # ------------------------------------------------------------------
    # Exposition (AdminServer provider protocol)
    # ------------------------------------------------------------------
    def metrics_text(self) -> str:
        """The whole cluster in Prometheus text format: the router's
        live registry (resilience counters), derived gauges/counters
        computed from one :attr:`cluster_stats` pass (so ``/metrics``
        and ``/stats`` agree by construction), and each worker's own
        registry snapshot labelled ``shard="N"``."""
        stats = self.cluster_stats
        derived = MetricsRegistry()
        derived.counter(
            "cluster_requests_total", help="requests routed (all attempts)"
        ).inc(stats["requests"])
        derived.counter(
            "cluster_errors_total", help="requests resolved with an error"
        ).inc(stats["errors"])
        derived.counter(
            "cluster_respawns_total", help="shard respawns/reconnects"
        ).inc(stats["respawns"])
        derived.gauge("cluster_alive_shards", help="shards currently serving").set(
            stats["alive_shards"]
        )
        derived.gauge(
            "cluster_membership_generation",
            help="membership changes so far (add/remove/respawn)",
        ).set(stats["generation"])
        derived.gauge(
            "cluster_outstanding_requests", help="requests in flight right now"
        ).set(stats["outstanding"])
        derived.gauge(
            "cluster_mean_batch", help="cluster-wide mean micro-batch size"
        ).set(stats["mean_batch"])
        for q in ("p50", "p95", "p99"):
            derived.gauge(
                f"cluster_router_{q}_ms",
                help=f"router-observed end-to-end {q} latency (ms)",
            ).set(stats[f"router_{q}_ms"])
        for name, m in stats["models"].items():
            for q in ("p50", "p95", "p99"):
                derived.gauge(
                    f"cluster_model_router_{q}_ms",
                    help=f"router-observed per-model {q} latency (ms)",
                    model=name,
                ).set(m[f"router_{q}_ms"])
        snapshots = [(self._telemetry.registry.snapshot(), {}), (derived.snapshot(), {})]
        for entry in stats["shards"]:
            serving = entry["serving"]
            if serving and "metrics" in serving:
                snapshots.append((serving["metrics"], {"shard": str(entry["shard"])}))
        return render_prometheus(snapshots)

    def health(self) -> tuple[bool, dict]:
        """Liveness verdict for ``/healthz``: healthy while at least one
        shard serves and the server is open."""
        alive = sum(1 for s in self._shards if not s.down and s.endpoint.alive())
        ok = alive > 0 and not self._closed
        return ok, {"alive_shards": alive, "shards": len(self._shards),
                    "closed": self._closed}

    def get_trace(self, trace_id: int) -> dict | None:
        """JSON-ready span timeline for ``/trace/<id>`` (None: unknown)."""
        trace = self._telemetry.traces.get(trace_id)
        return None if trace is None else trace.to_dict()

    def trace_ids(self) -> list[int]:
        """Retained sampled trace ids, oldest first (``/traces``)."""
        return self._telemetry.traces.ids()

    # ------------------------------------------------------------------
    # Shutdown
    # ------------------------------------------------------------------
    def close(self, timeout: float = 30.0) -> None:
        """Graceful drain: stop accepting, let workers finish in-flight
        requests, reap processes / connections, release transport
        resources (idempotent).

        A shard whose peer disconnects mid-drain is handled by the recv
        thread's down-path the moment the EOF arrives — its in-flight
        futures resolve with :class:`ShardCrashedError` immediately, and
        the join below returns as soon as the endpoint is gone, not
        after the full drain timeout.

        Membership is snapshotted *once* under the lock that setting
        ``_closed`` takes: a respawn (or add_shard) racing close either
        installs before the snapshot — and is reaped by it — or sees
        ``_closed`` and reaps its own worker.  Reading ``self._shards``
        three separate times here used to leave exactly that gap, and a
        respawned worker could leak past shutdown.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            shards = [self._shard_map[i] for i in sorted(self._shard_map)]
        admin = getattr(self, "admin", None)
        if admin is not None:
            admin.close()  # stop serving scrapes before state is torn down
        self._stop_monitor.set()
        self._monitor.join(timeout=5.0)
        deadline = time.monotonic() + timeout
        for shard in shards:
            if shard.down:
                continue
            try:
                shard.endpoint.send_stop()
            except (TransportClosedError, BrokenPipeError, OSError):
                pass
        for shard in shards:
            if shard.down:
                continue  # its futures were already resolved by the down-path
            shard.endpoint.join(timeout=max(0.0, deadline - time.monotonic()))
            if shard.endpoint.alive():  # drain overran the deadline
                shard.endpoint.kill()
                shard.endpoint.join(timeout=5.0)
        for shard in shards:
            if shard.recv_thread is not None:
                shard.recv_thread.join(timeout=5.0)
            # workers drained before exiting, so normally nothing is left
            with shard.lock:
                leftovers = dict(shard.pending)
                shard.pending.clear()
            failed = 0
            for inflight in leftovers.values():
                if inflight.resolve_exception(
                    RuntimeError("ShardedServer closed with the request unanswered")
                ):
                    failed += 1
            with shard.lock:
                shard.errors += failed
            if not shard.down:
                self._retire_endpoint(shard.endpoint)
        for endpoint in self._retired_endpoints:
            endpoint.dispose()
        self._retired_endpoints.clear()
        self._launcher.close()
        if self._addressed_launcher is not None:
            self._addressed_launcher.close()
        self._telemetry.close()

    def __enter__(self) -> "ShardedServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


# ----------------------------------------------------------------------
# Demo spec (CLI / examples / benchmarks)
# ----------------------------------------------------------------------
def projected_smallcnn_spec(
    bundle_path: str,
    *,
    channels: tuple[int, ...] = (8, 16),
    in_size: int = 8,
    num_patterns: int = 8,
    connectivity_rate: float = 2.0,
    seed: int = 7,
    **spec_kwargs,
) -> SessionSpec:
    """Build a pattern-pruned small CNN by direct projection and capture
    it as a :class:`SessionSpec` (bundle written to ``bundle_path``).

    One-shot hard projection instead of ADMM — seconds, not minutes —
    which is exactly what the serving demos and benchmarks need: a model
    whose conv layers genuinely execute through compiled FKW kernels.
    """
    from repro.core.masking import apply_masks, extract_masks
    from repro.core.patterns import PatternSet, enumerate_candidate_patterns
    from repro.core.projections import project_kernel_pattern
    from repro.models import build_small_cnn
    from repro import nn

    model = build_small_cnn(channels=channels, in_size=in_size, seed=seed)
    ps = PatternSet(enumerate_candidate_patterns()[:num_patterns])
    apply_masks(model, extract_masks(model, ps, connectivity_rate=connectivity_rate))
    model.eval()
    assignments = {}
    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            _, a = project_kernel_pattern(module.weight.data, ps)
            energy = (module.weight.data.reshape(a.shape[0], a.shape[1], -1) ** 2).sum(axis=2)
            assignments[name] = (a * (energy > 0)).astype(np.int32)
    model_kwargs = {"channels": tuple(channels), "in_size": in_size, "seed": seed}
    return SessionSpec.capture(
        "smallcnn",
        model,
        (3, in_size, in_size),
        str(bundle_path),
        pattern_set=ps,
        assignments=assignments,
        model_kwargs=model_kwargs,
        **spec_kwargs,
    )
