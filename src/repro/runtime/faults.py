"""Deterministic fault injection for the serving stack.

Chaos engineering needs *reproducible* chaos: a test that kills a worker
on a coin flip proves nothing when it goes green on the retry.
:class:`FaultPlan` makes every fault decision a pure function of
``(seed, request id)`` — the same plan replayed over the same request
ids injects exactly the same faults, in any process, with no shared
state.  The plan is a small frozen dataclass, so it pickles through the
``spawn`` boundary to shard workers unchanged.

Fault kinds (all rates are independent probabilities in ``[0, 1]``,
summing to at most 1):

* ``crash`` — the worker process hard-exits (``os._exit``) with the
  request in flight: the deterministic version of a SIGKILL mid-request.
* ``stall`` — the worker sleeps ``stall_s`` before serving the request,
  blocking its whole receive loop: a wedged-but-alive shard, the case
  circuit breakers exist for.
* ``slow`` — the worker sleeps ``slow_s``: tail latency, not failure.
* ``corrupt`` — the response payload is corrupted *after* its checksum
  was computed: the transport must catch it
  (:class:`~repro.runtime.resilience.CorruptedPayloadError`), never
  deliver it.
* ``slot_exhaust`` — a router-side slot acquisition is refused as if
  every transport slot were busy: overload without traffic.

Hooks are no-ops by default: every injection point in
:class:`~repro.runtime.cluster.ShardedServer`,
:class:`~repro.runtime.serving.MicroBatchServer`, and
:class:`~repro.runtime.shm_ring.ShmSlotRing` checks an optional
injector that is ``None`` in production.

Usage::

    plan = FaultPlan(seed=7, crash_rate=0.1, stall_rate=0.1, corrupt_rate=0.1)
    server = ShardedServer(spec, num_shards=4, faults=plan)
    # every request now either returns a (checksum-verified) correct
    # result or a typed error — chaos tests assert exactly that
"""

from __future__ import annotations

import threading
import time
import zlib
from dataclasses import dataclass

__all__ = ["FaultPlan", "FaultInjector", "FAULT_KINDS"]

#: decision order is part of the plan's determinism contract
FAULT_KINDS = ("crash", "stall", "slow", "corrupt", "slot_exhaust")


@dataclass(frozen=True)
class FaultPlan:
    """Seeded, picklable recipe for which requests fault and how.

    Attributes:
        seed: decision seed; two plans differing only in seed inject
            faults on different request ids.
        crash_rate / stall_rate / slow_rate / corrupt_rate /
        slot_exhaust_rate: per-kind probabilities (must sum to <= 1).
        stall_s: sleep length of a ``stall`` fault (long enough to trip
            stall detection / breakers, short enough for tests).
        slow_s: sleep length of a ``slow`` fault.
        start_after: request ids below this never fault — lets warmup
            traffic (session build verification, breaker priming)
            through untouched.
    """

    seed: int = 0
    crash_rate: float = 0.0
    stall_rate: float = 0.0
    slow_rate: float = 0.0
    corrupt_rate: float = 0.0
    slot_exhaust_rate: float = 0.0
    stall_s: float = 0.5
    slow_s: float = 0.05
    start_after: int = 0

    def __post_init__(self) -> None:
        rates = (self.crash_rate, self.stall_rate, self.slow_rate,
                 self.corrupt_rate, self.slot_exhaust_rate)
        if any(r < 0 or r > 1 for r in rates):
            raise ValueError(f"fault rates must be in [0, 1], got {rates}")
        if sum(rates) > 1.0 + 1e-9:
            raise ValueError(f"fault rates sum to {sum(rates):.3f} > 1")
        if self.stall_s < 0 or self.slow_s < 0:
            raise ValueError("stall_s and slow_s must be >= 0")
        if self.start_after < 0:
            raise ValueError(f"start_after must be >= 0, got {self.start_after}")

    def _uniform(self, key: int) -> float:
        """Deterministic uniform draw in [0, 1) for one decision key.

        crc32 over the seed+key bytes: stable across processes and
        Python versions (unlike ``hash``), cheap, and well-mixed enough
        for rate thresholds.
        """
        h = zlib.crc32(f"{self.seed}:{key}".encode())
        return (h & 0xFFFFFFFF) / 2**32

    def decide(self, req_id: int) -> str | None:
        """Fault kind for this request id (``None`` = serve normally).

        Pure and deterministic: the router, the worker, and the test
        asserting on the outcome all agree on what request ``req_id``
        does, with no communication.
        """
        if req_id < self.start_after:
            return None
        u = self._uniform(req_id)
        edge = 0.0
        for kind, rate in zip(
            FAULT_KINDS,
            (self.crash_rate, self.stall_rate, self.slow_rate,
             self.corrupt_rate, self.slot_exhaust_rate),
        ):
            edge += rate
            if rate > 0 and u < edge:
                return kind
        return None

    def any_rate(self) -> bool:
        """True when the plan can inject anything at all."""
        return (self.crash_rate or self.stall_rate or self.slow_rate
                or self.corrupt_rate or self.slot_exhaust_rate) > 0


class FaultInjector:
    """Runtime wrapper around a :class:`FaultPlan`: applies sleeps,
    counts what it injected, and keys router-side decisions.

    One injector lives per process (router or worker); counters are for
    observability only and never feed back into decisions, so
    determinism is preserved.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.injected: dict[str, int] = {kind: 0 for kind in FAULT_KINDS}
        self._exhausted: set[int] = set()
        self._lock = threading.Lock()

    def decide(self, req_id: int) -> str | None:
        """Plan decision for a request, recorded in the counters."""
        kind = self.plan.decide(req_id)
        if kind is not None:
            self.injected[kind] += 1
        return kind

    def apply_delay(self, kind: str | None) -> None:
        """Sleep for ``stall``/``slow`` decisions; no-op otherwise."""
        if kind == "stall":
            time.sleep(self.plan.stall_s)
        elif kind == "slow":
            time.sleep(self.plan.slow_s)

    def exhaust_slot(self, req_id: int) -> bool:
        """Router-side: should this slot acquisition be refused as if the
        ring were full?

        Refuses only the *first* acquisition attempt of a
        ``slot_exhaust``-marked request — a transient full ring, not a
        permanent one — so the submit retry loop makes progress instead
        of spinning on the same deterministic verdict forever.
        """
        if self.plan.decide(req_id) != "slot_exhaust":
            return False
        with self._lock:
            if req_id in self._exhausted:
                return False
            self._exhausted.add(req_id)
        self.injected["slot_exhaust"] += 1
        return True
