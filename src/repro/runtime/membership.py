"""Elastic membership: reconcile a live cluster against a shard-list file.

:class:`~repro.runtime.cluster.ShardedServer` exposes runtime
membership directly (:meth:`~repro.runtime.cluster.ShardedServer.add_shard`
/ :meth:`~repro.runtime.cluster.ShardedServer.remove_shard`) and over
HTTP (``POST /shards/add``, ``POST /shards/<id>/remove``).  This module
adds the file-driven flavour behind ``python -m repro serve
--shard-file``: an operator — or an autoscaler that only knows how to
write a file — declares the *desired* shard list, and a watcher thread
polls the file's mtime and diffs it against live membership.  Additions
join through the cluster's launcher; removals always drain first.

File format — one desired shard per line::

    # capacity for the evening peak
    local              # spawn a worker next to the router
    local
    10.0.0.5:7070      # join a remote worker (python -m repro worker --listen ...)

Blank lines and ``#`` comments are ignored.  ``local`` may repeat (one
worker per occurrence); addresses are deduplicated — a worker serves
one router connection at a time, so listing it twice cannot add
capacity.
"""

from __future__ import annotations

import os
import threading
from collections import Counter

from repro.runtime.transport_tcp import parse_hostport

__all__ = ["ShardFileWatcher", "parse_shard_file"]

#: the file entry meaning "spawn a worker through the cluster's own
#: launcher" (as opposed to a HOST:PORT remote worker address)
LOCAL = "local"


def parse_shard_file(text: str, *, name: str = "<shard-file>") -> list[str]:
    """Parse shard-list file content into desired entries — ``"local"``
    (may repeat) or ``"host:port"`` (deduplicated).  Raises
    ``ValueError`` naming the offending line."""
    entries: list[str] = []
    seen: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), 1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.lower() == LOCAL:
            entries.append(LOCAL)
            continue
        try:
            parse_hostport(line)
        except ValueError as exc:
            raise ValueError(f"{name}:{lineno}: {exc}") from None
        if line not in seen:
            seen.add(line)
            entries.append(line)
    return entries


class ShardFileWatcher:
    """Poll a shard-list file and add/remove shards to match it.

    The watcher owns the mapping from file entries to the shard indices
    they created.  The server's founding shards are adopted at
    construction (as ``local``, or as their address for remote
    clusters), so a shrink below the founding count removes real
    shards.  Removals drain (``remove_shard(..., drain=True)``).

    The poll thread never raises: a malformed file, an unreachable
    address, or a refused removal (e.g. the last routable shard) lands
    on the server's event log as ``shard_file_error`` and the rest of
    the diff still applies; the failed part is retried when the file
    changes again.  An absent file expresses no desire and changes
    nothing.
    """

    def __init__(
        self,
        server,
        path,
        *,
        poll_interval_s: float = 0.5,
        drain_timeout_s: float = 30.0,
    ) -> None:
        self._server = server
        self.path = os.fspath(path)
        self.poll_interval_s = poll_interval_s
        self.drain_timeout_s = drain_timeout_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-shard-file", daemon=True
        )
        self._last_sig: tuple | None = None
        self._last_content: str | None = None
        # entry each tracked shard index was created for; founding
        # shards are adopted so the file governs them too
        self._assigned: dict[int, str] = {
            entry["shard"]: entry["address"] or LOCAL
            for entry in server.cluster_stats["shards"]
        }

    def start(self) -> "ShardFileWatcher":
        self._thread.start()
        return self

    def close(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5.0)

    def _loop(self) -> None:
        while not self._stop.wait(self.poll_interval_s):
            try:
                self.poll_once()
            except Exception as exc:  # never kill the poll thread
                self._server.events.emit(
                    "shard_file_error", path=self.path,
                    error=f"{type(exc).__name__}: {exc}",
                )

    def poll_once(self) -> tuple[int, int]:
        """One poll: re-read the file if its mtime/size moved, reconcile
        membership against it.  Returns ``(added, removed)`` — public so
        tests (and callers that want synchronous application) can drive
        the watcher without the thread."""
        try:
            st = os.stat(self.path)
        except FileNotFoundError:
            return (0, 0)
        sig = (st.st_mtime_ns, st.st_size)
        if sig == self._last_sig:
            return (0, 0)
        self._last_sig = sig
        with open(self.path, encoding="utf-8") as fh:
            content = fh.read()
        if content == self._last_content:
            return (0, 0)  # touched but unchanged
        try:
            desired = parse_shard_file(content, name=self.path)
        except ValueError as exc:
            self._server.events.emit(
                "shard_file_error", path=self.path, error=str(exc)
            )
            return (0, 0)  # keep serving the last good membership
        self._last_content = content
        return self._reconcile(desired)

    def _reconcile(self, desired: list[str]) -> tuple[int, int]:
        # drop tracked shards the server no longer has (removed via the
        # admin API or Python API behind our back) before counting
        live = {e["shard"] for e in self._server.cluster_stats["shards"]}
        for index in [i for i in self._assigned if i not in live]:
            del self._assigned[index]
        want = Counter(desired)
        have = Counter(self._assigned.values())
        added = removed = 0
        # grow first: when the file swaps one entry for another, the
        # replacement should be serving before any drain starts
        for entry, count in (want - have).items():
            for _ in range(count):
                try:
                    index = self._server.add_shard(
                        None if entry == LOCAL else entry
                    )
                except Exception as exc:
                    self._server.events.emit(
                        "shard_file_error", path=self.path, op="add",
                        entry=entry, error=f"{type(exc).__name__}: {exc}",
                    )
                    break
                self._assigned[index] = entry
                added += 1
        for entry, count in (have - want).items():
            # newest first: scale-down unwinds the most recent adds
            indices = sorted(
                (i for i, e in self._assigned.items() if e == entry),
                reverse=True,
            )
            for index in indices[:count]:
                try:
                    self._server.remove_shard(
                        index, drain=True, timeout=self.drain_timeout_s
                    )
                except Exception as exc:
                    self._server.events.emit(
                        "shard_file_error", path=self.path, op="remove",
                        shard=index, error=f"{type(exc).__name__}: {exc}",
                    )
                    continue
                del self._assigned[index]
                removed += 1
        if added or removed:
            self._server.events.emit(
                "shard_file_applied", path=self.path, added=added,
                removed=removed, desired=len(desired),
            )
        return (added, removed)
