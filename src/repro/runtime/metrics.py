"""Shared serving metrics: bounded latency reservoirs with percentiles.

Both serving tiers need the same primitive — "what were my p50/p95
latencies lately?" — measured at different points: the worker-side
:class:`~repro.runtime.serving.MicroBatchServer` tracks submit→resolve
latency inside one process, and the router in
:class:`~repro.runtime.cluster.ShardedServer` tracks per-shard
dispatch→reply attempt latency across the transport.  Before this module
each grew its own ring-buffer-and-percentile code; now both share
:class:`LatencyReservoir`.

The reservoir is a **sliding window**, not a log: a preallocated float64
ring of ``capacity`` samples where new recordings overwrite the oldest,
so a server that lives for months holds memory constant and its
percentiles always describe recent traffic.  All methods are
thread-safe (one internal lock; recording is O(1), percentile reads copy
the window out before computing).
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = ["LatencyReservoir", "DEFAULT_RESERVOIR"]

#: default reservoir size: enough samples for stable p95 estimates,
#: bounded so a long-lived server never grows
DEFAULT_RESERVOIR = 2048


class LatencyReservoir:
    """Bounded sliding-window reservoir of latency samples (ms).

    Usage::

        lat = LatencyReservoir()
        lat.record(12.5)
        print(lat.p50_ms, lat.p95_ms)   # percentiles over the window
    """

    __slots__ = ("_ring", "_count", "_lock")

    def __init__(self, capacity: int = DEFAULT_RESERVOIR) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self._ring = np.zeros(capacity, dtype=np.float64)
        self._count = 0
        self._lock = threading.Lock()

    @property
    def capacity(self) -> int:
        return self._ring.shape[0]

    @property
    def count(self) -> int:
        """Total samples ever recorded (window holds the last
        ``min(count, capacity)`` of them)."""
        return self._count

    def record(self, latency_ms: float) -> None:
        """Append one latency sample, evicting the oldest when full."""
        with self._lock:
            self._ring[self._count % self._ring.shape[0]] = latency_ms
            self._count += 1

    def percentile(self, q: float) -> float:
        """q-th percentile over the current window (0.0 when empty)."""
        with self._lock:
            n = min(self._count, self._ring.shape[0])
            if n == 0:
                return 0.0
            window = self._ring[:n].copy()
        return float(np.percentile(window, q))

    def window(self) -> np.ndarray:
        """Copy of the currently held samples (possibly empty) — lets a
        multi-reservoir owner (one per model) compute aggregate
        percentiles over the concatenated windows."""
        with self._lock:
            n = min(self._count, self._ring.shape[0])
            return self._ring[:n].copy()

    @property
    def p50_ms(self) -> float:
        """Median latency over the sliding window (0.0 = no samples)."""
        return self.percentile(50.0)

    @property
    def p95_ms(self) -> float:
        """95th-percentile latency over the sliding window."""
        return self.percentile(95.0)

    @property
    def p99_ms(self) -> float:
        """99th-percentile latency over the sliding window."""
        return self.percentile(99.0)

    @property
    def mean_ms(self) -> float:
        """Mean latency over the sliding window (0.0 = no samples)."""
        with self._lock:
            n = min(self._count, self._ring.shape[0])
            if n == 0:
                return 0.0
            window = self._ring[:n].copy()
        return float(window.mean())

    @property
    def max_ms(self) -> float:
        """Maximum latency over the sliding window (0.0 = no samples)."""
        with self._lock:
            n = min(self._count, self._ring.shape[0])
            if n == 0:
                return 0.0
            window = self._ring[:n].copy()
        return float(window.max())

    def snapshot(self) -> dict:
        """Picklable point-in-time summary (for cross-process stats)."""
        with self._lock:
            n = min(self._count, self._ring.shape[0])
            count = self._count
            window = self._ring[:n].copy() if n else None
        if window is None:
            return {"count": count, "p50_ms": 0.0, "p95_ms": 0.0, "p99_ms": 0.0,
                    "mean_ms": 0.0, "max_ms": 0.0}
        return {
            "count": count,
            "p50_ms": float(np.percentile(window, 50.0)),
            "p95_ms": float(np.percentile(window, 95.0)),
            "p99_ms": float(np.percentile(window, 99.0)),
            "mean_ms": float(window.mean()),
            "max_ms": float(window.max()),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"LatencyReservoir(count={self._count}, capacity={self.capacity}, "
            f"p50={self.p50_ms:.2f}ms, p95={self.p95_ms:.2f}ms, p99={self.p99_ms:.2f}ms)"
        )
