"""Numpy reference kernels for every graph-IR operator."""

from __future__ import annotations

import numpy as np

from repro.autograd.im2col import im2col, im2col_view
from repro.graph.ir import Node, OpKind


def conv2d(x: np.ndarray, weight: np.ndarray, bias: np.ndarray | None, stride: int, padding: int, groups: int = 1) -> np.ndarray:
    """Reference convolution on a batched NCHW input."""
    n, c, h, w = x.shape
    f, c_per_group, kh, kw = weight.shape
    f_per_group = f // groups
    outs = []
    for g in range(groups):
        xg = x[:, g * c_per_group : (g + 1) * c_per_group]
        wg = weight[g * f_per_group : (g + 1) * f_per_group]
        col, ho, wo = im2col(xg, kh, kw, stride, padding)
        out = np.einsum("fk,nkl->nfl", wg.reshape(f_per_group, -1), col, optimize=True)
        outs.append(out)
    out = np.concatenate(outs, axis=1).reshape(n, f, ho, wo)
    if bias is not None:
        out += bias.reshape(1, f, 1, 1)
    return out.astype(np.float32, copy=False)


def _apply_activation(x: np.ndarray, activation: str | None, inplace: bool = False) -> np.ndarray:
    """Fused activation epilogue; ``inplace`` is safe only on arrays the
    caller just allocated (conv/linear/add outputs)."""
    if activation is None:
        return x
    if activation == "relu":
        return np.maximum(x, 0.0, out=x if inplace else None)
    if activation == "relu6":
        return np.clip(x, 0.0, 6.0, out=x if inplace else None)
    raise ValueError(f"unknown fused activation {activation!r}")


def eval_node(node: Node, inputs: list[np.ndarray]) -> np.ndarray:
    """Evaluate one IR node on batched numpy inputs."""
    op = node.op
    if op == OpKind.CONV2D:
        out = conv2d(
            inputs[0],
            node.params["weight"],
            node.params.get("bias"),
            node.attrs.get("stride", 1),
            node.attrs.get("padding", 0),
            node.attrs.get("groups", 1),
        )
        return _apply_activation(out, node.attrs.get("activation"), inplace=True)
    if op == OpKind.BATCHNORM:
        gamma = node.params["gamma"]
        beta = node.params["beta"]
        mean = node.params["mean"]
        var = node.params["var"]
        eps = node.attrs.get("eps", 1e-5)
        scale = (gamma / np.sqrt(var + eps)).reshape(1, -1, 1, 1)
        shift = (beta - mean * gamma / np.sqrt(var + eps)).reshape(1, -1, 1, 1)
        return (inputs[0] * scale + shift).astype(np.float32)
    if op == OpKind.RELU:
        return np.maximum(inputs[0], 0.0)
    if op == OpKind.RELU6:
        return np.clip(inputs[0], 0.0, 6.0)
    if op == OpKind.MAXPOOL:
        return _pool(inputs[0], node, reducer="max")
    if op == OpKind.AVGPOOL:
        return _pool(inputs[0], node, reducer="mean")
    if op == OpKind.GLOBAL_AVGPOOL:
        return inputs[0].mean(axis=(2, 3), keepdims=True).astype(np.float32)
    if op == OpKind.FLATTEN:
        return inputs[0].reshape(inputs[0].shape[0], -1)
    if op == OpKind.LINEAR:
        x = inputs[0]
        w_t = node.params["weight"].T
        # one sample at a time: BLAS blocks a (N, K) @ (K, M) product
        # differently per N, so a coalesced serving batch would round
        # differently than the same request served alone — per-sample
        # products keep inference bitwise batch-invariant
        out = np.concatenate([x[i : i + 1] @ w_t for i in range(x.shape[0])])
        bias = node.params.get("bias")
        if bias is not None:
            out = out + bias
        return _apply_activation(out.astype(np.float32, copy=False), node.attrs.get("activation"), inplace=True)
    if op == OpKind.ADD:
        return _apply_activation(inputs[0] + inputs[1], node.attrs.get("activation"), inplace=True)
    if op == OpKind.CONSTANT:
        return node.params["value"]
    if op == OpKind.OUTPUT:
        return inputs[0]
    raise NotImplementedError(f"no runtime kernel for {op}")


def _pool(x: np.ndarray, node: Node, reducer: str) -> np.ndarray:
    k = node.attrs["kernel_size"]
    s = node.attrs.get("stride", k)
    p = node.attrs.get("padding", 0)
    if p:
        fill = -np.inf if reducer == "max" else 0.0
        x = np.pad(x, ((0, 0), (0, 0), (p, p), (p, p)), constant_values=fill)
    view = im2col_view(x, k, k, s)
    if reducer == "max":
        return np.ascontiguousarray(view.max(axis=(2, 3))).astype(np.float32)
    return np.ascontiguousarray(view.mean(axis=(2, 3))).astype(np.float32)
