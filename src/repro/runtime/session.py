"""End-to-end inference session: nn model → optimized graph → executor.

``InferenceSession`` is the user-facing runtime entry: it exports the
model to graph IR, runs PatDNN's graph-optimization pipeline, optionally
swaps pruned conv layers to compiled FKW kernels, and executes batches.

Batches execute as batches all the way down: the compiled executor
dispatches whole ``(N, C, H, W)`` arrays to batched FKW kernels, reuses
scratch buffers across ``run()`` calls through its
:class:`~repro.runtime.arena.BufferArena`, and compiles each distinct
layer once via its :class:`~repro.compiler.codegen.KernelCache` — so a
session is cheap to construct for repeated-block networks and fast to
call under sustained traffic.
"""

from __future__ import annotations

import numpy as np

from repro import nn
from repro.core.patterns import PatternSet
from repro.graph.builder import build_graph
from repro.graph.ir import OpKind
from repro.graph.pass_manager import default_pipeline
from repro.runtime.executor import CompiledExecutor, ReferenceExecutor


class InferenceSession:
    """Run a (possibly pruned) model through the PatDNN execution stack.

    Args:
        model: trained ``repro.nn`` model (eval-mode statistics are used).
        input_shape: (C, H, W) of one sample.
        pattern_set / assignments: pass the pruning artifacts to execute
            pattern layers through compiled FKW kernels; omit for the
            reference (dense) interpreter.
        optimize_graph: apply BN-fold / fusion / replacement passes.
        opt_level: codegen variant for compiled layers (``'no-opt'`` |
            ``'reorder'`` | ``'lre'`` | ``'gemm'``; the default
            ``'gemm'`` is the fastest batch-serving level).
    """

    def __init__(
        self,
        model: nn.Module,
        input_shape: tuple[int, int, int],
        pattern_set: PatternSet | None = None,
        assignments: dict[str, np.ndarray] | None = None,
        optimize_graph: bool = True,
        opt_level: str = "gemm",
    ) -> None:
        model.eval()
        self.graph = build_graph(model, input_shape)
        self.pass_report = None
        if optimize_graph:
            self.pass_report = default_pipeline().run(self.graph)
        if pattern_set is not None and assignments:
            graph_assignments = self._map_assignments(assignments)
            self.executor: ReferenceExecutor = CompiledExecutor(
                self.graph, pattern_set, graph_assignments, opt_level
            )
        else:
            self.executor = ReferenceExecutor(self.graph)

    def _map_assignments(self, assignments: dict[str, np.ndarray]) -> dict[str, np.ndarray]:
        """Match pruner layer names (module paths) to graph conv nodes.

        Convs are emitted in module traversal order, which matches the
        pruner's ``named_modules`` order, so we zip them positionally and
        verify by weight shape.
        """
        conv_nodes = [n for n in self.graph.toposort() if n.op == OpKind.CONV2D]
        items = list(assignments.items())
        mapped: dict[str, np.ndarray] = {}
        node_idx = 0
        for name, assignment in items:
            while node_idx < len(conv_nodes):
                node = conv_nodes[node_idx]
                node_idx += 1
                if node.params["weight"].shape[:2] == assignment.shape:
                    mapped[node.name] = assignment
                    break
            else:
                raise ValueError(f"could not map pruned layer {name!r} to a graph conv node")
        return mapped

    @property
    def kernel_cache(self):
        """Compile-once kernel cache of the compiled executor (or None)."""
        return getattr(self.executor, "kernel_cache", None)

    @property
    def arena(self):
        """Scratch-buffer arena of the compiled executor (or None)."""
        return getattr(self.executor, "arena", None)

    def run(self, x: np.ndarray) -> np.ndarray:
        """Inference on a batched NCHW array; returns logits."""
        if x.ndim == 3:
            x = x[None]
        return self.executor.run(x)
