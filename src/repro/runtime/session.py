"""End-to-end inference session: nn model → optimized graph → executor.

``InferenceSession`` is the user-facing runtime entry: it exports the
model to graph IR, runs PatDNN's graph-optimization pipeline, optionally
swaps pruned conv layers to compiled FKW kernels, and executes batches.

Batches execute as batches all the way down: the compiled executor
dispatches whole ``(N, C, H, W)`` arrays to batched FKW kernels, reuses
scratch buffers across ``run()`` calls through its
:class:`~repro.runtime.arena.BufferArena`, and compiles each distinct
layer once via its :class:`~repro.compiler.codegen.KernelCache` — so a
session is cheap to construct for repeated-block networks and fast to
call under sustained traffic.

A session is safe to share across threads: ``run()`` may be called
concurrently (the executor stack is thread-safe), and
:meth:`InferenceSession.run_async` routes requests through a lazily
started micro-batching front-end
(:class:`~repro.runtime.serving.MicroBatchServer`) that coalesces
concurrent single-sample traffic into efficient micro-batches.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro import nn
from repro.core.patterns import PatternSet
from repro.graph.builder import build_graph
from repro.graph.ir import OpKind
from repro.graph.pass_manager import default_pipeline
from repro.runtime.executor import CompiledExecutor, ReferenceExecutor
from repro.runtime.serving import MicroBatchServer, ServingConfig

#: registry name a single-model cluster serves under when the caller
#: never names one — keeps the one-spec construction path and every
#: pre-multi-tenant suite working unchanged
DEFAULT_MODEL = "default"


@dataclass(frozen=True)
class SessionSpec:
    """A picklable recipe for rebuilding an :class:`InferenceSession`.

    Sessions themselves cannot cross process boundaries — they hold
    compiled kernel closures, arenas, and locks — so multi-process
    serving (:class:`repro.runtime.cluster.ShardedServer`) ships this
    spec instead: the model is named by its registry entry, the weights
    and pruning artifacts live in an on-disk bundle written by
    :func:`repro.utils.serialize.save_session_bundle`, and every worker
    calls :meth:`build` to reconstruct an identical session.  Rebuilt
    sessions are bitwise-equivalent to the originating one: the bundle
    stores exact array bytes and graph optimization is deterministic.

    Attributes:
        model: name in :mod:`repro.models.registry` (e.g. ``smallcnn``).
        input_shape: (C, H, W) of one sample.
        bundle_path: ``.npz`` session bundle (state dict + optional
            pruning artifacts).
        model_kwargs: keyword arguments for the registry builder — must
            reproduce the architecture the bundle's state dict fits.
        output_shape: per-sample output shape, recorded at capture time
            so transports can size buffers without building a model;
            recomputed by :meth:`probe_output_shape` when ``None``.
    """

    model: str
    input_shape: tuple[int, int, int]
    bundle_path: str
    model_kwargs: dict[str, Any] = field(default_factory=dict)
    optimize_graph: bool = True
    opt_level: str = "gemm"
    arena_max_bytes: int | None = None
    serving_config: ServingConfig | None = None
    output_shape: tuple[int, ...] | None = None

    @classmethod
    def capture(
        cls,
        model_name: str,
        model: nn.Module,
        input_shape: tuple[int, int, int],
        bundle_path: str,
        pattern_set: PatternSet | None = None,
        assignments: dict[str, np.ndarray] | None = None,
        *,
        model_kwargs: dict[str, Any] | None = None,
        **spec_kwargs: Any,
    ) -> SessionSpec:
        """Snapshot a live (possibly pruned) model into a spec + bundle.

        Writes the session bundle to ``bundle_path`` and returns the
        spec pointing at it.  ``model_kwargs`` must rebuild the same
        architecture through the registry (weights come from the
        bundle, so initialization seeds do not matter).
        """
        from repro.models.registry import get_trainable
        from repro.utils.serialize import save_session_bundle

        get_trainable(model_name, **(model_kwargs or {}))  # fail fast on bad names/kwargs
        written = save_session_bundle(bundle_path, model.state_dict(), pattern_set, assignments)
        out_shape = spec_kwargs.pop("output_shape", None)
        if out_shape is None:
            out_shape = _graph_output_shape(build_graph(model, input_shape))
        return cls(
            model=model_name,
            input_shape=tuple(input_shape),
            bundle_path=str(written),
            model_kwargs=dict(model_kwargs or {}),
            output_shape=tuple(out_shape),
            **spec_kwargs,
        )

    def build(self, *, kernel_cache=None, arena=None) -> InferenceSession:
        """Reconstruct the session (registry model + bundle artifacts).

        ``kernel_cache`` / ``arena`` let a multi-tenant worker share one
        process-wide compile cache and scratch arena across every loaded
        model's session (both are thread-safe); omitted, the session
        owns private ones, exactly as before.
        """
        from repro.models.registry import get_trainable
        from repro.utils.serialize import load_session_bundle

        model = get_trainable(self.model, **self.model_kwargs)
        state, pattern_set, assignments = load_session_bundle(self.bundle_path)
        model.load_state_dict(state)
        return InferenceSession(
            model,
            self.input_shape,
            pattern_set=pattern_set,
            assignments=assignments or None,
            optimize_graph=self.optimize_graph,
            opt_level=self.opt_level,
            arena_max_bytes=self.arena_max_bytes,
            serving_config=self.serving_config,
            kernel_cache=kernel_cache,
            arena=arena,
        )

    def probe_output_shape(self) -> tuple[int, ...]:
        """Per-sample output shape (cheap graph-only probe when not
        recorded at capture time — no kernels are compiled)."""
        if self.output_shape is not None:
            return tuple(self.output_shape)
        from repro.models.registry import get_trainable

        model = get_trainable(self.model, **self.model_kwargs)
        return _graph_output_shape(build_graph(model, self.input_shape))


def spec_to_json(spec: SessionSpec) -> dict[str, Any]:
    """JSON-safe dict form of a spec (inverse of :func:`spec_from_json`),
    for admin-API payloads and on-disk spec files."""
    out: dict[str, Any] = {
        "model": spec.model,
        "input_shape": list(spec.input_shape),
        "bundle_path": spec.bundle_path,
        "model_kwargs": dict(spec.model_kwargs),
        "optimize_graph": spec.optimize_graph,
        "opt_level": spec.opt_level,
        "arena_max_bytes": spec.arena_max_bytes,
        "output_shape": None if spec.output_shape is None else list(spec.output_shape),
    }
    if spec.serving_config is not None:
        sc = spec.serving_config
        out["serving_config"] = {
            "max_batch": sc.max_batch,
            "max_wait_ms": sc.max_wait_ms,
            "queue_depth": sc.queue_depth,
            "adaptive_wait": sc.adaptive_wait,
        }
    return out


def spec_from_json(obj: dict[str, Any]) -> SessionSpec:
    """Build a :class:`SessionSpec` from a JSON object (the admin
    ``POST /models/load`` body, or a spec file the CLI points at).

    Required keys: ``model``, ``input_shape``, ``bundle_path``.
    Optional: ``model_kwargs``, ``optimize_graph``, ``opt_level``,
    ``arena_max_bytes``, ``output_shape``, ``serving_config`` (a dict of
    :class:`~repro.runtime.serving.ServingConfig` fields).  Unknown keys
    raise ``ValueError`` — a typo'd knob must not silently default.
    """
    if not isinstance(obj, dict):
        raise ValueError(f"spec must be a JSON object, got {type(obj).__name__}")
    known = {
        "model", "input_shape", "bundle_path", "model_kwargs", "optimize_graph",
        "opt_level", "arena_max_bytes", "output_shape", "serving_config",
    }
    unknown = sorted(set(obj) - known)
    if unknown:
        raise ValueError(f"unknown spec key(s): {', '.join(unknown)}")
    missing = sorted({"model", "input_shape", "bundle_path"} - set(obj))
    if missing:
        raise ValueError(f"spec is missing required key(s): {', '.join(missing)}")
    kwargs: dict[str, Any] = {
        "model": str(obj["model"]),
        "input_shape": tuple(int(d) for d in obj["input_shape"]),
        "bundle_path": str(obj["bundle_path"]),
    }
    if "model_kwargs" in obj:
        kwargs["model_kwargs"] = dict(obj["model_kwargs"])
    if "optimize_graph" in obj:
        kwargs["optimize_graph"] = bool(obj["optimize_graph"])
    if "opt_level" in obj:
        kwargs["opt_level"] = str(obj["opt_level"])
    if obj.get("arena_max_bytes") is not None:
        kwargs["arena_max_bytes"] = int(obj["arena_max_bytes"])
    if obj.get("output_shape") is not None:
        kwargs["output_shape"] = tuple(int(d) for d in obj["output_shape"])
    if obj.get("serving_config") is not None:
        kwargs["serving_config"] = ServingConfig(**obj["serving_config"])
    return SessionSpec(**kwargs)


def _graph_output_shape(graph) -> tuple[int, ...]:
    """Per-sample shape of a graph's (single) output value."""
    node = graph.nodes[graph.outputs[0]]
    while not node.out_shape and node.inputs:  # OUTPUT nodes mirror their producer
        node = graph.nodes[node.inputs[0]]
    if not node.out_shape:
        raise ValueError(f"graph {graph.name!r} has no inferred output shape")
    return tuple(node.out_shape)


class InferenceSession:
    """Run a (possibly pruned) model through the PatDNN execution stack.

    Args:
        model: trained ``repro.nn`` model (eval-mode statistics are used).
        input_shape: (C, H, W) of one sample.
        pattern_set / assignments: pass the pruning artifacts to execute
            pattern layers through compiled FKW kernels; omit *both* for
            the reference (dense) interpreter.  Passing one without the
            other (or with ``assignments`` empty) raises — the session
            never silently falls back to dense execution.
        optimize_graph: apply BN-fold / fusion / replacement passes.
        opt_level: codegen variant for compiled layers (``'no-opt'`` |
            ``'reorder'`` | ``'lre'`` | ``'gemm'``; the default
            ``'gemm'`` is the fastest batch-serving level).
        arena_max_bytes: optional cap on the compiled executor's retained
            scratch (LRU-evicted beyond it; see
            :class:`~repro.runtime.arena.BufferArena`).
        serving_config: batching knobs for the :meth:`run_async`
            front-end (defaults apply when omitted).
        kernel_cache / arena: share an existing compile cache / scratch
            arena with other sessions in this process (multi-tenant
            workers pass the process-wide ones); private when omitted.
    """

    def __init__(
        self,
        model: nn.Module,
        input_shape: tuple[int, int, int],
        pattern_set: PatternSet | None = None,
        assignments: dict[str, np.ndarray] | None = None,
        optimize_graph: bool = True,
        opt_level: str = "gemm",
        arena_max_bytes: int | None = None,
        serving_config: ServingConfig | None = None,
        kernel_cache=None,
        arena=None,
    ) -> None:
        model.eval()
        self.graph = build_graph(model, input_shape)
        self.pass_report = None
        if optimize_graph:
            self.pass_report = default_pipeline().run(self.graph)
        if (pattern_set is not None) != bool(assignments):
            # One pruning artifact without the other: the old behaviour
            # silently served dense, which masked broken pruning
            # pipelines.  Fail loudly instead.
            missing = "assignments" if pattern_set is not None else "pattern_set"
            given = "pattern_set" if pattern_set is not None else "assignments"
            raise ValueError(
                f"{given} was provided but {missing} is "
                f"{'empty' if assignments == {} else 'missing'}: compiled execution "
                "needs both pruning artifacts. Pass both to run FKW kernels, or "
                "omit both for the reference (dense) interpreter."
            )
        if pattern_set is not None and assignments:
            graph_assignments = self._map_assignments(assignments, pattern_set)
            self.executor: ReferenceExecutor = CompiledExecutor(
                self.graph,
                pattern_set,
                graph_assignments,
                opt_level,
                kernel_cache=kernel_cache,
                arena=arena,
                arena_max_bytes=arena_max_bytes,
            )
        else:
            self.executor = ReferenceExecutor(self.graph)
        self._serving_config = serving_config
        self._server: MicroBatchServer | None = None
        self._server_lock = threading.Lock()

    # ------------------------------------------------------------------
    def _map_assignments(
        self, assignments: dict[str, np.ndarray], pattern_set: PatternSet
    ) -> dict[str, np.ndarray]:
        """Match pruner layer names (module paths) to graph conv nodes.

        Convs are emitted in module traversal order, which matches the
        pruner's ``named_modules`` order, so candidates are consumed
        positionally — but a candidate must match by (F, C) shape *and*
        kernel size, **and** its weight sparsity must be consistent with
        the assignment (every nonzero weight entry inside the assigned
        pattern; id-0 kernels fully zero).  Shape alone is ambiguous —
        consecutive same-shaped convs, or a conv the pruner skipped,
        would silently mis-map — so shape matches whose sparsity
        contradicts the assignment are passed over (that is exactly the
        pruner-skipped-conv case), and if *no* consistent candidate
        remains the mapping errors instead of guessing.  A consistent
        match is numerically safe by construction: consistency means the
        FKW packing of that node's weights under this assignment is
        exact.  Graph passes that rescale weights per output channel (BN
        folding) preserve sparsity, so the check is robust to the
        optimization pipeline.
        """
        conv_nodes = [n for n in self.graph.toposort() if n.op == OpKind.CONV2D]
        k = pattern_set.kernel_size
        mapped: dict[str, np.ndarray] = {}
        node_idx = 0
        for name, assignment in assignments.items():
            shape = tuple(assignment.shape)
            rejected: list[str] = []
            while node_idx < len(conv_nodes):
                node = conv_nodes[node_idx]
                node_idx += 1
                w = node.params["weight"]
                if w.shape[:2] != shape or w.shape[2:] != (k, k):
                    continue
                mismatch = self._sparsity_mismatch(w, assignment, pattern_set)
                if mismatch is None:
                    mapped[node.name] = assignment
                    break
                rejected.append(f"{node.name!r} ({mismatch})")
            else:
                detail = (
                    "; shape-matching candidates rejected because their weights "
                    "contradict the assignment: " + ", ".join(rejected)
                    if rejected
                    else ""
                )
                raise ValueError(
                    f"could not map pruned layer {name!r} to a graph conv node: no "
                    f"remaining conv has {shape[0]} filters x {shape[1]} channels "
                    f"with {k}x{k} kernels whose sparsity is consistent with the "
                    f"assignment{detail}. Either the assignment order does not follow "
                    "module traversal order, or the model's weights were not actually "
                    "pattern-pruned; refusing to guess."
                )
        return mapped

    @staticmethod
    def _sparsity_mismatch(
        weight: np.ndarray, assignment: np.ndarray, pattern_set: PatternSet
    ) -> str | None:
        """Explain why ``weight`` cannot carry ``assignment`` (None = ok).

        A pattern-pruned weight tensor has nonzeros only inside each
        kernel's assigned pattern, and connectivity-pruned kernels
        (id 0) are fully zero.  Per-output-channel rescaling (BN fold)
        keeps zeros zero, so consistency survives graph optimization.
        """
        lo, hi = int(assignment.min()), int(assignment.max())
        if lo < 0 or hi > len(pattern_set):
            # e.g. assignments produced against a larger pattern universe
            return (
                f"pattern ids span {lo}..{hi} but this pattern set has only "
                f"{len(pattern_set)} patterns (ids 1..{len(pattern_set)}, 0 = pruned)"
            )
        allowed = pattern_set.masks_for(assignment) != 0
        allowed[assignment == 0] = False  # id 0 wraps in masks_for; means "empty kernel"
        outside = (weight != 0) & ~allowed
        if outside.any():
            f, c = np.argwhere(outside.reshape(*assignment.shape, -1).any(axis=-1))[0]
            n_bad = int(outside.sum())
            return (
                f"{n_bad} nonzero weight entr{'y lies' if n_bad == 1 else 'ies lie'} "
                f"outside the assigned pattern(s), first at kernel "
                f"(filter {int(f)}, channel {int(c)})"
            )
        return None

    # ------------------------------------------------------------------
    @property
    def kernel_cache(self):
        """Compile-once kernel cache of the compiled executor (or None)."""
        return getattr(self.executor, "kernel_cache", None)

    @property
    def arena(self):
        """Scratch-buffer arena of the compiled executor (or None)."""
        return getattr(self.executor, "arena", None)

    def run(self, x: np.ndarray) -> np.ndarray:
        """Inference on a batched NCHW array; returns logits."""
        if x.ndim == 3:
            x = x[None]
        return self.executor.run(x)

    # ------------------------------------------------------------------
    def run_async(self, x: np.ndarray, **submit_kwargs: Any) -> Future:
        """Submit a request to the micro-batching front-end.

        Lazily starts one :class:`~repro.runtime.serving.MicroBatchServer`
        over this session's executor on first use; concurrent callers
        from many threads are coalesced into shared micro-batches.
        Returns a future of the ``(N, ...)`` logits (``N == 1`` for a
        bare ``(C, H, W)`` sample).

        Keyword arguments (``timeout``, ``deadline``, ``deadline_at``)
        pass through to :meth:`MicroBatchServer.submit` — deadline-aware
        admission sheds over-budget requests with typed errors instead
        of executing them (see :mod:`repro.runtime.resilience`).
        """
        while True:
            server = self._server
            if server is None:
                with self._server_lock:
                    if self._server is None:
                        self._server = MicroBatchServer(self.executor.run, self._serving_config)
                    server = self._server
            try:
                return server.submit(x, **submit_kwargs)
            except RuntimeError as exc:
                if type(exc) is not RuntimeError:
                    raise  # typed shed/deadline errors are for the caller
                # raced a concurrent close(): the session itself is still
                # open (close + run_async restarting is supported), so
                # retire the closed server and retry on a fresh one
                with self._server_lock:
                    if self._server is server:
                        self._server = None

    #: alias matching the queue vocabulary of :class:`MicroBatchServer`
    submit = run_async

    @property
    def serving_stats(self):
        """Batching stats of the async front-end (None before first use)."""
        server = self._server
        return server.stats if server is not None else None

    def close(self) -> None:
        """Shut down the async front-end (idempotent; ``run`` still works)."""
        with self._server_lock:
            if self._server is not None:
                self._server.close()
                self._server = None

    def __enter__(self) -> InferenceSession:
        return self

    def __exit__(self, *exc) -> None:
        self.close()
