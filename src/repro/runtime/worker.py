"""Transport-neutral shard worker body.

Exactly one serve loop exists for every transport: a worker process —
whether it was spawned next to the router and speaks shared memory, or
runs on another machine behind ``python -m repro worker`` and speaks
TCP — builds its sessions, then pulls normalized messages off a
:class:`~repro.runtime.transport.WorkerTransport` and serves them
through per-model in-process micro-batching front-ends.  The transport
decides *how* bytes move; this module decides *what happens to a
request*, so retries, deadlines, and
:class:`~repro.runtime.faults.FaultPlan` injection behave identically
everywhere.

Multi-tenancy lives in :class:`ModelHost`: one
:class:`~repro.runtime.session.InferenceSession` +
:class:`~repro.runtime.serving.MicroBatchServer` pair per loaded model,
all sharing the process-wide
:class:`~repro.compiler.codegen.KernelCache` and
:class:`~repro.runtime.arena.BufferArena` (both thread-safe), so
identical layers across tenants compile once and scratch buffers are
pooled.  Each model's queue batches only its own traffic — tenants
never co-batch — and its serving stats land in one shared
:class:`~repro.runtime.telemetry.MetricsRegistry` under a
``model="<name>"`` label.  Models hot-load and hot-unload via
``("load", name, spec, payload)`` / ``("unload", name)`` control
messages, acknowledged with ``("model", op, name, detail)``.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import Future

import numpy as np

from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.resilience import (
    CorruptedPayloadError,
    DeadlineExceededError,
    QueueFullError,
)
from repro.runtime.serving import MicroBatchServer, ServingStats
from repro.runtime.telemetry import MetricsRegistry, SpanCollector
from repro.runtime.transport import TransportClosedError, WorkerTransport

__all__ = ["ModelHost", "run_worker"]


class ModelHost:
    """The worker's model registry: per-model session + micro-batch queue
    over shared process-wide compile/scratch resources.

    Args:
        specs: ``{name: SessionSpec}`` to build at construction.  Build
            order is sorted by name (deterministic across shards).

    All loaded models share one :class:`KernelCache` and one
    :class:`BufferArena` — both thread-safe and injectable into
    :meth:`SessionSpec.build` — so co-resident tenants with identical
    pruned layers compile them once, which is what makes a two-model
    cluster competitive with two dedicated ones.  The shared arena's
    retained-scratch cap is the largest ``arena_max_bytes`` any spec
    asks for (``None`` = uncapped when none do).
    """

    def __init__(self, specs: dict) -> None:
        from repro.compiler.codegen import KernelCache
        from repro.runtime.arena import BufferArena

        caps = [s.arena_max_bytes for s in specs.values() if s.arena_max_bytes is not None]
        self.registry = MetricsRegistry()
        self.kernel_cache = KernelCache()
        self.arena = BufferArena(max_bytes=max(caps) if caps else None)
        self._lock = threading.Lock()
        #: name -> (session, server, stats); mutated only under _lock
        self._models: dict[str, tuple] = {}
        try:
            for name in sorted(specs):
                self._load_locked(name, specs[name])
        except BaseException:
            self.close()
            raise

    # ------------------------------------------------------------------
    def _load_locked(self, name: str, spec) -> None:
        session = spec.build(kernel_cache=self.kernel_cache, arena=self.arena)
        stats = ServingStats(self.registry, labels={"model": name})
        server = MicroBatchServer(session.executor.run, spec.serving_config, stats=stats)
        self._models[name] = (session, server, stats)

    def load(self, name: str, spec) -> None:
        """Build and admit one model (hot path; raises on any failure —
        a duplicate name, a broken bundle — without touching the rest)."""
        with self._lock:
            if name in self._models:
                raise ValueError(f"model {name!r} is already loaded")
        # build outside the lock: compiling kernels can take a while and
        # requests for *other* models must keep flowing meanwhile
        session = spec.build(kernel_cache=self.kernel_cache, arena=self.arena)
        stats = ServingStats(self.registry, labels={"model": name})
        server = MicroBatchServer(session.executor.run, spec.serving_config, stats=stats)
        with self._lock:
            if name in self._models:  # raced a concurrent load of the same name
                server.close()
                raise ValueError(f"model {name!r} is already loaded")
            self._models[name] = (session, server, stats)

    def unload(self, name: str) -> None:
        """Drain and drop one model: its queue is closed (queued requests
        still execute and reply), then the session is released.  The
        shared cache/arena keep any entries other tenants still use."""
        with self._lock:
            entry = self._models.pop(name, None)
        if entry is None:
            raise KeyError(f"model {name!r} is not loaded")
        session, server, _ = entry
        server.close()
        session.close()

    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._models)

    def resolve(self, model: str) -> str:
        """Map a wire model id to a loaded name.  ``""`` means "the sole
        model" (single-tenant callers never name one); raises ``KeyError``
        for unknown names or an ambiguous empty id."""
        with self._lock:
            if model:
                if model not in self._models:
                    raise KeyError(
                        f"unknown model {model!r}; loaded: {sorted(self._models) or 'none'}"
                    )
                return model
            if len(self._models) == 1:
                return next(iter(self._models))
            raise KeyError(
                f"request named no model but {len(self._models)} are loaded: "
                f"{sorted(self._models)}"
            )

    def submit(self, x, *, model: str = "", deadline_at=None, trace=None) -> Future:
        """Queue one request on its model's micro-batcher (KeyError for
        an unknown model; typed shed errors pass through)."""
        name = self.resolve(model)
        with self._lock:
            entry = self._models.get(name)
        if entry is None:  # raced an unload
            raise KeyError(f"unknown model {name!r}")
        _, server, _ = entry
        return server.submit(x, deadline_at=deadline_at, trace=trace)

    # ------------------------------------------------------------------
    def snapshot(self) -> dict:
        """Merged serving stats: aggregate counters/percentiles across
        models (the shape the router's health loop always consumed) plus
        a per-model breakdown under ``"models"``.  The ``"metrics"`` key
        is the shared registry snapshot, whose serving_* series carry
        ``model`` labels."""
        with self._lock:
            entries = dict(self._models)
        per_model: dict[str, dict] = {}
        totals = {k: 0 for k in (
            "requests", "samples", "batches", "max_batch_seen",
            "errors", "shed", "timed_out",
        )}
        windows = []
        effective_wait = 0.0
        for name, (_, _, stats) in sorted(entries.items()):
            snap = stats.snapshot()
            snap.pop("metrics", None)  # the shared registry is shipped once, below
            per_model[name] = snap
            for key in totals:
                totals[key] = (
                    max(totals[key], snap[key]) if key == "max_batch_seen"
                    else totals[key] + snap[key]
                )
            effective_wait = max(effective_wait, snap["effective_wait_ms"])
            windows.append(stats._latency.window())
        merged = {**totals, "effective_wait_ms": effective_wait,
                  "metrics": self.registry.snapshot(), "models": per_model}
        merged["mean_batch"] = (
            merged["samples"] / merged["batches"] if merged["batches"] else 0.0
        )
        window = np.concatenate(windows) if windows else np.empty(0)
        if window.size:
            merged.update(
                p50_ms=float(np.percentile(window, 50.0)),
                p95_ms=float(np.percentile(window, 95.0)),
                p99_ms=float(np.percentile(window, 99.0)),
                mean_ms=float(window.mean()),
                max_ms=float(window.max()),
            )
        else:
            merged.update(p50_ms=0.0, p95_ms=0.0, p99_ms=0.0, mean_ms=0.0, max_ms=0.0)
        return merged

    def drain(self) -> None:
        """Drain every micro-batch queue — in-flight futures resolve and
        replies go out — WITHOUT releasing sessions or stats, so a
        snapshot taken afterwards counts every served sample."""
        with self._lock:
            entries = dict(self._models)
        for _, (_, server, _) in sorted(entries.items()):
            server.close()

    def close(self) -> None:
        """Drain every queue and release every session (idempotent)."""
        with self._lock:
            entries, self._models = dict(self._models), {}
        for _, (session, server, _) in sorted(entries.items()):
            server.close()
            session.close()


def run_worker(
    specs,
    transport: WorkerTransport,
    fault_plan: FaultPlan | None = None,
) -> None:
    """Serve one shard until ``stop`` or the router disappears.

    ``specs`` is ``{name: SessionSpec}`` (every entry is built into the
    shared :class:`ModelHost`), or — back-compat for direct callers — a
    zero-arg callable producing a single session-spec'd build, wrapped
    under the default model name.  A build failure is reported as a
    ``fatal`` message so the router marks the shard permanently failed
    instead of respawn-looping.  Each ``req`` payload is copied
    (checksum-verified) off the transport, submitted to its model's
    micro-batcher with its deadline, and the reply sent back when the
    future resolves; requests naming a model this worker does not host
    fail typed (``unknown_model``).  ``("load", ...)`` / ``("unload",
    ...)`` control messages hot-mutate the model registry and are
    acknowledged.  A :class:`FaultPlan` (chaos tests only)
    deterministically injects crashes, stalls, slowness, and response
    corruption keyed by request id.
    """

    def _safe(fn, *args) -> None:
        # the router being gone mid-send is never an error a worker can
        # act on: results for a dead router are simply undeliverable
        try:
            fn(*args)
        except (TransportClosedError, BrokenPipeError, OSError):
            pass

    try:
        if callable(specs) and not isinstance(specs, dict):
            host = _CallableHost(specs)
        else:
            host = ModelHost(specs)
    except BaseException as exc:  # surface build failures instead of respawn-looping
        _safe(transport.send_fatal, f"{type(exc).__name__}: {exc}")
        transport.close()
        return

    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    capacity = transport.payload_capacity

    def _ship_trace(req_id: int, collector: SpanCollector | None) -> None:
        # after the reply, same ordered channel: the router resolves the
        # result first, then splices the worker spans into the trace
        if collector is not None:
            _safe(transport.send_trace, req_id, collector.export())

    def _reply(
        req_id: int,
        handle,
        fut: Future,
        corrupt: bool = False,
        collector: SpanCollector | None = None,
    ) -> None:
        t_reply = time.monotonic()
        try:
            exc = fut.exception()
            if exc is not None:
                code = "deadline" if isinstance(exc, DeadlineExceededError) else "error"
                _safe(transport.send_error, req_id, handle, code,
                      f"{type(exc).__name__}: {exc}")
                return
            out = np.ascontiguousarray(fut.result())
            if capacity is not None and out.nbytes > capacity:
                _safe(
                    transport.send_error, req_id, handle, "error",
                    f"output of {out.nbytes} bytes exceeds the {capacity}-byte slot",
                )
                return
            _safe(transport.send_result, req_id, handle, out, corrupt)
        finally:
            if collector is not None:
                collector.add("reply", t_reply, time.monotonic())
            _ship_trace(req_id, collector)

    try:
        _safe(transport.send_ready, os.getpid())
        while True:
            try:
                msg = transport.recv()
            except (TransportClosedError, EOFError, OSError):
                return  # router died; daemon worker just exits
            kind = msg[0]
            if kind == "stop":
                return
            if kind == "ping":
                _safe(transport.send_pong, msg[1], host.snapshot())
            elif kind == "load":
                _, name, spec, payload = msg
                try:
                    if payload is not None:
                        spec = _materialize_bundle(name, spec, payload)
                    host.load(name, spec)
                except BaseException as exc:
                    _safe(transport.send_model_ack, "load", name,
                          f"{type(exc).__name__}: {exc}")
                else:
                    _safe(transport.send_model_ack, "load", name, None)
            elif kind == "unload":
                _, name = msg
                try:
                    host.unload(name)
                except BaseException as exc:
                    _safe(transport.send_model_ack, "unload", name,
                          f"{type(exc).__name__}: {exc}")
                else:
                    _safe(transport.send_model_ack, "unload", name, None)
            elif kind == "req":
                _, req_id, deadline_at, trace_id, model, handle = msg
                # a nonzero trace id means the router sampled this request:
                # collect worker-side spans (t0 = receipt on *this* clock;
                # the router rebases the batch at the attempt's send time)
                collector = SpanCollector(trace_id) if trace_id else None
                fault = injector.decide(req_id) if injector is not None else None
                if fault == "crash":
                    os._exit(17)  # hard death with the request in flight
                # a stall blocks the whole receive loop: the canonical
                # wedged-but-alive shard that breakers exist for
                if injector is not None:
                    injector.apply_delay(fault)
                try:
                    x = transport.read_payload(handle)  # copy + verify
                except CorruptedPayloadError as exc:
                    _safe(transport.send_error, req_id, handle, "corrupt", str(exc))
                    _ship_trace(req_id, collector)
                    continue
                try:
                    fut = host.submit(x, model=model, deadline_at=deadline_at,
                                      trace=collector)
                except KeyError as exc:
                    _safe(transport.send_error, req_id, handle, "unknown_model",
                          str(exc).strip("'\""))
                    _ship_trace(req_id, collector)
                    continue
                except DeadlineExceededError as exc:  # dead on arrival
                    _safe(transport.send_error, req_id, handle, "deadline", str(exc))
                    _ship_trace(req_id, collector)
                    continue
                except QueueFullError as exc:  # shouldn't happen: slots <= queue
                    _safe(transport.send_error, req_id, handle, "error",
                          f"QueueFullError: {exc}")
                    _ship_trace(req_id, collector)
                    continue
                if collector is not None:
                    # receipt -> admitted into the micro-batch queue
                    collector.add("worker_queue", collector.t0, time.monotonic())
                fut.add_done_callback(
                    lambda f, r=req_id, h=handle, c=(fault == "corrupt"),
                    tc=collector: _reply(r, h, f, c, tc)
                )
    finally:
        host.drain()  # graceful: in-flight futures resolve, replies go out
        stats = host.snapshot()  # AFTER the drain so every sample is counted
        host.close()
        _safe(transport.send_bye, stats)
        transport.close()


def _materialize_bundle(name: str, spec, payload) -> "object":
    """Verify a hot-load's shipped bundle bytes and write them to a local
    temp file, returning the spec repointed at it (mirrors the TCP
    handshake's bundle materialization; see
    :func:`~repro.runtime.transport.verify_bundle_payload`)."""
    import dataclasses
    import tempfile

    from repro.runtime.transport import verify_bundle_payload

    data = verify_bundle_payload(name, payload)
    fd, path = tempfile.mkstemp(prefix=f"repro-bundle-{name}-", suffix=".npz")
    with os.fdopen(fd, "wb") as fh:
        fh.write(data)
    return dataclasses.replace(spec, bundle_path=path)


class _CallableHost:
    """Adapter keeping ``run_worker(spec.build, transport)`` working for
    direct (single-model, pre-registry) callers: one anonymous session,
    every request resolves to it."""

    def __init__(self, build) -> None:
        self._session = build()

    def names(self) -> list[str]:
        return []

    def load(self, name: str, spec) -> None:
        raise ValueError("this worker was started with a bare session builder; "
                         "hot model load needs a spec registry")

    def unload(self, name: str) -> None:
        raise KeyError(f"model {name!r} is not loaded")

    def submit(self, x, *, model: str = "", deadline_at=None, trace=None) -> Future:
        return self._session.submit(x, deadline_at=deadline_at, trace=trace)

    def snapshot(self) -> dict | None:
        stats = self._session.serving_stats
        return stats.snapshot() if stats is not None else None

    def close(self) -> None:
        self._session.close()
