"""Transport-neutral shard worker body.

Exactly one serve loop exists for every transport: a worker process —
whether it was spawned next to the router and speaks shared memory, or
runs on another machine behind ``python -m repro worker`` and speaks
TCP — builds its session, then pulls normalized messages off a
:class:`~repro.runtime.transport.WorkerTransport` and serves them
through the in-process micro-batching front-end.  The transport decides
*how* bytes move; this module decides *what happens to a request*, so
retries, deadlines, and :class:`~repro.runtime.faults.FaultPlan`
injection behave identically everywhere.
"""

from __future__ import annotations

import os
import time
from collections.abc import Callable
from concurrent.futures import Future

import numpy as np

from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.resilience import (
    CorruptedPayloadError,
    DeadlineExceededError,
    QueueFullError,
)
from repro.runtime.telemetry import SpanCollector
from repro.runtime.transport import TransportClosedError, WorkerTransport

__all__ = ["run_worker"]


def run_worker(
    build: Callable[[], "object"],
    transport: WorkerTransport,
    fault_plan: FaultPlan | None = None,
) -> None:
    """Serve one shard until ``stop`` or the router disappears.

    ``build`` produces the :class:`~repro.runtime.session.InferenceSession`
    (typically ``spec.build``); a build failure is reported as a
    ``fatal`` message so the router marks the shard permanently failed
    instead of respawn-looping.  Each ``req`` payload is copied
    (checksum-verified) off the transport, submitted to the session's
    micro-batcher with its deadline, and the reply sent back when the
    future resolves.  A :class:`FaultPlan` (chaos tests only)
    deterministically injects crashes, stalls, slowness, and response
    corruption keyed by request id.
    """

    def _safe(fn, *args) -> None:
        # the router being gone mid-send is never an error a worker can
        # act on: results for a dead router are simply undeliverable
        try:
            fn(*args)
        except (TransportClosedError, BrokenPipeError, OSError):
            pass

    try:
        session = build()
    except BaseException as exc:  # surface build failures instead of respawn-looping
        _safe(transport.send_fatal, f"{type(exc).__name__}: {exc}")
        transport.close()
        return

    injector = FaultInjector(fault_plan) if fault_plan is not None else None
    capacity = transport.payload_capacity

    def _ship_trace(req_id: int, collector: SpanCollector | None) -> None:
        # after the reply, same ordered channel: the router resolves the
        # result first, then splices the worker spans into the trace
        if collector is not None:
            _safe(transport.send_trace, req_id, collector.export())

    def _reply(
        req_id: int,
        handle,
        fut: Future,
        corrupt: bool = False,
        collector: SpanCollector | None = None,
    ) -> None:
        t_reply = time.monotonic()
        try:
            exc = fut.exception()
            if exc is not None:
                code = "deadline" if isinstance(exc, DeadlineExceededError) else "error"
                _safe(transport.send_error, req_id, handle, code,
                      f"{type(exc).__name__}: {exc}")
                return
            out = np.ascontiguousarray(fut.result())
            if capacity is not None and out.nbytes > capacity:
                _safe(
                    transport.send_error, req_id, handle, "error",
                    f"output of {out.nbytes} bytes exceeds the {capacity}-byte slot",
                )
                return
            _safe(transport.send_result, req_id, handle, out, corrupt)
        finally:
            if collector is not None:
                collector.add("reply", t_reply, time.monotonic())
            _ship_trace(req_id, collector)

    stats = None  # the ServingStats object outlives session.close()
    try:
        _safe(transport.send_ready, os.getpid())
        while True:
            try:
                msg = transport.recv()
            except (TransportClosedError, EOFError, OSError):
                return  # router died; daemon worker just exits
            kind = msg[0]
            if kind == "stop":
                return
            if kind == "ping":
                stats = session.serving_stats or stats
                _safe(transport.send_pong, msg[1],
                      stats.snapshot() if stats is not None else None)
            elif kind == "req":
                _, req_id, deadline_at, trace_id, handle = msg
                # a nonzero trace id means the router sampled this request:
                # collect worker-side spans (t0 = receipt on *this* clock;
                # the router rebases the batch at the attempt's send time)
                collector = SpanCollector(trace_id) if trace_id else None
                fault = injector.decide(req_id) if injector is not None else None
                if fault == "crash":
                    os._exit(17)  # hard death with the request in flight
                # a stall blocks the whole receive loop: the canonical
                # wedged-but-alive shard that breakers exist for
                if injector is not None:
                    injector.apply_delay(fault)
                try:
                    x = transport.read_payload(handle)  # copy + verify
                except CorruptedPayloadError as exc:
                    _safe(transport.send_error, req_id, handle, "corrupt", str(exc))
                    _ship_trace(req_id, collector)
                    continue
                stats = session.serving_stats or stats
                try:
                    fut = session.submit(x, deadline_at=deadline_at, trace=collector)
                except DeadlineExceededError as exc:  # dead on arrival
                    _safe(transport.send_error, req_id, handle, "deadline", str(exc))
                    _ship_trace(req_id, collector)
                    continue
                except QueueFullError as exc:  # shouldn't happen: slots <= queue
                    _safe(transport.send_error, req_id, handle, "error",
                          f"QueueFullError: {exc}")
                    _ship_trace(req_id, collector)
                    continue
                if collector is not None:
                    # receipt -> admitted into the micro-batch queue
                    collector.add("worker_queue", collector.t0, time.monotonic())
                fut.add_done_callback(
                    lambda f, r=req_id, h=handle, c=(fault == "corrupt"),
                    tc=collector: _reply(r, h, f, c, tc)
                )
    finally:
        stats = session.serving_stats or stats
        session.close()  # graceful drain: in-flight futures resolve, replies go out
        _safe(transport.send_bye, stats.snapshot() if stats is not None else None)
        transport.close()
