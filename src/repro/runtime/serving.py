"""Micro-batching serving front-end for the compiled runtime.

PatDNN's batched FKW kernels are dramatically cheaper per sample at
batch 8 than at batch 1 (one BLAS contraction per pattern-union
coordinate amortises over the whole batch), but real traffic arrives as
single samples from many concurrent clients.  :class:`MicroBatchServer`
bridges the two: client threads :meth:`~MicroBatchServer.submit`
individual samples (or small batches) and get back
:class:`concurrent.futures.Future`\\ s, while a single dispatcher thread
coalesces queued requests into micro-batches — up to
:attr:`ServingConfig.max_batch` samples, waiting at most
:attr:`ServingConfig.max_wait_ms` for stragglers — runs them through the
shared executor in one call, and scatters the result rows back to each
request's future.

Because all model execution happens on the dispatcher thread against
one shared :class:`~repro.runtime.executor.CompiledExecutor`, the kernel
cache and buffer arena are maximally warm; because the executor stack is
itself thread-safe, callers may *also* bypass the queue and call
``session.run`` directly from other threads (mixed traffic is fine).

Usage::

    from repro.runtime import InferenceSession, MicroBatchServer, ServingConfig

    session = InferenceSession(model, (3, 32, 32), pattern_set=ps,
                               assignments=result.assignments)

    # explicit server ...
    with MicroBatchServer(session.run, ServingConfig(max_batch=8)) as server:
        futures = [server.submit(x) for x in samples]          # many threads
        logits = [f.result() for f in futures]
        print(server.stats.mean_batch)                         # > 1 under load

    # ... or the session's built-in front-end
    fut = session.run_async(sample)                            # lazy server
    logits = fut.result()
    session.close()

Requests whose samples have different (C, H, W) shapes are coalesced
into the same dispatch window but executed as separate shape groups, so
heterogeneous traffic is correct (just not cross-shape batched).

Overload and latency budgets are first-class (SLO-aware admission):

* ``submit(x, timeout=...)`` bounds how long a caller waits for queue
  capacity — a full backlog raises the typed
  :class:`~repro.runtime.resilience.QueueFullError` instead of blocking
  forever (``timeout=None`` keeps the legacy blocking behaviour).
* ``submit(x, deadline=...)`` attaches a latency budget; a request whose
  deadline passes while it waits in the queue is *shed* before dispatch
  with :class:`~repro.runtime.resilience.DeadlineExceededError` — the
  executor never burns cycles on an answer nobody is waiting for.
* :class:`ServingStats` counts ``shed`` (admission refusals) and
  ``timed_out`` (deadline expiries) separately from ``errors``, so
  overload shows up as load shedding in the stats, not as failures.
"""

from __future__ import annotations

import itertools
import queue
import threading
import time
import weakref
from collections.abc import Callable
from concurrent.futures import Future
from dataclasses import dataclass

import numpy as np

from repro.runtime.faults import FaultInjector, FaultPlan
from repro.runtime.metrics import DEFAULT_RESERVOIR, LatencyReservoir
from repro.runtime.resilience import (
    DeadlineExceededError,
    InjectedFaultError,
    QueueFullError,
)
from repro.runtime.telemetry import MetricsRegistry, profile_layers

__all__ = ["ServingConfig", "ServingStats", "MicroBatchServer"]


@dataclass(frozen=True)
class ServingConfig:
    """Knobs for the micro-batching dispatcher.

    Attributes:
        max_batch: target samples per dispatched micro-batch; the
            dispatcher stops collecting once the batch reaches this many
            samples (a multi-sample request arriving last may overflow
            it slightly rather than be split).
        max_wait_ms: upper bound on how long the dispatcher waits for
            more requests after the first one arrives — the latency
            price paid for batching opportunity.  0 disables
            coalescing-by-waiting (only requests already queued are
            batched).
        queue_depth: bound on queued requests; ``submit`` blocks once
            the backlog reaches this many (simple backpressure).
        adaptive_wait: load-aware batching window.  When the backlog at
            a window's start is already ``max_batch`` requests deep,
            waiting buys nothing (the batch fills straight from the
            queue), so the effective window halves; a window that
            expires without filling its batch (light load) grows it
            back toward ``max_wait_ms``.  The current effective window
            is exposed as :attr:`ServingStats.effective_wait_ms`.
    """

    max_batch: int = 8
    max_wait_ms: float = 2.0
    queue_depth: int = 1024
    adaptive_wait: bool = True

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        if self.max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.queue_depth < 1:
            raise ValueError(f"queue_depth must be >= 1, got {self.queue_depth}")


#: latency reservoir size (re-exported from :mod:`repro.runtime.metrics`,
#: where the shared sliding-window implementation now lives)
_LATENCY_RESERVOIR = DEFAULT_RESERVOIR


class ServingStats:
    """Counters accumulated by the dispatcher (read any time).

    Registry-backed: every counter/gauge lives in a
    :class:`~repro.runtime.telemetry.MetricsRegistry` (one is created
    per stats object unless an external registry is passed in), so the
    same numbers the legacy attributes expose (``stats.requests``...)
    are also scrapeable as ``serving_*`` Prometheus series and travel
    inside :meth:`snapshot` (the ``"metrics"`` key) to the router, which
    merges worker and router metrics under one namespace.

    All metrics share the registry's reentrant lock, exposed as
    ``_lock``: multi-field updates in the dispatcher and whole-snapshot
    reads (:meth:`snapshot` / ``repr``) take it once, so concurrent
    increments can never produce torn multi-field views.
    """

    def __init__(
        self,
        registry: MetricsRegistry | None = None,
        labels: dict[str, str] | None = None,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        #: labels stamped on every serving_* series (a multi-tenant
        #: worker passes ``{"model": name}`` so per-model stats share one
        #: registry without colliding)
        self.labels = dict(labels or {})
        # the registry lock is reentrant by design: holding it around a
        # group of metric ops (each re-acquiring internally) makes the
        # group atomic relative to snapshot()
        self._lock = self.registry._lock
        reg, lbl = self.registry, self.labels
        self._requests = reg.counter(
            "serving_requests_total", "requests resolved by the micro-batch dispatcher",
            **lbl)
        self._samples = reg.counter(
            "serving_samples_total", "input samples executed (batch rows)", **lbl)
        self._batches = reg.counter(
            "serving_batches_total", "micro-batches dispatched to the runner", **lbl)
        self._errors = reg.counter(
            "serving_errors_total", "requests resolved with an execution error", **lbl)
        self._shed = reg.counter(
            "serving_shed_total", "admission refusals (queue full past timeout)", **lbl)
        self._timed_out = reg.counter(
            "serving_timed_out_total", "requests shed after their deadline expired", **lbl)
        self._max_batch_seen = reg.gauge(
            "serving_max_batch_seen", "largest micro-batch dispatched so far", **lbl)
        self._effective_wait_ms = reg.gauge(
            "serving_effective_wait_ms", "current adaptive coalescing window (ms)", **lbl)
        self._latency_hist = reg.histogram(
            "serving_request_latency_ms", "submit-to-resolution request latency (ms)",
            **lbl)
        # Sliding-window reservoir of per-request latencies (queue wait +
        # dispatch + kernel time, submit to resolution) — the shared
        # implementation from repro.runtime.metrics, also used by the
        # router's per-shard attempt tracking in repro.runtime.cluster.
        # Kept alongside the histogram: percentiles over a *window*
        # describe recent traffic; cumulative buckets describe lifetime.
        self._latency = LatencyReservoir()

    # -- legacy attribute views (read any time) ------------------------
    @property
    def requests(self) -> int:
        return int(self._requests.value)

    @property
    def samples(self) -> int:
        return int(self._samples.value)

    @property
    def batches(self) -> int:
        return int(self._batches.value)

    @property
    def errors(self) -> int:
        return int(self._errors.value)

    @property
    def shed(self) -> int:
        """Admission refusals: ``submit`` gave up waiting for queue
        capacity (:class:`QueueFullError`) — distinct from ``errors``."""
        return int(self._shed.value)

    @property
    def timed_out(self) -> int:
        """Deadline expiries: requests dropped (queued past their budget)
        with :class:`DeadlineExceededError` before reaching the runner."""
        return int(self._timed_out.value)

    @property
    def max_batch_seen(self) -> int:
        return int(self._max_batch_seen.value)

    @property
    def effective_wait_ms(self) -> float:
        """Current effective coalescing window (== ``max_wait_ms`` unless
        ``adaptive_wait`` has shrunk it under sustained backlog)."""
        return self._effective_wait_ms.value

    @effective_wait_ms.setter
    def effective_wait_ms(self, value: float) -> None:
        self._effective_wait_ms.set(value)

    @property
    def mean_batch(self) -> float:
        """Average samples per dispatched batch (1.0 = no coalescing)."""
        with self._lock:
            samples, batches = self._samples.value, self._batches.value
        return samples / batches if batches else 0.0

    # -- mutation (dispatcher side) ------------------------------------
    def count(self, **deltas: int) -> None:
        """Atomically bump named counters (``count(shed=1)``)."""
        with self._lock:
            for name, n in deltas.items():
                getattr(self, f"_{name}").inc(n)

    def record_batch(self, n_requests: int, n_samples: int,
                     latencies_ms: list[float]) -> None:
        """Record one successfully dispatched micro-batch atomically."""
        with self._lock:
            self._requests.inc(n_requests)
            self._samples.inc(n_samples)
            self._batches.inc(1)
            if n_samples > self._max_batch_seen.value:
                self._max_batch_seen.set(n_samples)
            for ms in latencies_ms:
                self._latency.record(ms)
                self._latency_hist.observe(ms)

    # -- latency views -------------------------------------------------
    @property
    def _latency_ring(self) -> np.ndarray:
        """The reservoir's backing ring (tests / introspection)."""
        return self._latency._ring

    def _record_latency(self, latency_ms: float) -> None:
        """Append one request latency (reservoir has its own lock)."""
        self._latency.record(latency_ms)
        self._latency_hist.observe(latency_ms)

    def _latency_percentile(self, q: float) -> float:
        return self._latency.percentile(q)

    @property
    def p50_ms(self) -> float:
        """Median request latency over the sliding window (0.0 = none)."""
        return self._latency.p50_ms

    @property
    def p95_ms(self) -> float:
        """95th-percentile request latency over the sliding window."""
        return self._latency.p95_ms

    @property
    def p99_ms(self) -> float:
        """99th-percentile request latency over the sliding window."""
        return self._latency.p99_ms

    def snapshot(self) -> dict:
        """Picklable point-in-time copy (for cross-process reporting).

        Taken under ``_lock`` as one atomic read — concurrent dispatcher
        increments cannot produce an inconsistent tuple (e.g. ``samples``
        from before a batch and ``batches`` from after it).  The
        ``"metrics"`` key carries the full registry snapshot so the
        router can merge this worker's series into its ``/metrics`` page.
        """
        with self._lock:
            counters = {
                "requests": int(self._requests.value),
                "samples": int(self._samples.value),
                "batches": int(self._batches.value),
                "max_batch_seen": int(self._max_batch_seen.value),
                "errors": int(self._errors.value),
                "shed": int(self._shed.value),
                "timed_out": int(self._timed_out.value),
                "effective_wait_ms": self._effective_wait_ms.value,
                "metrics": self.registry.snapshot(),
            }
        counters["mean_batch"] = (
            counters["samples"] / counters["batches"] if counters["batches"] else 0.0
        )
        lat = self._latency.snapshot()
        for key in ("p50_ms", "p95_ms", "p99_ms", "mean_ms", "max_ms"):
            counters[key] = lat[key]
        return counters

    def __repr__(self) -> str:
        with self._lock:  # one atomic multi-field read, like snapshot()
            return (
                f"ServingStats(requests={self._requests.value}, "
                f"samples={self._samples.value}, batches={self._batches.value}, "
                f"errors={self._errors.value}, shed={self._shed.value}, "
                f"timed_out={self._timed_out.value})"
            )


class _Request:
    __slots__ = ("x", "n", "future", "t_submit", "deadline_at", "fault", "trace")

    def __init__(
        self,
        x: np.ndarray,
        n: int,
        future: Future,
        deadline_at: float | None = None,
        fault: str | None = None,
        trace=None,
    ) -> None:
        self.x = x
        self.n = n
        self.future = future
        self.t_submit = time.monotonic()
        #: absolute ``time.monotonic()`` deadline (None = no budget)
        self.deadline_at = deadline_at
        #: fault-injection decision made at submit time (None = serve)
        self.fault = fault
        #: span sink for a sampled request (a
        #: :class:`~repro.runtime.telemetry.SpanCollector` /
        #: :class:`~repro.runtime.telemetry.Trace`, or None = untraced);
        #: the dispatcher records queue_wait / execute / layer:* spans
        self.trace = trace


_SHUTDOWN = object()


def _fail_pending(q: queue.Queue, capacity: threading.BoundedSemaphore) -> None:
    """Fail whatever is still queued after the server object itself died."""
    while True:
        try:
            item = q.get_nowait()
        except queue.Empty:
            return
        if item is _SHUTDOWN:
            continue
        capacity.release()
        if item.future.set_running_or_notify_cancel():
            item.future.set_exception(
                RuntimeError("MicroBatchServer was garbage-collected with requests pending")
            )


def _dispatch_worker(server_ref, q: queue.Queue, capacity: threading.BoundedSemaphore) -> None:
    """Dispatcher thread body.

    Module-level on purpose: the thread must not keep the server alive.
    It blocks on the bare queue holding only a weak server reference,
    takes a strong reference per dispatch window, and exits when it sees
    the shutdown sentinel — enqueued by ``close()`` or by the server's
    ``weakref.finalize`` when the object is garbage-collected.
    """
    while True:
        item = q.get()
        server = server_ref()
        if server is None:
            if item is not _SHUTDOWN:
                q.put(item)  # fail it along with the rest of the backlog
            _fail_pending(q, capacity)
            return
        if item is _SHUTDOWN:
            server._drain_remaining()
            return
        shutdown = server._collect_and_dispatch(item)
        del server  # drop the strong ref before blocking on the queue again
        if shutdown:
            return


class MicroBatchServer:
    """Coalesce concurrent inference requests into micro-batches.

    Args:
        runner: batched inference callable ``(N, C, H, W) -> (N, ...)``
            — typically ``session.run`` or ``executor.run``.  Executed
            only on the dispatcher thread.
        config: batching knobs (:class:`ServingConfig`); a default one
            is used when omitted.
        faults: optional deterministic :class:`~repro.runtime.faults.FaultPlan`
            for chaos testing — ``crash`` decisions raise
            :class:`InjectedFaultError` on the affected requests,
            ``stall``/``slow`` delay their dispatch window (``corrupt``
            and ``slot_exhaust`` are transport-level kinds and no-ops
            here).  ``None`` (production) injects nothing.
        stats: externally built :class:`ServingStats` (a multi-tenant
            worker passes one per model, labeled, over a shared
            registry); a private unlabeled one is created when omitted.

    The server is a context manager; :meth:`close` drains the queue and
    joins the dispatcher.  ``submit`` after close raises
    ``RuntimeError``.
    """

    def __init__(
        self,
        runner: Callable[[np.ndarray], np.ndarray],
        config: ServingConfig | None = None,
        faults: FaultPlan | None = None,
        stats: ServingStats | None = None,
    ) -> None:
        if not callable(runner):
            run = getattr(runner, "run", None)
            if not callable(run):
                raise TypeError("runner must be callable or expose a .run method")
            runner = run
        self._runner = runner
        self.config = config if config is not None else ServingConfig()
        self.stats = stats if stats is not None else ServingStats()
        self._injector = FaultInjector(faults) if faults is not None else None
        self._fault_seq = itertools.count()
        # effective coalescing window, adapted per dispatch window when
        # config.adaptive_wait is set (dispatcher-thread-only state)
        self._wait_ms = self.config.max_wait_ms
        self.stats.effective_wait_ms = self._wait_ms
        # Backpressure lives in the semaphore, not the queue: submit
        # blocks on _capacity *outside* _submit_lock, so a full backlog
        # can never wedge the lock and stop close() from closing.  The
        # queue itself is unbounded; put_nowait under the lock cannot
        # block.  The dispatcher releases one permit per request taken.
        self._queue: queue.Queue = queue.Queue()
        self._capacity = threading.BoundedSemaphore(self.config.queue_depth)
        self._closed = threading.Event()
        # serialises the closed-check+enqueue in submit against close()
        # setting the flag: once close() holds this lock, no request can
        # slip into the queue behind the shutdown sentinel and hang.
        self._submit_lock = threading.Lock()
        # The worker holds only a *weak* reference to the server (strong
        # ref taken per window, dropped before each blocking get), and
        # the finalizer wakes it with the shutdown sentinel when the
        # server is garbage-collected — a server dropped without close()
        # must not leak its dispatcher thread or pin the executor/arena.
        self._dispatcher = threading.Thread(
            target=_dispatch_worker,
            args=(weakref.ref(self), self._queue, self._capacity),
            name="repro-microbatch-dispatcher",
            daemon=True,
        )
        self._dispatcher.start()
        self._finalizer = weakref.finalize(self, self._queue.put, _SHUTDOWN)

    # ------------------------------------------------------------------
    def submit(
        self,
        x: np.ndarray,
        *,
        timeout: float | None = None,
        deadline: float | None = None,
        deadline_at: float | None = None,
        trace=None,
    ) -> Future:
        """Enqueue one request; returns a future of the logits.

        ``x`` is one ``(C, H, W)`` sample or a small ``(N, C, H, W)``
        batch.  The future resolves to the corresponding ``(N, ...)``
        output rows (a bare sample is promoted to ``N == 1``, matching
        ``InferenceSession.run``).

        Args:
            timeout: seconds to wait for queue capacity when
                ``queue_depth`` requests are already backed up.  ``None``
                (default) blocks indefinitely — the pre-existing
                behaviour; any finite value raises the typed
                :class:`QueueFullError` once exhausted (counted under
                ``stats.shed``).
            deadline: latency budget in seconds from now.  The request
                is shed with :class:`DeadlineExceededError` if the
                budget expires before dispatch (``stats.timed_out``), and
                admission itself never waits past the budget.
            deadline_at: absolute ``time.monotonic()`` deadline —
                overrides ``deadline``; used for budgets propagated from
                another process/tier.
            trace: optional span sink
                (:class:`~repro.runtime.telemetry.SpanCollector`) for a
                sampled request — the dispatcher records ``queue_wait``,
                ``execute``, and per-layer ``layer:<node>`` spans into
                it.  ``None`` (default) records nothing.
        """
        x = np.asarray(x)
        if x.ndim == 3:
            x = x[None]
        if x.ndim != 4:
            raise ValueError(f"expected (C, H, W) or (N, C, H, W) input, got shape {x.shape}")
        if deadline_at is None and deadline is not None:
            deadline_at = time.monotonic() + deadline
        if deadline_at is not None:
            remaining = deadline_at - time.monotonic()
            if remaining <= 0:  # dead on arrival: shed at the door
                self.stats.count(timed_out=1)
                raise DeadlineExceededError(
                    "request deadline already expired at submission"
                )
            # never wait for capacity past the point the answer is useless
            timeout = remaining if timeout is None else min(timeout, remaining)
        future: Future = Future()
        fault = self._injector.decide(next(self._fault_seq)) if self._injector else None
        # backpressure: block outside the lock (bounded by timeout/deadline)
        if not self._capacity.acquire(timeout=timeout):
            self.stats.count(shed=1)
            raise QueueFullError(
                f"queue held {self.config.queue_depth} requests for "
                f"{timeout:.3f} s; request shed"
            )
        try:
            with self._submit_lock:
                if self._closed.is_set():
                    raise RuntimeError("MicroBatchServer is closed")
                self._queue.put_nowait(
                    _Request(x, x.shape[0], future, deadline_at, fault, trace)
                )
        except BaseException:
            self._capacity.release()  # permit travels with the request
            raise
        return future

    def run(self, x: np.ndarray, timeout: float | None = None, **submit_kwargs) -> np.ndarray:
        """Synchronous convenience: ``submit(x).result(timeout)``."""
        return self.submit(x, **submit_kwargs).result(timeout)

    # ------------------------------------------------------------------
    def close(self, timeout: float | None = None) -> None:
        """Stop accepting requests, drain the backlog, join the thread."""
        with self._submit_lock:
            if self._closed.is_set():
                return
            self._closed.set()
        self._finalizer.detach()
        # every request that passed submit's closed-check is already in
        # the queue, ahead of this sentinel — none can be stranded
        self._queue.put(_SHUTDOWN)
        self._dispatcher.join(timeout)

    def __enter__(self) -> MicroBatchServer:
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    def _collect_and_dispatch(self, first: _Request) -> bool:
        """One dispatch window, seeded by ``first``; True means shutdown."""
        self._capacity.release()
        depth_at_start = self._queue.qsize()
        batch = [first]
        samples = first.n
        deadline = time.monotonic() + self._wait_ms / 1e3
        shutdown = False
        expired = False
        while samples < self.config.max_batch:
            remaining = deadline - time.monotonic()
            try:
                if remaining > 0:
                    nxt = self._queue.get(timeout=remaining)
                else:  # window over: take only what is already queued
                    nxt = self._queue.get_nowait()
            except queue.Empty:
                expired = True
                break
            if nxt is _SHUTDOWN:
                shutdown = True
                break
            self._capacity.release()
            batch.append(nxt)
            samples += nxt.n
        self._adapt_wait(depth_at_start, samples, expired)
        self._dispatch(batch)
        if shutdown:
            self._drain_remaining()
        return shutdown

    def _adapt_wait(self, depth_at_start: int, samples: int, expired: bool) -> None:
        """Load-aware window sizing (dispatcher thread only).

        A backlog already ``max_batch`` requests deep at window start
        means waiting is pure latency (the batch fills straight from the
        queue) — halve the window.  A window that expired with an
        unfilled batch means load is light and batching opportunity is
        being left on the table — grow it back toward the configured
        maximum (additive term so growth restarts from a zero window).
        """
        cfg = self.config
        if not cfg.adaptive_wait or cfg.max_wait_ms == 0:
            return
        if depth_at_start >= cfg.max_batch:
            self._wait_ms *= 0.5
            if self._wait_ms < 1e-3:  # below clock resolution: stop pretending
                self._wait_ms = 0.0
        elif expired and samples < cfg.max_batch:
            self._wait_ms = min(cfg.max_wait_ms, self._wait_ms * 1.5 + 0.05)
        else:
            return
        self.stats.effective_wait_ms = self._wait_ms

    def _drain_remaining(self) -> None:
        """Serve everything still queued at shutdown (no coalescing wait).

        The backlog is dispatched in ``max_batch``-sized chunks — at the
        default ``queue_depth`` a single concatenated mega-batch would be
        a large transient allocation (and a batch size the arena scratch
        was never warmed for).
        """
        chunk: list[_Request] = []
        samples = 0
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                break
            if item is _SHUTDOWN:
                continue
            self._capacity.release()
            chunk.append(item)
            samples += item.n
            if samples >= self.config.max_batch:
                self._dispatch(chunk)
                chunk, samples = [], 0
        if chunk:
            self._dispatch(chunk)

    def _shed_expired(self, batch: list[_Request]) -> list[_Request]:
        """Drop requests whose deadline passed while queued (SLO-aware
        admission): their futures get the typed error *now* and the
        runner never executes work nobody is waiting for."""
        now = time.monotonic()
        live: list[_Request] = []
        expired: list[_Request] = []
        for req in batch:
            if req.deadline_at is not None and now >= req.deadline_at:
                expired.append(req)
            else:
                live.append(req)
        if expired:
            self.stats.count(timed_out=len(expired))
            for req in expired:
                if req.future.set_running_or_notify_cancel():
                    req.future.set_exception(
                        DeadlineExceededError(
                            f"request queued {(now - req.t_submit) * 1e3:.1f} ms, "
                            "past its deadline; shed before dispatch"
                        )
                    )
        return live

    def _dispatch(self, batch: list[_Request]) -> None:
        """Group a dispatch window by sample shape, run, scatter results."""
        batch = self._shed_expired(batch)
        # Claim every future first: set_running_or_notify_cancel() returns
        # False for a future the client already cancelled (dropped here)
        # and transitions the rest to RUNNING, after which a racing
        # cancel() can no longer succeed — set_result/set_exception below
        # cannot hit InvalidStateError and kill the dispatcher.
        batch = [req for req in batch if req.future.set_running_or_notify_cancel()]
        # group by sample shape AND dtype: concatenating mixed dtypes
        # would silently promote one client's request because of what
        # unrelated traffic happened to share its dispatch window
        groups: dict[tuple, list[_Request]] = {}
        for req in batch:
            groups.setdefault((req.x.shape[1:], req.x.dtype.str), []).append(req)
        for group in groups.values():
            # The whole group — concatenate, run, scatter — is guarded:
            # any failure (runner raised, runner returned garbage the
            # scatter chokes on, MemoryError in concatenate) resolves
            # every not-yet-resolved future instead of killing the
            # dispatcher thread with clients blocked forever.
            try:
                if self._injector is not None:
                    # injected chaos: delays first (stall/slow), then a
                    # crash decision fails the group with the typed error
                    for req in group:
                        self._injector.apply_delay(req.fault)
                    if any(req.fault == "crash" for req in group):
                        raise InjectedFaultError(
                            "injected crash (FaultPlan) in dispatch window"
                        )
                xs = group[0].x if len(group) == 1 else np.concatenate([r.x for r in group])
                traced = [req for req in group if req.trace is not None]
                exec_start = time.monotonic()
                for req in traced:
                    req.trace.add("queue_wait", req.t_submit, exec_start)
                if traced:
                    # ambient per-layer hook: the executor times each graph
                    # node into layer_sink while any request is traced
                    layer_sink: list = []
                    with profile_layers(layer_sink):
                        out = self._runner(xs)
                else:
                    out = self._runner(xs)
                exec_end = time.monotonic()
                for req in traced:
                    req.trace.add("execute", exec_start, exec_end, batch=int(xs.shape[0]))
                    for name, op, t0, t1 in layer_sink:
                        req.trace.add(f"layer:{name}", t0, t1, op=op)
                if out.shape[0] != xs.shape[0]:
                    # a wrong leading dim would not choke the scatter —
                    # it would silently hand co-batched clients truncated
                    # or empty rows; make it an error on every future
                    raise ValueError(
                        f"runner returned {out.shape[0]} rows for a batch of "
                        f"{xs.shape[0]} samples"
                    )
                offset = 0
                for req in group:
                    # copy the rows so one request's result doesn't pin
                    # the whole micro-batch array in memory
                    rows = out[offset : offset + req.n]
                    offset += req.n
                    req.future.set_result(rows.copy() if len(group) > 1 else rows)
                resolved = time.monotonic()
                self.stats.record_batch(
                    len(group),
                    int(xs.shape[0]),
                    [(resolved - req.t_submit) * 1e3 for req in group],
                )
            except BaseException as exc:  # propagate to every waiting client
                self.stats.count(errors=len(group))
                for req in group:
                    if not req.future.done():
                        req.future.set_exception(exc)
