"""Engines and the evaluation's headline orderings."""

import numpy as np
import pytest

from repro.frameworks import (
    PROFILES,
    UnsupportedModelError,
    feature_matrix,
    get_engine,
    winograd_conv2d,
)
from repro.hardware import KIRIN_980, SNAPDRAGON_855
from repro.models import get_spec
from repro.models.spec import ConvSpec, ModelSpec
from repro.runtime.ops import conv2d


@pytest.fixture(scope="module")
def tiny_spec():
    """A miniature 'model' so engine tests stay fast."""
    convs = [
        ConvSpec("c1", 3, 16, 3, padding=1, in_hw=32),
        ConvSpec("c2", 16, 32, 3, padding=1, in_hw=16),
        ConvSpec("c3", 32, 32, 3, padding=1, in_hw=16),
    ]
    return ModelSpec(name="tiny", dataset="synthetic", convs=convs, total_layers=3)


class TestWinograd:
    def test_matches_direct_conv(self):
        rng = np.random.default_rng(0)
        x = rng.standard_normal((2, 4, 10, 10)).astype(np.float32)
        w = rng.standard_normal((6, 4, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(winograd_conv2d(x, w), conv2d(x, w, None, 1, 1), rtol=1e-3, atol=1e-3)

    def test_with_bias(self):
        rng = np.random.default_rng(1)
        x = rng.standard_normal((1, 2, 8, 8)).astype(np.float32)
        w = rng.standard_normal((3, 2, 3, 3)).astype(np.float32)
        b = rng.standard_normal(3).astype(np.float32)
        np.testing.assert_allclose(winograd_conv2d(x, w, b), conv2d(x, w, b, 1, 1), rtol=1e-3, atol=1e-3)

    def test_odd_sizes(self):
        rng = np.random.default_rng(2)
        x = rng.standard_normal((1, 3, 7, 9)).astype(np.float32)
        w = rng.standard_normal((2, 3, 3, 3)).astype(np.float32)
        np.testing.assert_allclose(winograd_conv2d(x, w), conv2d(x, w, None, 1, 1), rtol=1e-3, atol=1e-3)

    def test_rejects_non_3x3(self):
        with pytest.raises(ValueError):
            winograd_conv2d(np.zeros((1, 1, 8, 8), np.float32), np.zeros((1, 1, 5, 5), np.float32))


class TestFeatureMatrix:
    def test_only_patdnn_supports_sparse(self):
        matrix = feature_matrix()
        row = matrix["sparse_model_support"]
        assert row["patdnn"] and not (row["tflite"] or row["tvm"] or row["mnn"])

    def test_tuning_flags_match_profiles(self):
        matrix = feature_matrix()
        for name in ("tflite", "tvm", "mnn", "patdnn"):
            assert matrix["parameters_auto_tuning"][name] == PROFILES[name].has_tuning

    def test_eleven_knobs(self):
        assert len(feature_matrix()) == 11


class TestEngineOrdering:
    def test_patdnn_fastest_on_tiny_model(self, tiny_spec):
        lat = {}
        for name in ("tflite", "tvm", "mnn"):
            lat[name] = get_engine(name, SNAPDRAGON_855, "cpu").prepare(tiny_spec).latency_ms
        pat = get_engine("patdnn", SNAPDRAGON_855, "cpu").prepare(tiny_spec).latency_ms
        assert pat < min(lat.values())
        assert lat["tflite"] == max(lat.values())

    def test_dense_mode_between_baselines_and_pattern(self, tiny_spec):
        pat = get_engine("patdnn", SNAPDRAGON_855, "cpu").prepare(tiny_spec).latency_ms
        dense = get_engine("patdnn", SNAPDRAGON_855, "cpu", mode="dense").prepare(tiny_spec).latency_ms
        assert pat < dense

    def test_csr_mode_no_faster_than_dense(self, tiny_spec):
        dense = get_engine("patdnn", SNAPDRAGON_855, "cpu", mode="dense").prepare(tiny_spec).latency_ms
        csr = get_engine("patdnn", SNAPDRAGON_855, "cpu", mode="csr").prepare(tiny_spec).latency_ms
        assert csr > 0.8 * dense  # §6.2: computation reduction does not transfer

    def test_tflite_rejects_vgg_on_gpu(self):
        spec = get_spec("vgg16", "imagenet")
        with pytest.raises(UnsupportedModelError):
            get_engine("tflite", SNAPDRAGON_855, "gpu").prepare(spec)

    def test_tflite_accepts_vgg_on_cpu(self):
        spec = get_spec("vgg16", "imagenet")
        assert get_engine("tflite", SNAPDRAGON_855, "cpu").prepare(spec).latency_ms > 0

    def test_unknown_engine_raises(self):
        with pytest.raises(KeyError):
            get_engine("ncnn", SNAPDRAGON_855)

    def test_bad_mode_raises(self):
        with pytest.raises(ValueError):
            get_engine("patdnn", SNAPDRAGON_855, mode="magic")

    def test_pattern_counts_affect_latency(self, tiny_spec):
        l8 = get_engine("patdnn", SNAPDRAGON_855, "cpu", num_patterns=8).prepare(tiny_spec).latency_ms
        l12 = get_engine("patdnn", SNAPDRAGON_855, "cpu", num_patterns=12).prepare(tiny_spec).latency_ms
        assert l12 > l8

    def test_prepared_model_metadata(self, tiny_spec):
        prepared = get_engine("mnn", SNAPDRAGON_855, "cpu").prepare(tiny_spec)
        assert prepared.engine_name == "mnn"
        assert len(prepared.layer_costs) == 3
        assert prepared.gflops > 0


class TestPortability:
    def test_baselines_degrade_more_on_mali(self, tiny_spec):
        """§6.5: PatDNN stays stable where vendor-tuned dense kernels don't."""
        ratios = {}
        for name in ("tvm", "patdnn"):
            adreno = get_engine(name, SNAPDRAGON_855, "gpu").prepare(tiny_spec).latency_ms
            mali = get_engine(name, KIRIN_980, "gpu").prepare(tiny_spec).latency_ms
            ratios[name] = mali / adreno
        assert ratios["tvm"] > 2.0
        assert ratios["patdnn"] < 2.0
        assert ratios["patdnn"] < ratios["tvm"]

    def test_cpu_latency_scales_with_frequency(self, tiny_spec):
        s855 = get_engine("mnn", SNAPDRAGON_855, "cpu").prepare(tiny_spec).latency_ms
        k980 = get_engine("mnn", KIRIN_980, "cpu").prepare(tiny_spec).latency_ms
        assert k980 > s855  # lower effective frequency
