"""PatDNN engine internals: pattern sets, opt levels, compiled artifacts."""

import numpy as np
import pytest

from repro.compiler.compile import OptLevel
from repro.frameworks.engines import PatDNNEngine
from repro.hardware import SNAPDRAGON_855
from repro.models import get_spec
from repro.models.spec import ConvSpec, ModelSpec


@pytest.fixture(scope="module")
def tiny_spec():
    return ModelSpec(
        "tiny",
        "synthetic",
        [
            ConvSpec("c1", 3, 16, 3, padding=1, in_hw=16),
            ConvSpec("pw", 16, 24, 1, padding=0, in_hw=16),
        ],
        total_layers=2,
    )


class TestDefaultPatternSet:
    def test_mined_from_3x3_layers(self, tiny_spec):
        engine = PatDNNEngine(SNAPDRAGON_855, "cpu", num_patterns=6)
        ps = engine.default_pattern_set(tiny_spec)
        assert len(ps) == 6
        assert ps.kernel_size == 3

    def test_deterministic_by_seed(self, tiny_spec):
        a = PatDNNEngine(SNAPDRAGON_855, "cpu", seed=5).default_pattern_set(tiny_spec)
        b = PatDNNEngine(SNAPDRAGON_855, "cpu", seed=5).default_pattern_set(tiny_spec)
        assert [p.bitmask for p in a] == [p.bitmask for p in b]

    def test_model_without_3x3_falls_back(self):
        spec = ModelSpec(
            "pw-only", "synthetic", [ConvSpec("pw", 8, 8, 1, padding=0, in_hw=8)], total_layers=1
        )
        ps = PatDNNEngine(SNAPDRAGON_855, "cpu").default_pattern_set(spec)
        assert len(ps) == 8  # canonical universe prefix


class TestOptLevels:
    def test_latency_monotone_in_opt_level(self, tiny_spec):
        times = []
        for lvl in OptLevel:
            eng = PatDNNEngine(SNAPDRAGON_855, "cpu", opt_level=lvl)
            times.append(eng.prepare(tiny_spec).latency_ms)
        assert times[0] > times[-1]
        assert all(a >= b - 1e-9 for a, b in zip(times, times[1:]))

    def test_compiled_artifacts_attached(self, tiny_spec):
        prepared = PatDNNEngine(SNAPDRAGON_855, "cpu").prepare(tiny_spec)
        compiled = prepared.compiled
        assert len(compiled.layers) == 2
        # 1x1 layer got the degenerate full pattern
        assert compiled.layers[1].fkw.entries == 1
        # LR document covers both layers
        assert compiled.lr_document().count("name:") >= 2

    def test_pattern_faster_than_csr_and_dense(self, tiny_spec):
        pat = PatDNNEngine(SNAPDRAGON_855, "cpu", mode="pattern").prepare(tiny_spec).latency_ms
        csr = PatDNNEngine(SNAPDRAGON_855, "cpu", mode="csr").prepare(tiny_spec).latency_ms
        dense = PatDNNEngine(SNAPDRAGON_855, "cpu", mode="dense").prepare(tiny_spec).latency_ms
        assert pat < dense < csr * 1.5


class TestDepthwiseModel:
    def test_mobilenet_cifar_compiles_on_gpu(self):
        spec = get_spec("mobilenet_v2", "cifar10")
        prepared = PatDNNEngine(SNAPDRAGON_855, "gpu", opt_level=OptLevel.LRE).prepare(spec)
        assert prepared.latency_ms > 0
        assert len(prepared.layer_costs) == spec.conv_count
