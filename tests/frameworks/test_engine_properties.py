"""Property tests on engine orderings over random model specs."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.frameworks import get_engine
from repro.hardware import SNAPDRAGON_855
from repro.models.spec import ConvSpec, ModelSpec


def _random_spec(draw):
    n_layers = draw(st.integers(1, 3))
    convs = []
    in_ch = 3
    hw = draw(st.sampled_from([16, 32]))
    for i in range(n_layers):
        out_ch = draw(st.sampled_from([16, 32, 64]))
        convs.append(ConvSpec(f"c{i}", in_ch, out_ch, 3, padding=1, in_hw=hw))
        in_ch = out_ch
        if hw >= 8 and draw(st.booleans()):
            hw //= 2
    return ModelSpec("prop", "synthetic", convs, total_layers=n_layers)


@st.composite
def model_specs(draw):
    return _random_spec(draw)


@settings(max_examples=8, deadline=None)
@given(model_specs())
def test_patdnn_pattern_beats_all_baselines(spec):
    """The headline ordering must hold on arbitrary conv stacks."""
    pat = get_engine("patdnn", SNAPDRAGON_855, "cpu").prepare(spec).latency_ms
    for name in ("tflite", "tvm", "mnn"):
        baseline = get_engine(name, SNAPDRAGON_855, "cpu").prepare(spec).latency_ms
        assert pat < baseline


@settings(max_examples=8, deadline=None)
@given(model_specs())
def test_latency_positive_and_layerwise(spec):
    prepared = get_engine("mnn", SNAPDRAGON_855, "cpu").prepare(spec)
    assert prepared.latency_ms > 0
    assert len(prepared.layer_costs) == spec.conv_count
    assert prepared.latency_ms == pytest.approx(sum(c.total_ms for c in prepared.layer_costs))


@settings(max_examples=6, deadline=None)
@given(model_specs())
def test_gpu_fp16_model_not_slower_than_fp32_weights_equiv(spec):
    """Sanity: the GPU path with fp16 must never be slower than doubling
    its own memory traffic would imply (guards the fp16 accounting)."""
    eng = get_engine("mnn", SNAPDRAGON_855, "gpu")
    prepared = eng.prepare(spec)
    for cost in prepared.layer_costs:
        assert cost.total_ms > 0
