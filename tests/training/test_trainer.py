"""Trainer driver: history, hooks, scheduler integration."""

import numpy as np
import pytest

from repro.data import DataLoader, make_cifar10_like
from repro.models import build_small_cnn
from repro.optim import SGD, StepLR
from repro.training import Trainer


@pytest.fixture
def setup():
    ds = make_cifar10_like(samples_per_class=16, size=8, seed=8)
    train, test = ds.split(0.75)
    loader = DataLoader(train, batch_size=16, shuffle=True)
    model = build_small_cnn(channels=(8, 16), in_size=8, seed=4)
    return model, loader, test


class TestTrainer:
    def test_loss_decreases(self, setup):
        model, loader, _ = setup
        report = Trainer(model, loader).run(epochs=6)
        assert len(report.epoch_losses) == 6
        assert report.epoch_losses[-1] < report.epoch_losses[0]

    def test_eval_history(self, setup):
        model, loader, test = setup
        trainer = Trainer(model, loader, eval_data=(test.images, test.labels))
        report = trainer.run(epochs=3)
        assert len(report.eval_accuracies) == 3
        assert 0.0 <= report.best_accuracy <= 1.0

    def test_hooks_called_per_batch(self, setup):
        model, loader, _ = setup
        calls = {"grad": 0, "step": 0}
        trainer = Trainer(
            model,
            loader,
            grad_hook=lambda: calls.__setitem__("grad", calls["grad"] + 1),
            step_hook=lambda: calls.__setitem__("step", calls["step"] + 1),
        )
        trainer.run(epochs=2)
        assert calls["grad"] == calls["step"] == 2 * len(loader)

    def test_grad_hook_can_mask(self, setup):
        """A grad hook zeroing all conv grads freezes conv weights."""
        from repro import nn

        model, loader, _ = setup
        convs = [m for _, m in model.named_modules() if isinstance(m, nn.Conv2d)]
        before = [c.weight.data.copy() for c in convs]

        def freeze():
            for c in convs:
                if c.weight.grad is not None:
                    c.weight.grad *= 0.0

        Trainer(model, loader, grad_hook=freeze).run(epochs=1)
        for c, b in zip(convs, before):
            np.testing.assert_array_equal(c.weight.data, b)

    def test_scheduler_steps_per_epoch(self, setup):
        model, loader, _ = setup
        opt = SGD(model.parameters(), lr=1.0)
        sched = StepLR(opt, step_size=1, gamma=0.5)
        Trainer(model, loader, optimizer=opt).run(epochs=3, scheduler=sched)
        assert opt.lr == pytest.approx(0.125)

    def test_negative_epochs_raises(self, setup):
        model, loader, _ = setup
        with pytest.raises(ValueError):
            Trainer(model, loader).run(epochs=-1)

    def test_zero_epochs_noop(self, setup):
        model, loader, _ = setup
        report = Trainer(model, loader).run(epochs=0)
        assert report.epoch_losses == []
        assert np.isnan(report.final_loss)
