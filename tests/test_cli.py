"""CLI subcommands."""

import re

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_latency_defaults(self):
        args = build_parser().parse_args(["latency", "vgg16"])
        assert args.dataset == "imagenet"
        assert args.unit == "cpu"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 2
        assert args.clients == 8
        assert args.max_batch == 8
        assert args.metrics_port is None
        assert args.trace_sample == 0.01
        assert args.linger == 0.0

    def test_serve_telemetry_flags(self):
        args = build_parser().parse_args(
            ["serve", "--metrics-port", "0", "--trace-sample", "1.0", "--linger", "5"]
        )
        assert args.metrics_port == 0
        assert args.trace_sample == 1.0
        assert args.linger == 5.0

    def test_serve_shard_file_flag(self):
        args = build_parser().parse_args(["serve", "--shard-file", "plan.txt"])
        assert args.shard_file == "plan.txt"
        assert build_parser().parse_args(["serve"]).shard_file is None

    @pytest.mark.parametrize("value", ["0", "-3"])
    def test_serve_rejects_nonpositive_shard_count(self, value, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve", "--shards", value])
        assert "shard count must be a positive integer" in capsys.readouterr().err

    def test_serve_rejects_duplicate_addresses(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["serve", "--shards", "10.0.0.5:7070,10.0.0.6:7070,10.0.0.5:7070"]
            )
        err = capsys.readouterr().err
        assert "duplicate shard address(es): 10.0.0.5:7070" in err

    def test_parse_shards_errors_directly(self):
        from argparse import ArgumentTypeError

        from repro.cli import _parse_shards

        assert _parse_shards("3") == 3
        assert _parse_shards("h1:1,h2:2") == ["h1:1", "h2:2"]
        with pytest.raises(ArgumentTypeError, match="positive integer, got 0"):
            _parse_shards("0")
        with pytest.raises(ArgumentTypeError, match="positive integer, got -3"):
            _parse_shards("-3")
        with pytest.raises(ArgumentTypeError, match="duplicate shard address"):
            _parse_shards("h1:1,h1:1")


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "snapdragon855" in out and "mali" in out

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig13" in out

    def test_experiments_run_light(self, capsys):
        assert main(["experiments", "table6"]) == 0
        out = capsys.readouterr().out
        assert "L9" in out

    def test_compile_layer(self, capsys):
        assert main(["compile", "--layer", "L1"]) == 0
        out = capsys.readouterr().out
        assert "layerwise representation" in out
        assert "register loads" in out

    def test_compile_with_source(self, capsys):
        assert main(["compile", "--layer", "L1", "--source"]) == 0
        out = capsys.readouterr().out
        assert "vfma" in out

    def test_latency_small_model(self, capsys):
        assert main(["latency", "mobilenet_v2", "--dataset", "cifar10"]) == 0
        out = capsys.readouterr().out
        assert "patdnn-pattern" in out
        assert "tflite" in out

    def test_serve_sharded_demo(self, capsys):
        """End-to-end: 2 spawned shards serve a few hundred verified
        requests and the aggregated cluster stats are printed."""
        assert main(["serve", "--shards", "2", "--clients", "4", "--requests", "200"]) == 0
        out = capsys.readouterr().out
        assert "over 2 shard(s)" in out
        assert "outputs verified" in out
        assert "total: 200 requests, 0 errors, 0 respawns" in out
        # per-shard stat rows made it out (least-outstanding routing used both)
        lines = [l for l in out.splitlines() if l.strip().startswith(("0 ", "1 "))]
        assert len(lines) == 2

    def test_serve_stats_footer_layout(self, capsys):
        """The footer is the serving demo's observability contract: a
        shard table (with latency percentiles including p99), a
        transport + router-percentile line, and a resilience line."""
        assert main(["serve", "--shards", "2", "--clients", "2", "--requests", "32"]) == 0
        out = capsys.readouterr().out
        lines = out.splitlines()
        # shard table: header + one row per shard
        (header,) = [l for l in lines if l.strip().startswith("shard ")]
        for col in ("requests", "breaker", "mean batch", "p50 ms", "p95 ms", "p99 ms"):
            assert col in header
        rows = [l for l in lines if re.match(r"^\s+[01]\s+\d+", l)]
        assert len(rows) == 2
        # shard pid requests errors respawns breaker batches mean-batch
        # p50 p95 p99 = 11 columns per row
        assert all(len(row.split()) == 11 for row in rows)
        # transport line: kind + router-side end-to-end percentiles
        (transport_line,) = [l for l in lines if l.startswith("transport:")]
        assert "shm" in transport_line
        assert re.search(
            r"p50 \d+\.\d+ ms / p95 \d+\.\d+ ms / p99 \d+\.\d+ ms", transport_line
        )
        # resilience line: every counter is reported
        (res_line,) = [l for l in lines if l.startswith("resilience:")]
        for counter in ("retries", "hedges", "shed", "timed out", "corrupt"):
            assert counter in res_line

    def test_serve_metrics_port_prints_admin_endpoint(self, capsys):
        assert main([
            "serve", "--shards", "1", "--clients", "2", "--requests", "16",
            "--metrics-port", "0", "--trace-sample", "1.0",
        ]) == 0
        out = capsys.readouterr().out
        assert re.search(r"admin endpoint: http://127\.0\.0\.1:\d+", out)
