"""CLI subcommands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_latency_defaults(self):
        args = build_parser().parse_args(["latency", "vgg16"])
        assert args.dataset == "imagenet"
        assert args.unit == "cpu"

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.shards == 2
        assert args.clients == 8
        assert args.max_batch == 8


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "snapdragon855" in out and "mali" in out

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig13" in out

    def test_experiments_run_light(self, capsys):
        assert main(["experiments", "table6"]) == 0
        out = capsys.readouterr().out
        assert "L9" in out

    def test_compile_layer(self, capsys):
        assert main(["compile", "--layer", "L1"]) == 0
        out = capsys.readouterr().out
        assert "layerwise representation" in out
        assert "register loads" in out

    def test_compile_with_source(self, capsys):
        assert main(["compile", "--layer", "L1", "--source"]) == 0
        out = capsys.readouterr().out
        assert "vfma" in out

    def test_latency_small_model(self, capsys):
        assert main(["latency", "mobilenet_v2", "--dataset", "cifar10"]) == 0
        out = capsys.readouterr().out
        assert "patdnn-pattern" in out
        assert "tflite" in out

    def test_serve_sharded_demo(self, capsys):
        """End-to-end: 2 spawned shards serve a few hundred verified
        requests and the aggregated cluster stats are printed."""
        assert main(["serve", "--shards", "2", "--clients", "4", "--requests", "200"]) == 0
        out = capsys.readouterr().out
        assert "over 2 shard(s)" in out
        assert "outputs verified" in out
        assert "total: 200 requests, 0 errors, 0 respawns" in out
        # per-shard stat rows made it out (least-outstanding routing used both)
        lines = [l for l in out.splitlines() if l.strip().startswith(("0 ", "1 "))]
        assert len(lines) == 2
