"""CLI subcommands."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_latency_defaults(self):
        args = build_parser().parse_args(["latency", "vgg16"])
        assert args.dataset == "imagenet"
        assert args.unit == "cpu"


class TestCommands:
    def test_devices(self, capsys):
        assert main(["devices"]) == 0
        out = capsys.readouterr().out
        assert "snapdragon855" in out and "mali" in out

    def test_experiments_listing(self, capsys):
        assert main(["experiments"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig13" in out

    def test_experiments_run_light(self, capsys):
        assert main(["experiments", "table6"]) == 0
        out = capsys.readouterr().out
        assert "L9" in out

    def test_compile_layer(self, capsys):
        assert main(["compile", "--layer", "L1"]) == 0
        out = capsys.readouterr().out
        assert "layerwise representation" in out
        assert "register loads" in out

    def test_compile_with_source(self, capsys):
        assert main(["compile", "--layer", "L1", "--source"]) == 0
        out = capsys.readouterr().out
        assert "vfma" in out

    def test_latency_small_model(self, capsys):
        assert main(["latency", "mobilenet_v2", "--dataset", "cifar10"]) == 0
        out = capsys.readouterr().out
        assert "patdnn-pattern" in out
        assert "tflite" in out
