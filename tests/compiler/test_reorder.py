"""Filter kernel reorder invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.reorder import filter_kernel_reorder, identity_reorder


def _random_assignment(rng, f=12, c=8, k=6, empty_frac=0.4):
    a = rng.integers(1, k + 1, size=(f, c)).astype(np.int32)
    a[rng.random((f, c)) < empty_frac] = 0
    return a


class TestFKR:
    def test_filter_order_is_permutation(self, rng):
        fkr = filter_kernel_reorder(_random_assignment(rng))
        assert sorted(fkr.filter_order.tolist()) == list(range(12))

    def test_groups_partition_filters(self, rng):
        fkr = filter_kernel_reorder(_random_assignment(rng))
        covered = []
        for start, end in fkr.groups:
            covered.extend(range(start, end))
        assert covered == list(range(12))

    def test_lengths_within_group_equal(self, rng):
        fkr = filter_kernel_reorder(_random_assignment(rng))
        for start, end in fkr.groups:
            lengths = fkr.lengths_after[start:end]
            assert len(set(lengths.tolist())) == 1

    def test_lengths_descending_across_groups(self, rng):
        fkr = filter_kernel_reorder(_random_assignment(rng))
        assert np.all(np.diff(fkr.lengths_after) <= 0)

    def test_kernels_sorted_by_pattern_id(self, rng):
        fkr = filter_kernel_reorder(_random_assignment(rng))
        for order in fkr.kernel_orders:
            if len(order) > 1:
                assert np.all(np.diff(order[:, 1]) >= 0)

    def test_kernel_sets_preserved(self, rng):
        a = _random_assignment(rng)
        fkr = filter_kernel_reorder(a)
        for pos, orig in enumerate(fkr.filter_order):
            expected = {(c, a[orig, c]) for c in np.nonzero(a[orig])[0]}
            got = {(int(ch), int(pid)) for ch, pid in fkr.kernel_orders[pos]}
            assert got == expected

    def test_runs_never_exceed_pattern_count(self, rng):
        a = _random_assignment(rng, k=6)
        fkr = filter_kernel_reorder(a)
        assert fkr.pattern_runs_per_filter() <= 6

    def test_reorder_reduces_runs_vs_identity(self, rng):
        a = _random_assignment(rng, f=24, c=24, k=8, empty_frac=0.2)
        before = identity_reorder(a).pattern_runs_per_filter()
        after = filter_kernel_reorder(a).pattern_runs_per_filter()
        assert after < before

    def test_identity_reorder_keeps_order(self, rng):
        a = _random_assignment(rng)
        fkr = identity_reorder(a)
        np.testing.assert_array_equal(fkr.filter_order, np.arange(12))
        np.testing.assert_array_equal(fkr.lengths_before, fkr.lengths_after)

    def test_empty_filter_supported(self):
        a = np.zeros((4, 4), dtype=np.int32)
        a[0, 0] = 1
        fkr = filter_kernel_reorder(a)
        assert fkr.lengths_after[0] == 1
        assert fkr.lengths_after[1:].sum() == 0

    def test_1d_input_rejected(self):
        with pytest.raises(ValueError):
            filter_kernel_reorder(np.zeros(4, dtype=np.int32))

    def test_large_group_fallback_matches_invariants(self, rng):
        a = _random_assignment(rng, f=64, c=4, k=2, empty_frac=0.0)
        fkr = filter_kernel_reorder(a, greedy_limit=8)  # force fallback
        assert sorted(fkr.filter_order.tolist()) == list(range(64))
        for start, end in fkr.groups:
            assert len(set(fkr.lengths_after[start:end].tolist())) == 1


@settings(max_examples=30, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(2, 16), st.integers(2, 12))
def test_fkr_permutation_property(seed, f, c):
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 5, size=(f, c)).astype(np.int32)
    fkr = filter_kernel_reorder(a)
    assert sorted(fkr.filter_order.tolist()) == list(range(f))
    assert int(fkr.lengths_after.sum()) == int((a > 0).sum())
