"""Auto-tuner (GA + estimator), LR, and the compile driver."""

import numpy as np
import pytest

from repro.compiler.compile import (
    CompiledModel,
    OptLevel,
    compile_layer,
    compile_model,
    full_pattern_set,
    prune_spec_layer,
    warp_divergence_factor,
)
from repro.compiler.lr import LayerwiseRepresentation, model_lr
from repro.compiler.reorder import filter_kernel_reorder, identity_reorder
from repro.compiler.tuner import (
    GATuner,
    PerformanceEstimator,
    Schedule,
    ScheduleSpace,
)
from repro.core.patterns import mine_pattern_set
from repro.hardware import SNAPDRAGON_855
from repro.hardware.cost_model import ConvCostModel, ConvWorkload
from repro.models.spec import ConvSpec
from repro.models.vgg import unique_layer_spec


@pytest.fixture(scope="module")
def layer_setup():
    spec = ConvSpec("test", 32, 32, 3, padding=1, in_hw=28)
    w0 = spec.make_weights()
    ps = mine_pattern_set([w0], k=8)
    w, assignment = prune_spec_layer(spec, ps, 3.6, weights=w0)
    cm = ConvCostModel(SNAPDRAGON_855, "cpu", utilization=0.42)
    return spec, w, assignment, ps, cm


class TestScheduleSpace:
    def test_space_respects_layer_bounds(self):
        space = ScheduleSpace.for_layer(out_channels=16, out_hw=8)
        assert max(space.tiles_oc) <= 16
        assert max(space.tiles_hw) <= 8

    def test_random_in_space(self, rng):
        space = ScheduleSpace.for_layer(64, 28)
        for _ in range(20):
            s = space.random(rng)
            assert s.tile_oc in space.tiles_oc
            assert s.permutation in space.permutations

    def test_mutate_changes_one_knob(self, rng):
        space = ScheduleSpace.for_layer(64, 28)
        base = Schedule.default()
        diffs = []
        for _ in range(30):
            mutated = space.mutate(base, rng)
            fields = [f for f in base.__dataclass_fields__ if getattr(base, f) != getattr(mutated, f)]
            diffs.append(len(fields))
        assert max(diffs) <= 1

    def test_gpu_space_has_placements(self):
        space = ScheduleSpace.for_layer(64, 28, unit="gpu")
        assert "image2d" in space.placements

    def test_size_positive(self):
        assert ScheduleSpace.for_layer(64, 28).size() > 100


class TestGATuner:
    def test_improves_over_default(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        tuner = GATuner(cm, population=12, generations=6, seed=3)
        result = tuner.tune(cl.workload)
        default_ms = cm.estimate(cl.workload, Schedule.default().to_sched_params()).total_ms
        assert result.best_ms < default_ms

    def test_deterministic(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        r1 = GATuner(cm, population=8, generations=4, seed=5).tune(cl.workload)
        r2 = GATuner(cm, population=8, generations=4, seed=5).tune(cl.workload)
        assert r1.best == r2.best
        assert r1.best_ms == r2.best_ms

    def test_history_recorded(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        result = GATuner(cm, population=8, generations=3, seed=1).tune(cl.workload)
        assert len(result.history) == 8 * 4  # 3 generations + final scoring

    def test_elite_bounds(self):
        cm = ConvCostModel(SNAPDRAGON_855, "cpu")
        with pytest.raises(ValueError):
            GATuner(cm, population=4, elite=4)


class TestPerformanceEstimator:
    def test_fit_and_predict(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        result = GATuner(cm, population=16, generations=6, seed=2).tune(cl.workload)
        est = PerformanceEstimator(seed=0)
        rmse = est.fit(result.history, cl.workload, epochs=200)
        assert rmse < 0.2  # log-space fit
        pred = est.predict(result.best, cl.workload)
        assert 0.2 * result.best_ms < pred < 5 * result.best_ms

    def test_best_of_picks_low_latency(self, layer_setup, rng):
        spec, w, assignment, ps, cm = layer_setup
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        result = GATuner(cm, population=16, generations=6, seed=4).tune(cl.workload)
        est = PerformanceEstimator(seed=1)
        est.fit(result.history, cl.workload, epochs=200)
        space = ScheduleSpace.for_layer(spec.out_channels, spec.out_hw)
        candidates = [space.random(rng) for _ in range(32)]
        pick = est.best_of(candidates, cl.workload)
        actual = {s: cm.estimate(cl.workload, s.to_sched_params()).total_ms for s in candidates}
        # the pick must land in the better half of candidates
        ranked = sorted(actual.values())
        assert actual[pick] <= ranked[len(ranked) // 2]

    def test_unfitted_predict_raises(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        with pytest.raises(RuntimeError):
            PerformanceEstimator().predict(Schedule.default(), cl.workload)

    def test_too_few_samples_raises(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        with pytest.raises(ValueError):
            PerformanceEstimator().fit([(Schedule.default(), 1.0)] * 3, cl.workload)


class TestLR:
    def test_from_layer_fields(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        lr = LayerwiseRepresentation.from_layer("conv_op1", assignment, tuning={"tile": [16, 32, 8]})
        assert lr.pattern_types == sorted(set(int(i) for i in np.unique(assignment) if i > 0))
        assert lr.info["strides"] == [1, 1]

    def test_yaml_shape(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        lr = LayerwiseRepresentation.from_layer("conv_op1", assignment)
        text = lr.to_yaml()
        assert 'name: "conv_op1"' in text
        assert "FKW" in text

    def test_model_lr_concatenates(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        lr = LayerwiseRepresentation.from_layer("conv_op1", assignment)
        doc = model_lr([lr, lr], device="gpu", name="vgg16")
        assert doc.count("conv_op1") == 2
        assert "device: [GPU]" in doc


class TestCompileDriver:
    def test_opt_levels_monotone_speedup(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        times = [compile_layer(spec, w, assignment, ps, cm, lvl).estimated_ms for lvl in OptLevel]
        assert times[0] > times[1] >= times[2] >= times[3]

    def test_kernel_correct_at_all_levels(self, layer_setup):
        from repro.autograd.im2col import im2col

        spec, w, assignment, ps, cm = layer_setup
        rng = np.random.default_rng(0)
        x = rng.standard_normal((spec.in_channels, 10, 10)).astype(np.float32)
        col, ho, wo = im2col(x[None], 3, 3, 1, 1)
        ref = (w.reshape(w.shape[0], -1) @ col[0]).reshape(w.shape[0], ho, wo)
        for lvl in OptLevel:
            cl = compile_layer(spec, w, assignment, ps, cm, lvl)
            np.testing.assert_allclose(cl.kernel()(x), ref, rtol=1e-3, atol=1e-3)

    def test_warp_divergence_drops_after_fkr(self, layer_setup):
        spec, w, assignment, ps, cm = layer_setup
        before = warp_divergence_factor(identity_reorder(assignment), wavefront=16)
        after = warp_divergence_factor(filter_kernel_reorder(assignment), wavefront=16)
        assert after < before

    def test_full_pattern_set_for_1x1(self):
        ps = full_pattern_set(1)
        assert len(ps) == 1
        assert ps[1].positions == (0,)

    def test_compile_model_over_spec(self):
        from repro.models import get_spec

        spec = get_spec("vgg16", "cifar10")
        ps = mine_pattern_set([spec.convs[1].make_weights()], k=8)
        cm = ConvCostModel(SNAPDRAGON_855, "cpu", utilization=0.42)
        compiled = compile_model(spec, ps, cm, opt_level=OptLevel.LRE)
        assert isinstance(compiled, CompiledModel)
        assert len(compiled.layers) == 13
        assert compiled.total_ms > 0
        doc = compiled.lr_document()
        assert doc.count("name:") >= 13

    def test_non_3x3_layer_compiles(self):
        spec = ConvSpec("pw", 16, 24, 1, padding=0, in_hw=14)
        ps = mine_pattern_set([ConvSpec("t", 8, 8, 3, in_hw=8).make_weights()], k=8)
        w, assignment = prune_spec_layer(spec, ps, 2.0)
        cm = ConvCostModel(SNAPDRAGON_855, "cpu")
        cl = compile_layer(spec, w, assignment, ps, cm, OptLevel.LRE)
        assert cl.fkw.entries == 1
        np.testing.assert_array_equal(cl.fkw.to_dense(), w)
