"""FKW / CSR / COO storage formats."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.reorder import filter_kernel_reorder, identity_reorder
from repro.compiler.storage import COOLayer, CSRLayer, FKWLayer
from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.core.projections import project_connectivity, project_kernel_pattern


def _pruned(seed=0, f=10, c=6, k=6, keep=None):
    rng = np.random.default_rng(seed)
    ps = PatternSet(enumerate_candidate_patterns()[:k])
    w = rng.standard_normal((f, c, 3, 3)).astype(np.float32)
    w, assignment = project_kernel_pattern(w, ps)
    keep = keep or (f * c) // 2
    w, mask = project_connectivity(w, keep)
    return w, assignment * mask, ps


class TestFKW:
    def test_roundtrip_exact(self):
        w, a, ps = _pruned()
        fkw = FKWLayer.from_pruned(w, a, ps)
        np.testing.assert_array_equal(fkw.to_dense(), w)

    def test_roundtrip_with_identity_reorder(self):
        w, a, ps = _pruned(seed=1)
        fkw = FKWLayer.from_pruned(w, a, ps, identity_reorder(a))
        np.testing.assert_array_equal(fkw.to_dense(), w)

    def test_kernel_and_weight_counts(self):
        w, a, ps = _pruned(keep=20)
        fkw = FKWLayer.from_pruned(w, a, ps)
        assert fkw.num_kernels == 20
        assert fkw.nnz == 20 * 4

    def test_offset_monotone(self):
        w, a, ps = _pruned()
        fkw = FKWLayer.from_pruned(w, a, ps)
        assert np.all(np.diff(fkw.offset) >= 0)
        assert fkw.offset[0] == 0
        assert fkw.offset[-1] == fkw.num_kernels

    def test_stride_rows_cumulative(self):
        w, a, ps = _pruned()
        fkw = FKWLayer.from_pruned(w, a, ps)
        assert fkw.stride.shape == (10, len(ps) + 1)
        assert np.all(np.diff(fkw.stride.astype(int), axis=1) >= 0)
        # last stride column equals the filter's kernel count
        np.testing.assert_array_equal(fkw.stride[:, -1], np.diff(fkw.offset))

    def test_pattern_runs_cover_filter(self):
        w, a, ps = _pruned()
        fkw = FKWLayer.from_pruned(w, a, ps)
        for pos in range(10):
            runs = fkw.pattern_runs(pos)
            covered = sum(end - start for _, start, end in runs)
            assert covered == int(fkw.offset[pos + 1] - fkw.offset[pos])
            # runs sorted by pattern id and non-overlapping
            ids = [pid for pid, _, _ in runs]
            assert ids == sorted(ids)

    def test_pattern_ids_reconstruction(self):
        w, a, ps = _pruned(seed=2)
        fkw = FKWLayer.from_pruned(w, a, ps)
        stored = fkw.pattern_ids.copy()
        fkw._pattern_ids = None
        np.testing.assert_array_equal(fkw.pattern_ids, stored)

    def test_overhead_excludes_weights(self):
        w, a, ps = _pruned()
        fkw = FKWLayer.from_pruned(w, a, ps)
        assert fkw.total_bytes() == fkw.overhead_bytes() + fkw.weights.nbytes

    def test_overhead_much_smaller_than_csr(self):
        w, a, ps = _pruned(seed=3, f=64, c=64, keep=1100)
        fkw = FKWLayer.from_pruned(w, a, ps)
        csr = CSRLayer.from_dense(w)
        assert fkw.overhead_bytes() < 0.35 * csr.overhead_bytes()

    def test_all_kernels_pruned_layer(self):
        ps = PatternSet(enumerate_candidate_patterns()[:4])
        w = np.zeros((3, 3, 3, 3), dtype=np.float32)
        a = np.zeros((3, 3), dtype=np.int32)
        fkw = FKWLayer.from_pruned(w, a, ps)
        assert fkw.num_kernels == 0
        np.testing.assert_array_equal(fkw.to_dense(), w)


class TestCSR:
    def test_roundtrip(self):
        w, a, ps = _pruned(seed=4)
        csr = CSRLayer.from_dense(w)
        np.testing.assert_array_equal(csr.to_dense(), w)

    def test_nnz_matches(self):
        w, a, ps = _pruned(seed=5)
        csr = CSRLayer.from_dense(w)
        assert csr.nnz == int(np.count_nonzero(w))

    def test_indptr_shape(self):
        w, a, ps = _pruned()
        csr = CSRLayer.from_dense(w)
        assert csr.indptr.shape == (11,)

    def test_overhead_accounting(self):
        w, a, ps = _pruned()
        csr = CSRLayer.from_dense(w)
        assert csr.overhead_bytes() == csr.indptr.nbytes + csr.indices.nbytes


class TestCOO:
    def test_counts_match_csr(self):
        w, a, ps = _pruned(seed=6)
        coo = COOLayer.from_dense(w)
        csr = CSRLayer.from_dense(w)
        assert coo.nnz == csr.nnz

    def test_coo_overhead_exceeds_csr(self):
        w, a, ps = _pruned(seed=7)
        assert COOLayer.from_dense(w).overhead_bytes() >= CSRLayer.from_dense(w).overhead_bytes()


@settings(max_examples=20, deadline=None)
@given(st.integers(0, 2**32 - 1), st.integers(2, 8), st.integers(2, 8), st.integers(1, 8))
def test_fkw_roundtrip_property(seed, f, c, k):
    """Property: FKW.to_dense inverts from_pruned for any pruned layer."""
    rng = np.random.default_rng(seed)
    ps = PatternSet(enumerate_candidate_patterns()[:k])
    w = rng.standard_normal((f, c, 3, 3)).astype(np.float32)
    w, assignment = project_kernel_pattern(w, ps)
    keep = max(1, (f * c) // 3)
    w, mask = project_connectivity(w, keep)
    assignment = assignment * mask
    fkw = FKWLayer.from_pruned(w, assignment, ps)
    np.testing.assert_array_equal(fkw.to_dense(), w)
