"""Code generation correctness + LRE load accounting."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.autograd.im2col import im2col
from repro.compiler.codegen import generate_kernel, generate_source
from repro.compiler.lre import count_register_loads, loads_without_patterns
from repro.compiler.storage import FKWLayer
from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.core.projections import project_connectivity, project_kernel_pattern


def _ref_conv(x, w, stride=1, pad=1):
    kh = w.shape[2]
    col, ho, wo = im2col(x[None], kh, kh, stride, pad)
    return (w.reshape(w.shape[0], -1) @ col[0]).reshape(w.shape[0], ho, wo)


def _fkw(seed=0, f=8, c=5, k=6, keep_frac=0.5):
    rng = np.random.default_rng(seed)
    ps = PatternSet(enumerate_candidate_patterns()[:k])
    w = rng.standard_normal((f, c, 3, 3)).astype(np.float32)
    w, a = project_kernel_pattern(w, ps)
    w, m = project_connectivity(w, max(1, int(f * c * keep_frac)))
    return w, FKWLayer.from_pruned(w, a * m, ps), rng


OPT_LEVELS = ["no-opt", "reorder", "lre", "gemm"]


class TestCodegenCorrectness:
    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    def test_matches_reference(self, opt_level):
        w, fkw, rng = _fkw()
        x = rng.standard_normal((5, 9, 9)).astype(np.float32)
        fn = generate_kernel(fkw, 1, 1, opt_level)
        np.testing.assert_allclose(fn(x), _ref_conv(x, w), rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    def test_stride2(self, opt_level):
        w, fkw, rng = _fkw(seed=1)
        x = rng.standard_normal((5, 9, 9)).astype(np.float32)
        fn = generate_kernel(fkw, 2, 1, opt_level)
        np.testing.assert_allclose(fn(x), _ref_conv(x, w, 2, 1), rtol=1e-4, atol=1e-4)

    def test_variants_agree(self):
        w, fkw, rng = _fkw(seed=2)
        x = rng.standard_normal((5, 7, 7)).astype(np.float32)
        outs = [generate_kernel(fkw, 1, 1, lvl)(x) for lvl in OPT_LEVELS]
        for a, b in zip(outs, outs[1:]):
            np.testing.assert_allclose(a, b, rtol=1e-5, atol=1e-5)

    def test_bad_input_shape_raises(self):
        w, fkw, rng = _fkw()
        fn = generate_kernel(fkw)
        with pytest.raises(ValueError):
            fn(np.zeros((3, 9, 9), dtype=np.float32))

    def test_bad_opt_level_raises(self):
        w, fkw, _ = _fkw()
        with pytest.raises(ValueError):
            generate_kernel(fkw, opt_level="super")

    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    def test_fully_pruned_filter_outputs_zero(self, opt_level):
        rng = np.random.default_rng(3)
        ps = PatternSet(enumerate_candidate_patterns()[:4])
        w = rng.standard_normal((4, 3, 3, 3)).astype(np.float32)
        w, a = project_kernel_pattern(w, ps)
        a[2, :] = 0
        w[2] = 0.0
        fkw = FKWLayer.from_pruned(w, a, ps)
        out = generate_kernel(fkw, opt_level=opt_level)(rng.standard_normal((3, 6, 6)).astype(np.float32))
        assert np.all(out[2] == 0)


class TestBatchedKernels:
    """The batched contract: (N, C, H, W) in, (N, F, Ho, Wo) out."""

    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    def test_batch_equals_per_sample(self, opt_level):
        w, fkw, rng = _fkw(seed=8)
        x = rng.standard_normal((3, 5, 9, 9)).astype(np.float32)
        fn = generate_kernel(fkw, 1, 1, opt_level)
        batched = fn(x)
        per_sample = np.stack([fn(sample) for sample in x])
        assert batched.shape == per_sample.shape
        np.testing.assert_allclose(batched, per_sample, rtol=1e-5, atol=1e-6)

    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    def test_padding_zero_no_copy_path(self, opt_level):
        w, fkw, rng = _fkw(seed=9)
        x = rng.standard_normal((2, 5, 9, 9)).astype(np.float32)
        got = generate_kernel(fkw, 1, 0, opt_level)(x)
        expected = np.stack([_ref_conv(s, w, 1, 0) for s in x])
        np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-4)

    @pytest.mark.parametrize("opt_level", OPT_LEVELS)
    def test_fused_bias_activation(self, opt_level):
        w, fkw, rng = _fkw(seed=10)
        bias = rng.standard_normal(w.shape[0]).astype(np.float32)
        x = rng.standard_normal((2, 5, 9, 9)).astype(np.float32)
        fn = generate_kernel(fkw, 1, 1, opt_level, bias=bias, activation="relu")
        plain = generate_kernel(fkw, 1, 1, opt_level)(x)
        expected = np.maximum(plain + bias.reshape(1, -1, 1, 1), 0.0)
        np.testing.assert_allclose(fn(x), expected, rtol=1e-5, atol=1e-6)

    def test_bad_activation_raises(self):
        _, fkw, _ = _fkw()
        with pytest.raises(ValueError):
            generate_kernel(fkw, activation="gelu")

    def test_bad_batched_shape_raises(self):
        _, fkw, _ = _fkw()
        fn = generate_kernel(fkw)
        with pytest.raises(ValueError):
            fn(np.zeros((2, 3, 9, 9), dtype=np.float32))  # wrong channel count


class TestGeneratedSource:
    def test_no_opt_contains_switch(self):
        _, fkw, _ = _fkw()
        src = generate_source(fkw, "no-opt")
        assert "switch (style[oc][ic])" in src
        assert "case 0" in src

    def test_reorder_is_branchless(self):
        _, fkw, _ = _fkw()
        src = generate_source(fkw, "reorder")
        assert "switch" not in src
        assert "stride[" in src

    def test_lre_reuses_row_registers(self):
        _, fkw, _ = _fkw()
        src = generate_source(fkw, "lre")
        assert "vload" in src and "vfma" in src
        assert "unroll_oc" in src

    def test_header_mentions_format(self):
        _, fkw, _ = _fkw()
        assert "format=FKW" in generate_source(fkw, "lre")

    def test_gemm_reuses_slices_across_filters(self):
        _, fkw, _ = _fkw()
        src = generate_source(fkw, "gemm")
        assert "sgemm" in src and "pattern-union" in src


class TestLRECounts:
    def test_ordering_invariant(self):
        _, fkw, _ = _fkw(seed=4)
        loads = count_register_loads(fkw, out_hw=8)
        assert loads.no_lre >= loads.kernel_lre >= loads.filter_lre > 0

    def test_no_lre_is_two_per_entry(self):
        _, fkw, _ = _fkw(seed=5)
        loads = count_register_loads(fkw, out_hw=8, simd_width=4)
        out_vectors = 8 * 8 // 4
        assert loads.no_lre == 2 * fkw.nnz * out_vectors

    def test_kernel_lre_counts_distinct_rows(self):
        """Hand-checked: single kernel with a 2-row pattern -> 2 loads/vec."""
        ps = PatternSet([enumerate_candidate_patterns()[0]])  # positions (4,0,1,2): rows {0,1}
        w = np.zeros((1, 1, 3, 3), dtype=np.float32)
        w[0, 0, 1, 1] = 1.0
        a = np.ones((1, 1), dtype=np.int32)
        fkw = FKWLayer.from_pruned(w, a, ps)
        loads = count_register_loads(fkw, out_hw=4, simd_width=4)
        assert loads.kernel_lre == 2 * (4 * 4 // 4)

    def test_filter_lre_shares_across_unroll_group(self):
        """Identical filters in one unroll group pay loads once."""
        ps = PatternSet([enumerate_candidate_patterns()[0]])
        w = np.zeros((4, 1, 3, 3), dtype=np.float32)
        w[:, 0, 1, 1] = 1.0
        a = np.ones((4, 1), dtype=np.int32)
        fkw = FKWLayer.from_pruned(w, a, ps)
        loads = count_register_loads(fkw, out_hw=4, simd_width=4, unroll_oc=4)
        assert loads.filter_lre == loads.kernel_lre // 4

    def test_scaling_with_output_size(self):
        _, fkw, _ = _fkw(seed=6)
        small = count_register_loads(fkw, out_hw=8)
        large = count_register_loads(fkw, out_hw=16)
        assert large.no_lre == 4 * small.no_lre

    def test_loads_without_patterns_exceeds_fkw(self):
        _, fkw, _ = _fkw(seed=7)
        pattern_oblivious = loads_without_patterns(fkw.nnz, 8)
        loads = count_register_loads(fkw, out_hw=8)
        assert pattern_oblivious > loads.no_lre


@settings(max_examples=10, deadline=None)
@given(st.integers(0, 2**32 - 1))
def test_codegen_property_random_layers(seed):
    """Property: compiled kernels equal the im2col reference conv."""
    rng = np.random.default_rng(seed)
    f = int(rng.integers(2, 6))
    c = int(rng.integers(2, 5))
    ps = PatternSet(enumerate_candidate_patterns()[: int(rng.integers(2, 9))])
    w = rng.standard_normal((f, c, 3, 3)).astype(np.float32)
    w, a = project_kernel_pattern(w, ps)
    keep = max(1, int(f * c * 0.6))
    w, m = project_connectivity(w, keep)
    fkw = FKWLayer.from_pruned(w, a * m, ps)
    x = rng.standard_normal((c, 6, 6)).astype(np.float32)
    got = generate_kernel(fkw, 1, 1, "lre")(x)
    np.testing.assert_allclose(got, _ref_conv(x, w), rtol=1e-3, atol=1e-3)
