"""Cross-stack integration: train → prune → compile → execute → measure.

These tests exercise the exact pipeline the paper describes end to end,
at laptop scale, asserting the load-bearing invariants of each hand-off.
"""

import numpy as np
import pytest

from repro.autograd import Tensor, no_grad
from repro.core import PatDNNPruner, PruningConfig
from repro.core.metrics import evaluate_accuracy
from repro.data import DataLoader, make_cifar10_like
from repro.frameworks import get_engine
from repro.hardware import SNAPDRAGON_855
from repro.models import build_small_cnn
from repro.runtime import InferenceSession
from repro.utils.rng import make_rng


@pytest.fixture(scope="module")
def pipeline_artifacts():
    """One shared train+prune run for the whole module (keeps CI fast)."""
    ds = make_cifar10_like(samples_per_class=24, size=8, seed=21)
    train, test = ds.split(0.8)
    loader = DataLoader(train, batch_size=32, shuffle=True, rng=make_rng(3))
    model = build_small_cnn(channels=(12, 24), in_size=8, seed=9)

    # short pre-training
    from repro import nn
    from repro.optim import Adam

    loss_fn = nn.CrossEntropyLoss()
    opt = Adam(model.parameters(), lr=3e-3)
    for _ in range(6):
        for xb, yb in loader:
            opt.zero_grad()
            loss = loss_fn(model(Tensor(xb)), yb)
            loss.backward()
            opt.step()
    base_acc = evaluate_accuracy(model, test.images, test.labels)

    cfg = PruningConfig(num_patterns=8, connectivity_rate=2.0, retrain_epochs=2)
    cfg.admm.iterations = 2
    cfg.admm.epochs_per_iteration = 2
    result = PatDNNPruner(cfg).fit(model, loader)
    pruned_acc = evaluate_accuracy(model, test.images, test.labels)
    return {
        "model": model,
        "result": result,
        "test": test,
        "base_acc": base_acc,
        "pruned_acc": pruned_acc,
    }


class TestTrainPruneAccuracy:
    def test_base_model_learned_something(self, pipeline_artifacts):
        assert pipeline_artifacts["base_acc"] > 0.2  # chance is 0.1

    def test_pruned_accuracy_not_collapsed(self, pipeline_artifacts):
        """The paper's central accuracy claim, at our scale: joint pattern
        + connectivity pruning with retraining keeps accuracy near the
        dense baseline rather than collapsing toward chance."""
        assert pipeline_artifacts["pruned_acc"] > pipeline_artifacts["base_acc"] - 0.15

    def test_compression_rate_achieved(self, pipeline_artifacts):
        assert pipeline_artifacts["result"].conv_compression_rate > 4.0

    def test_every_kernel_obeys_pattern_constraint(self, pipeline_artifacts):
        from repro import nn

        ps = pipeline_artifacts["result"].pattern_set
        for _, module in pipeline_artifacts["model"].named_modules():
            if isinstance(module, nn.Conv2d):
                w = module.weight.data
                nz = (w != 0).reshape(w.shape[0], w.shape[1], -1).sum(axis=2)
                assert nz.max() <= ps.entries


class TestCompiledInference:
    def test_compiled_session_matches_model(self, pipeline_artifacts):
        model = pipeline_artifacts["model"]
        result = pipeline_artifacts["result"]
        test = pipeline_artifacts["test"]
        x = test.images[:8]
        model.eval()
        with no_grad():
            expected = model(Tensor(x)).data
        session = InferenceSession(
            model, (3, 8, 8), pattern_set=result.pattern_set, assignments=result.assignments
        )
        got = session.run(x)
        np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-3)

    def test_compiled_session_accuracy_identical(self, pipeline_artifacts):
        """Compilation must not change predictions at all."""
        model = pipeline_artifacts["model"]
        result = pipeline_artifacts["result"]
        test = pipeline_artifacts["test"]
        session = InferenceSession(
            model, (3, 8, 8), pattern_set=result.pattern_set, assignments=result.assignments
        )
        compiled_pred = session.run(test.images).argmax(axis=1)
        model.eval()
        with no_grad():
            ref_pred = model(Tensor(test.images)).data.argmax(axis=1)
        np.testing.assert_array_equal(compiled_pred, ref_pred)


class TestLatencyStory:
    def test_fig12_ordering_holds_on_tiny_model(self):
        """TFLite slowest, PatDNN-pattern fastest, on a small spec."""
        from repro.models.spec import ConvSpec, ModelSpec

        spec = ModelSpec(
            name="tiny",
            dataset="synthetic",
            convs=[
                ConvSpec("c1", 3, 32, 3, padding=1, in_hw=32),
                ConvSpec("c2", 32, 64, 3, padding=1, in_hw=16),
            ],
            total_layers=2,
        )
        lat = {
            name: get_engine(name, SNAPDRAGON_855, "cpu").prepare(spec).latency_ms
            for name in ("tflite", "tvm", "mnn")
        }
        pat = get_engine("patdnn", SNAPDRAGON_855, "cpu").prepare(spec).latency_ms
        assert pat < min(lat.values())
        assert lat["tflite"] > lat["tvm"]
        assert lat["tflite"] > lat["mnn"]
