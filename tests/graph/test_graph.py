"""Graph IR, builder, and shape inference."""

import numpy as np
import pytest

from repro.graph.builder import build_graph, graph_from_spec
from repro.graph.ir import Graph, Node, OpKind, infer_shape, run_shape_inference
from repro.models import build_mobilenet_v2, build_resnet, build_small_cnn, get_spec


class TestGraphStructure:
    def _diamond(self):
        g = Graph("d")
        g.add(Node("in", OpKind.INPUT, attrs={"shape": (2, 4, 4)}))
        g.add(Node("a", OpKind.RELU, inputs=["in"]))
        g.add(Node("b", OpKind.RELU, inputs=["in"]))
        g.add(Node("add", OpKind.ADD, inputs=["a", "b"]))
        g.outputs = ["add"]
        run_shape_inference(g)
        return g

    def test_toposort_parents_first(self):
        g = self._diamond()
        order = [n.name for n in g.toposort()]
        assert order.index("in") < order.index("a")
        assert order.index("a") < order.index("add")
        assert order.index("b") < order.index("add")

    def test_duplicate_name_rejected(self):
        g = Graph()
        g.add(Node("x", OpKind.INPUT, attrs={"shape": (1,)}))
        with pytest.raises(ValueError):
            g.add(Node("x", OpKind.RELU, inputs=["x"]))

    def test_unknown_input_rejected(self):
        g = Graph()
        with pytest.raises(ValueError):
            g.add(Node("y", OpKind.RELU, inputs=["nope"]))

    def test_remove_requires_no_consumers(self):
        g = self._diamond()
        with pytest.raises(ValueError):
            g.remove("in")

    def test_rewire_then_remove(self):
        g = self._diamond()
        g.rewire("a", "in")
        g.remove("a")
        assert "a" not in g.nodes
        assert g.nodes["add"].inputs == ["in", "b"]

    def test_consumers(self):
        g = self._diamond()
        assert {c.name for c in g.consumers("in")} == {"a", "b"}

    def test_validate_catches_missing_shape(self):
        g = Graph()
        g.add(Node("in", OpKind.INPUT, attrs={"shape": (1,)}))
        g.nodes["in"].out_shape = ()
        with pytest.raises(ValueError):
            g.validate()


class TestShapeInference:
    def test_conv_shape(self):
        node = Node("c", OpKind.CONV2D, attrs={"out_channels": 8, "kernel_size": 3, "stride": 2, "padding": 1})
        assert infer_shape(node, [(3, 8, 8)]) == (8, 4, 4)

    def test_pool_shape(self):
        node = Node("p", OpKind.MAXPOOL, attrs={"kernel_size": 2})
        assert infer_shape(node, [(4, 8, 8)]) == (4, 4, 4)

    def test_flatten_linear(self):
        f = Node("f", OpKind.FLATTEN)
        assert infer_shape(f, [(4, 2, 2)]) == (16,)
        l = Node("l", OpKind.LINEAR, attrs={"out_features": 10})
        assert infer_shape(l, [(16,)]) == (10,)

    def test_add_mismatch_raises(self):
        node = Node("a", OpKind.ADD)
        with pytest.raises(ValueError):
            infer_shape(node, [(3, 4, 4), (3, 2, 2)])


class TestBuilder:
    def test_small_cnn_graph(self):
        g = build_graph(build_small_cnn(channels=(8, 16), in_size=16), (3, 16, 16))
        hist = g.op_histogram()
        assert hist["conv2d"] == 2
        assert hist["batchnorm"] == 2
        assert hist["linear"] == 1
        g.validate()

    def test_resnet_has_adds(self):
        g = build_graph(build_resnet(blocks_per_stage=(1, 1)), (3, 16, 16))
        assert g.op_histogram()["add"] >= 2

    def test_mobilenet_relu6(self):
        g = build_graph(build_mobilenet_v2(), (3, 16, 16))
        assert g.op_histogram()["relu6"] > 0

    def test_conv_weights_exported(self):
        model = build_small_cnn(channels=(8,), in_size=8)
        g = build_graph(model, (3, 8, 8))
        conv = g.conv_nodes()[0]
        np.testing.assert_array_equal(conv.params["weight"], model[0].weight.data)

    def test_unknown_module_raises(self):
        from repro.nn.module import Module

        class Strange(Module):
            def forward(self, x):
                return x

        with pytest.raises(TypeError):
            build_graph(Strange(), (3, 8, 8))

    def test_spec_graph_vgg(self):
        g = graph_from_spec(get_spec("vgg16"))
        convs = g.conv_nodes()
        assert len(convs) == 13
        assert g.op_histogram()["maxpool"] == 4  # pools between blocks
        g.validate()

    def test_spec_graph_conv_shapes(self):
        g = graph_from_spec(get_spec("vgg16"))
        first = g.conv_nodes()[0]
        assert first.out_shape == (64, 224, 224)
