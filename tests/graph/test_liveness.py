"""compute_liveness: the shared liveness core of planner and executors."""

import numpy as np

from repro.graph.ir import Graph, Node, OpKind, run_shape_inference
from repro.graph.passes import compute_liveness
from repro.runtime import ReferenceExecutor


def _chain_graph():
    g = Graph("chain")
    g.add(Node("x", OpKind.INPUT, attrs={"shape": (2, 4, 4)}))
    g.add(Node("r1", OpKind.RELU, inputs=["x"]))
    g.add(Node("r2", OpKind.RELU, inputs=["r1"]))
    g.add(Node("add", OpKind.ADD, inputs=["r1", "r2"]))
    g.outputs = ["add"]
    run_shape_inference(g)
    return g


class TestComputeLiveness:
    def test_last_use_is_last_consumer(self):
        g = _chain_graph()
        order = g.toposort()
        last_use = compute_liveness(g, order)
        idx = {n.name: i for i, n in enumerate(order)}
        assert last_use["x"] == idx["r1"]
        assert last_use["r1"] == idx["add"]  # consumed by r2 AND add
        assert last_use["r2"] == idx["add"]

    def test_outputs_pinned_past_end(self):
        g = _chain_graph()
        order = g.toposort()
        assert compute_liveness(g, order)["add"] == len(order)

    def test_order_defaults_to_toposort(self):
        g = _chain_graph()
        assert compute_liveness(g) == compute_liveness(g, g.toposort())

    def test_reference_executor_retires_dead_values(self):
        """The executor's retirement plan mirrors liveness exactly."""
        g = _chain_graph()
        ex = ReferenceExecutor(g)
        dying = {name for names in ex._dies_at.values() for name in names}
        assert dying == {"x", "r1", "r2"}  # everything but the output
        x = np.random.default_rng(0).standard_normal((2, 2, 4, 4)).astype(np.float32)
        expected = np.maximum(x, 0) + np.maximum(np.maximum(x, 0), 0)
        np.testing.assert_allclose(ex.run(x), expected, rtol=1e-6, atol=1e-6)
