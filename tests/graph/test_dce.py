"""Dead-code elimination pass."""

import numpy as np

from repro.graph.ir import Graph, Node, OpKind, run_shape_inference
from repro.graph.passes import eliminate_dead_nodes


def _graph_with_dead_branch():
    g = Graph("dce")
    g.add(Node("in", OpKind.INPUT, attrs={"shape": (2, 4, 4)}))
    g.add(Node("live", OpKind.RELU, inputs=["in"]))
    g.add(Node("dead1", OpKind.RELU, inputs=["in"]))
    g.add(Node("dead2", OpKind.RELU6, inputs=["dead1"]))
    g.outputs = ["live"]
    run_shape_inference(g)
    return g


class TestDCE:
    def test_removes_dead_chain(self):
        g = _graph_with_dead_branch()
        removed = eliminate_dead_nodes(g)
        assert removed == 2
        assert set(g.nodes) == {"in", "live"}

    def test_noop_on_fully_live_graph(self):
        g = _graph_with_dead_branch()
        eliminate_dead_nodes(g)
        assert eliminate_dead_nodes(g) == 0

    def test_no_outputs_is_noop(self):
        g = _graph_with_dead_branch()
        g.outputs = []
        assert eliminate_dead_nodes(g) == 0

    def test_semantics_preserved(self):
        from repro.runtime.executor import ReferenceExecutor

        g = _graph_with_dead_branch()
        x = np.random.default_rng(0).standard_normal((1, 2, 4, 4)).astype(np.float32)
        before = ReferenceExecutor(g).run(x)
        eliminate_dead_nodes(g)
        after = ReferenceExecutor(g).run(x)
        np.testing.assert_array_equal(before, after)

    def test_in_default_pipeline(self):
        from repro.graph.pass_manager import default_pipeline

        g = _graph_with_dead_branch()
        report = default_pipeline().run(g)
        assert "dead_code_elimination" in report.applied
        assert report.applied["dead_code_elimination"] == 2
