"""Graph optimization passes: semantics preserved, rewrites applied."""

import numpy as np
import pytest

from repro.graph.builder import build_graph
from repro.graph.ir import Graph, Node, OpKind, run_shape_inference
from repro.graph.pass_manager import default_pipeline
from repro.graph.passes import (
    assign_layout,
    constant_fold,
    fold_batchnorm,
    fuse_activation,
    plan_memory,
    replace_ops,
)
from repro.models import build_small_cnn
from repro.runtime.executor import ReferenceExecutor
from repro.utils.rng import make_rng


def _trained_like_model():
    """Small CNN with non-trivial BN stats so folding is a real test."""
    model = build_small_cnn(channels=(8,), in_size=8, seed=4)
    rng = make_rng(9)
    for _, m in model.named_modules():
        if hasattr(m, "running_mean") and isinstance(getattr(m, "running_mean", None), np.ndarray):
            m._update_buffer("running_mean", rng.standard_normal(m.num_features).astype(np.float32) * 0.5)
            m._update_buffer("running_var", (rng.random(m.num_features).astype(np.float32) + 0.5))
    model.eval()
    return model


class TestFoldBatchnorm:
    def test_fold_preserves_output(self):
        model = _trained_like_model()
        x = make_rng(1).standard_normal((2, 3, 8, 8)).astype(np.float32)
        g1 = build_graph(model, (3, 8, 8))
        before = ReferenceExecutor(g1).run(x)
        g2 = build_graph(model, (3, 8, 8))
        folds = fold_batchnorm(g2)
        after = ReferenceExecutor(g2).run(x)
        assert folds == 1
        np.testing.assert_allclose(before, after, rtol=1e-4, atol=1e-4)

    def test_bn_nodes_removed(self):
        g = build_graph(_trained_like_model(), (3, 8, 8))
        fold_batchnorm(g)
        assert g.op_histogram().get("batchnorm", 0) == 0

    def test_conv_marked_folded(self):
        g = build_graph(_trained_like_model(), (3, 8, 8))
        fold_batchnorm(g)
        assert g.conv_nodes()[0].attrs.get("folded_bn")


class TestFuseActivation:
    def test_relu_fused_into_conv(self):
        g = build_graph(_trained_like_model(), (3, 8, 8))
        fold_batchnorm(g)
        fused = fuse_activation(g)
        assert fused >= 1
        assert g.conv_nodes()[0].attrs.get("activation") == "relu"
        assert g.op_histogram().get("relu", 0) == 0

    def test_fusion_preserves_output(self):
        model = _trained_like_model()
        x = make_rng(2).standard_normal((1, 3, 8, 8)).astype(np.float32)
        g1 = build_graph(model, (3, 8, 8))
        before = ReferenceExecutor(g1).run(x)
        g2 = build_graph(model, (3, 8, 8))
        fold_batchnorm(g2)
        fuse_activation(g2)
        after = ReferenceExecutor(g2).run(x)
        np.testing.assert_allclose(before, after, rtol=1e-4, atol=1e-4)


class TestConstantFold:
    def test_folds_const_chain(self):
        g = Graph()
        g.add(Node("c1", OpKind.CONSTANT, attrs={"shape": (2,)}, params={"value": np.array([1.0, -2.0], dtype=np.float32)}))
        g.add(Node("r", OpKind.RELU, inputs=["c1"]))
        g.add(Node("c2", OpKind.CONSTANT, attrs={"shape": (2,)}, params={"value": np.array([1.0, 1.0], dtype=np.float32)}))
        g.add(Node("a", OpKind.ADD, inputs=["r", "c2"]))
        g.outputs = ["a"]
        run_shape_inference(g)
        folds = constant_fold(g)
        assert folds == 2
        final = g.nodes[g.outputs[0]]
        np.testing.assert_array_equal(final.params["value"], [2.0, 1.0])


class TestReplaceOps:
    def test_full_avgpool_becomes_global(self):
        g = Graph()
        g.add(Node("in", OpKind.INPUT, attrs={"shape": (4, 7, 7)}))
        g.add(Node("p", OpKind.AVGPOOL, inputs=["in"], attrs={"kernel_size": 7, "stride": 7}))
        g.outputs = ["p"]
        run_shape_inference(g)
        assert replace_ops(g) == 1
        assert g.nodes["p"].op == OpKind.GLOBAL_AVGPOOL

    def test_unit_pool_dropped(self):
        g = Graph()
        g.add(Node("in", OpKind.INPUT, attrs={"shape": (4, 7, 7)}))
        g.add(Node("p", OpKind.MAXPOOL, inputs=["in"], attrs={"kernel_size": 1, "stride": 1}))
        g.outputs = ["p"]
        run_shape_inference(g)
        assert replace_ops(g) == 1
        assert "p" not in g.nodes


class TestLayout:
    def test_cpu_layout_annotation(self):
        g = build_graph(build_small_cnn(channels=(8,), in_size=8), (3, 8, 8))
        count = assign_layout(g, "cpu", vector_width=4)
        assert count > 0
        assert g.conv_nodes()[0].attrs["layout"] == "NCHWc"
        assert g.conv_nodes()[0].attrs["channel_block"] == 4

    def test_gpu_layout(self):
        g = build_graph(build_small_cnn(channels=(8,), in_size=8), (3, 8, 8))
        assign_layout(g, "gpu")
        assert g.conv_nodes()[0].attrs["layout"] == "NHWC"

    def test_bad_unit(self):
        g = build_graph(build_small_cnn(channels=(8,), in_size=8), (3, 8, 8))
        with pytest.raises(ValueError):
            assign_layout(g, "tpu")


class TestMemoryPlan:
    def test_plan_never_overlaps_live_buffers(self):
        g = build_graph(build_small_cnn(channels=(8, 16), in_size=16), (3, 16, 16))
        plan = plan_memory(g)
        order = g.toposort()
        index = {n.name: i for i, n in enumerate(order)}
        # recompute liveness and assert no two live buffers overlap
        last_use = {}
        for node in order:
            for inp in node.inputs:
                last_use[inp] = max(last_use.get(inp, 0), index[node.name])
        from repro.utils.misc import prod

        allocs = []
        for node in order:
            if node.name not in plan.offsets:
                continue
            size = prod(node.out_shape) * 4
            allocs.append((plan.offsets[node.name], size, index[node.name], last_use.get(node.name, index[node.name] + 1)))
        for i, (o1, s1, b1, d1) in enumerate(allocs):
            for o2, s2, b2, d2 in allocs[i + 1 :]:
                overlap_time = b2 <= d1 and b1 <= d2
                overlap_space = o1 < o2 + s2 and o2 < o1 + s1
                assert not (overlap_time and overlap_space)

    def test_reuse_beats_naive(self):
        g = build_graph(build_small_cnn(channels=(8, 16), in_size=16), (3, 16, 16))
        plan = plan_memory(g)
        assert plan.peak_bytes < plan.naive_bytes
        assert plan.reuse_ratio > 1.0


class TestPipeline:
    def test_default_pipeline_runs_all(self):
        g = build_graph(_trained_like_model(), (3, 8, 8))
        report = default_pipeline().run(g)
        assert report.applied["fold_batchnorm"] == 1
        assert report.applied["fuse_activation"] >= 1
        assert report.total() >= 2

    def test_pipeline_preserves_semantics_on_resnet(self):
        from repro.models import build_resnet

        model = build_resnet(blocks_per_stage=(1,))
        model.eval()
        x = make_rng(3).standard_normal((1, 3, 8, 8)).astype(np.float32)
        g1 = build_graph(model, (3, 8, 8))
        before = ReferenceExecutor(g1).run(x)
        g2 = build_graph(model, (3, 8, 8))
        default_pipeline().run(g2)
        after = ReferenceExecutor(g2).run(x)
        np.testing.assert_allclose(before, after, rtol=1e-3, atol=1e-3)
