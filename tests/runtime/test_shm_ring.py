"""Shared-memory slot ring: payload fidelity and slot lifecycle.

The ring is the tensor transport under multi-process serving, so the
load-bearing claims are byte-exact round trips (any corruption here is
silent wrong answers downstream), strict slot accounting (double
release / exhaustion must be loud), and capacity checks on both ends.
"""

import threading

import numpy as np
import pytest

from repro.runtime.shm_ring import ShmSlotRing


@pytest.fixture()
def ring():
    with ShmSlotRing.create(slots=4, slot_bytes=256) as r:
        yield r


class TestPayloadTransfer:
    @pytest.mark.parametrize("dtype", [np.float32, np.float64, np.int32, np.uint8])
    def test_write_read_roundtrip_bitwise(self, ring, dtype):
        rng = np.random.default_rng(0)
        arr = (rng.standard_normal((2, 4, 4)) * 100).astype(dtype)
        slot = ring.acquire()
        shape, dt, crc = ring.write(slot, arr)
        assert shape == (2, 4, 4) and np.dtype(dt) == np.dtype(dtype)
        out = ring.read(slot, shape, dt, crc)  # checksum-verified round trip
        assert out.dtype == arr.dtype
        np.testing.assert_array_equal(out, arr)

    def test_read_returns_owning_copy(self, ring):
        arr = np.arange(8, dtype=np.float32)
        slot = ring.acquire()
        ring.write(slot, arr)
        out = ring.read(slot, (8,), "<f4")
        ring.write(slot, np.zeros(8, np.float32))  # slot reused
        np.testing.assert_array_equal(out, arr)  # copy unaffected

    def test_non_contiguous_input_handled(self, ring):
        arr = np.arange(32, dtype=np.float32).reshape(4, 8)[:, ::2]
        slot = ring.acquire()
        shape, dt, crc = ring.write(slot, arr)
        np.testing.assert_array_equal(ring.read(slot, shape, dt, crc), arr)

    def test_slots_are_independent(self, ring):
        a, b = ring.acquire(), ring.acquire()
        ring.write(a, np.full(4, 1.0, np.float32))
        ring.write(b, np.full(4, 2.0, np.float32))
        assert ring.read(a, (4,), "<f4")[0] == 1.0
        assert ring.read(b, (4,), "<f4")[0] == 2.0

    def test_oversized_write_rejected(self, ring):
        slot = ring.acquire()
        with pytest.raises(ValueError, match="slot capacity"):
            ring.write(slot, np.zeros(1024, np.float64))

    def test_oversized_read_header_rejected(self, ring):
        with pytest.raises(ValueError, match="slots hold only"):
            ring.read(0, (1024,), "<f8")

    def test_corrupted_payload_detected(self, ring):
        """A slot clobbered after write must fail the checksum loudly —
        silent wrong bytes are the one unforgivable transport failure."""
        from repro.runtime.resilience import CorruptedPayloadError

        arr = np.arange(16, dtype=np.float32)
        slot = ring.acquire()
        shape, dt, crc = ring.write(slot, arr)
        ring.corrupt(slot)
        with pytest.raises(CorruptedPayloadError, match="checksum"):
            ring.read(slot, shape, dt, crc)
        # without a crc the read is unverified (legacy behaviour)
        assert ring.read(slot, shape, dt).shape == (16,)

    def test_read_without_crc_skips_verification(self, ring):
        arr = np.ones(4, np.float32)
        slot = ring.acquire()
        shape, dt, _ = ring.write(slot, arr)
        np.testing.assert_array_equal(ring.read(slot, shape, dt), arr)


class TestAttachedSide:
    def test_attach_sees_owner_writes(self, ring):
        arr = np.arange(6, dtype=np.float32)
        slot = ring.acquire()
        shape, dt, crc = ring.write(slot, arr)
        attached = ShmSlotRing.attach(ring.name, ring.slots, ring.slot_bytes)
        try:
            np.testing.assert_array_equal(attached.read(slot, shape, dt, crc), arr)
            # and the reverse direction (worker writes the response back)
            _, _, crc2 = attached.write(slot, arr * 2)
            np.testing.assert_array_equal(ring.read(slot, shape, dt, crc2), arr * 2)
        finally:
            attached.close()

    def test_attach_cannot_manage_slots(self, ring):
        attached = ShmSlotRing.attach(ring.name, ring.slots, ring.slot_bytes)
        try:
            with pytest.raises(RuntimeError, match="creating side"):
                attached.acquire()
            with pytest.raises(RuntimeError, match="creating side"):
                attached.release(0)
        finally:
            attached.close()

    def test_attach_size_mismatch_rejected(self, ring):
        with pytest.raises(ValueError, match="were expected"):
            ShmSlotRing.attach(ring.name, ring.slots * 100, ring.slot_bytes)


class TestSlotLifecycle:
    def test_exhaustion_then_release_unblocks(self, ring):
        slots = [ring.acquire(timeout=1) for _ in range(ring.slots)]
        assert ring.free_slots == 0
        assert ring.acquire(timeout=0.05) is None  # exhausted: timeout, not hang
        got = []
        waiter = threading.Thread(target=lambda: got.append(ring.acquire(timeout=5)))
        waiter.start()
        ring.release(slots[0])
        waiter.join(timeout=5)
        assert got == [slots[0]]

    def test_fault_hook_refuses_acquire(self, ring):
        """The injection hook makes acquire behave exactly like a full
        ring (None), and a no-op hook changes nothing."""
        fire = [True]
        ring.fault_hook = lambda: fire[0]
        assert ring.acquire(timeout=0.01) is None
        fire[0] = False
        slot = ring.acquire(timeout=1)
        assert slot is not None
        ring.release(slot)
        ring.fault_hook = None

    def test_double_release_rejected(self, ring):
        slot = ring.acquire()
        ring.release(slot)
        with pytest.raises(ValueError, match="double release"):
            ring.release(slot)

    def test_release_out_of_range_rejected(self, ring):
        with pytest.raises(ValueError, match="out of range"):
            ring.release(99)

    def test_slot_bytes_aligned(self):
        with ShmSlotRing.create(slots=2, slot_bytes=100) as r:
            assert r.slot_bytes % 64 == 0 and r.slot_bytes >= 100

    def test_acquire_after_close_raises(self):
        r = ShmSlotRing.create(slots=1, slot_bytes=64)
        r.close()
        with pytest.raises(RuntimeError, match="closed"):
            r.acquire(timeout=1)
        r.unlink()

    def test_close_wakes_blocked_acquirer(self):
        r = ShmSlotRing.create(slots=1, slot_bytes=64)
        r.acquire()
        failures = []

        def blocked():
            try:
                r.acquire(timeout=10)
            except RuntimeError as exc:
                failures.append(exc)

        t = threading.Thread(target=blocked)
        t.start()
        r.close()
        t.join(timeout=5)
        assert len(failures) == 1  # woke with the closed error, no 10s hang
        r.unlink()

    @pytest.mark.parametrize("kwargs", [{"slots": 0, "slot_bytes": 64}, {"slots": 1, "slot_bytes": 0}])
    def test_create_validation(self, kwargs):
        with pytest.raises(ValueError):
            ShmSlotRing.create(**kwargs)
