"""Direct per-op coverage of the runtime's reference kernels."""

import numpy as np
import pytest

from repro.graph.ir import Node, OpKind
from repro.runtime.ops import conv2d, eval_node


@pytest.fixture
def rng64():
    return np.random.default_rng(7)


def _x(rng, *shape):
    return rng.standard_normal(shape).astype(np.float32)


class TestConvKernel:
    def test_grouped_matches_per_group_dense(self, rng64):
        x = _x(rng64, 1, 4, 6, 6)
        w = _x(rng64, 4, 2, 3, 3)
        out = conv2d(x, w, None, 1, 1, groups=2)
        for g in range(2):
            ref = conv2d(x[:, 2 * g : 2 * g + 2], w[2 * g : 2 * g + 2], None, 1, 1)
            np.testing.assert_allclose(out[:, 2 * g : 2 * g + 2], ref, rtol=1e-5, atol=1e-5)

    def test_bias_applied(self, rng64):
        x = _x(rng64, 1, 2, 4, 4)
        w = np.zeros((3, 2, 1, 1), dtype=np.float32)
        out = conv2d(x, w, np.array([1.0, 2.0, 3.0], dtype=np.float32), 1, 0)
        np.testing.assert_allclose(out[0, 2], 3.0)


class TestEvalNode:
    def test_batchnorm_matches_formula(self, rng64):
        x = _x(rng64, 2, 3, 4, 4)
        node = Node(
            "bn",
            OpKind.BATCHNORM,
            inputs=["x"],
            attrs={"eps": 1e-5},
            params={
                "gamma": np.array([1.0, 2.0, 0.5], dtype=np.float32),
                "beta": np.array([0.0, 1.0, -1.0], dtype=np.float32),
                "mean": np.array([0.1, -0.2, 0.0], dtype=np.float32),
                "var": np.array([1.0, 4.0, 0.25], dtype=np.float32),
            },
        )
        out = eval_node(node, [x])
        c = 1
        expected = (x[:, c] - (-0.2)) / np.sqrt(4.0 + 1e-5) * 2.0 + 1.0
        np.testing.assert_allclose(out[:, c], expected, rtol=1e-4, atol=1e-4)

    def test_relu6(self, rng64):
        node = Node("a", OpKind.RELU6, inputs=["x"])
        out = eval_node(node, [np.array([-2.0, 3.0, 8.0], dtype=np.float32)])
        np.testing.assert_array_equal(out, [0.0, 3.0, 6.0])

    def test_maxpool_with_padding(self, rng64):
        x = np.full((1, 1, 2, 2), 5.0, dtype=np.float32)
        node = Node("p", OpKind.MAXPOOL, inputs=["x"], attrs={"kernel_size": 2, "stride": 2, "padding": 1})
        out = eval_node(node, [x])
        # padded corners pool one real value against -inf padding
        assert out.shape == (1, 1, 2, 2)
        np.testing.assert_array_equal(out[0, 0], [[5, 5], [5, 5]])

    def test_avgpool(self, rng64):
        x = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
        node = Node("p", OpKind.AVGPOOL, inputs=["x"], attrs={"kernel_size": 2, "stride": 2})
        np.testing.assert_allclose(eval_node(node, [x])[0, 0], [[1.5]])

    def test_global_avgpool_keeps_rank(self, rng64):
        x = _x(rng64, 2, 3, 5, 5)
        node = Node("g", OpKind.GLOBAL_AVGPOOL, inputs=["x"])
        out = eval_node(node, [x])
        assert out.shape == (2, 3, 1, 1)
        np.testing.assert_allclose(out[..., 0, 0], x.mean(axis=(2, 3)), rtol=1e-5)

    def test_linear_with_fused_activation(self, rng64):
        node = Node(
            "l",
            OpKind.LINEAR,
            inputs=["x"],
            attrs={"out_features": 2, "activation": "relu"},
            params={"weight": np.array([[1.0, 0.0], [0.0, -1.0]], dtype=np.float32)},
        )
        out = eval_node(node, [np.array([[2.0, 3.0]], dtype=np.float32)])
        np.testing.assert_array_equal(out, [[2.0, 0.0]])

    def test_add_with_fused_activation(self, rng64):
        node = Node("a", OpKind.ADD, inputs=["x", "y"], attrs={"activation": "relu"})
        out = eval_node(node, [np.array([-3.0], np.float32), np.array([1.0], np.float32)])
        np.testing.assert_array_equal(out, [0.0])

    def test_flatten(self, rng64):
        node = Node("f", OpKind.FLATTEN, inputs=["x"])
        assert eval_node(node, [_x(rng64, 2, 3, 4, 4)]).shape == (2, 48)

    def test_constant(self):
        node = Node("c", OpKind.CONSTANT, params={"value": np.ones(3, dtype=np.float32)})
        np.testing.assert_array_equal(eval_node(node, []), [1, 1, 1])

    def test_unknown_activation_raises(self):
        node = Node("a", OpKind.ADD, inputs=["x", "y"], attrs={"activation": "gelu"})
        with pytest.raises(ValueError):
            eval_node(node, [np.zeros(1, np.float32), np.zeros(1, np.float32)])

    def test_unsupported_op_raises(self):
        node = Node("i", OpKind.INPUT, attrs={"shape": (1,)})
        with pytest.raises(NotImplementedError):
            eval_node(node, [])
