"""Runtime executors: reference semantics and compiled equivalence."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.core.masking import apply_masks, extract_masks
from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.graph.builder import build_graph
from repro.graph.pass_manager import default_pipeline
from repro.models import build_mobilenet_v2, build_resnet, build_small_cnn
from repro.runtime import CompiledExecutor, InferenceSession, ReferenceExecutor
from repro.utils.rng import make_rng


def _model_outputs(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


@pytest.fixture
def x8():
    return make_rng(2).standard_normal((3, 3, 8, 8)).astype(np.float32)


class TestReferenceExecutor:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (build_small_cnn, {"channels": (8, 16), "in_size": 8}),
            (build_resnet, {"blocks_per_stage": (1, 1)}),
            (build_mobilenet_v2, {}),
        ],
    )
    def test_matches_model_forward(self, builder, kwargs, x8):
        model = builder(**kwargs)
        expected = _model_outputs(model, x8)
        graph = build_graph(model, (3, 8, 8))
        got = ReferenceExecutor(graph).run(x8)
        np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-4)

    def test_matches_after_graph_optimization(self, x8):
        model = build_small_cnn(channels=(8, 16), in_size=8)
        model.eval()
        expected = _model_outputs(model, x8)
        graph = build_graph(model, (3, 8, 8))
        default_pipeline().run(graph)
        got = ReferenceExecutor(graph).run(x8)
        np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-4)


class TestCompiledExecutor:
    def _pruned_setup(self, x8):
        model = build_small_cnn(channels=(8, 16), in_size=8, seed=7)
        ps = PatternSet(enumerate_candidate_patterns()[:8])
        masks = extract_masks(model, ps, connectivity_rate=2.0)
        apply_masks(model, masks)
        model.eval()
        # assignments for conv layers after pruning
        from repro.core.projections import project_kernel_pattern

        assignments = {}
        for name, module in model.named_modules():
            if isinstance(module, nn.Conv2d):
                _, a = project_kernel_pattern(module.weight.data, ps)
                energy = (module.weight.data.reshape(a.shape[0], a.shape[1], -1) ** 2).sum(axis=2)
                assignments[name] = (a * (energy > 0)).astype(np.int32)
        return model, ps, assignments

    def test_compiled_equals_reference(self, x8):
        model, ps, assignments = self._pruned_setup(x8)
        expected = _model_outputs(model, x8)
        graph = build_graph(model, (3, 8, 8))
        default_pipeline().run(graph)
        conv_nodes = [n.name for n in graph.conv_nodes()]
        graph_assignments = dict(zip(conv_nodes, assignments.values()))
        compiled = CompiledExecutor(graph, ps, graph_assignments)
        got = compiled.run(x8)
        np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-3)

    def test_rejects_non_conv_assignment(self, x8):
        model, ps, assignments = self._pruned_setup(x8)
        graph = build_graph(model, (3, 8, 8))
        with pytest.raises(KeyError):
            CompiledExecutor(graph, ps, {"nonexistent": next(iter(assignments.values()))})


class TestInferenceSession:
    def test_session_reference_mode(self, x8):
        model = build_small_cnn(channels=(8,), in_size=8)
        expected = _model_outputs(model, x8)
        session = InferenceSession(model, (3, 8, 8))
        np.testing.assert_allclose(session.run(x8), expected, rtol=1e-3, atol=1e-4)

    def test_session_single_sample_promoted(self):
        model = build_small_cnn(channels=(8,), in_size=8)
        session = InferenceSession(model, (3, 8, 8))
        out = session.run(np.zeros((3, 8, 8), dtype=np.float32))
        assert out.shape == (1, 10)

    def test_session_with_pruning_artifacts(self, x8):
        from repro.core import PatDNNPruner, PruningConfig
        from repro.data import DataLoader, make_cifar10_like

        ds = make_cifar10_like(samples_per_class=8, size=8)
        loader = DataLoader(ds, batch_size=16)
        model = build_small_cnn(channels=(8, 16), in_size=8)
        cfg = PruningConfig(num_patterns=6, connectivity_rate=2.0, retrain_epochs=0)
        cfg.admm.iterations = 1
        cfg.admm.epochs_per_iteration = 1
        result = PatDNNPruner(cfg).fit(model, loader)
        expected = _model_outputs(model, x8)
        session = InferenceSession(
            model, (3, 8, 8), pattern_set=result.pattern_set, assignments=result.assignments
        )
        np.testing.assert_allclose(session.run(x8), expected, rtol=1e-3, atol=1e-3)
        assert session.pass_report is not None


class TestSessionArtifactValidation:
    """The session must never silently fall back to dense execution."""

    def _artifacts(self):
        model = build_small_cnn(channels=(8, 16), in_size=8, seed=7)
        ps = PatternSet(enumerate_candidate_patterns()[:8])
        masks = extract_masks(model, ps, connectivity_rate=2.0)
        apply_masks(model, masks)
        from repro.core.projections import project_kernel_pattern

        assignments = {}
        for name, module in model.named_modules():
            if isinstance(module, nn.Conv2d):
                _, a = project_kernel_pattern(module.weight.data, ps)
                energy = (module.weight.data.reshape(a.shape[0], a.shape[1], -1) ** 2).sum(axis=2)
                assignments[name] = (a * (energy > 0)).astype(np.int32)
        return model, ps, assignments

    def test_pattern_set_with_empty_assignments_raises(self):
        """Regression: this combination used to silently build a dense
        ReferenceExecutor, masking broken pruning pipelines."""
        model, ps, _ = self._artifacts()
        with pytest.raises(ValueError, match="empty"):
            InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments={})

    def test_pattern_set_without_assignments_raises(self):
        model, ps, _ = self._artifacts()
        with pytest.raises(ValueError, match="missing"):
            InferenceSession(model, (3, 8, 8), pattern_set=ps)

    def test_assignments_without_pattern_set_raises(self):
        model, _, assignments = self._artifacts()
        with pytest.raises(ValueError, match="pattern_set"):
            InferenceSession(model, (3, 8, 8), assignments=assignments)

    def test_both_artifacts_build_compiled_executor(self):
        model, ps, assignments = self._artifacts()
        session = InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments=assignments)
        assert isinstance(session.executor, CompiledExecutor)

    def test_neither_artifact_builds_reference_executor(self):
        model, _, _ = self._artifacts()
        session = InferenceSession(model, (3, 8, 8))
        assert type(session.executor) is ReferenceExecutor


class TestAssignmentMapping:
    """_map_assignments must verify, not guess, when shapes are ambiguous."""

    def _artifacts(self, channels=(8, 16)):
        model = build_small_cnn(channels=channels, in_size=8, seed=7)
        ps = PatternSet(enumerate_candidate_patterns()[:8])
        masks = extract_masks(model, ps, connectivity_rate=2.0)
        apply_masks(model, masks)
        from repro.core.projections import project_kernel_pattern

        assignments = {}
        for name, module in model.named_modules():
            if isinstance(module, nn.Conv2d):
                _, a = project_kernel_pattern(module.weight.data, ps)
                energy = (module.weight.data.reshape(a.shape[0], a.shape[1], -1) ** 2).sum(axis=2)
                assignments[name] = (a * (energy > 0)).astype(np.int32)
        return model, ps, assignments

    def test_same_shaped_consecutive_convs_map_in_order(self, x8):
        """Two consecutive (8, 8) convs: positional mapping + sparsity
        verification together resolve what shape alone cannot."""
        model, ps, assignments = self._artifacts(channels=(8, 8, 8))
        expected = _model_outputs(model, x8)
        session = InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments=assignments)
        np.testing.assert_allclose(session.run(x8), expected, rtol=1e-3, atol=1e-3)

    def test_contradicting_assignment_rejected(self):
        """An assignment whose patterns don't cover any candidate's
        nonzeros cannot be mapped — must raise, not mis-map."""
        model, ps, assignments = self._artifacts()
        bad = dict(assignments)
        key = list(bad)[1]
        # rotate every kernel to a different pattern id than the weights obey
        bad[key] = np.where(bad[key] == 0, 0, bad[key] % len(ps) + 1).astype(np.int32)
        with pytest.raises(ValueError, match="contradict"):
            InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments=bad)

    def test_partially_pruned_model_skips_unpruned_same_shape_conv(self, x8):
        """Only the last of three convs is pruned; the two dense convs in
        front (one of them same-shaped) must be passed over, not block
        the mapping."""
        from repro.core.projections import project_kernel_pattern

        model = build_small_cnn(channels=(8, 8, 8), in_size=8, seed=7)
        ps = PatternSet(enumerate_candidate_patterns()[:8])
        convs = [(n, m) for n, m in model.named_modules() if isinstance(m, nn.Conv2d)]
        name, last = convs[-1]
        w, a = project_kernel_pattern(last.weight.data, ps)
        last.weight.data = w
        model.eval()
        expected = _model_outputs(model, x8)
        session = InferenceSession(
            model, (3, 8, 8), pattern_set=ps, assignments={name: a.astype(np.int32)}
        )
        assert isinstance(session.executor, CompiledExecutor)
        assert len(session.executor._compiled) == 1
        np.testing.assert_allclose(session.run(x8), expected, rtol=1e-3, atol=1e-3)

    def test_out_of_range_pattern_ids_rejected_cleanly(self):
        """Assignments from a larger pattern universe must raise the
        diagnostic ValueError, not a raw IndexError from masks_for."""
        model, ps, assignments = self._artifacts()
        bad = dict(assignments)
        key = list(bad)[0]
        bad[key] = np.full_like(bad[key], len(ps) + 5)
        with pytest.raises(ValueError, match="pattern ids span"):
            InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments=bad)

    def test_unmappable_shape_rejected(self):
        model, ps, assignments = self._artifacts()
        bad = dict(assignments)
        bad["ghost"] = np.ones((99, 99), np.int32)
        with pytest.raises(ValueError, match="could not map"):
            InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments=bad)

    def test_dense_weights_with_pruned_assignment_rejected(self):
        """Pruning artifacts against a model whose weights were never
        actually pruned (e.g. reloaded dense checkpoint) must raise."""
        model, ps, assignments = self._artifacts()
        dense = build_small_cnn(channels=(8, 16), in_size=8, seed=123)  # unpruned
        with pytest.raises(ValueError, match="contradict"):
            InferenceSession(dense, (3, 8, 8), pattern_set=ps, assignments=assignments)
