"""Runtime executors: reference semantics and compiled equivalence."""

import numpy as np
import pytest

from repro import nn
from repro.autograd import Tensor, no_grad
from repro.core.masking import apply_masks, extract_masks
from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.graph.builder import build_graph
from repro.graph.pass_manager import default_pipeline
from repro.models import build_mobilenet_v2, build_resnet, build_small_cnn
from repro.runtime import CompiledExecutor, InferenceSession, ReferenceExecutor
from repro.utils.rng import make_rng


def _model_outputs(model, x):
    model.eval()
    with no_grad():
        return model(Tensor(x)).data


@pytest.fixture
def x8():
    return make_rng(2).standard_normal((3, 3, 8, 8)).astype(np.float32)


class TestReferenceExecutor:
    @pytest.mark.parametrize(
        "builder,kwargs",
        [
            (build_small_cnn, {"channels": (8, 16), "in_size": 8}),
            (build_resnet, {"blocks_per_stage": (1, 1)}),
            (build_mobilenet_v2, {}),
        ],
    )
    def test_matches_model_forward(self, builder, kwargs, x8):
        model = builder(**kwargs)
        expected = _model_outputs(model, x8)
        graph = build_graph(model, (3, 8, 8))
        got = ReferenceExecutor(graph).run(x8)
        np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-4)

    def test_matches_after_graph_optimization(self, x8):
        model = build_small_cnn(channels=(8, 16), in_size=8)
        model.eval()
        expected = _model_outputs(model, x8)
        graph = build_graph(model, (3, 8, 8))
        default_pipeline().run(graph)
        got = ReferenceExecutor(graph).run(x8)
        np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-4)


class TestCompiledExecutor:
    def _pruned_setup(self, x8):
        model = build_small_cnn(channels=(8, 16), in_size=8, seed=7)
        ps = PatternSet(enumerate_candidate_patterns()[:8])
        masks = extract_masks(model, ps, connectivity_rate=2.0)
        apply_masks(model, masks)
        model.eval()
        # assignments for conv layers after pruning
        from repro.core.projections import project_kernel_pattern

        assignments = {}
        for name, module in model.named_modules():
            if isinstance(module, nn.Conv2d):
                _, a = project_kernel_pattern(module.weight.data, ps)
                energy = (module.weight.data.reshape(a.shape[0], a.shape[1], -1) ** 2).sum(axis=2)
                assignments[name] = (a * (energy > 0)).astype(np.int32)
        return model, ps, assignments

    def test_compiled_equals_reference(self, x8):
        model, ps, assignments = self._pruned_setup(x8)
        expected = _model_outputs(model, x8)
        graph = build_graph(model, (3, 8, 8))
        default_pipeline().run(graph)
        conv_nodes = [n.name for n in graph.conv_nodes()]
        graph_assignments = dict(zip(conv_nodes, assignments.values()))
        compiled = CompiledExecutor(graph, ps, graph_assignments)
        got = compiled.run(x8)
        np.testing.assert_allclose(got, expected, rtol=1e-3, atol=1e-3)

    def test_rejects_non_conv_assignment(self, x8):
        model, ps, assignments = self._pruned_setup(x8)
        graph = build_graph(model, (3, 8, 8))
        with pytest.raises(KeyError):
            CompiledExecutor(graph, ps, {"nonexistent": next(iter(assignments.values()))})


class TestInferenceSession:
    def test_session_reference_mode(self, x8):
        model = build_small_cnn(channels=(8,), in_size=8)
        expected = _model_outputs(model, x8)
        session = InferenceSession(model, (3, 8, 8))
        np.testing.assert_allclose(session.run(x8), expected, rtol=1e-3, atol=1e-4)

    def test_session_single_sample_promoted(self):
        model = build_small_cnn(channels=(8,), in_size=8)
        session = InferenceSession(model, (3, 8, 8))
        out = session.run(np.zeros((3, 8, 8), dtype=np.float32))
        assert out.shape == (1, 10)

    def test_session_with_pruning_artifacts(self, x8):
        from repro.core import PatDNNPruner, PruningConfig
        from repro.data import DataLoader, make_cifar10_like

        ds = make_cifar10_like(samples_per_class=8, size=8)
        loader = DataLoader(ds, batch_size=16)
        model = build_small_cnn(channels=(8, 16), in_size=8)
        cfg = PruningConfig(num_patterns=6, connectivity_rate=2.0, retrain_epochs=0)
        cfg.admm.iterations = 1
        cfg.admm.epochs_per_iteration = 1
        result = PatDNNPruner(cfg).fit(model, loader)
        expected = _model_outputs(model, x8)
        session = InferenceSession(
            model, (3, 8, 8), pattern_set=result.pattern_set, assignments=result.assignments
        )
        np.testing.assert_allclose(session.run(x8), expected, rtol=1e-3, atol=1e-3)
        assert session.pass_report is not None
