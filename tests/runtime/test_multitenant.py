"""Multi-tenant serving: a model registry behind every layer.

The load-bearing claims under test, per the multi-tenant contract:

* a cluster built from ``{name: SessionSpec}`` serves **both** models
  concurrently — outputs are **bitwise** equal to each model's own
  single-process ``InferenceSession.run`` (over shm and TCP), so
  requests provably reach the model they named;
* ``submit`` with an unregistered model raises the typed
  :class:`UnknownModelError` (and an ambiguous model-less submit on a
  multi-model cluster does too) — never a stringly RuntimeError;
* ``load_model`` hot-loads a new model into a cluster under live load
  and it serves correctly immediately after (``model_loaded`` event);
* ``unload_model`` under load drains: in-flight requests for the
  unloading model all succeed, zero client-visible errors, and the
  name is gone afterwards (``model_unloaded`` event); the last
  registered model is refused;
* a SIGKILLed shard mid mixed-model traffic recovers through the
  existing retry budget: the respawned worker rebuilds **every**
  registered model and both tenants keep serving bitwise-correct
  results;
* the admin server speaks the same contract over HTTP
  (``GET /models``, ``POST /models/load``, ``POST /models/<name>/unload``)
  and per-model counters land in ``/metrics`` with a ``model`` label.

Serving scenarios are parametrized over ``["shm", "tcp"]`` like the
chaos and membership suites; admin plumbing runs once over shm.
"""

import json
import os
import signal
import threading
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.runtime import (
    ResilienceConfig,
    ShardedServer,
    TelemetryConfig,
    UnknownModelError,
    spec_to_json,
)
from repro.runtime.cluster import projected_smallcnn_spec

IN_SIZE = 8


@pytest.fixture(scope="module")
def specs(tmp_path_factory):
    """Two models with different seeds: distinct weights, so bitwise
    output equality proves per-model routing (a cross-routed request
    would produce the *other* model's numbers)."""
    root = tmp_path_factory.mktemp("multitenant")
    return {
        "alpha": projected_smallcnn_spec(str(root / "alpha.npz"), in_size=IN_SIZE, seed=11),
        "beta": projected_smallcnn_spec(str(root / "beta.npz"), in_size=IN_SIZE, seed=22),
    }


@pytest.fixture(scope="module")
def oracle(specs):
    """One private single-process session per model — the ground truth
    every cluster answer is compared against bitwise."""
    sessions = {name: spec.build() for name, spec in specs.items()}
    yield sessions
    for session in sessions.values():
        session.close()


@pytest.fixture(params=["shm", "tcp"])
def transport(request):
    """Multi-tenancy must behave identically over shared memory and TCP."""
    return request.param


def _rand(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3, IN_SIZE, IN_SIZE)).astype(np.float32)


def _wait_until(predicate, timeout=20.0, interval=0.05):
    import time

    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def test_models_compute_different_functions(oracle):
    """Guard for every bitwise assertion below: if the two registered
    models agreed, cross-routing would be invisible."""
    x = _rand(1, seed=1)
    assert not np.array_equal(oracle["alpha"].run(x), oracle["beta"].run(x))


# ----------------------------------------------------------------------
# Concurrent two-model serving (the tentpole acceptance scenario)
# ----------------------------------------------------------------------
class TestTwoModelServing:
    def test_eight_clients_two_models_bitwise(self, specs, oracle, transport):
        n_clients, per_client = 8, 12
        names = sorted(specs)
        model = [names[i % len(names)] for i in range(n_clients)]
        xs = [_rand(1, seed=50 + i) for i in range(n_clients)]
        expected = [oracle[model[i]].run(xs[i]) for i in range(n_clients)]
        errors: list[BaseException] = []
        with ShardedServer(specs=specs, num_shards=2, transport=transport,
                           health_interval_s=0.2) as server:
            assert server.models() == names

            def client(i):
                try:
                    for _ in range(per_client):
                        out = server.submit(xs[i], model=model[i]).result(timeout=60)
                        assert np.array_equal(out, expected[i]), \
                            f"client {i} ({model[i]}) got the wrong model's output"
                except BaseException as exc:  # noqa: BLE001 - asserted below
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(n_clients)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=120)
            assert not errors, errors[:3]

            per_model = n_clients // len(names) * per_client
            # worker-side per-model counters ride the periodic health pong
            assert _wait_until(
                lambda: all(
                    server.cluster_stats["models"][n]["worker_samples"] >= per_model
                    for n in names
                ),
                timeout=30.0,
            ), "per-model worker stats never reached the router"
            stats = server.cluster_stats
            for name in names:
                assert stats["models"][name]["requests"] == per_model
                assert stats["models"][name]["router_p50_ms"] > 0

    def test_single_model_registry_keeps_plain_submit(self, specs, oracle, transport):
        """A one-entry registry behaves exactly like the single-model
        constructor: ``submit`` needs no model argument."""
        x = _rand(2, seed=3)
        with ShardedServer(specs={"alpha": specs["alpha"]}, num_shards=1,
                           transport=transport, health_interval_s=0.2) as server:
            out = server.submit(x).result(timeout=60)
            assert np.array_equal(out, oracle["alpha"].run(x))

    def test_unknown_model_raises_typed(self, specs):
        x = _rand(1, seed=4)
        with ShardedServer(specs=specs, num_shards=1,
                           health_interval_s=0.2) as server:
            with pytest.raises(UnknownModelError, match="nope"):
                server.submit(x, model="nope")
            # a model-less submit is ambiguous on a two-model cluster
            with pytest.raises(UnknownModelError, match="alpha"):
                server.submit(x)
            # typed rejections shed at admission: nothing was dispatched
            assert server.cluster_stats["requests"] == 0


# ----------------------------------------------------------------------
# Hot load / drained unload under live load
# ----------------------------------------------------------------------
class TestHotLoadUnload:
    def _start_clients(self, server, xs, expected, model, stop, errors, served):
        def client(i):
            try:
                while not stop.is_set():
                    out = server.submit(xs[i], model=model[i]).result(timeout=60)
                    assert np.array_equal(out, expected[i])
                    served[i] += 1
            except BaseException as exc:  # noqa: BLE001 - asserted by callers
                errors.append(exc)

        threads = [threading.Thread(target=client, args=(i,))
                   for i in range(len(xs))]
        for t in threads:
            t.start()
        return threads

    def test_load_then_serve_under_load(self, specs, oracle, transport,
                                        tmp_path_factory):
        gamma = projected_smallcnn_spec(
            str(tmp_path_factory.mktemp("hotload") / "gamma.npz"),
            in_size=IN_SIZE, seed=33,
        )
        gamma_session = gamma.build()
        try:
            n_clients = 4
            model = [["alpha", "beta"][i % 2] for i in range(n_clients)]
            xs = [_rand(1, seed=70 + i) for i in range(n_clients)]
            expected = [oracle[model[i]].run(xs[i]) for i in range(n_clients)]
            xg = _rand(2, seed=99)
            expected_gamma = gamma_session.run(xg)
            stop = threading.Event()
            errors: list[BaseException] = []
            served = [0] * n_clients
            with ShardedServer(specs=specs, num_shards=2, transport=transport,
                               health_interval_s=0.2) as server:
                threads = self._start_clients(
                    server, xs, expected, model, stop, errors, served)
                try:
                    assert _wait_until(lambda: sum(served) > 20, timeout=30.0)
                    outcome = server.load_model("gamma", gamma, timeout=60.0)
                    assert outcome["model"] == "gamma"
                    assert outcome["shards"] == 2
                    # the hot-loaded model serves immediately, bitwise
                    out = server.submit(xg, model="gamma").result(timeout=60)
                    assert np.array_equal(out, expected_gamma)
                    before = sum(served)
                    assert _wait_until(lambda: sum(served) > before + 10,
                                       timeout=30.0)
                finally:
                    stop.set()
                    for t in threads:
                        t.join(timeout=60)
                assert not errors, errors[:3]
                assert server.models() == ["alpha", "beta", "gamma"]
                assert server.cluster_stats["models"]["gamma"]["requests"] == 1
                assert "model_loaded" in server.events.kinds()
        finally:
            gamma_session.close()

    def test_unload_under_load_zero_client_errors(self, specs, oracle, transport):
        """Unload drains: requests in flight for the unloading model all
        succeed, traffic on the surviving model never hiccups, and the
        name is gone afterwards."""
        n_clients = 4
        model = ["alpha"] * n_clients  # the survivors hammer alpha
        xs = [_rand(1, seed=80 + i) for i in range(n_clients)]
        expected = [oracle["alpha"].run(xs[i]) for i in range(n_clients)]
        xb = _rand(1, seed=88)
        expected_beta = oracle["beta"].run(xb)
        stop = threading.Event()
        errors: list[BaseException] = []
        served = [0] * n_clients
        with ShardedServer(specs=specs, num_shards=2, transport=transport,
                           health_interval_s=0.2) as server:
            threads = self._start_clients(
                server, xs, expected, model, stop, errors, served)
            try:
                assert _wait_until(lambda: sum(served) > 10, timeout=30.0)
                # park a burst of beta requests, then unload beta while
                # they are in flight: drain must let every one finish
                beta_futs = [server.submit(xb, model="beta") for _ in range(24)]
                outcome = server.unload_model("beta", timeout=60.0)
                assert outcome["drained"] is True
                for fut in beta_futs:
                    assert np.array_equal(fut.result(timeout=60), expected_beta)
                # beta is gone; alpha is untouched
                with pytest.raises(UnknownModelError, match="beta"):
                    server.submit(xb, model="beta")
                before = sum(served)
                assert _wait_until(lambda: sum(served) > before + 10, timeout=30.0)
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=60)
            assert not errors, errors[:3]
            assert server.models() == ["alpha"]
            assert "beta" not in server.cluster_stats["models"]
            assert "model_unloaded" in server.events.kinds()

    def test_unload_last_model_refused(self, specs):
        with ShardedServer(specs={"alpha": specs["alpha"]}, num_shards=1,
                           health_interval_s=0.2) as server:
            with pytest.raises(ValueError, match="last registered model"):
                server.unload_model("alpha")
            assert server.models() == ["alpha"]

    def test_unload_unknown_model_raises(self, specs):
        with ShardedServer(specs=specs, num_shards=1,
                           health_interval_s=0.2) as server:
            with pytest.raises(KeyError, match="nope"):
                server.unload_model("nope")


# ----------------------------------------------------------------------
# Crash recovery composes with multi-tenancy
# ----------------------------------------------------------------------
class TestMixedModelRecovery:
    def test_sigkill_mid_mixed_traffic_recovers_both_models(
        self, specs, oracle, transport
    ):
        """The respawned worker rebuilds the *current* registry, so both
        tenants keep serving bitwise-correct results after a kill; the
        in-flight victims recover through the ordinary retry budget."""
        n_clients = 8
        names = sorted(specs)
        model = [names[i % len(names)] for i in range(n_clients)]
        xs = [_rand(1, seed=60 + i) for i in range(n_clients)]
        expected = [oracle[model[i]].run(xs[i]) for i in range(n_clients)]
        stop = threading.Event()
        errors: list[BaseException] = []
        served = [0] * n_clients
        with ShardedServer(
            specs=specs, num_shards=2, transport=transport,
            health_interval_s=0.2,
            resilience=ResilienceConfig(max_retries=3),
        ) as server:
            def client(i):
                try:
                    while not stop.is_set():
                        out = server.submit(xs[i], model=model[i]).result(timeout=60)
                        assert np.array_equal(out, expected[i])
                        served[i] += 1
                except BaseException as exc:  # noqa: BLE001 - asserted below
                    errors.append(exc)

            threads = [threading.Thread(target=client, args=(i,))
                       for i in range(n_clients)]
            for t in threads:
                t.start()
            try:
                assert _wait_until(lambda: sum(served) > 30, timeout=30.0)
                victim = server._shards[0]
                os.kill(victim.process.pid, signal.SIGKILL)
                assert _wait_until(
                    lambda: server.cluster_stats["respawns"] >= 1, timeout=30.0
                )
                before = {name: server.cluster_stats["models"][name]["requests"]
                          for name in names}
                assert _wait_until(
                    lambda: all(
                        server.cluster_stats["models"][n]["requests"]
                        > before[n] + 5
                        for n in names
                    ),
                    timeout=30.0,
                ), "a model stopped serving after the respawn"
            finally:
                stop.set()
                for t in threads:
                    t.join(timeout=120)
            assert not errors, errors[:3]
            assert server.cluster_stats["respawns"] >= 1


# ----------------------------------------------------------------------
# Admin HTTP routes + per-model metrics labels
# ----------------------------------------------------------------------
class TestAdminModelRoutes:
    def _get(self, port, path):
        try:
            with urllib.request.urlopen(
                f"http://127.0.0.1:{port}{path}", timeout=60
            ) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def _post(self, port, path, body=None):
        data = json.dumps(body).encode() if body is not None else b""
        req = urllib.request.Request(
            f"http://127.0.0.1:{port}{path}", data=data, method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(req, timeout=60) as resp:
                return resp.status, json.loads(resp.read())
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read())

    def test_load_unload_over_http(self, specs, oracle, tmp_path_factory):
        delta = projected_smallcnn_spec(
            str(tmp_path_factory.mktemp("admin") / "delta.npz"),
            in_size=IN_SIZE, seed=44,
        )
        delta_session = delta.build()
        try:
            x = _rand(2, seed=7)
            expected = delta_session.run(x)
            with ShardedServer(
                specs={"alpha": specs["alpha"]}, num_shards=1,
                health_interval_s=0.2,
                telemetry=TelemetryConfig(metrics_port=0),
            ) as server:
                port = server.metrics_port
                status, payload = self._get(port, "/models")
                assert status == 200 and payload["models"] == ["alpha"]

                status, payload = self._post(
                    port, "/models/load",
                    {"name": "delta", "spec": spec_to_json(delta)},
                )
                assert status == 200 and payload["model"] == "delta"
                out = server.submit(x, model="delta").result(timeout=60)
                assert np.array_equal(out, expected)

                status, payload = self._post(port, "/models/delta/unload")
                assert status == 200 and payload["drained"] is True
                status, payload = self._get(port, "/models")
                assert payload["models"] == ["alpha"]

                # refusals map to the HTTP statuses the membership routes use
                status, payload = self._post(port, "/models/alpha/unload")
                assert status == 409 and "last registered model" in payload["error"]
                status, payload = self._post(port, "/models/nope/unload")
                assert status == 404

                # per-model counters carry a model label in /metrics
                server.submit(_rand(1, seed=8), model="alpha").result(timeout=60)
                with urllib.request.urlopen(
                    f"http://127.0.0.1:{port}/metrics", timeout=30
                ) as resp:
                    text = resp.read().decode()
                assert 'cluster_model_requests_total{model="alpha"}' in text
                assert 'cluster_model_router_p50_ms{model="alpha"}' in text
                # the unloaded tenant's series are gone from the router view
                assert 'cluster_model_router_p50_ms{model="delta"}' not in text
        finally:
            delta_session.close()

    def test_load_route_validates_body(self, specs):
        with ShardedServer(
            specs={"alpha": specs["alpha"]}, num_shards=1,
            health_interval_s=0.2,
            telemetry=TelemetryConfig(metrics_port=0),
        ) as server:
            port = server.metrics_port
            status, payload = self._post(port, "/models/load", {"name": "x"})
            assert status == 400 and "spec" in payload["error"]
            status, payload = self._post(
                port, "/models/load",
                {"name": "x", "spec": {"model": "smallcnn"}},
            )
            assert status == 409  # spec_from_json refused the partial spec
            assert server.models() == ["alpha"]
