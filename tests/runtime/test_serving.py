"""Micro-batching serving front-end and shared-session thread safety.

The load-bearing claims under test:

* a session shared by many threads computes exactly what per-thread
  executors compute (no scratch-buffer cross-contamination);
* the micro-batch dispatcher coalesces concurrent requests, scatters
  results to the right futures, and propagates errors;
* a capped arena keeps its retained footprint bounded under a
  many-shape request stream while outputs stay correct.
"""

import threading
import time

import numpy as np
import pytest

from repro import nn
from repro.core.masking import apply_masks, extract_masks
from repro.core.patterns import PatternSet, enumerate_candidate_patterns
from repro.core.projections import project_kernel_pattern
from repro.graph.builder import build_graph
from repro.models import build_small_cnn
from repro.runtime import (
    CompiledExecutor,
    InferenceSession,
    MicroBatchServer,
    ReferenceExecutor,
    ServingConfig,
)
from repro.utils.rng import make_rng

N_THREADS = 8
N_ITERS = 10


def _pruned_model(seed=7):
    model = build_small_cnn(channels=(8, 16), in_size=8, seed=seed)
    ps = PatternSet(enumerate_candidate_patterns()[:8])
    masks = extract_masks(model, ps, connectivity_rate=2.0)
    apply_masks(model, masks)
    model.eval()
    assignments = {}
    for name, module in model.named_modules():
        if isinstance(module, nn.Conv2d):
            _, a = project_kernel_pattern(module.weight.data, ps)
            energy = (module.weight.data.reshape(a.shape[0], a.shape[1], -1) ** 2).sum(axis=2)
            assignments[name] = (a * (energy > 0)).astype(np.int32)
    return model, ps, assignments


@pytest.fixture(scope="module")
def compiled_session():
    model, ps, assignments = _pruned_model()
    return InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments=assignments)


@pytest.fixture(scope="module")
def inputs():
    rng = make_rng(11)
    return [rng.standard_normal((2, 3, 8, 8)).astype(np.float32) for _ in range(N_THREADS)]


def _hammer(n_threads, fn):
    """Run ``fn(thread_idx)`` on n threads; re-raise the first failure."""
    errors = []

    def worker(i):
        try:
            fn(i)
        except BaseException as exc:  # noqa: BLE001 - surfaced below
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(n_threads)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    if errors:
        raise errors[0]


# ----------------------------------------------------------------------
# Shared-session stress: concurrent runs must match serial semantics
# ----------------------------------------------------------------------
class TestSharedSessionStress:
    def test_shared_reference_session_bitwise_vs_per_thread_executor(self, inputs):
        """N threads on one reference session == fresh per-thread executors."""
        model = build_small_cnn(channels=(8, 16), in_size=8, seed=3)
        shared = InferenceSession(model, (3, 8, 8))

        def worker(i):
            mine = ReferenceExecutor(shared.graph)
            for _ in range(N_ITERS):
                got = shared.run(inputs[i])
                expected = mine.run(inputs[i])
                assert np.array_equal(got, expected)  # bitwise

        _hammer(N_THREADS, worker)

    def test_shared_compiled_session_bitwise_vs_serial_baseline(self, compiled_session, inputs):
        """Concurrency must not perturb compiled outputs at all: the same
        session, same input, run single-threaded first, is the bitwise
        baseline (same batch shape -> identical kernel arithmetic)."""
        session = compiled_session
        baselines = [session.run(x) for x in inputs]

        def worker(i):
            for _ in range(N_ITERS):
                assert np.array_equal(session.run(inputs[i]), baselines[i])

        _hammer(N_THREADS, worker)
        # scratch was actually shared and recycled across those runs
        assert session.arena.reuses > 0

    def test_shared_compiled_session_matches_reference(self, compiled_session, inputs):
        """And the concurrent compiled outputs are the right numbers."""
        session = compiled_session
        ref = ReferenceExecutor(session.graph)
        expected = [ref.run(x) for x in inputs]

        def worker(i):
            for _ in range(N_ITERS):
                np.testing.assert_allclose(
                    session.run(inputs[i]), expected[i], rtol=1e-4, atol=1e-5
                )

        _hammer(N_THREADS, worker)


# ----------------------------------------------------------------------
# Micro-batch server behaviour
# ----------------------------------------------------------------------
class TestMicroBatchServer:
    def test_single_request_bitwise_vs_direct_run(self, compiled_session, inputs):
        """With max_batch=1 nothing is coalesced: results are bitwise
        identical to calling the executor directly."""
        with MicroBatchServer(
            compiled_session.executor.run, ServingConfig(max_batch=1, max_wait_ms=0)
        ) as server:
            for x in inputs[:3]:
                assert np.array_equal(server.run(x), compiled_session.run(x))

    def test_concurrent_submits_are_coalesced_and_correct(self, compiled_session, inputs):
        session = compiled_session
        ref = ReferenceExecutor(session.graph)
        singles = [x[:1] for x in inputs]
        expected = [ref.run(x) for x in singles]
        with MicroBatchServer(session.run, ServingConfig(max_batch=8, max_wait_ms=20)) as server:
            results: dict[int, np.ndarray] = {}

            def worker(i):
                for _ in range(N_ITERS):
                    results[i] = server.submit(singles[i]).result(timeout=30)

            _hammer(N_THREADS, worker)
            stats = server.stats
            assert stats.requests == N_THREADS * N_ITERS
            assert stats.samples == N_THREADS * N_ITERS
            # coalescing actually happened: fewer dispatches than requests
            assert stats.batches < stats.requests
            assert stats.mean_batch > 1.0
            assert stats.max_batch_seen > 1
        for i, out in results.items():
            assert out.shape == expected[i].shape
            np.testing.assert_allclose(out, expected[i], rtol=1e-4, atol=1e-5)

    def test_bare_sample_promoted(self, compiled_session):
        with MicroBatchServer(compiled_session.run, ServingConfig(max_wait_ms=0)) as server:
            out = server.run(np.zeros((3, 8, 8), np.float32))
            assert out.shape == (1, 10)

    def test_mixed_dtypes_grouped_not_promoted(self):
        """Same-shape requests of different dtypes must not be
        concatenated — co-batched traffic would silently promote them."""
        with MicroBatchServer(lambda x: x, ServingConfig(max_batch=8, max_wait_ms=50)) as server:
            f32 = server.submit(np.ones((1, 1, 2, 2), np.float32))
            f64 = server.submit(np.ones((1, 1, 2, 2), np.float64))
            assert f32.result(timeout=10).dtype == np.float32
            assert f64.result(timeout=10).dtype == np.float64

    def test_dropped_server_does_not_leak_dispatcher_thread(self):
        """A server dropped without close() must shut its dispatcher down
        via the gc finalizer instead of leaking the thread (and the
        executor/arena it references)."""
        import gc

        server = MicroBatchServer(lambda x: x)
        thread = server._dispatcher
        assert thread.is_alive()
        del server
        gc.collect()
        thread.join(timeout=10)
        assert not thread.is_alive()

    def test_mixed_shapes_grouped_not_mixed(self):
        """Requests of different sample shapes share a dispatch window but
        run as separate shape groups."""
        calls = []

        def runner(x):
            calls.append(x.shape)
            return x * 2.0

        with MicroBatchServer(runner, ServingConfig(max_batch=16, max_wait_ms=50)) as server:
            a = np.ones((1, 2, 4, 4), np.float32)
            b = np.ones((1, 2, 6, 6), np.float32)
            futs = [server.submit(a), server.submit(a), server.submit(b)]
            outs = [f.result(timeout=10) for f in futs]
        np.testing.assert_array_equal(outs[0], a * 2)
        np.testing.assert_array_equal(outs[2], b * 2)
        assert all(shape[2:] in ((4, 4), (6, 6)) for shape in calls)
        # the two (4,4) requests were batched together at some point or
        # dispatched singly — but never concatenated with the (6,6) one
        assert not any(shape[2:] == (4, 6) or shape[1] == 4 for shape in calls)

    def test_oversized_request_served_whole(self):
        with MicroBatchServer(lambda x: x + 1, ServingConfig(max_batch=2, max_wait_ms=0)) as server:
            x = np.zeros((5, 1, 2, 2), np.float32)
            out = server.run(x)
            assert out.shape == x.shape and np.all(out == 1)

    def test_runner_returning_garbage_fails_futures_not_dispatcher(self):
        """A runner returning something the scatter chokes on must resolve
        the futures with the error and leave the dispatcher alive."""
        calls = []

        def runner(x):
            calls.append(x.shape)
            return None if len(calls) == 1 else x

        with MicroBatchServer(runner, ServingConfig(max_batch=1, max_wait_ms=0)) as server:
            bad = server.submit(np.zeros((1, 1, 2, 2), np.float32))
            with pytest.raises((TypeError, AttributeError)):
                bad.result(timeout=10)
            # dispatcher survived and serves the next request
            good = server.submit(np.ones((1, 1, 2, 2), np.float32))
            np.testing.assert_array_equal(good.result(timeout=10), np.ones((1, 1, 2, 2)))
            assert server.stats.errors == 1

    def test_runner_row_count_mismatch_errors_all_futures(self):
        """A runner returning fewer rows than samples must fail the whole
        group loudly — never resolve a co-batched client with an empty
        or truncated slice."""
        with MicroBatchServer(lambda x: x[:1], ServingConfig(max_batch=4, max_wait_ms=50)) as server:
            futs = [server.submit(np.zeros((1, 1, 2, 2), np.float32)) for _ in range(3)]
            for fut in futs:
                with pytest.raises(ValueError, match="rows for a batch of"):
                    fut.result(timeout=10)

    def test_shutdown_drain_respects_max_batch(self):
        """The close() backlog drain must chunk by max_batch, not run one
        concatenated mega-batch."""
        gate = threading.Event()

        def runner(x):
            gate.wait(5)
            return x

        server = MicroBatchServer(runner, ServingConfig(max_batch=2, max_wait_ms=0))
        futs = [server.submit(np.zeros((1, 1, 2, 2), np.float32)) for _ in range(9)]
        gate.set()
        server.close(timeout=30)
        for fut in futs:
            assert fut.result(timeout=1).shape == (1, 1, 2, 2)
        assert server.stats.max_batch_seen <= 2

    def test_runner_error_propagates_to_every_future(self):
        def runner(x):
            raise RuntimeError("kernel exploded")

        with MicroBatchServer(runner, ServingConfig(max_batch=4, max_wait_ms=20)) as server:
            futs = [server.submit(np.zeros((1, 1, 2, 2), np.float32)) for _ in range(3)]
            for fut in futs:
                with pytest.raises(RuntimeError, match="kernel exploded"):
                    fut.result(timeout=10)
            assert server.stats.errors == 3

    def test_close_drains_backlog(self):
        slow = threading.Event()

        def runner(x):
            slow.wait(0.05)
            return x

        server = MicroBatchServer(runner, ServingConfig(max_batch=1, max_wait_ms=0))
        futs = [server.submit(np.zeros((1, 1, 2, 2), np.float32)) for _ in range(6)]
        server.close(timeout=30)
        for fut in futs:
            assert fut.result(timeout=1) is not None

    def test_cancelled_future_skipped_dispatcher_survives(self):
        """A client cancelling its future must not kill the dispatcher or
        starve the other requests in the same window."""
        gate = threading.Event()

        def runner(x):
            gate.wait(5)
            return x + 1

        with MicroBatchServer(runner, ServingConfig(max_batch=1, max_wait_ms=0)) as server:
            # first request occupies the dispatcher while we queue + cancel
            blocked = server.submit(np.zeros((1, 1, 2, 2), np.float32))
            doomed = server.submit(np.zeros((1, 1, 2, 2), np.float32))
            survivor = server.submit(np.zeros((1, 1, 2, 2), np.float32))
            assert doomed.cancel()
            gate.set()
            assert np.all(blocked.result(timeout=10) == 1)
            assert np.all(survivor.result(timeout=10) == 1)  # dispatcher alive
            with pytest.raises(Exception):
                doomed.result(timeout=1)

    def test_submit_after_close_raises(self):
        server = MicroBatchServer(lambda x: x)
        server.close()
        server.close()  # idempotent
        with pytest.raises(RuntimeError, match="closed"):
            server.submit(np.zeros((1, 1, 2, 2), np.float32))

    def test_rejects_bad_input_ndim(self):
        with MicroBatchServer(lambda x: x) as server:
            with pytest.raises(ValueError, match="expected"):
                server.submit(np.zeros((2, 2), np.float32))

    def test_accepts_object_with_run_method(self, compiled_session):
        with MicroBatchServer(compiled_session.executor, ServingConfig(max_wait_ms=0)) as server:
            out = server.run(np.zeros((1, 3, 8, 8), np.float32))
            assert out.shape == (1, 10)

    def test_rejects_non_runner(self):
        with pytest.raises(TypeError, match="callable"):
            MicroBatchServer(object())

    @pytest.mark.parametrize(
        "kwargs", [{"max_batch": 0}, {"max_wait_ms": -1.0}, {"queue_depth": 0}]
    )
    def test_config_validation(self, kwargs):
        with pytest.raises(ValueError):
            ServingConfig(**kwargs)


# ----------------------------------------------------------------------
# Adaptive batching window + latency tracking
# ----------------------------------------------------------------------
class TestAdaptiveWait:
    def test_deep_backlog_shrinks_window(self):
        """A queue already >= max_batch deep at window start means waiting
        buys nothing — the effective window must come down."""
        gate = threading.Event()

        def runner(x):
            gate.wait(0.002)
            return x

        cfg = ServingConfig(max_batch=2, max_wait_ms=20.0)
        server = MicroBatchServer(runner, cfg)
        assert server.stats.effective_wait_ms == 20.0
        futs = [server.submit(np.zeros((1, 1, 2, 2), np.float32)) for _ in range(24)]
        gate.set()
        for fut in futs:
            fut.result(timeout=30)
        assert server.stats.effective_wait_ms < cfg.max_wait_ms
        server.close()

    def test_light_load_grows_window_back(self):
        gate = threading.Event()

        def runner(x):
            gate.wait(5)
            return x

        cfg = ServingConfig(max_batch=2, max_wait_ms=4.0)
        with MicroBatchServer(runner, cfg) as server:
            # flood while the runner is gated: every dispatch window opens
            # against a deep backlog, so the window halves repeatedly
            futs = [server.submit(np.zeros((1, 1, 2, 2), np.float32)) for _ in range(24)]
            gate.set()
            for fut in futs:
                fut.result(timeout=30)
            shrunken = server.stats.effective_wait_ms
            assert shrunken < cfg.max_wait_ms / 2
            # paced singles: every window expires unfilled -> growth back
            # toward (and capped at) the configured maximum
            for _ in range(24):
                server.submit(np.zeros((1, 1, 2, 2), np.float32)).result(timeout=30)
            assert server.stats.effective_wait_ms > shrunken
            assert server.stats.effective_wait_ms <= cfg.max_wait_ms

    def test_adaptive_disabled_keeps_fixed_window(self):
        cfg = ServingConfig(max_batch=2, max_wait_ms=5.0, adaptive_wait=False)
        with MicroBatchServer(lambda x: x, cfg) as server:
            futs = [server.submit(np.zeros((1, 1, 2, 2), np.float32)) for _ in range(16)]
            for fut in futs:
                fut.result(timeout=30)
            assert server.stats.effective_wait_ms == 5.0

    def test_zero_wait_stays_zero(self):
        with MicroBatchServer(lambda x: x, ServingConfig(max_batch=4, max_wait_ms=0)) as server:
            for _ in range(6):
                server.run(np.zeros((1, 1, 2, 2), np.float32), timeout=30)
            assert server.stats.effective_wait_ms == 0.0


class TestLatencyTracking:
    def test_percentiles_populated_and_ordered(self):
        def runner(x):
            time.sleep(0.002)
            return x

        with MicroBatchServer(runner, ServingConfig(max_batch=4, max_wait_ms=1.0)) as server:
            futs = [server.submit(np.zeros((1, 1, 2, 2), np.float32)) for _ in range(20)]
            for fut in futs:
                fut.result(timeout=30)
            stats = server.stats
            assert stats.p50_ms >= 2.0  # every request waited for the runner
            assert stats.p95_ms >= stats.p50_ms

    def test_no_traffic_percentiles_zero(self):
        with MicroBatchServer(lambda x: x) as server:
            assert server.stats.p50_ms == 0.0
            assert server.stats.p95_ms == 0.0

    def test_reservoir_bounded_sliding_window(self):
        """The reservoir is a fixed ring: old latencies age out and memory
        never grows with request count."""
        from repro.runtime.serving import _LATENCY_RESERVOIR, ServingStats

        stats = ServingStats()
        for _ in range(_LATENCY_RESERVOIR):
            stats._record_latency(1000.0)
        for _ in range(_LATENCY_RESERVOIR):
            stats._record_latency(1.0)  # overwrites the whole window
        assert stats._latency_ring.shape == (_LATENCY_RESERVOIR,)
        assert stats.p95_ms == 1.0

    def test_snapshot_is_picklable_and_complete(self):
        import pickle

        with MicroBatchServer(lambda x: x, ServingConfig(max_wait_ms=0)) as server:
            server.run(np.zeros((1, 1, 2, 2), np.float32), timeout=30)
            snap = pickle.loads(pickle.dumps(server.stats.snapshot()))
        assert snap["requests"] == 1 and snap["samples"] == 1
        for key in ("batches", "errors", "mean_batch", "max_batch_seen",
                    "effective_wait_ms", "p50_ms", "p95_ms"):
            assert key in snap
        assert snap["p50_ms"] > 0


# ----------------------------------------------------------------------
# Session-level async API
# ----------------------------------------------------------------------
class TestSessionAsyncAPI:
    def test_run_async_lazy_server_and_close(self):
        model, ps, assignments = _pruned_model(seed=5)
        with InferenceSession(
            model,
            (3, 8, 8),
            pattern_set=ps,
            assignments=assignments,
            serving_config=ServingConfig(max_batch=4, max_wait_ms=10),
        ) as session:
            assert session.serving_stats is None  # not started yet
            x = make_rng(1).standard_normal((1, 3, 8, 8)).astype(np.float32)
            expected = session.run(x)

            def worker(i):
                for _ in range(N_ITERS):
                    got = session.run_async(x).result(timeout=30)
                    np.testing.assert_allclose(got, expected, rtol=1e-4, atol=1e-5)

            _hammer(N_THREADS, worker)
            stats = session.serving_stats
            assert stats is not None and stats.requests == N_THREADS * N_ITERS
        # context-manager exit closed the server; plain run still works
        assert session.run(x).shape == (1, 10)

    def test_run_async_retries_when_racing_a_close(self):
        """run_async holding a reference to a server that close() just
        shut down must transparently restart instead of surfacing the
        server's RuntimeError."""
        model, ps, assignments = _pruned_model(seed=6)
        session = InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments=assignments)
        x = np.zeros((1, 3, 8, 8), np.float32)
        session.run_async(x).result(timeout=30)
        # close the server behind the session's back: the stale reference
        # is exactly what a concurrent close() leaves a racing run_async
        session._server.close()
        out = session.run_async(x).result(timeout=30)
        assert out.shape == (1, 10)
        session.close()

    def test_run_async_restarts_after_close(self):
        model, ps, assignments = _pruned_model(seed=6)
        session = InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments=assignments)
        x = np.zeros((1, 3, 8, 8), np.float32)
        first = session.run_async(x).result(timeout=30)
        session.close()
        second = session.run_async(x).result(timeout=30)  # fresh server
        np.testing.assert_array_equal(first, second)
        session.close()


# ----------------------------------------------------------------------
# Arena growth cap under many-shape traffic
# ----------------------------------------------------------------------
class TestArenaCapUnderManyShapes:
    def test_footprint_bounded_and_outputs_correct(self):
        model, ps, assignments = _pruned_model(seed=9)
        graph = build_graph(model, (3, 8, 8))
        ref = ReferenceExecutor(graph)
        cap = 256 * 1024
        session = InferenceSession(
            model, (3, 8, 8), pattern_set=ps, assignments=assignments, arena_max_bytes=cap
        )
        rng = make_rng(4)
        # every distinct batch size keys distinct pad/output scratch — a
        # many-shape request stream in miniature
        for n in list(range(1, 24)) * 2:
            x = rng.standard_normal((n, 3, 8, 8)).astype(np.float32)
            np.testing.assert_allclose(session.run(x), ref.run(x), rtol=1e-4, atol=1e-5)
            assert session.arena.footprint_bytes <= cap
        assert session.arena.evictions > 0

    def test_uncapped_arena_grows_past_cap_worth_of_shapes(self):
        """Control: without the cap the same traffic retains more scratch."""
        model, ps, assignments = _pruned_model(seed=9)
        capped = InferenceSession(
            model, (3, 8, 8), pattern_set=ps, assignments=assignments, arena_max_bytes=256 * 1024
        )
        free = InferenceSession(model, (3, 8, 8), pattern_set=ps, assignments=assignments)
        rng = make_rng(4)
        for n in range(1, 16):
            x = rng.standard_normal((n, 3, 8, 8)).astype(np.float32)
            capped.run(x)
            free.run(x)
        assert free.arena.footprint_bytes > capped.arena.footprint_bytes
        assert capped.arena.footprint_bytes <= 256 * 1024


# ----------------------------------------------------------------------
# SLO-aware admission: queue-full fast fail, deadline shedding
# ----------------------------------------------------------------------
class TestAdmissionAndDeadlines:
    @staticmethod
    def _blocked_server(queue_depth=1):
        """Server whose runner blocks until ``release`` is set — lets a
        test fill the queue deterministically."""
        release = threading.Event()

        def runner(x):
            release.wait(10)
            return x.reshape(x.shape[0], -1).copy()

        cfg = ServingConfig(max_batch=1, max_wait_ms=0, queue_depth=queue_depth,
                            adaptive_wait=False)
        return MicroBatchServer(runner, cfg), release

    def test_queue_full_typed_error_counts_shed(self):
        from repro.runtime import QueueFullError

        server, release = self._blocked_server(queue_depth=1)
        x = np.zeros((1, 3, 8, 8), np.float32)
        try:
            first = server.submit(x)  # dispatcher takes it, blocks in runner
            time.sleep(0.05)
            second = server.submit(x)  # occupies the single queue permit
            with pytest.raises(QueueFullError, match="shed"):
                server.submit(x, timeout=0.05)
            assert server.stats.shed == 1
            release.set()
            assert first.result(timeout=10).shape == (1, 192)
            assert second.result(timeout=10).shape == (1, 192)
            assert server.stats.errors == 0  # shed is not an execution error
        finally:
            release.set()
            server.close()

    def test_queue_full_is_runtimeerror_for_backcompat(self):
        from repro.runtime import QueueFullError

        server, release = self._blocked_server(queue_depth=1)
        x = np.zeros((1, 3, 8, 8), np.float32)
        try:
            server.submit(x)
            time.sleep(0.05)
            server.submit(x)
            with pytest.raises(RuntimeError):  # pre-existing except clauses still catch it
                server.submit(x, timeout=0.05)
            assert issubclass(QueueFullError, RuntimeError)
        finally:
            release.set()
            server.close()

    def test_expired_deadline_rejected_at_submission(self):
        from repro.runtime import DeadlineExceededError

        with MicroBatchServer(lambda x: x) as server:
            with pytest.raises(DeadlineExceededError, match="already expired"):
                server.submit(np.zeros((1, 3, 8, 8), np.float32), deadline=-0.01)
            assert server.stats.timed_out == 1

    def test_deadline_expiring_in_queue_sheds_before_dispatch(self):
        from repro.runtime import DeadlineExceededError

        calls = []
        release = threading.Event()

        def runner(batch):
            calls.append(batch.shape)
            release.wait(10)
            return batch.reshape(batch.shape[0], -1).copy()

        cfg = ServingConfig(max_batch=1, max_wait_ms=0, queue_depth=8, adaptive_wait=False)
        server = MicroBatchServer(runner, cfg)
        x = np.zeros((1, 3, 8, 8), np.float32)
        try:
            blocker = server.submit(x)  # holds the dispatcher in the runner
            time.sleep(0.05)
            doomed = server.submit(x, deadline=0.1)  # expires while queued
            time.sleep(0.2)
            release.set()
            with pytest.raises(DeadlineExceededError, match="shed before dispatch"):
                doomed.result(timeout=10)
            assert blocker.result(timeout=10).shape == (1, 192)
            assert server.stats.timed_out == 1
            # the runner never saw the shed request (executed batches only)
            assert all(shape[0] == 1 for shape in calls)
            assert server.stats.samples == 1
        finally:
            release.set()
            server.close()

    def test_deadline_met_serves_normally(self):
        with MicroBatchServer(lambda x: x.reshape(x.shape[0], -1).copy()) as server:
            out = server.run(np.zeros((2, 3, 8, 8), np.float32), timeout=10, deadline=30.0)
            assert out.shape == (2, 192)
            assert server.stats.timed_out == 0 and server.stats.shed == 0


# ----------------------------------------------------------------------
# Deterministic fault injection in the in-process front-end
# ----------------------------------------------------------------------
class TestServerFaultInjection:
    def test_injected_crash_is_typed_and_counted(self):
        from repro.runtime import FaultPlan, InjectedFaultError

        plan = FaultPlan(seed=1, crash_rate=1.0)
        with MicroBatchServer(lambda x: x, faults=plan) as server:
            fut = server.submit(np.zeros((1, 3, 8, 8), np.float32))
            with pytest.raises(InjectedFaultError, match="injected crash"):
                fut.result(timeout=10)
            assert server.stats.errors == 1

    def test_no_plan_means_no_injection(self):
        with MicroBatchServer(lambda x: x.reshape(x.shape[0], -1).copy()) as server:
            for _ in range(8):
                assert server.run(np.zeros((1, 3, 8, 8), np.float32), timeout=10).shape == (1, 192)
            assert server.stats.errors == 0

    def test_partial_plan_faults_exactly_the_planned_requests(self):
        """The same seeded plan replayed over sequential request ids must
        fault exactly the requests it says it faults — determinism is
        what makes chaos assertions possible at all."""
        from repro.runtime import FaultPlan, InjectedFaultError

        plan = FaultPlan(seed=5, crash_rate=0.3)
        expected = [plan.decide(i) == "crash" for i in range(16)]
        assert any(expected) and not all(expected)  # seed exercises both paths
        cfg = ServingConfig(max_batch=1, max_wait_ms=0)  # solo windows: no co-batch blast radius
        with MicroBatchServer(lambda x: x.reshape(x.shape[0], -1).copy(), cfg, faults=plan) as server:
            futs = [server.submit(np.zeros((1, 3, 8, 8), np.float32)) for _ in range(16)]
            for fut, crashes in zip(futs, expected):
                if crashes:
                    with pytest.raises(InjectedFaultError):
                        fut.result(timeout=10)
                else:
                    assert fut.result(timeout=10).shape == (1, 192)
