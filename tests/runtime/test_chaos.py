"""Chaos matrix: seeded fault injection against the full serving stack.

The contract under test is the resilience invariant end to end: with a
:class:`~repro.runtime.faults.FaultPlan` injecting crashes, stalls,
slowness, response corruption, and slot exhaustion at ~10% of requests,
**every** request still resolves — as the bitwise-correct result or as a
typed error — and nothing hangs.

Fault decisions are a pure function of ``(seed, request id)``, and the
router draws a fresh id per *attempt*: a retry re-rolls the dice, which
is exactly how a bounded retry budget absorbs a ~10% fault rate into
zero client-visible errors.  For a sequential client the attempt stream
is still fully deterministic, so the test replays the same plan against
an id counter and asserts the cluster counters (respawns, corrupt
catches, retries) **exactly** — reproducible chaos, not flaky chaos.

With retries disabled each request is one attempt, so fault-marked ids
surface as typed errors on precisely the requests the plan names.

The concurrent matrix run cannot pin ids to clients (interleaving), so
it asserts the global contract instead, plus lower bounds proving the
chaos really happened (``cluster_stats`` respawns / corrupt / retries).

``max_batch=1`` serving makes bitwise comparison against a local
session valid (see ``test_resilience.py``).

The whole matrix is parametrized over ``["shm", "tcp"]`` transports:
fault decisions are keyed by request id, not by wire format, so the
same plan must produce the same counters over loopback TCP as over
shared memory.
"""

import itertools
import threading
import time

import numpy as np
import pytest

from repro.runtime import (
    FaultPlan,
    ResilienceConfig,
    ServingConfig,
    ShardCrashedError,
    ShardedServer,
)
from repro.runtime.cluster import projected_smallcnn_spec

IN_SIZE = 8
WARMUP = 8  # requests served before chaos starts (ids 0..WARMUP-1)


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("chaos") / "bundle.npz"
    return projected_smallcnn_spec(
        str(bundle), in_size=IN_SIZE, serving_config=ServingConfig(max_batch=1)
    )


@pytest.fixture(params=["shm", "tcp"])
def transport(request):
    """Chaos must play out identically over shared memory and TCP."""
    return request.param


@pytest.fixture(scope="module")
def local_session(spec):
    return spec.build()


def _rand(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3, IN_SIZE, IN_SIZE)).astype(np.float32)


def _warmup(server):
    for i in range(WARMUP):
        server.run(_rand(1, seed=i), timeout=60)


def _simulate(plan, n, max_attempts, start=WARMUP):
    """Replay the plan against the router's id counter for ``n``
    sequential requests: predicts which requests fail and the exact
    retry/respawn/corrupt counters a real run must report.

    Mirrors the router's semantics: ``crash`` and ``corrupt`` burn the
    attempt and retry under a fresh id; ``stall``/``slow`` only delay
    (no ``request_timeout_s`` here), ``None`` succeeds.
    """
    ids = itertools.count(start)
    crashes = corrupts = retries = 0
    failed = {}
    for i in range(n):
        for attempt in range(1, max_attempts + 1):
            kind = plan.decide(next(ids))
            crashes += kind == "crash"
            corrupts += kind == "corrupt"
            if kind in ("crash", "corrupt"):
                if attempt < max_attempts:
                    retries += 1
                    continue
                failed[i] = kind
            break
    return {"crashes": crashes, "corrupts": corrupts,
            "retries": retries, "failed": failed}


class TestSequentialDeterminism:
    """One client, predictable attempt ids: the run matches the replay."""

    def test_retries_absorb_the_plan_with_exact_counters(self, spec, local_session, transport):
        plan = FaultPlan(
            seed=12,
            crash_rate=0.08,
            stall_rate=0.08,
            slow_rate=0.08,
            corrupt_rate=0.08,
            stall_s=0.3,
            start_after=WARMUP,
        )
        n = 24
        res = ResilienceConfig(max_retries=3)
        sim = _simulate(plan, n, res.max_attempts)
        # seed 12 exercises both retryable kinds and absorbs everything
        assert sim["crashes"] == 2 and sim["corrupts"] == 2
        assert sim["retries"] == 4 and sim["failed"] == {}

        with ShardedServer(
            spec, num_shards=2, health_interval_s=0.1,
            resilience=res, faults=plan, transport=transport,
        ) as server:
            _warmup(server)
            for i in range(n):
                x = _rand(1, seed=100 + i)
                np.testing.assert_array_equal(
                    server.run(x, timeout=120), local_session.run(x)
                )
            deadline = time.monotonic() + 20  # respawns land asynchronously
            while (
                server.cluster_stats["respawns"] < sim["crashes"]
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            stats = server.cluster_stats

        # not just "some chaos happened": exactly the planned chaos did
        assert stats["respawns"] == sim["crashes"]
        assert stats["corrupt"] == sim["corrupts"]
        assert stats["retries"] == sim["retries"]
        assert stats["shed"] == 0 and stats["timed_out"] == 0

    def test_retries_off_crash_surfaces_on_the_marked_requests(
        self, spec, local_session, transport
    ):
        plan = FaultPlan(seed=0, crash_rate=0.12, start_after=4)
        n = 16
        sim = _simulate(plan, n, max_attempts=1, start=4)
        assert sim["failed"] == {6: "crash", 14: "crash"}  # seed 0: ids 10, 18

        with ShardedServer(
            spec, num_shards=2, health_interval_s=0.1,
            resilience=ResilienceConfig(max_retries=0), faults=plan,
            transport=transport,
        ) as server:
            for i in range(4):
                server.run(_rand(1, seed=i), timeout=60)
            crashed = []
            for i in range(n):
                x = _rand(1, seed=200 + i)
                try:
                    out = server.run(x, timeout=120)
                except ShardCrashedError:
                    crashed.append(i)
                else:
                    np.testing.assert_array_equal(out, local_session.run(x))
            # the respawn replacing a crashed worker lands asynchronously
            # (the future fails first): give the last one a moment
            deadline = time.monotonic() + 20
            while (
                server.cluster_stats["respawns"] < sim["crashes"]
                and time.monotonic() < deadline
            ):
                time.sleep(0.05)
            stats = server.cluster_stats

        assert crashed == sorted(sim["failed"])  # exactly the marked requests
        assert stats["retries"] == 0
        assert stats["respawns"] == sim["crashes"]


class TestConcurrentChaosMatrix:
    """16 closed-loop clients under a ~12% mixed fault rate: the global
    contract holds — every request resolves in bounded time as the
    bitwise-correct result or a typed error, and none hang."""

    CLIENTS = 16
    PER_CLIENT = 6

    def test_every_request_resolves_correct_or_typed(self, spec, local_session, transport):
        plan = FaultPlan(
            seed=1,
            crash_rate=0.02,
            stall_rate=0.02,
            slow_rate=0.02,
            corrupt_rate=0.02,
            slot_exhaust_rate=0.02,
            stall_s=0.4,
            start_after=WARMUP,
        )
        total = self.CLIENTS * self.PER_CLIENT
        injected = [k for i in range(WARMUP, WARMUP + total) if (k := plan.decide(i))]
        # seed 1 covers every fault kind within the guaranteed id range
        assert set(injected) == {"crash", "stall", "slow", "corrupt", "slot_exhaust"}
        n_crash = injected.count("crash")
        n_corrupt = injected.count("corrupt")

        res = ResilienceConfig(max_retries=3, request_timeout_s=2.0)
        samples = [_rand(1, seed=300 + c) for c in range(self.CLIENTS)]
        expected = [local_session.run(s) for s in samples]
        failures: list = []
        typed: list = []
        lock = threading.Lock()

        with ShardedServer(
            spec, num_shards=3, health_interval_s=0.1,
            resilience=res, faults=plan, transport=transport,
        ) as server:
            _warmup(server)

            def client(c: int) -> None:
                for _ in range(self.PER_CLIENT):
                    try:
                        # deadline generous enough that only injected faults
                        # (not honest queueing) could consume it
                        out = server.submit(
                            samples[c], deadline=60.0
                        ).result(timeout=120)
                    except RuntimeError as exc:
                        with lock:
                            if type(exc) is RuntimeError:
                                failures.append(("bare", c, exc))
                            else:
                                typed.append(type(exc).__name__)
                        continue
                    if not np.array_equal(out, expected[c]):
                        with lock:
                            failures.append(("mismatch", c, None))

            threads = [
                threading.Thread(target=client, args=(c,), daemon=True)
                for c in range(self.CLIENTS)
            ]
            for t in threads:
                t.start()
            for t in threads:
                # a hang here is itself the regression this suite exists
                # to catch: join with a hard bound, then fail loudly
                t.join(timeout=180)
            stuck = [t for t in threads if t.is_alive()]
            assert not stuck, f"{len(stuck)} client(s) hung under chaos"
            assert not failures, failures
            stats = server.cluster_stats

        # retries re-roll each attempt's fault dice, so the budget absorbs
        # nearly everything; whatever surfaces must be typed and rare
        assert len(typed) <= len(injected), typed
        # lower bounds proving the chaos really happened.  Per-kind counts
        # can be pre-empted by collateral damage (a worker holding a
        # corrupt-marked request crashes on a *different* request before
        # the corrupted response hits the wire), so the race-proof
        # invariants are: at least one crash executed somewhere (the
        # earliest crash to run can only have been pre-empted by an even
        # earlier crash), corruption was demonstrably caught, and every
        # planned crash/corrupt in the guaranteed id range burned its
        # attempt — each burnt attempt is retried or surfaces typed.
        assert stats["respawns"] >= 1
        assert stats["corrupt"] >= 1
        assert stats["retries"] + len(typed) >= n_crash + n_corrupt
        assert stats["injected_faults"]["slot_exhaust"] >= 1
        assert stats["requests"] >= total
