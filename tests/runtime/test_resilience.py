"""Resilient serving: retries, circuit breakers, deadlines, slot hygiene.

The load-bearing claims under test:

* a shard SIGKILLed with requests in flight is invisible to clients when
  retries are enabled — every future resolves to the **bitwise** correct
  result, zero ``ShardCrashedError`` (the acceptance gate of the
  resilience work);
* the per-shard circuit breaker trips on stalled attempts, takes the
  shard out of rotation while open, and readmits it through a half-open
  probe once it recovers;
* deadlines and admission timeouts surface as typed errors
  (``DeadlineExceededError`` / ``QueueFullError``), never as hangs;
* abandoned (timed-out) futures do not leak transport slots — late
  replies are discarded and their slots reclaimed (regression for the
  slot-exhaustion-by-abandonment bug);
* hedged requests deliver exactly one result.

Breaker/score unit tests use an injected fake clock — no sleeps, no
flakes.  Cluster tests use real spawned workers, a module-scoped spec
(capture paid once), and ``max_batch=1`` serving so every worker
dispatch has the same batch shape as ``session.run`` — which is what
makes bitwise assertions valid (coalescing would shift BLAS rounding).
"""

import contextlib
import os
import signal
import time

import numpy as np
import pytest

from repro.runtime import (
    CircuitBreaker,
    DeadlineExceededError,
    QueueFullError,
    ResilienceConfig,
    ServingConfig,
    ShardCrashedError,
    ShardedServer,
)
from repro.runtime.cluster import projected_smallcnn_spec
from repro.runtime.resilience import route_score

IN_SIZE = 8


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("resilience") / "bundle.npz"
    # max_batch=1: workers dispatch every request solo, so worker output
    # is bitwise-identical to local session.run on the same input
    return projected_smallcnn_spec(
        str(bundle), in_size=IN_SIZE, serving_config=ServingConfig(max_batch=1)
    )


@pytest.fixture(scope="module")
def local_session(spec):
    return spec.build()


def _rand(n, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3, IN_SIZE, IN_SIZE)).astype(np.float32)


def _wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


@contextlib.contextmanager
def _frozen(pid):
    """SIGSTOP a worker for the block; ALWAYS wake it on exit (a test
    failure that leaves a stopped worker wedges server close/teardown —
    terminate's SIGTERM stays pending on a stopped process)."""
    os.kill(pid, signal.SIGSTOP)
    try:
        yield
    finally:
        with contextlib.suppress(ProcessLookupError):
            os.kill(pid, signal.SIGCONT)


def _pile_on(server, shard, n_max=200):
    """Submit requests until ``shard`` (typically frozen) holds some in
    flight; returns ``[(input, future), ...]`` for later verification."""
    doomed = []
    for i in range(n_max):
        x = _rand(1, seed=1000 + i)
        doomed.append((x, server.submit(x)))
        if shard.outstanding > 0:
            break
        time.sleep(0.01)
    assert shard.outstanding > 0, "victim shard never took a request"
    return doomed


# ----------------------------------------------------------------------
# Circuit breaker state machine (fake clock: deterministic, no sleeps)
# ----------------------------------------------------------------------
class TestCircuitBreaker:
    @staticmethod
    def _breaker(threshold=3, reset_s=10.0):
        now = [0.0]
        return CircuitBreaker(threshold, reset_s, clock=lambda: now[0]), now

    def test_closed_admits_everything(self):
        breaker, _ = self._breaker()
        assert breaker.state == "closed"
        assert all(breaker.try_acquire() for _ in range(100))

    def test_trips_open_at_consecutive_failure_threshold(self):
        breaker, _ = self._breaker(threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"  # streak below threshold
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.try_acquire()
        assert breaker.trips == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self._breaker(threshold=2)
        breaker.record_failure()
        breaker.record_success()  # non-consecutive: streak cleared
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_exactly_one_probe(self):
        breaker, now = self._breaker(threshold=1, reset_s=10.0)
        breaker.record_failure()
        assert not breaker.try_acquire()  # open: shedding
        now[0] = 10.0
        assert breaker.state == "half_open"
        assert breaker.try_acquire()  # the probe
        assert not breaker.try_acquire()  # everyone else waits on its verdict
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.try_acquire()

    def test_failed_probe_reopens_for_another_reset_period(self):
        breaker, now = self._breaker(threshold=1, reset_s=10.0)
        breaker.record_failure()
        now[0] = 10.0
        assert breaker.try_acquire()
        breaker.record_failure()  # probe failed
        assert breaker.state == "open"
        assert not breaker.try_acquire()
        assert breaker.trips == 2
        now[0] = 20.0
        assert breaker.try_acquire()  # next probe window

    def test_snapshot_reports_state_and_counters(self):
        breaker, _ = self._breaker(threshold=1)
        breaker.record_failure()
        snap = breaker.snapshot()
        assert snap["state"] == "open"
        assert snap["trips"] == 1 and snap["failures"] == 1 and snap["successes"] == 0

    def test_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            CircuitBreaker(threshold=0)
        with pytest.raises(ValueError, match="reset_s"):
            CircuitBreaker(reset_s=0)


class TestResilienceConfig:
    def test_defaults_enable_retries(self):
        cfg = ResilienceConfig()
        assert cfg.max_retries == 2 and cfg.max_attempts == 3

    def test_zero_retries_is_single_attempt(self):
        assert ResilienceConfig(max_retries=0).max_attempts == 1

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"hedge_after_ms": 0},
            {"breaker_threshold": 0},
            {"breaker_reset_s": 0},
            {"request_timeout_s": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            ResilienceConfig(**kwargs)


class TestRouteScore:
    def test_prefers_fast_busy_over_slow_idle_when_justified(self):
        # 3 queued behind a 1ms shard (~4ms) beats an idle 50ms shard
        assert route_score(3, 1.0, 1.0) < route_score(0, 50.0, 50.0)

    def test_no_stats_degrades_to_least_outstanding(self):
        assert route_score(2, 0.0, 0.0) > route_score(1, 0.0, 0.0)

    def test_tail_latency_breaks_ties(self):
        assert route_score(1, 5.0, 40.0) > route_score(1, 5.0, 10.0)


# ----------------------------------------------------------------------
# Retries: crashes become invisible (the headline acceptance test)
# ----------------------------------------------------------------------
class TestRetries:
    def test_sigkill_with_retries_is_invisible_and_bitwise_correct(self, spec, local_session):
        """Freeze a shard so requests provably pile onto it, SIGKILL it,
        and require every in-flight future to resolve to the bitwise
        correct output — zero ShardCrashedError reaches a client."""
        with ShardedServer(spec, num_shards=2, health_interval_s=0.2) as server:
            for _ in range(4):
                server.run(_rand(1), timeout=60)  # warm both shards
            victim = server._shards[0]
            pid = victim.process.pid
            with _frozen(pid):
                doomed = _pile_on(server, victim)
                os.kill(pid, signal.SIGKILL)

            crashed = 0
            for x, fut in doomed:
                try:
                    np.testing.assert_array_equal(fut.result(timeout=60), local_session.run(x))
                except ShardCrashedError:
                    crashed += 1
            assert crashed == 0  # retries made the crash invisible
            stats = server.cluster_stats
            assert stats["retries"] > 0  # and they actually happened
            # the shard still respawns underneath
            assert _wait_until(lambda: server.cluster_stats["alive_shards"] == 2)
            server.run(_rand(1, seed=5), timeout=60)

    def test_exhausted_retry_budget_surfaces_shard_crashed(self, spec):
        """With zero shards left to retry on, the typed error must come
        through (never a hang): kill the only shard mid-flight with
        max_retries=0."""
        with ShardedServer(
            spec,
            num_shards=1,
            health_interval_s=0.2,
            resilience=ResilienceConfig(max_retries=0),
        ) as server:
            server.run(_rand(1), timeout=60)
            victim = server._shards[0]
            with _frozen(victim.process.pid):
                doomed = _pile_on(server, victim)
                os.kill(victim.process.pid, signal.SIGKILL)
            crashed = 0
            for _, fut in doomed:
                try:
                    fut.result(timeout=60)
                except ShardCrashedError:
                    crashed += 1
            assert crashed == len(doomed)


# ----------------------------------------------------------------------
# Circuit breaker in the router: route around a stalled shard
# ----------------------------------------------------------------------
class TestBreakerRouting:
    def test_breaker_opens_on_stall_and_recovers_via_probe(self, spec, local_session):
        """SIGSTOP wedges a shard without killing it — the case crashes
        don't cover.  Stall detection must trip its breaker, traffic must
        route around it while open, and a probe after SIGCONT must bring
        it back.  ``breaker_reset_s`` is generous so no half-open probe
        can sneak to the still-frozen victim during the routed-around
        assertion window."""
        res = ResilienceConfig(
            max_retries=3, breaker_threshold=1, breaker_reset_s=3.0, request_timeout_s=0.3
        )
        with ShardedServer(
            spec, num_shards=2, health_interval_s=0.1, resilience=res
        ) as server:
            for _ in range(4):
                server.run(_rand(1), timeout=60)
            victim = server._shards[0]
            healthy = server._shards[1]
            with _frozen(victim.process.pid):
                doomed = _pile_on(server, victim)

                # stall detection counts a breaker failure; it trips open
                assert _wait_until(lambda: victim.breaker.state == "open", timeout=20), (
                    victim.breaker.snapshot()
                )
                # the stalled requests were retried onto the healthy shard
                # and still produce bitwise-correct results
                for x, fut in doomed:
                    np.testing.assert_array_equal(fut.result(timeout=60), local_session.run(x))

                # while open, the victim receives no new requests at all
                sent_before = victim.requests
                for i in range(6):
                    x = _rand(1, seed=2000 + i)
                    np.testing.assert_array_equal(
                        server.run(x, timeout=60), local_session.run(x)
                    )
                assert victim.requests == sent_before
                assert healthy.requests > 0

            # recovery: worker awake again.  Once the reset period elapses
            # the half-open probe is routed (with priority) to the victim,
            # succeeds, and the breaker closes.
            def recovered():
                server.run(_rand(1, seed=3000), timeout=60)
                return victim.breaker.state == "closed"

            assert _wait_until(recovered, timeout=30), victim.breaker.snapshot()

            # ... and it genuinely takes traffic again: a concurrent burst
            # shifts outstanding counts so routing spreads across both
            def takes_traffic():
                futs = [server.submit(_rand(1, seed=4000 + i)) for i in range(12)]
                for f in futs:
                    f.result(timeout=60)
                return victim.requests > sent_before

            assert _wait_until(takes_traffic, timeout=30), victim.requests
            stats = server.cluster_stats
            assert stats["shards"][0]["breaker"]["trips"] >= 1


# ----------------------------------------------------------------------
# Deadlines and admission on the cluster path
# ----------------------------------------------------------------------
class TestClusterDeadlines:
    def test_expired_deadline_rejected_at_submission(self, spec):
        with ShardedServer(spec, num_shards=1) as server:
            with pytest.raises(DeadlineExceededError, match="already expired"):
                server.submit(_rand(1), deadline=-0.01)
            assert server.cluster_stats["timed_out"] == 1

    def test_full_slots_fail_fast_with_queue_full(self, spec):
        """Every transport slot busy on a wedged shard: submit(timeout=..)
        must shed with the typed error instead of blocking forever."""
        with ShardedServer(
            spec,
            num_shards=1,
            slots_per_shard=2,
            health_interval_s=0.5,
            resilience=ResilienceConfig(max_retries=0),
        ) as server:
            server.run(_rand(1), timeout=60)
            pid = server._shards[0].process.pid
            with _frozen(pid):
                held = [server.submit(_rand(1, seed=i)) for i in range(2)]  # both slots
                with pytest.raises(QueueFullError, match="shed"):
                    server.submit(_rand(1), timeout=0.3)
                assert server.cluster_stats["shed"] == 1
            for fut in held:
                assert fut.result(timeout=60).shape == (1, 10)

    def test_deadline_passing_in_flight_resolves_typed_error(self, spec):
        """A request stuck on a wedged shard past its budget resolves
        with DeadlineExceededError (monitor scan), not a hang — and the
        late reply after SIGCONT is discarded."""
        with ShardedServer(
            spec,
            num_shards=1,
            health_interval_s=0.1,
            resilience=ResilienceConfig(max_retries=0),
        ) as server:
            server.run(_rand(1), timeout=60)
            pid = server._shards[0].process.pid
            with _frozen(pid):
                fut = server.submit(_rand(1), deadline=0.3)
                with pytest.raises(DeadlineExceededError):
                    fut.result(timeout=30)
                assert server.cluster_stats["timed_out"] >= 1
            # the worker is intact; the discarded late reply freed its slot
            assert server.run(_rand(1), timeout=60).shape == (1, 10)


# ----------------------------------------------------------------------
# Slot hygiene: abandoned futures must not leak transport slots
# ----------------------------------------------------------------------
class TestSlotLeakRegression:
    def test_abandoned_timed_out_futures_release_their_slots(self, spec, local_session):
        """Fill every slot with requests that time out against a wedged
        worker (clients abandon the futures), then require the ring to
        serve strictly more requests than it has slots once the worker
        wakes — impossible if abandonment leaked the slots."""
        slots = 2
        with ShardedServer(
            spec,
            num_shards=1,
            slots_per_shard=slots,
            health_interval_s=0.1,
            resilience=ResilienceConfig(max_retries=0),
        ) as server:
            server.run(_rand(1), timeout=60)
            victim = server._shards[0]
            with _frozen(victim.process.pid):
                abandoned = [server.submit(_rand(1, seed=i), deadline=0.3) for i in range(slots)]
                for fut in abandoned:
                    with pytest.raises(DeadlineExceededError):
                        fut.result(timeout=30)
            # all futures resolved, but the wedged worker still owned the
            # slots; waking it must reclaim them via the discarded replies
            for i in range(slots * 3):  # > slot count: needs reclamation
                x = _rand(1, seed=100 + i)
                np.testing.assert_array_equal(server.run(x, timeout=60), local_session.run(x))
            assert server.cluster_stats["timed_out"] == slots


# ----------------------------------------------------------------------
# Hedging: duplicate slow requests, deliver exactly once
# ----------------------------------------------------------------------
class TestHedging:
    def test_hedge_resolves_requests_stuck_on_frozen_shard(self, spec, local_session):
        """With the victim frozen (not killed: no crash handling, no
        stall timeout configured), only the hedge path can resolve its
        requests — results must be correct and delivered exactly once."""
        res = ResilienceConfig(max_retries=2, hedge_after_ms=150.0)
        with ShardedServer(
            spec, num_shards=2, health_interval_s=0.05, resilience=res
        ) as server:
            for _ in range(4):
                server.run(_rand(1), timeout=60)
            victim = server._shards[0]
            with _frozen(victim.process.pid):
                doomed = _pile_on(server, victim)
                # futures resolve while the victim is still frozen — the
                # hedge on the healthy shard is the only way that happens
                for x, fut in doomed:
                    np.testing.assert_array_equal(fut.result(timeout=60), local_session.run(x))
                assert server.cluster_stats["hedges"] >= 1
            server.run(_rand(1), timeout=60)  # awake again; late replies discarded
