"""End-to-end telemetry: metrics registry, request tracing, event log,
HTTP exposition.

The load-bearing claims under test:

* the :class:`MetricsRegistry` is a correct, thread-safe namespace whose
  snapshots render to valid Prometheus text, including merged
  multi-registry views with extra labels (how worker snapshots get their
  ``shard="N"`` label);
* a sampled request produces the **complete span timeline** — admission
  → dispatch → transport → worker queue → micro-batch queue wait →
  kernel execution (down to per-layer spans) → reply — identically over
  the shm and TCP transports, because the trace id rides inside the
  tensor frame either way;
* a retried request shows its attempts as **sibling spans under one
  trace** (``dispatch``/``attempt_crashed`` per attempt), so a crash +
  rescue is readable from the timeline alone;
* ``/metrics`` and ``cluster_stats`` agree — they are built from the
  same registry cells and one stats pass, and the HTTP test asserts the
  parity numerically;
* lifecycle events (spawn, crash, respawn, retries) land in the bounded
  event log.

Process-spawning tests reuse the cluster-test conventions: a
module-scoped spec, small short-lived servers, and the ``transport``
fixture for shm/tcp parity.
"""

import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.runtime.cluster import ShardedServer, projected_smallcnn_spec
from repro.runtime.faults import FaultPlan
from repro.runtime.resilience import ResilienceConfig
from repro.runtime.serving import MicroBatchServer, ServingStats
from repro.runtime.telemetry import (
    EventLog,
    MetricsRegistry,
    SpanCollector,
    Telemetry,
    TelemetryConfig,
    Trace,
    Tracer,
    TraceStore,
    new_trace_id,
    profile_layers,
    render_prometheus,
)

IN_SIZE = 8


@pytest.fixture(scope="module")
def spec(tmp_path_factory):
    bundle = tmp_path_factory.mktemp("telemetry") / "bundle.npz"
    return projected_smallcnn_spec(str(bundle), in_size=IN_SIZE)


@pytest.fixture(params=["shm", "tcp"])
def transport(request):
    """Traces must look identical over shared memory and TCP — the
    trace id rides inside the tensor frame on both."""
    return request.param


def _rand(n=1, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, 3, IN_SIZE, IN_SIZE)).astype(np.float32)


def _wait_until(predicate, timeout=20.0, interval=0.05):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


def _span_names(server, trace_id):
    trace = server.get_trace(trace_id)
    return [s["name"] for s in trace["spans"]] if trace else []


# ----------------------------------------------------------------------
# MetricsRegistry
# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_get_or_create_and_inc(self):
        reg = MetricsRegistry()
        c = reg.counter("requests_total", help="served requests")
        c.inc()
        reg.counter("requests_total").inc(4)  # same cell
        assert c.value == 5

    def test_counters_only_go_up(self):
        reg = MetricsRegistry()
        with pytest.raises(ValueError, match="only go up"):
            reg.counter("c_total").inc(-1)

    def test_gauge_set_and_inc(self):
        reg = MetricsRegistry()
        g = reg.gauge("queue_depth")
        g.set(7)
        g.inc(-3)
        assert g.value == 4

    def test_histogram_buckets_cumulative(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", buckets=(1.0, 10.0, 100.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.count == 4 and h.sum == pytest.approx(555.5)
        # cumulative counts per (le) bucket, +Inf implicit last
        assert [n for _, n in h.cumulative()] == [1, 2, 3, 4]

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ValueError, match="registered as"):
            reg.gauge("x_total")

    def test_labels_make_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("hits_total", code="200").inc(3)
        reg.counter("hits_total", code="500").inc(1)
        snap = reg.snapshot()
        by_label = {
            tuple(sorted(s["labels"].items())): s["value"]
            for s in snap["hits_total"]["series"]
        }
        assert by_label == {(("code", "200"),): 3, (("code", "500"),): 1}

    def test_snapshot_is_picklable_plain_data(self):
        import pickle

        reg = MetricsRegistry()
        reg.counter("a_total").inc()
        reg.gauge("b").set(2.5)
        reg.histogram("c_ms", buckets=(1.0,)).observe(0.5)
        snap = pickle.loads(pickle.dumps(reg.snapshot()))
        assert snap["a_total"]["kind"] == "counter"
        assert snap["c_ms"]["series"][0]["count"] == 1

    def test_concurrent_increments_all_counted(self):
        reg = MetricsRegistry()
        c = reg.counter("n_total")
        threads = [
            threading.Thread(target=lambda: [c.inc() for _ in range(500)])
            for _ in range(8)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 4000


class TestPrometheusRendering:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("req_total", help="requests").inc(3)
        reg.gauge("depth").set(1.5)
        text = render_prometheus([(reg.snapshot(), {})])
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert "# TYPE depth gauge" in text
        assert "depth 1.5" in text

    def test_histogram_exposition_format(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_ms", buckets=(1.0, 10.0))
        h.observe(0.5)
        h.observe(5.0)
        text = render_prometheus([(reg.snapshot(), {})])
        assert 'lat_ms_bucket{le="1.0"} 1' in text
        assert 'lat_ms_bucket{le="10.0"} 2' in text
        assert 'lat_ms_bucket{le="+Inf"} 2' in text
        assert "lat_ms_sum 5.5" in text
        assert "lat_ms_count 2" in text

    def test_merged_snapshots_with_extra_labels(self):
        """Worker snapshots merge under one metric name, told apart by
        the shard label the router stamps on."""
        w0, w1 = MetricsRegistry(), MetricsRegistry()
        w0.counter("serving_requests_total").inc(2)
        w1.counter("serving_requests_total").inc(5)
        text = render_prometheus(
            [(w0.snapshot(), {"shard": "0"}), (w1.snapshot(), {"shard": "1"})]
        )
        assert 'serving_requests_total{shard="0"} 2' in text
        assert 'serving_requests_total{shard="1"} 5' in text
        # one TYPE header per metric name, not per snapshot
        assert text.count("# TYPE serving_requests_total counter") == 1

    def test_label_values_are_escaped(self):
        """Label values containing backslash, quote, or newline must be
        escaped per the Prometheus text format, or the whole exposition
        becomes unparseable."""
        reg = MetricsRegistry()
        reg.counter("req_total").inc(1)
        text = render_prometheus(
            [(reg.snapshot(), {"path": 'C:\\tmp\\"x"\nend'})]
        )
        assert 'req_total{path="C:\\\\tmp\\\\\\"x\\"\\nend"} 1' in text
        # exactly one series line — the raw newline must not split it
        series = [
            line for line in text.splitlines()
            if line.startswith("req_total{")
        ]
        assert len(series) == 1

    def test_help_text_is_escaped(self):
        reg = MetricsRegistry()
        reg.counter("odd_total", help="line one\nline two \\ done").inc(1)
        text = render_prometheus([(reg.snapshot(), {})])
        assert "# HELP odd_total line one\\nline two \\\\ done" in text
        assert "\nline two" not in text.replace("\\nline two", "")


# ----------------------------------------------------------------------
# Tracing primitives
# ----------------------------------------------------------------------
class TestTracer:
    def test_rate_one_samples_everything(self):
        tracer = Tracer(1.0, TraceStore())
        assert all(tracer.maybe_start() is not None for _ in range(10))

    def test_rate_zero_samples_nothing(self):
        tracer = Tracer(0.0, TraceStore())
        assert all(tracer.maybe_start() is None for _ in range(10))

    def test_fractional_rate_is_periodic(self):
        tracer = Tracer(0.25, TraceStore())
        sampled = [tracer.maybe_start() is not None for _ in range(8)]
        assert sampled == [True, False, False, False, True, False, False, False]

    def test_trace_ids_are_nonzero(self):
        assert all(new_trace_id() != 0 for _ in range(100))

    def test_store_is_bounded_lru(self):
        store = TraceStore(capacity=3)
        ids = [new_trace_id() for _ in range(5)]
        for tid in ids:
            store.start(tid)
        assert store.ids() == ids[2:]
        assert store.get(ids[0]) is None
        assert store.get(ids[4]) is not None


class TestTraceAssembly:
    def test_collector_spans_are_relative_ms(self):
        c = SpanCollector(7, t0=100.0)
        c.add("execute", 100.010, 100.030, batch=4)
        (span,) = c.export()
        assert span["name"] == "execute"
        assert span["t0_ms"] == pytest.approx(10.0)
        assert span["dur_ms"] == pytest.approx(20.0)
        assert span["batch"] == 4

    def test_remote_spans_rebase_at_send_time(self):
        """Worker clocks never cross the wire: worker spans are relative
        to the worker's receipt, rebased at the router-side send
        timestamp — so the timeline is coherent even cross-host."""
        trace = Trace(1)
        send_at = trace.t0 + 0.050  # router sent the attempt at +50 ms
        trace.add_remote_spans(
            [{"name": "execute", "t0_ms": 10.0, "dur_ms": 5.0}],
            send_at,
            shard=2,
        )
        d = trace.to_dict()
        (span,) = d["spans"]
        assert span["t0_ms"] == pytest.approx(60.0)
        assert span["shard"] == 2

    def test_finish_first_status_wins(self):
        trace = Trace(1)
        trace.finish("ok")
        trace.finish("ShardCrashedError")
        assert trace.to_dict()["status"] == "ok"

    def test_to_dict_sorts_spans_by_offset(self):
        trace = Trace(1)
        now = trace.t0
        trace.add_span("later", now + 0.020, now + 0.030)
        trace.add_span("earlier", now, now + 0.010)
        names = [s["name"] for s in trace.to_dict()["spans"]]
        assert names == ["earlier", "later"]


# ----------------------------------------------------------------------
# Event log
# ----------------------------------------------------------------------
class TestEventLog:
    def test_ring_is_bounded(self):
        log = EventLog(capacity=4)
        for i in range(10):
            log.emit("tick", i=i)
        tail = log.tail()
        assert len(tail) == 4
        assert [e["i"] for e in tail] == [6, 7, 8, 9]

    def test_tail_n_returns_newest(self):
        log = EventLog(capacity=8)
        for i in range(5):
            log.emit("tick", i=i)
        assert [e["i"] for e in log.tail(2)] == [3, 4]

    def test_file_sink_appends_json_lines(self, tmp_path):
        path = tmp_path / "events.jsonl"
        log = EventLog(capacity=4, sink_path=str(path))
        log.emit("shard_spawn", shard=0)
        log.emit("retry", requests=2)
        log.close()
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert [e["kind"] for e in lines] == ["shard_spawn", "retry"]
        assert lines[1]["requests"] == 2
        assert all("ts" in e for e in lines)


# ----------------------------------------------------------------------
# ServingStats on the registry + ambient layer profiling
# ----------------------------------------------------------------------
class TestServingStatsRegistry:
    def test_counters_are_registry_backed(self):
        stats = ServingStats()
        stats.count(requests=2, samples=3, batches=1)
        snap = stats.registry.snapshot()
        assert snap["serving_requests_total"]["series"][0]["value"] == 2
        assert snap["serving_samples_total"]["series"][0]["value"] == 3
        assert stats.requests == 2 and stats.samples == 3

    def test_snapshot_includes_metrics_and_latency_stats(self):
        stats = ServingStats()
        stats.record_batch(2, 4, [1.0, 2.0])
        snap = stats.snapshot()
        assert snap["requests"] == 2 and snap["samples"] == 4
        assert snap["p99_ms"] >= snap["p95_ms"] >= snap["p50_ms"] > 0
        assert snap["mean_ms"] == pytest.approx(1.5)
        assert snap["max_ms"] == pytest.approx(2.0)
        assert "serving_request_latency_ms" in snap["metrics"]

    def test_multi_field_views_are_not_torn(self):
        """The torn-read fix: every count() moves requests and samples
        together under the stats lock, and snapshot() reads the whole
        view under the same lock — so no snapshot can ever observe
        requests != samples here."""
        stats = ServingStats()
        stop = threading.Event()
        torn = []

        def reader():
            while not stop.is_set():
                snap = stats.snapshot()
                if snap["requests"] != snap["samples"]:
                    torn.append(snap)

        threads = [threading.Thread(target=reader) for _ in range(2)]
        for t in threads:
            t.start()
        for _ in range(2000):
            stats.count(requests=1, samples=1)
        stop.set()
        for t in threads:
            t.join()
        assert not torn

    def test_profile_layers_captures_per_layer_timings(self, spec):
        session = spec.build()
        try:
            sink = []
            with profile_layers(sink):
                session.run(_rand(2))
            assert sink, "profiled run recorded no layers"
            names = [name for name, _, _, _ in sink]
            assert any("conv" in n for n in names)
            for _, op, t0, t1 in sink:
                assert t1 >= t0
            # ambient hook off outside the context: no new entries
            baseline = len(sink)
            session.run(_rand(1))
            assert len(sink) == baseline
        finally:
            session.close()

    def test_microbatch_trace_spans(self, spec):
        """The in-process tier alone produces queue/execute/layer spans
        (this is what workers ship back to the router)."""
        session = spec.build()
        try:
            collector = SpanCollector(new_trace_id())
            fut = session.submit(_rand(1), trace=collector)
            fut.result(timeout=30)
            _wait_until(lambda: any(
                s["name"] == "execute" for s in collector.export()), timeout=10)
            names = [s["name"] for s in collector.export()]
            assert "queue_wait" in names and "execute" in names
            assert any(n.startswith("layer:") for n in names)
        finally:
            session.close()


# ----------------------------------------------------------------------
# End-to-end: cluster traces over both transports
# ----------------------------------------------------------------------
class TestClusterTracing:
    #: every stage of a request's life, in timeline order
    REQUIRED_SPANS = [
        "admission", "dispatch", "transport", "worker_queue",
        "queue_wait", "execute", "reply",
    ]

    def test_sampled_trace_has_complete_timeline(self, spec, transport):
        cfg = TelemetryConfig(trace_sample_rate=1.0)
        with ShardedServer(
            spec, num_shards=1, transport=transport,
            health_interval_s=0.2, telemetry=cfg,
        ) as server:
            fut = server.submit(_rand(1))
            fut.result(timeout=60)
            tid = fut.trace_id
            assert tid != 0
            # the worker's trace frame trails the reply on the same
            # ordered channel; wait for it to be spliced in
            assert _wait_until(lambda: "reply" in _span_names(server, tid))
            trace = server.get_trace(tid)
            names = [s["name"] for s in trace["spans"]]
            for required in self.REQUIRED_SPANS:
                assert required in names, f"missing span {required!r} in {names}"
            assert any(n.startswith("layer:") for n in names)
            # spans arrive sorted by offset: the timeline reads in order
            order = [names.index(r) for r in self.REQUIRED_SPANS]
            assert order == sorted(order)
            assert trace["status"] == "ok"
            assert trace["duration_ms"] > 0

    def test_unsampled_requests_have_no_trace(self, spec):
        cfg = TelemetryConfig(trace_sample_rate=0.0)
        with ShardedServer(
            spec, num_shards=1, health_interval_s=0.2, telemetry=cfg,
        ) as server:
            fut = server.submit(_rand(1))
            fut.result(timeout=60)
            assert getattr(fut, "trace_id", 0) == 0
            assert server.trace_ids() == []

    def test_retry_appears_as_sibling_spans(self, spec, transport):
        """A crash mid-request shows up *inside the trace*: the doomed
        attempt's dispatch + attempt_crashed spans next to the rescue
        attempt's dispatch/transport spans, all under one trace id."""
        # seed 0 @ crash_rate 0.5, start_after 3: req 3 crashes, 4+ fine
        faults = FaultPlan(seed=0, crash_rate=0.5, start_after=3)
        cfg = TelemetryConfig(trace_sample_rate=1.0)
        with ShardedServer(
            spec, num_shards=2, transport=transport, health_interval_s=0.2,
            resilience=ResilienceConfig(max_retries=2), faults=faults,
            telemetry=cfg,
        ) as server:
            for i in range(3):  # warmup: req_ids 0..2 never fault
                server.submit(_rand(1, seed=i)).result(timeout=60)
            fut = server.submit(_rand(1, seed=9))  # req 3: crash + rescue
            out = fut.result(timeout=60)
            assert out.shape == (1, 10)
            tid = fut.trace_id
            assert _wait_until(lambda: "reply" in _span_names(server, tid))
            trace = server.get_trace(tid)
            dispatches = [s for s in trace["spans"] if s["name"] == "dispatch"]
            assert len(dispatches) >= 2, trace["spans"]
            kinds = {d["kind"] for d in dispatches}
            assert kinds == {"initial", "retry"}
            assert {d["attempt"] for d in dispatches} == {1, 2}
            assert any(s["name"] == "attempt_crashed" for s in trace["spans"])
            assert trace["status"] == "ok"
            # the crash also leaves its lifecycle events behind
            assert _wait_until(
                lambda: {"shard_spawn", "shard_down", "retry", "shard_respawn"}
                <= set(server.events.kinds())
            )
            assert server.cluster_stats["retries"] >= 1


# ----------------------------------------------------------------------
# HTTP exposition
# ----------------------------------------------------------------------
def _get(url, timeout=10):
    with urllib.request.urlopen(url, timeout=timeout) as resp:
        return resp.status, resp.read().decode()


def _parse_prom(text):
    values = {}
    for line in text.splitlines():
        if line.startswith("#") or not line.strip():
            continue
        name, _, value = line.rpartition(" ")
        values[name] = float(value)
    return values


class TestAdminServer:
    def test_endpoints_and_metrics_parity(self, spec):
        cfg = TelemetryConfig(trace_sample_rate=1.0, metrics_port=0)
        with ShardedServer(
            spec, num_shards=2, health_interval_s=0.2, telemetry=cfg,
        ) as server:
            assert server.metrics_port is not None
            base = f"http://127.0.0.1:{server.metrics_port}"
            futs = [server.submit(_rand(1, seed=i)) for i in range(6)]
            for fut in futs:
                fut.result(timeout=60)

            status, text = _get(base + "/healthz")
            assert status == 200 and json.loads(text)["alive_shards"] == 2

            status, text = _get(base + "/stats")
            stats = json.loads(text)
            assert status == 200 and stats["requests"] >= 6

            # /metrics agrees with cluster_stats: same registry cells,
            # one stats pass for the derived values
            status, text = _get(base + "/metrics")
            assert status == 200
            prom = _parse_prom(text)
            stats = server.cluster_stats
            assert prom["cluster_requests_total"] == stats["requests"]
            assert prom["cluster_retries_total"] == stats["retries"]
            assert prom["cluster_alive_shards"] == stats["alive_shards"]
            assert prom["cluster_router_p50_ms"] == pytest.approx(
                stats["router_p50_ms"], abs=1.0
            )

            # worker registries appear labelled per shard once pongs land
            assert _wait_until(lambda: all(
                e["serving"] and "metrics" in e["serving"]
                for e in server.cluster_stats["shards"]
            ))
            _, text = _get(base + "/metrics")
            # worker series carry the model label (single-model clusters
            # serve under the default name) plus the router's shard label
            assert 'serving_requests_total{model="default",shard="0"}' in text
            assert 'serving_requests_total{model="default",shard="1"}' in text

            # traces are browsable
            status, text = _get(base + "/traces")
            ids = json.loads(text)["trace_ids"]
            assert status == 200 and len(ids) == 6
            status, text = _get(f"{base}/trace/{ids[-1]}")
            assert status == 200
            assert json.loads(text)["trace_id"] == ids[-1]
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{base}/trace/12345")
            assert err.value.code == 404
            with pytest.raises(urllib.error.HTTPError) as err:
                _get(f"{base}/trace/not-an-id")
            assert err.value.code == 400

            status, text = _get(base + "/events")
            kinds = {e["kind"] for e in json.loads(text)["events"]}
            assert status == 200 and "shard_spawn" in kinds

            port = server.metrics_port
        # close() tears the admin server down with the cluster
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(f"http://127.0.0.1:{port}/healthz", timeout=2)


class TestTelemetryConfig:
    def test_validation(self):
        with pytest.raises(ValueError, match="trace_sample_rate"):
            TelemetryConfig(trace_sample_rate=1.5)
        with pytest.raises(ValueError, match="trace_sample_rate"):
            TelemetryConfig(trace_sample_rate=-0.1)
        with pytest.raises(ValueError, match="capacity"):
            TelemetryConfig(trace_capacity=0)

    def test_hub_wires_the_parts(self, tmp_path):
        cfg = TelemetryConfig(
            trace_sample_rate=0.5, event_log_path=str(tmp_path / "ev.jsonl")
        )
        hub = Telemetry(cfg)
        try:
            hub.events.emit("hello")
            assert hub.tracer.maybe_start() is not None
            assert hub.registry.snapshot() == {}
        finally:
            hub.close()
        assert (tmp_path / "ev.jsonl").exists()
