"""BufferArena: pooling, pad scratch, ownership, and output sanitation."""

import numpy as np

from repro.runtime.arena import BufferArena


class TestAcquireRelease:
    def test_acquire_zeroed(self):
        arena = BufferArena()
        buf = arena.acquire((2, 3), zero=True)
        assert buf.shape == (2, 3) and np.all(buf == 0)

    def test_release_then_acquire_reuses(self):
        arena = BufferArena()
        buf = arena.acquire((4, 4), zero=True)
        buf.fill(7.0)
        arena.release(buf)
        again = arena.acquire((4, 4), zero=True)
        assert again is buf
        assert np.all(again == 0)  # re-zeroed on reuse
        assert arena.reuses == 1 and arena.allocations == 1

    def test_different_shapes_different_buffers(self):
        arena = BufferArena()
        a = arena.acquire((2, 2))
        arena.release(a)
        b = arena.acquire((3, 3))
        assert b is not a
        assert arena.allocations == 2

    def test_foreign_array_release_is_noop(self):
        arena = BufferArena()
        foreign = np.zeros((2, 2), np.float32)
        arena.release(foreign)  # must not enter the pool
        got = arena.acquire((2, 2))
        assert got is not foreign

    def test_double_release_guard(self):
        arena = BufferArena()
        buf = arena.acquire((2, 2))
        arena.release(buf)
        arena.release(buf)
        first = arena.acquire((2, 2))
        second = arena.acquire((2, 2))
        assert first is not second  # buf was pooled once, not twice

    def test_owns(self):
        arena = BufferArena()
        buf = arena.acquire((1,))
        assert arena.owns(buf)
        assert not arena.owns(np.zeros(1, np.float32))


class TestPaddedScratch:
    def test_padding_zero_returns_input(self):
        arena = BufferArena()
        x = np.ones((1, 2, 3, 3), np.float32)
        assert arena.padded(x, 0) is x
        assert arena.pad_allocations == 0

    def test_border_is_zero_interior_copied(self):
        arena = BufferArena()
        x = np.full((2, 3, 4, 4), 5.0, np.float32)
        xp = arena.padded(x, 1)
        assert xp.shape == (2, 3, 6, 6)
        np.testing.assert_array_equal(xp[:, :, 1:5, 1:5], x)
        assert np.all(xp[:, :, 0, :] == 0) and np.all(xp[:, :, :, -1] == 0)

    def test_scratch_reused_and_border_stays_zero(self):
        arena = BufferArena()
        x1 = np.full((1, 1, 2, 2), 3.0, np.float32)
        buf1 = arena.padded(x1, 1)
        x2 = np.full((1, 1, 2, 2), -4.0, np.float32)
        buf2 = arena.padded(x2, 1)
        assert buf2 is buf1
        assert arena.pad_reuses == 1
        np.testing.assert_array_equal(buf2[0, 0, 1:3, 1:3], x2[0, 0])
        assert np.all(buf2[0, 0, 0, :] == 0)

    def test_distinct_padding_distinct_scratch(self):
        arena = BufferArena()
        x = np.ones((1, 1, 4, 4), np.float32)
        a = arena.padded(x, 1)
        b = arena.padded(x, 2)
        assert a is not b and a.shape != b.shape


class TestSanitizeOutput:
    def test_owned_buffer_copied(self):
        arena = BufferArena()
        buf = arena.acquire((2, 2), zero=True)
        out = arena.sanitize_output(buf)
        assert out is not buf
        np.testing.assert_array_equal(out, buf)

    def test_view_of_owned_buffer_copied(self):
        arena = BufferArena()
        buf = arena.acquire((2, 4), zero=True)
        view = buf[0]
        assert arena.sanitize_output(view) is not view

    def test_foreign_array_passes_through(self):
        arena = BufferArena()
        arena.acquire((2, 2))
        foreign = np.ones((3, 3), np.float32)
        assert arena.sanitize_output(foreign) is foreign

    def test_clear_resets(self):
        arena = BufferArena()
        buf = arena.acquire((2, 2))
        arena.release(buf)
        arena.padded(np.ones((1, 1, 2, 2), np.float32), 1)
        arena.clear()
        assert arena.allocations == 0 and arena.pad_allocations == 0
        assert not arena.owns(buf)
